"""Edge-input hardening of the offline trace tools.

``python -m repro.obs.validate`` and ``python -m repro.bench
trace-report`` are run against files we do not control (hand-edited,
truncated, produced by newer versions); empty files, cut-short spans,
and unknown record types must yield clean exit codes and reports that
still render — never tracebacks.
"""

import json

import pytest

from repro.obs.export import load_records
from repro.obs.report import build_trace_report
from repro.obs.validate import main as validate_main
from repro.obs.validate import validate_file, validate_records


def meta_line(**overrides):
    record = {"type": "meta", "version": 2, "schema_version": 2,
              "spans": 1, "dropped": 0, "open_spans": 0}
    record.update(overrides)
    return json.dumps(record)


def span_line(**overrides):
    record = {"type": "span", "span_id": 1, "parent_id": 0,
              "name": "s", "layer": "server", "kind": "span",
              "status": "ok", "start": 0.0, "end": 1.0, "attrs": {}}
    record.update(overrides)
    return json.dumps(record)


# ---------------------------------------------------------------------------
# Validator CLI exit codes
# ---------------------------------------------------------------------------


def test_empty_file_is_invalid_exit_1(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert validate_file(path) == [f"{path}: empty trace file"]
    assert validate_main([str(path)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_valid_file_exit_0(tmp_path, capsys):
    path = tmp_path / "ok.jsonl"
    path.write_text(meta_line() + "\n" + span_line() + "\n")
    assert validate_main([str(path)]) == 0
    assert "trace is valid" in capsys.readouterr().out


def test_usage_error_exit_2(capsys):
    assert validate_main([]) == 2
    assert validate_main(["a", "b"]) == 2
    assert "usage" in capsys.readouterr().err


def test_span_missing_end_is_invalid(tmp_path):
    path = tmp_path / "cut.jsonl"
    record = json.loads(span_line())
    del record["end"]
    path.write_text(meta_line() + "\n" + json.dumps(record) + "\n")
    errors = validate_file(path)
    assert any("missing field 'end'" in e for e in errors)
    assert validate_main([str(path)]) == 1


def test_unknown_record_type_is_invalid(tmp_path):
    path = tmp_path / "weird.jsonl"
    path.write_text(meta_line()
                    + '\n{"type": "hologram", "x": 1}\n')
    errors = validate_file(path)
    assert any("unknown record type 'hologram'" in e for e in errors)
    assert validate_main([str(path)]) == 1


def test_nonexistent_file_reports_not_crashes(tmp_path):
    errors = validate_file(tmp_path / "missing.jsonl")
    assert len(errors) == 1
    assert validate_main([str(tmp_path / "missing.jsonl")]) == 1


# ---------------------------------------------------------------------------
# Schema versioning (satellite: versioned exports)
# ---------------------------------------------------------------------------


def test_unknown_schema_version_warns_but_validates(tmp_path, capsys):
    path = tmp_path / "future.jsonl"
    path.write_text(meta_line(version=99, schema_version=99) + "\n"
                    + span_line() + "\n")
    with pytest.warns(UserWarning, match="schema version 99"):
        load_records(path)
    warnings: list[str] = []
    assert validate_file(path, warnings=warnings) == []
    assert any("schema version 99" in w for w in warnings)
    # The CLI surfaces it as a warning yet still exits 0.
    assert validate_main([str(path)]) == 0
    captured = capsys.readouterr()
    assert "WARNING" in captured.err
    assert "trace is valid" in captured.out


def test_known_schema_versions_do_not_warn(tmp_path):
    import warnings as warnings_module

    for version in (1, 2):
        path = tmp_path / f"v{version}.jsonl"
        path.write_text(meta_line(version=version,
                                  schema_version=version) + "\n"
                        + span_line() + "\n")
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            load_records(path)


def test_legacy_version_field_alone_is_honored(tmp_path):
    """Version-1 files carried only ``version``."""
    record = json.loads(meta_line(version=77))
    del record["schema_version"]
    out: list[str] = []
    validate_records([record], warnings=out)
    assert any("schema version 77" in w for w in out)


# ---------------------------------------------------------------------------
# trace-report on the same edge inputs
# ---------------------------------------------------------------------------


def test_trace_report_renders_on_empty_span_set(tmp_path):
    path = tmp_path / "nospans.jsonl"
    path.write_text(meta_line(spans=0) + "\n")
    report = build_trace_report(path)
    assert report.span_count == 0
    assert "Trace report" in report.format()


def test_trace_report_counts_missing_end_as_malformed(tmp_path):
    record = json.loads(span_line())
    del record["end"]
    path = tmp_path / "cut.jsonl"
    path.write_text(meta_line() + "\n" + span_line() + "\n"
                    + json.dumps(record) + "\n")
    report = build_trace_report(path)
    assert report.span_count == 2
    assert report.malformed_spans == 1
    assert "skipped 1 malformed spans" in report.format()


def test_trace_report_ignores_unknown_record_types(tmp_path):
    path = tmp_path / "mixed.jsonl"
    path.write_text(meta_line() + "\n" + span_line() + "\n"
                    + '{"type": "hologram"}\n')
    report = build_trace_report(path)
    assert report.span_count == 1
    assert report.malformed_spans == 0

"""The transaction-consistent shared result cache (driver-manager level).

One cache per simulated world, shared across every virtual session:
entries are stamped with per-table DML versions, invalidated by the
version bumps every response piggybacks, and revalidated after a crash
with a single version probe.  The contracts under test:

* a hit costs **zero** protocol requests — rows are served from client
  memory and delivery never consults any server-side result position;
* a committed write invalidates every stamped entry for *all* sessions
  of the world (the multi-session torture case);
* statements inside an application transaction bypass the shared cache
  (read-your-writes) and their results stay session-private until
  COMMIT promotes them; ROLLBACK discards them;
* under synchronous commit, entries survive a server crash (revalidated
  against the WAL-recomputed version vector); under asynchronous commit
  a crash discards everything (acked commits may be lost, so equal
  version counts could name different data);
* with the knob off the cache does not exist: no probes, no counters,
  bit-identical seed behaviour.
"""

import pytest

from repro.odbc.constants import (
    SQL_FETCH_NEXT,
    SQL_FETCH_PRIOR,
    SQL_NO_DATA,
    SQL_SUCCESS,
)
from repro.phoenix.config import PhoenixConfig
from repro.phoenix.result_cache import SharedResultCache, normalize_key
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp


def build_world(result_cache: bool = True, async_window: float = 0.0,
                capacity: int = 64):
    costs = CostModel()
    if result_cache:
        costs.result_cache_entries = capacity
    costs.async_commit_window_seconds = async_window
    meter = Meter(costs)
    server = DatabaseServer(meter=meter)
    setup = BenchmarkApp(server)
    setup.run_statement("CREATE TABLE t (id INT NOT NULL, v INT, "
                        "PRIMARY KEY (id))")
    setup.run_statement("INSERT INTO t VALUES " + ", ".join(
        f"({i}, {i * 10})" for i in range(8)))
    return meter, server


def phoenix_app(server, cache_rows: int = 100) -> BenchmarkApp:
    return BenchmarkApp(server, use_phoenix=True,
                        phoenix_config=PhoenixConfig(
                            client_cache_rows=cache_rows))


def requests(meter) -> int:
    return int(meter.counters.get("net.requests_sent", 0))


def hits(meter) -> int:
    return int(meter.counters.get("result_cache.hits", 0))


# ---------------------------------------------------------------------------
# The hit path: zero requests, no server-side cursor state
# ---------------------------------------------------------------------------


def test_hit_serves_rows_with_zero_protocol_requests():
    meter, server = build_world()
    app = phoenix_app(server)
    first = app.query_rows("SELECT id, v FROM t ORDER BY id")
    before = requests(meter)
    again = app.query_rows("SELECT id, v FROM t ORDER BY id")
    assert requests(meter) == before, (
        "a shared-cache hit must not send a single protocol request")
    assert again == first
    assert hits(meter) == 1
    assert app.manager.stats["shared_cache_hits"] == 1


def test_hit_never_consults_server_side_position():
    """Cache-served delivery is pure client memory: no FetchRequest, no
    AdvanceRequest, and no open server result set exists to be moved."""
    meter, server = build_world()
    app = phoenix_app(server)
    app.query_rows("SELECT id, v FROM t ORDER BY id")

    stmt = app.manager.alloc_statement(app.conn)
    assert app.manager.exec_direct(
        stmt, "SELECT id, v FROM t ORDER BY id") == SQL_SUCCESS
    before = requests(meter)
    fetch_kinds = {k: v for k, v in meter.counters.items()
                   if k in ("net.requests.FetchRequest",
                            "net.requests.AdvanceRequest")}
    rows = []
    while True:
        rc, row = app.manager.fetch(stmt)
        if rc != SQL_SUCCESS:
            break
        rows.append(row)
    assert rows == [(i, i * 10) for i in range(8)]
    assert requests(meter) == before
    assert {k: v for k, v in meter.counters.items()
            if k in ("net.requests.FetchRequest",
                     "net.requests.AdvanceRequest")} == fetch_kinds
    # No server-side result set was ever opened for the hit, so there is
    # no position anything could have consulted.
    assert all(not s.results for s in server._sessions.values())


def test_fetch_prior_on_cache_served_cursor_charges_once():
    """FETCH_PRIOR on a cache-served static cursor is one client-memory
    charge — never a reopen/advance, never a double charge."""
    meter, server = build_world()
    app = phoenix_app(server)
    app.query_rows("SELECT id, v FROM t ORDER BY id")

    stmt = app.manager.alloc_statement(app.conn)
    assert app.manager.exec_direct(
        stmt, "SELECT id, v FROM t ORDER BY id") == SQL_SUCCESS
    assert app.manager.fetch_scroll(stmt, SQL_FETCH_NEXT)[1] == (0, 0)
    assert app.manager.fetch_scroll(stmt, SQL_FETCH_NEXT)[1] == (1, 10)
    before_clock = meter.now
    before_reqs = requests(meter)
    rc, row = app.manager.fetch_scroll(stmt, SQL_FETCH_PRIOR)
    assert (rc, row) == (SQL_SUCCESS, (0, 0))
    assert requests(meter) == before_reqs
    # rel tolerance only absorbs float-subtraction noise on the clock
    # reads — a double charge (2x) would be far outside it.
    assert meter.now - before_clock == pytest.approx(
        meter.costs.cache_fetch_seconds, rel=1e-6), (
        "FETCH_PRIOR on a cache-served cursor must cost exactly one "
        "cache_fetch charge")


# ---------------------------------------------------------------------------
# Invalidation: committed writes, all sessions
# ---------------------------------------------------------------------------


def test_committed_write_invalidates_between_two_readers_hits():
    """The torture case: reader A hits, a writer session commits an
    update to the read table, reader B must miss and see the new value."""
    meter, server = build_world()
    reader_a = phoenix_app(server)
    reader_b = phoenix_app(server)
    writer = phoenix_app(server)
    sql = "SELECT v FROM t WHERE id = 5"

    assert reader_a.query_rows(sql) == [(50,)]      # miss, admits
    assert reader_b.query_rows(sql) == [(50,)]      # hit (shared!)
    assert hits(meter) == 1

    writer.run_statement("UPDATE t SET v = 5151 WHERE id = 5")

    assert reader_b.query_rows(sql) == [(5151,)], (
        "reader served a stale cached value after a committed write")
    assert reader_a.query_rows(sql) == [(5151,)]    # re-admitted -> hit
    assert int(meter.counters.get("result_cache.invalidations", 0)) >= 1
    assert int(meter.counters.get("result_cache.invalidations.t", 0)) >= 1


def test_unrelated_table_survives_invalidation():
    meter, server = build_world()
    app = phoenix_app(server)
    setup = BenchmarkApp(server)
    setup.run_statement("CREATE TABLE other (k INT NOT NULL, "
                        "PRIMARY KEY (k))")
    setup.run_statement("INSERT INTO other VALUES (1), (2)")
    app.query_rows("SELECT k FROM other ORDER BY k")
    app.query_rows("SELECT v FROM t WHERE id = 1")
    app.run_statement("UPDATE t SET v = 0 WHERE id = 1")
    before = requests(meter)
    assert app.query_rows("SELECT k FROM other ORDER BY k") == [(1,), (2,)]
    assert requests(meter) == before, (
        "a write to t must not evict entries stamped only with other")


# ---------------------------------------------------------------------------
# Application transactions: bypass, staging, promote, rollback
# ---------------------------------------------------------------------------


def test_in_transaction_reads_bypass_cache_and_see_own_writes():
    meter, server = build_world()
    reader = phoenix_app(server)
    writer = phoenix_app(server)
    sql = "SELECT v FROM t WHERE id = 2"
    assert reader.query_rows(sql) == [(20,)]        # admits

    stmt = writer.manager.alloc_statement(writer.conn)
    writer.manager.exec_direct(stmt, "BEGIN TRANSACTION")
    writer.run_statement("UPDATE t SET v = 2222 WHERE id = 2")
    # Read-your-writes: the writer must see its own uncommitted value,
    # not the (still valid for everyone else) cached one.
    assert writer.query_rows(sql) == [(2222,)]
    # The uncommitted write invalidates nothing: the reader still hits
    # the pre-write value (it serializes before the writer's commit).
    before = requests(meter)
    assert reader.query_rows(sql) == [(20,)]
    assert requests(meter) == before

    writer.manager.exec_direct(stmt, "COMMIT")
    assert reader.query_rows(sql) == [(2222,)], (
        "reader saw a stale value after the writer committed")


def test_staged_result_promotes_at_commit():
    meter, server = build_world()
    app = phoenix_app(server)
    stmt = app.manager.alloc_statement(app.conn)
    app.manager.exec_direct(stmt, "BEGIN TRANSACTION")
    assert app.query_rows("SELECT v FROM t WHERE id = 6") == [(60,)]
    assert app.manager.stats["shared_cache_staged"] == 1
    assert hits(meter) == 0
    app.manager.exec_direct(stmt, "COMMIT")
    before = requests(meter)
    assert app.query_rows("SELECT v FROM t WHERE id = 6") == [(60,)]
    assert requests(meter) == before, (
        "the staged entry should have been promoted at COMMIT")
    assert hits(meter) == 1


def test_staged_result_dropped_when_txn_writes_its_read_table():
    """A transaction that reads then writes the same table must not
    publish the (possibly pre-write) staged read at COMMIT."""
    meter, server = build_world()
    app = phoenix_app(server)
    stmt = app.manager.alloc_statement(app.conn)
    app.manager.exec_direct(stmt, "BEGIN TRANSACTION")
    assert app.query_rows("SELECT v FROM t WHERE id = 7") == [(70,)]
    app.run_statement("UPDATE t SET v = 7777 WHERE id = 7")
    app.manager.exec_direct(stmt, "COMMIT")
    assert app.query_rows("SELECT v FROM t WHERE id = 7") == [(7777,)], (
        "COMMIT promoted a staged read the same transaction overwrote")


def test_rollback_discards_staged_results():
    meter, server = build_world()
    app = phoenix_app(server)
    stmt = app.manager.alloc_statement(app.conn)
    app.manager.exec_direct(stmt, "BEGIN TRANSACTION")
    app.query_rows("SELECT v FROM t WHERE id = 3")
    app.manager.exec_direct(stmt, "ROLLBACK")
    before = requests(meter)
    app.query_rows("SELECT v FROM t WHERE id = 3")
    assert requests(meter) > before, (
        "a rolled-back transaction's staged result must not be served")
    assert hits(meter) == 0


# ---------------------------------------------------------------------------
# Crash epochs: survive under sync commit, discard under async
# ---------------------------------------------------------------------------


def test_entries_survive_crash_under_synchronous_commit():
    meter, server = build_world()
    app = phoenix_app(server)
    sql = "SELECT id, v FROM t ORDER BY id"
    expected = app.query_rows(sql)
    server.crash()
    server.restart()
    before = hits(meter)
    assert app.query_rows(sql) == expected
    assert hits(meter) == before + 1, (
        "a sync-commit entry must survive the crash via revalidation")
    assert int(meter.counters.get("net.requests.VersionProbeRequest",
                                  0)) >= 1


def test_stale_entry_discarded_when_crash_loses_async_commits():
    meter, server = build_world(async_window=0.5)
    app = phoenix_app(server)
    sql = "SELECT v FROM t WHERE id = 4"
    app.query_rows(sql)
    server.crash()
    server.restart()
    before = hits(meter)
    app.query_rows(sql)
    assert hits(meter) == before, (
        "async-commit entries must all be discarded at crash "
        "revalidation — equal version counts may name different data")


def test_crash_during_open_transaction_discards_staged():
    meter, server = build_world()
    app = phoenix_app(server)
    stmt = app.manager.alloc_statement(app.conn)
    app.manager.exec_direct(stmt, "BEGIN TRANSACTION")
    app.query_rows("SELECT v FROM t WHERE id = 1")
    assert app.manager.stats["shared_cache_staged"] == 1
    server.crash()
    server.restart()
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        app.run_statement("UPDATE t SET v = 0 WHERE id = 1")
    before = hits(meter)
    app.query_rows("SELECT v FROM t WHERE id = 1")
    assert hits(meter) == before, (
        "the aborted transaction's staged result leaked into the cache")


# ---------------------------------------------------------------------------
# Knob off: the seed path never probes, never counts
# ---------------------------------------------------------------------------


def test_knob_off_means_no_cache_no_probe_no_counters():
    meter, server = build_world(result_cache=False)
    app = phoenix_app(server)
    assert app.manager._shared_cache is None
    app.query_rows("SELECT id, v FROM t ORDER BY id")
    app.query_rows("SELECT id, v FROM t ORDER BY id")
    assert not any(k.startswith("result_cache.") for k in meter.counters)
    assert not hasattr(meter, "_shared_result_cache")


# ---------------------------------------------------------------------------
# Cache mechanics (unit level)
# ---------------------------------------------------------------------------


def test_lru_eviction_at_capacity():
    meter = Meter(CostModel(result_cache_entries=2))
    cache = SharedResultCache.shared(meter)
    assert SharedResultCache.shared(meter) is cache  # world singleton
    cache.insert("SELECT 1", [], [(1,)], {"t": 0})
    cache.insert("SELECT 2", [], [(2,)], {"t": 0})
    cache.insert("SELECT 3", [], [(3,)], {"t": 0})
    assert len(cache) == 2
    assert cache.lookup("SELECT 1") is None
    assert cache.lookup("SELECT 3") is not None
    assert int(meter.counters["result_cache.evictions"]) == 1


def test_insert_refuses_oversized_and_unshareable_results():
    meter = Meter(CostModel(result_cache_entries=4,
                            result_cache_max_rows=2))
    cache = SharedResultCache.shared(meter)
    assert not cache.insert("SELECT a", [], [(1,), (2,), (3,)], {"t": 0})
    assert not cache.insert("SELECT b", [], [(1,)], None)
    assert cache.insert("SELECT c", [], [(1,)], {"t": 0})
    assert len(cache) == 1


def test_insert_refuses_stamps_behind_the_mirror():
    meter = Meter(CostModel(result_cache_entries=4))
    cache = SharedResultCache.shared(meter)
    cache.observe_committed({"t": 3}, epoch=0)
    assert not cache.insert("SELECT a", [], [(1,)], {"t": 2})
    assert cache.insert("SELECT a", [], [(1,)], {"t": 3})


def test_normalize_key_collapses_whitespace():
    assert normalize_key("SELECT  a\n FROM   t") == "SELECT a FROM t"


# ---------------------------------------------------------------------------
# Observability: sys_result_cache, per-table counters, latency component
# ---------------------------------------------------------------------------


def test_sys_result_cache_view_reports_per_table_traffic():
    meter, server = build_world()
    app = phoenix_app(server)
    app.query_rows("SELECT v FROM t WHERE id = 1")
    app.query_rows("SELECT v FROM t WHERE id = 1")
    app.run_statement("UPDATE t SET v = 0 WHERE id = 1")
    rows = dict(app.query_rows(
        "SELECT metric, value FROM sys_result_cache"))
    assert rows["result_cache.hits"] == 1
    assert rows["result_cache.hits.t"] == 1
    assert rows["result_cache.misses.t"] >= 1
    assert rows["result_cache.invalidations.t"] == 1
    metrics = dict(app.query_rows(
        "SELECT name, value FROM sys_metrics WHERE name LIKE "
        "'result_cache%'"))
    assert metrics, "sys_metrics must surface the result_cache counters"


def test_latency_classifies_cache_work():
    from repro.obs.latency import COMPONENTS, classify
    from repro.sim.costs import CLIENT_CPU

    assert "cache" in COMPONENTS
    for note in ("cache fetch", "cache scroll", "cache block fetch",
                 "result cache probe"):
        assert classify(CLIENT_CPU, note) == "cache"

"""Unit tests for server-side result sets and the output buffer."""

import pytest

from repro.server.results import ServerResultSet
from repro.sim.costs import SERVER_CPU, CostModel
from repro.sim.meter import Meter
from repro.types import Column, SqlType


def make_result(rows, row_bytes=100, buffer_bytes=1000,
                streamable=False, batch_bytes=None):
    costs = CostModel(output_buffer_bytes=buffer_bytes)
    if batch_bytes is not None:
        costs.client_fetch_batch_bytes = batch_bytes
    meter = Meter(costs)
    columns = [Column("pad", SqlType.CHAR, length=row_bytes)]
    result = ServerResultSet(1, columns, iter(rows), meter,
                             streamable=streamable)
    return result, meter


class TestOutputBuffer:
    def test_fill_stops_at_capacity(self):
        rows = [(f"r{i}",) for i in range(100)]
        result, _meter = make_result(rows, row_bytes=100,
                                     buffer_bytes=1000)
        result.fill_buffer()
        # 1000 bytes / 100 bytes per row -> ~10 rows buffered.
        assert result.buffered_rows == 10
        assert not result.done

    def test_fill_to_exhaustion(self):
        result, _meter = make_result([(1,), (2,)], buffer_bytes=10 ** 6)
        result.fill_buffer()
        assert result.done
        assert result.buffered_rows == 2

    def test_take_batch_drains_and_refills(self):
        rows = [(i,) for i in range(30)]
        result, _meter = make_result(rows, row_bytes=100,
                                     buffer_bytes=1000)
        result.fill_buffer()
        first = result.take_batch()
        assert len(first) == 10
        result.fill_buffer()
        second = result.take_batch()
        assert [r[0] for r in first + second] == list(range(20))

    def test_take_batch_partial(self):
        result, _meter = make_result([(i,) for i in range(10)],
                                     buffer_bytes=10 ** 6)
        result.fill_buffer()
        assert len(result.take_batch(3)) == 3
        assert result.buffered_rows == 7

    def test_exhausted(self):
        result, _meter = make_result([(1,)], buffer_bytes=10 ** 6)
        result.fill_buffer()
        assert not result.exhausted
        result.take_batch()
        assert result.exhausted

    def test_client_batch_rows_from_width(self):
        result, meter = make_result([], row_bytes=100)
        assert result.client_batch_rows == \
            meter.costs.client_fetch_batch_bytes // 100

    def test_pipelined_charges_per_row_cpu(self):
        rows = [("x",)] * 5
        result, meter = make_result(rows, row_bytes=100,
                                    buffer_bytes=10 ** 6)
        result.fill_buffer()
        expected = 5 * 100 * meter.costs.cpu_per_result_byte_seconds
        assert meter.now == pytest.approx(expected)

    def test_streamable_charges_per_page(self):
        rows = [("x",)] * 5
        result, meter = make_result(rows, row_bytes=100,
                                    buffer_bytes=10 ** 6,
                                    streamable=True)
        result.fill_buffer()
        # 5 rows fit one page: one page-send charge.
        assert meter.now == pytest.approx(meter.costs.page_send_seconds)

    def test_skip_rows_consumes_without_delivery(self):
        rows = [(i,) for i in range(50)]
        result, meter = make_result(rows, row_bytes=100,
                                    buffer_bytes=1000)
        result.fill_buffer()
        skipped = result.skip_rows(25)
        assert skipped == 25
        result.fill_buffer()
        batch = result.take_batch()
        assert batch[0] == (25,)

    def test_skip_past_end(self):
        result, _meter = make_result([(1,), (2,)], buffer_bytes=10 ** 6)
        result.fill_buffer()
        assert result.skip_rows(10) == 2
        assert result.exhausted

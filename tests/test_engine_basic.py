"""End-to-end engine tests: DDL, DML, SELECT through SQL text."""

import datetime

import pytest

from repro.errors import (
    ConstraintError,
    EngineError,
    SqlSyntaxError,
    TableNotFoundError,
    TransactionError,
)


@pytest.fixture
def people(run):
    run("CREATE TABLE people (id INT NOT NULL, name VARCHAR(20), "
        "age INT, PRIMARY KEY (id))")
    run("INSERT INTO people (id, name, age) VALUES "
        "(1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35)")


class TestDdl:
    def test_create_and_select_empty(self, run):
        run("CREATE TABLE t (a INT, b VARCHAR(10))")
        assert run("SELECT * FROM t") == []

    def test_create_duplicate_fails(self, run):
        run("CREATE TABLE t (a INT)")
        with pytest.raises(EngineError):
            run("CREATE TABLE t (a INT)")

    def test_drop_table(self, run):
        run("CREATE TABLE t (a INT)")
        run("DROP TABLE t")
        with pytest.raises(TableNotFoundError):
            run("SELECT * FROM t")

    def test_create_index(self, run, people):
        run("CREATE INDEX ix_age ON people (age)")
        assert run("SELECT name FROM people WHERE age = 25") == [("bob",)]

    def test_unique_index_enforced(self, run, people):
        run("CREATE UNIQUE INDEX ix_name ON people (name)")
        with pytest.raises(ConstraintError):
            run("INSERT INTO people (id, name, age) VALUES (4, 'alice', 1)")


class TestDml:
    def test_insert_returns_rowcount(self, run):
        run("CREATE TABLE t (a INT)")
        assert run("INSERT INTO t VALUES (1), (2), (3)") == 3

    def test_insert_partial_columns_null_fill(self, run):
        run("CREATE TABLE t (a INT, b VARCHAR(5))")
        run("INSERT INTO t (a) VALUES (1)")
        assert run("SELECT * FROM t") == [(1, None)]

    def test_insert_not_null_enforced(self, run):
        run("CREATE TABLE t (a INT NOT NULL, b INT)")
        with pytest.raises(EngineError):
            run("INSERT INTO t (b) VALUES (1)")

    def test_primary_key_duplicate_rejected(self, run, people):
        with pytest.raises(ConstraintError):
            run("INSERT INTO people (id, name, age) VALUES (1, 'dup', 1)")

    def test_update(self, run, people):
        assert run("UPDATE people SET age = age + 1 WHERE name = 'bob'") == 1
        assert run("SELECT age FROM people WHERE name = 'bob'") == [(26,)]

    def test_update_all_rows(self, run, people):
        assert run("UPDATE people SET age = 0") == 3

    def test_delete(self, run, people):
        assert run("DELETE FROM people WHERE age > 28") == 2
        assert run("SELECT name FROM people") == [("bob",)]

    def test_insert_select(self, run, people):
        run("CREATE TABLE names (n VARCHAR(20))")
        assert run("INSERT INTO names SELECT name FROM people "
                   "WHERE age >= 30") == 2
        assert sorted(run("SELECT * FROM names")) == [("alice",), ("carol",)]

    def test_insert_coerces_types(self, run):
        run("CREATE TABLE t (a FLOAT, d DATE)")
        run("INSERT INTO t VALUES (1, '2001-04-01')")
        rows = run("SELECT * FROM t")
        assert rows == [(1.0, datetime.date(2001, 4, 1))]


class TestSelect:
    def test_projection_and_aliases(self, run, people):
        rows = run("SELECT name AS who, age * 2 AS dbl FROM people "
                   "WHERE id = 1")
        assert rows == [("alice", 60)]

    def test_where_comparisons(self, run, people):
        assert len(run("SELECT * FROM people WHERE age BETWEEN 25 AND 30")) == 2
        assert len(run("SELECT * FROM people WHERE name LIKE 'a%'")) == 1
        assert len(run("SELECT * FROM people WHERE id IN (1, 3)")) == 2
        assert len(run("SELECT * FROM people WHERE NOT (age = 25)")) == 2

    def test_order_by(self, run, people):
        rows = run("SELECT name FROM people ORDER BY age DESC")
        assert rows == [("carol",), ("alice",), ("bob",)]

    def test_order_by_position(self, run, people):
        rows = run("SELECT name, age FROM people ORDER BY 2")
        assert [r[1] for r in rows] == [25, 30, 35]

    def test_top(self, run, people):
        rows = run("SELECT TOP 2 name FROM people ORDER BY age")
        assert rows == [("bob",), ("alice",)]

    def test_distinct(self, run):
        run("CREATE TABLE t (a INT)")
        run("INSERT INTO t VALUES (1), (1), (2)")
        assert sorted(run("SELECT DISTINCT a FROM t")) == [(1,), (2,)]

    def test_aggregates(self, run, people):
        rows = run("SELECT count(*), sum(age), min(age), max(age), avg(age) "
                   "FROM people")
        assert rows == [(3, 90, 25, 35, 30.0)]

    def test_aggregate_empty_input(self, run):
        run("CREATE TABLE t (a INT)")
        assert run("SELECT count(*), sum(a) FROM t") == [(0, None)]

    def test_group_by_having(self, run):
        run("CREATE TABLE sales (region VARCHAR(5), amount INT)")
        run("INSERT INTO sales VALUES ('e', 10), ('e', 20), ('w', 5)")
        rows = run("SELECT region, sum(amount) AS total FROM sales "
                   "GROUP BY region HAVING sum(amount) > 10 "
                   "ORDER BY total DESC")
        assert rows == [("e", 30)]

    def test_count_distinct(self, run):
        run("CREATE TABLE t (a INT)")
        run("INSERT INTO t VALUES (1), (1), (2), (NULL)")
        assert run("SELECT count(DISTINCT a) FROM t") == [(2,)]

    def test_join_implicit(self, run, people):
        run("CREATE TABLE pets (owner_id INT, pet VARCHAR(10))")
        run("INSERT INTO pets VALUES (1, 'cat'), (3, 'dog'), (3, 'fish')")
        rows = run("SELECT name, pet FROM people, pets "
                   "WHERE id = owner_id ORDER BY pet")
        assert rows == [("alice", "cat"), ("carol", "dog"),
                        ("carol", "fish")]

    def test_join_explicit_inner(self, run, people):
        run("CREATE TABLE pets (owner_id INT, pet VARCHAR(10))")
        run("INSERT INTO pets VALUES (1, 'cat')")
        rows = run("SELECT p.name, x.pet FROM people p "
                   "JOIN pets x ON p.id = x.owner_id")
        assert rows == [("alice", "cat")]

    def test_left_join_pads_nulls(self, run, people):
        run("CREATE TABLE pets (owner_id INT, pet VARCHAR(10))")
        run("INSERT INTO pets VALUES (1, 'cat')")
        rows = run("SELECT name, pet FROM people LEFT JOIN pets "
                   "ON id = owner_id ORDER BY name")
        assert rows == [("alice", "cat"), ("bob", None), ("carol", None)]

    def test_scalar_subquery(self, run, people):
        rows = run("SELECT name FROM people "
                   "WHERE age = (SELECT max(age) FROM people)")
        assert rows == [("carol",)]

    def test_in_subquery(self, run, people):
        run("CREATE TABLE vip (vid INT)")
        run("INSERT INTO vip VALUES (1), (3)")
        rows = run("SELECT name FROM people WHERE id IN "
                   "(SELECT vid FROM vip) ORDER BY name")
        assert rows == [("alice",), ("carol",)]

    def test_correlated_exists(self, run, people):
        run("CREATE TABLE pets (owner_id INT, pet VARCHAR(10))")
        run("INSERT INTO pets VALUES (1, 'cat'), (3, 'dog')")
        rows = run("SELECT name FROM people p WHERE EXISTS "
                   "(SELECT * FROM pets WHERE owner_id = p.id) "
                   "ORDER BY name")
        assert rows == [("alice",), ("carol",)]

    def test_derived_table(self, run, people):
        rows = run("SELECT avg(a) FROM "
                   "(SELECT age AS a FROM people WHERE age > 25) AS olds")
        assert rows == [(32.5,)]

    def test_case_when(self, run, people):
        rows = run("SELECT name, CASE WHEN age >= 30 THEN 'old' "
                   "ELSE 'young' END FROM people ORDER BY name")
        assert rows == [("alice", "old"), ("bob", "young"),
                        ("carol", "old")]

    def test_select_without_from(self, run):
        assert run("SELECT 1") == [(1,)]
        assert run("SELECT 1 + 2 AS three") == [(3,)]

    def test_where_0_eq_1_returns_nothing(self, run, people):
        assert run("SELECT * FROM people WHERE 0 = 1") == []

    def test_star_qualified(self, run, people):
        rows = run("SELECT p.* FROM people p WHERE p.id = 2")
        assert rows == [(2, "bob", 25)]

    def test_null_comparisons_are_unknown(self, run):
        run("CREATE TABLE t (a INT)")
        run("INSERT INTO t VALUES (1), (NULL)")
        assert run("SELECT * FROM t WHERE a = 1") == [(1,)]
        assert run("SELECT * FROM t WHERE a <> 1") == []
        assert run("SELECT * FROM t WHERE a IS NULL") == [(None,)]
        assert run("SELECT * FROM t WHERE a IS NOT NULL") == [(1,)]

    def test_string_functions(self, run):
        assert run("SELECT substring('phoenix', 1, 4)") == [("phoe",)]
        assert run("SELECT upper('abc') || lower('DEF')") == [("ABCdef",)]

    def test_date_arithmetic(self, run):
        rows = run("SELECT date '1998-12-01' - interval '90' day")
        assert rows == [(datetime.date(1998, 9, 2),)]
        rows = run("SELECT extract(year FROM date '1995-03-15')")
        assert rows == [(1995,)]


class TestTransactions:
    def test_commit_persists(self, run):
        run("CREATE TABLE t (a INT)")
        run("BEGIN TRANSACTION")
        run("INSERT INTO t VALUES (1)")
        run("COMMIT")
        assert run("SELECT * FROM t") == [(1,)]

    def test_rollback_undoes(self, run):
        run("CREATE TABLE t (a INT)")
        run("INSERT INTO t VALUES (0)")
        run("BEGIN TRANSACTION")
        run("INSERT INTO t VALUES (1)")
        run("UPDATE t SET a = 99 WHERE a = 0")
        run("ROLLBACK")
        assert run("SELECT * FROM t") == [(0,)]

    def test_rollback_undoes_delete(self, run):
        run("CREATE TABLE t (a INT)")
        run("INSERT INTO t VALUES (1), (2)")
        run("BEGIN TRANSACTION")
        run("DELETE FROM t")
        run("ROLLBACK")
        assert sorted(run("SELECT * FROM t")) == [(1,), (2,)]

    def test_commit_without_begin_fails(self, run):
        with pytest.raises(TransactionError):
            run("COMMIT")

    def test_rollback_restores_indexes(self, run, people):
        run("BEGIN TRANSACTION")
        run("DELETE FROM people WHERE id = 1")
        run("ROLLBACK")
        # Point lookup goes through the PK index.
        assert run("SELECT name FROM people WHERE id = 1") == [("alice",)]


class TestProcedures:
    def test_create_and_exec(self, run):
        run("CREATE TABLE t (a INT)")
        run("CREATE PROCEDURE fill (@v INT) AS INSERT INTO t VALUES (@v)")
        run("EXEC fill 7")
        assert run("SELECT * FROM t") == [(7,)]

    def test_proc_returns_last_result(self, run, people):
        run("CREATE PROCEDURE who (@age INT) AS "
            "SELECT name FROM people WHERE age > @age")
        assert run("EXEC who 28") == [("alice",), ("carol",)]

    def test_wrong_arity_fails(self, run):
        run("CREATE PROCEDURE p (@a INT) AS SELECT 1")
        with pytest.raises(EngineError):
            run("EXEC p 1, 2")


class TestTempTables:
    def test_temp_table_lifecycle(self, run):
        run("CREATE TABLE #probe (a INT)")
        run("INSERT INTO #probe VALUES (1)")
        assert run("SELECT * FROM #probe") == [(1,)]
        run("DROP TABLE #probe")
        with pytest.raises(TableNotFoundError):
            run("SELECT * FROM #probe")

    def test_temp_tables_are_per_session(self, engine, session):
        from repro.engine.session import EngineSession

        engine.execute("CREATE TABLE #t (a INT)", session)
        other = EngineSession(session_id=2)
        with pytest.raises(TableNotFoundError):
            engine.execute("SELECT * FROM #t", other)


class TestErrors:
    def test_syntax_error(self, run):
        with pytest.raises(SqlSyntaxError):
            run("SELEKT * FROM t")

    def test_unknown_column(self, run, people):
        from repro.errors import ColumnNotFoundError

        with pytest.raises(ColumnNotFoundError):
            run("SELECT ghost FROM people")

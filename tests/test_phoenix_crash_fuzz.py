"""Randomized crash injection: transparency holds at every request index.

A crash-and-restart is injected before the Nth protocol request, for N
swept across the whole range a workload generates.  Whatever N is, the
application must observe exactly the same results as a run with no
crashes — this is the paper's transparency claim, verified exhaustively
at every request boundary (including mid-persistence-pipeline points).

Every world here runs with tracing enabled, and after each fuzzed run
the recorded span tree must be *complete* (nothing left open — crashes
close their spans with an error status, they don't leak them) and
*well-nested* (the schema validator finds nothing) — crash timing must
never corrupt observability itself.
"""

import pytest

from repro.obs.validate import validate_spans

from repro.odbc.constants import SQL_NO_DATA, SQL_SUCCESS
from repro.phoenix.config import PhoenixConfig
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp


def build_world(cache_rows: int = 0, prefetch: bool = False,
                result_cache: bool = False, cost_mode: bool = False):
    costs = CostModel(output_buffer_bytes=16)
    if cost_mode:
        # The cost-based optimizer plans every statement from ANALYZE
        # statistics (collected below, once the ledger is loaded):
        # crashes must neither change a single observed value nor lose
        # the statistics across recovery.
        costs.optimizer_mode = "cost"
    if prefetch:
        # Pipelined result delivery on, with the output buffer kept tiny
        # so every result spans many wire batches: crashes land between
        # prefetch issue and consumption all over the sweep.
        costs.fetch_ahead_depth = 2
        costs.fetch_batch_max_bytes = 64
        costs.output_buffer_max_bytes = 64
        costs.persist_pipeline = True
    if result_cache:
        # The transaction-consistent shared result cache: crashes land
        # between admission, invalidation and the post-crash probe
        # revalidation; repeated statements in the workload mean hits
        # (and their survival across restarts) are actually exercised.
        costs.result_cache_entries = 64
    meter = Meter(costs)
    meter.obs.tracer.enable()
    # The latency ledger rides along on every fuzzed world: crash timing
    # must never break the accounting identity either.
    meter.enable_latency_ledger()
    server = DatabaseServer(meter=meter)
    setup = BenchmarkApp(server)
    setup.run_statement("CREATE TABLE ledger (k INT NOT NULL, v INT, "
                        "PRIMARY KEY (k))")
    setup.run_statement(
        "INSERT INTO ledger VALUES " + ", ".join(
            f"({i}, {i * 10})" for i in range(8)))
    if cost_mode:
        setup.run_statement("ANALYZE")
    config = PhoenixConfig(client_cache_rows=cache_rows)
    app = BenchmarkApp(server, use_phoenix=True, phoenix_config=config)
    return server, app


def run_query(app, label: str, sql: str, observed: list) -> None:
    stmt = app.manager.alloc_statement(app.conn)
    rc = app.manager.exec_direct(stmt, sql)
    observed.append((f"{label}-exec", rc))
    rc, row = app.manager.fetch(stmt)
    observed.append((label, row))


def workload(app) -> list:
    """A small mixed workload; returns everything the app observes."""
    observed = []
    stmt = app.manager.alloc_statement(app.conn)
    rc = app.manager.exec_direct(stmt,
                                 "SELECT k, v FROM ledger ORDER BY k")
    observed.append(("exec", rc))
    while True:
        rc, row = app.manager.fetch(stmt)
        if rc != SQL_SUCCESS:
            observed.append(("end", rc))
            break
        observed.append(("row", row))
    upd = app.manager.alloc_statement(app.conn)
    rc = app.manager.exec_direct(upd,
                                 "UPDATE ledger SET v = v + 1 WHERE k < 3")
    observed.append(("update", rc, app.manager.row_count(upd)))
    run_query(app, "sum", "SELECT sum(v) FROM ledger", observed)
    # Repeat the aggregate: with the shared result cache on this is a
    # hit — when a crash lands between the two executions the cache must
    # revalidate against the recovered server and still serve (or
    # recompute) the identical value, never a stale one.
    run_query(app, "sum-again", "SELECT sum(v) FROM ledger", observed)
    return observed


def reference_run(cache_rows: int = 0, prefetch: bool = False,
                  result_cache: bool = False,
                  cost_mode: bool = False) -> list:
    _server, app = build_world(cache_rows, prefetch, result_cache,
                               cost_mode)
    observed = workload(app)
    if cost_mode:
        # The sweep must actually plan through the cost path.
        assert app.meter.counters.get("optimizer.plans_costed", 0) > 0
    if prefetch:
        # The reference must actually exercise the pipeline, or the
        # sweep below would be fuzzing the seed path under a new name.
        assert app.meter.counters.get("prefetch_issued", 0) > 0
    if result_cache and cache_rows:
        # Likewise: the cache-on sweep must actually serve a hit.
        assert app.meter.counters.get("result_cache.hits", 0) > 0
    return observed


def count_requests(cache_rows: int = 0, prefetch: bool = False,
                   result_cache: bool = False,
                   cost_mode: bool = False) -> int:
    server, app = build_world(cache_rows, prefetch, result_cache,
                              cost_mode)
    start = app.network.requests_sent
    workload(app)
    return app.network.requests_sent - start


@pytest.mark.parametrize("cache_rows,prefetch,result_cache,cost_mode", [
    (0, False, False, False),
    (100, False, False, False),
    (0, True, False, False),
    (100, True, False, False),
    (100, False, True, False),
    (100, True, True, False),
    (0, False, False, True),
    (100, True, False, True),
], ids=["seed", "cache", "prefetch", "cache-prefetch",
        "shared-cache", "shared-cache-prefetch",
        "cost", "cost-cache-prefetch"])
def test_crash_at_every_request_boundary(cache_rows, prefetch,
                                         result_cache, cost_mode):
    """Crash transparency at every 2nd request boundary.

    With ``prefetch`` the same sweep runs with fetch-ahead, adaptive
    batching and the persist pipeline enabled — so crashes land between
    prefetch issue and consumption.  With ``result_cache`` the shared
    result cache rides along: crashes land between admission,
    invalidation, promotion and the probe revalidation, and a hit served
    after recovery must deliver exactly the committed values.  The
    invariant is unchanged *and* cross-checked against the seed
    configuration: Phoenix repositions to the last row actually
    delivered, nothing is delivered twice, and neither pipelining nor
    caching may alter a single observed value.  With ``cost_mode`` the
    cost-based optimizer plans everything from ANALYZE statistics — the
    observed values must still match the heuristic seed exactly, and the
    statistics themselves must survive every crash/recovery point.
    """
    expected = reference_run(cache_rows, prefetch, result_cache,
                             cost_mode)
    assert expected == reference_run(cache_rows), (
        "pipelined/cached/cost-planned delivery changed the crash-free "
        "output")
    total = count_requests(cache_rows, prefetch, result_cache, cost_mode)
    # Adaptive buffering legitimately collapses round trips, so the
    # pipelined sweep covers fewer boundaries — but never this few.
    assert total > (5 if prefetch else 10)
    # Sweep every 2nd boundary to keep runtime sane while still covering
    # every pipeline stage (requests alternate through all steps).
    for crash_at in range(1, total + 1, 2):
        server, app = build_world(cache_rows, prefetch, result_cache,
                                  cost_mode)
        fired = {"count": 0, "done": False}

        def injector(request, server=server, fired=fired,
                     crash_at=crash_at):
            fired["count"] += 1
            if fired["count"] == crash_at and not fired["done"]:
                fired["done"] = True
                server.crash()
                server.restart()

        app.network.fault_injector = injector
        observed = workload(app)
        assert observed == expected, (
            f"output diverged when crashing at request {crash_at} "
            f"(cache_rows={cache_rows}, prefetch={prefetch}, "
            f"result_cache={result_cache}, cost_mode={cost_mode})")
        if cost_mode:
            stats = server.engine.catalog.get_table_stats("ledger")
            assert stats and stats["row_count"] == 8, (
                f"ANALYZE statistics lost when crashing at request "
                f"{crash_at}")
        tracer = app.meter.obs.tracer
        assert tracer.open_span_count == 0, (
            f"spans leaked open when crashing at request {crash_at}")
        errors = validate_spans(tracer.finished)
        assert errors == [], (
            f"span tree invalid when crashing at request {crash_at}: "
            f"{errors[:3]}")
        ledger = app.meter.obs.latency
        assert ledger.closed > 0
        assert ledger.identity_violations == [], (
            f"latency accounting identity broken when crashing at "
            f"request {crash_at} (cache_rows={cache_rows}, "
            f"prefetch={prefetch}): {ledger.identity_violations[:3]}")


# ---------------------------------------------------------------------------
# Concurrent sessions under row-level locking
# ---------------------------------------------------------------------------

# A fixed interleaving of two explicit transactions per round, touching
# disjoint rows (so row granularity lets them overlap — the seed's
# no-wait table locks would abort one immediately).  Both sessions hold
# open transactions across several request boundaries, so the crash
# sweep below lands crashes while >=2 transactions are in flight.
_CONCURRENT_SCHEDULE = [
    (0, "BEGIN TRANSACTION"),
    (0, "UPDATE acct SET v = v + 1 WHERE k = 0"),
    (1, "BEGIN TRANSACTION"),
    (1, "UPDATE acct SET v = v + 2 WHERE k = 2"),
    (0, "SELECT v FROM acct WHERE k = 0"),
    (1, "UPDATE acct SET v = v + 3 WHERE k = 3"),
    (0, "UPDATE acct SET v = v + 4 WHERE k = 1"),
    (0, "COMMIT"),
    (1, "SELECT v FROM acct WHERE k = 2"),
    (1, "COMMIT"),
    # Second round with the roles swapped, so the *other* session is
    # the one mid-transaction while its peer begins and commits.
    (1, "BEGIN TRANSACTION"),
    (1, "UPDATE acct SET v = v + 5 WHERE k = 0"),
    (0, "BEGIN TRANSACTION"),
    (0, "UPDATE acct SET v = v + 6 WHERE k = 2"),
    (1, "UPDATE acct SET v = v + 7 WHERE k = 1"),
    (1, "COMMIT"),
    (0, "COMMIT"),
]


def build_concurrent_row_world():
    costs = CostModel(output_buffer_bytes=16, lock_granularity="row")
    meter = Meter(costs)
    meter.obs.tracer.enable()
    meter.enable_latency_ledger()
    server = DatabaseServer(meter=meter)
    setup = BenchmarkApp(server)
    setup.run_statement("CREATE TABLE acct (k INT NOT NULL, v INT, "
                        "PRIMARY KEY (k))")
    setup.run_statement("INSERT INTO acct VALUES (0, 100), (1, 200), "
                        "(2, 300), (3, 400)")
    apps = [BenchmarkApp(server, use_phoenix=True,
                         phoenix_config=PhoenixConfig(),
                         login=f"fuzz-{i}") for i in range(2)]
    return server, apps


def _exec_stmt(app, sql):
    """(ok, sqlstate, first_row) for one statement on one session."""
    manager = app.manager
    stmt = manager.alloc_statement(app.conn)
    rc = manager.exec_direct(stmt, sql)
    if rc != SQL_SUCCESS:
        diags = manager.get_diag(stmt)
        manager.free_statement(stmt)
        return False, (diags[-1].sqlstate if diags else "HY000"), None
    row = None
    if sql.lstrip().upper().startswith("SELECT"):
        rc, row = manager.fetch(stmt)
        if rc != SQL_SUCCESS:
            row = None
    manager.free_statement(stmt)
    return True, None, row


def _step_txn(app, prefix, sql):
    """Advance one session's open transaction by one statement.

    SQLSTATE 40001 means the transaction was aborted under the app —
    deadlock victim or server crash — so the app acknowledges with
    ROLLBACK and replays the transaction from its BEGIN (``prefix``),
    then retries ``sql``.  HYT00 (lock wait) retries the same statement.
    This is exactly the retry loop a real Phoenix client would run.
    """
    for _attempt in range(30):
        ok, state, row = _exec_stmt(app, sql)
        if ok:
            prefix.append(sql)
            return row
        if state == "HYT00":
            continue
        assert state == "40001", f"unexpected SQLSTATE {state} for {sql!r}"
        _exec_stmt(app, "ROLLBACK")  # tolerant: txn may already be gone
        replayed = True
        for prev in prefix:
            for _retry in range(10):
                ok, state, _ = _exec_stmt(app, prev)
                if ok or state != "HYT00":
                    break
            if not ok:
                assert state == "40001", (
                    f"unexpected SQLSTATE {state} replaying {prev!r}")
                _exec_stmt(app, "ROLLBACK")
                replayed = False
                break
        if not replayed:
            continue  # aborted again mid-replay: start the txn over
    else:
        raise AssertionError(f"transaction never completed at {sql!r}")


def run_concurrent_schedule(apps) -> list:
    """Drive the fixed interleaving; returns every SELECT observation."""
    observed = []
    prefixes = [[], []]
    for who, sql in _CONCURRENT_SCHEDULE:
        row = _step_txn(apps[who], prefixes[who], sql)
        if sql.lstrip().upper().startswith("SELECT"):
            observed.append((who, sql, row))
        if sql == "COMMIT":
            prefixes[who].clear()
    return observed


def final_contents(app) -> list:
    stmt = app.manager.alloc_statement(app.conn)
    rc = app.manager.exec_direct(stmt, "SELECT k, v FROM acct ORDER BY k")
    assert rc == SQL_SUCCESS
    rows = []
    while True:
        rc, row = app.manager.fetch(stmt)
        if rc != SQL_SUCCESS:
            break
        rows.append(row)
    app.manager.free_statement(stmt)
    return rows


def test_concurrent_row_sessions_survive_crash_at_every_boundary():
    """Phoenix transparency with two concurrent row-locking sessions.

    Two Phoenix sessions interleave explicit multi-statement
    transactions on disjoint rows under ``lock_granularity="row"`` —
    overlap the seed's table locks could never sustain.  A crash is
    injected at every shared request boundary, including points where
    both transactions are in flight; recovery must rebuild *both*
    sessions' state, each aborted transaction must surface SQLSTATE
    40001 exactly as documented, and after client-side retry-from-BEGIN
    the final table contents must be bit-identical to the no-crash run
    (every increment applied exactly once — never lost, never doubled).
    """
    # Reference: no crashes.  Verify the overlap is real — right after
    # both sessions have updated, two distinct transactions hold locks.
    server, apps = build_concurrent_row_world()
    prefixes = [[], []]
    for index, (who, sql) in enumerate(_CONCURRENT_SCHEDULE):
        _step_txn(apps[who], prefixes[who], sql)
        if sql == "COMMIT":
            prefixes[who].clear()
        if index == 3:
            holders = {txn for _t, _g, _k, _m, txn, _w
                       in server.engine.locks.snapshot()}
            assert len(holders) >= 2, (
                "expected two concurrent lock-holding transactions")
    expected_rows = final_contents(apps[0])
    assert expected_rows == [(0, 106), (1, 211), (2, 308), (3, 403)]
    expected_observed = [(0, "SELECT v FROM acct WHERE k = 0", (101,)),
                         (1, "SELECT v FROM acct WHERE k = 2", (302,))]

    # Count shared request boundaries across both sessions' networks.
    server, apps = build_concurrent_row_world()
    start = sum(app.network.requests_sent for app in apps)
    run_concurrent_schedule(apps)
    total = (sum(app.network.requests_sent for app in apps) - start)
    assert total > 20

    for crash_at in range(1, total + 1, 2):
        server, apps = build_concurrent_row_world()
        fired = {"count": 0, "done": False}

        def injector(request, server=server, fired=fired,
                     crash_at=crash_at):
            fired["count"] += 1
            if fired["count"] == crash_at and not fired["done"]:
                fired["done"] = True
                server.crash()
                server.restart()

        for app in apps:
            app.network.fault_injector = injector
        observed = run_concurrent_schedule(apps)
        assert observed == expected_observed, (
            f"in-transaction reads diverged when crashing at request "
            f"{crash_at}")
        rows = final_contents(apps[0])
        assert rows == expected_rows, (
            f"final contents diverged when crashing at request "
            f"{crash_at}: {rows}")
        tracer = apps[0].meter.obs.tracer
        assert tracer.open_span_count == 0, (
            f"spans leaked open when crashing at request {crash_at}")
        errors = validate_spans(tracer.finished)
        assert errors == [], (
            f"span tree invalid when crashing at request {crash_at}: "
            f"{errors[:3]}")

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.costs import CostModel
from repro.sim.meter import Meter


@pytest.fixture
def meter() -> Meter:
    return Meter(CostModel())


@pytest.fixture
def engine(meter) -> DatabaseEngine:
    return DatabaseEngine(meter=meter)


@pytest.fixture
def session() -> EngineSession:
    return EngineSession(session_id=1)


@pytest.fixture
def run(engine, session):
    """Execute SQL against the engine; returns rows, rowcount, or None."""

    def _run(sql: str, params: dict | None = None):
        result = engine.execute(sql, session, params)
        if result.kind == "rows":
            return result.fetch_all()
        if result.kind == "rowcount":
            return result.rowcount
        return None

    return _run

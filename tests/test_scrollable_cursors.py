"""Scrollable cursor tests: native static cursors and Phoenix's
persistent cursors (which also survive crashes)."""

import pytest

from repro.odbc.constants import (
    SQL_ATTR_CURSOR_TYPE,
    SQL_CURSOR_STATIC,
    SQL_ERROR,
    SQL_FETCH_ABSOLUTE,
    SQL_FETCH_FIRST,
    SQL_FETCH_LAST,
    SQL_FETCH_NEXT,
    SQL_FETCH_PRIOR,
    SQL_FETCH_RELATIVE,
    SQL_NO_DATA,
    SQL_SUCCESS,
)
from repro.odbc.driver import NativeDriver
from repro.odbc.driver_manager import DriverManager
from repro.phoenix.config import PhoenixConfig
from repro.phoenix.driver_manager import PhoenixDriverManager
from repro.server.network import SimulatedNetwork
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter


def build(kind: str):
    meter = Meter(CostModel(output_buffer_bytes=24))
    server = DatabaseServer(meter=meter)
    network = SimulatedNetwork(meter)
    driver = NativeDriver(server, network, meter)
    if kind == "native":
        manager = DriverManager(driver)
    elif kind == "phoenix":
        manager = PhoenixDriverManager(driver)
    else:
        manager = PhoenixDriverManager(
            driver, PhoenixConfig(client_cache_rows=100))
    env = manager.alloc_env()
    conn = manager.alloc_connection(env)
    assert manager.connect(conn, "app") == SQL_SUCCESS
    stmt = manager.alloc_statement(conn)
    manager.exec_direct(stmt, "CREATE TABLE t (n INT, PRIMARY KEY (n))")
    manager.exec_direct(stmt, "INSERT INTO t VALUES " + ", ".join(
        f"({i})" for i in range(10)))
    return server, manager, conn


def open_cursor(manager, conn, static=False):
    stmt = manager.alloc_statement(conn)
    if static:
        manager.set_stmt_attr(stmt, SQL_ATTR_CURSOR_TYPE,
                              SQL_CURSOR_STATIC)
    assert manager.exec_direct(stmt,
                               "SELECT n FROM t ORDER BY n") == SQL_SUCCESS
    return stmt


@pytest.mark.parametrize("kind,static", [
    ("native", True),       # native needs a static cursor to scroll
    ("phoenix", False),      # phoenix cursors scroll via the persisted table
    ("phoenix-cache", False),  # ... or the client cache
])
class TestScrolling:
    def test_all_orientations(self, kind, static):
        _server, manager, conn = build(kind)
        stmt = open_cursor(manager, conn, static)
        assert manager.fetch_scroll(stmt, SQL_FETCH_NEXT)[1] == (0,)
        assert manager.fetch_scroll(stmt, SQL_FETCH_NEXT)[1] == (1,)
        assert manager.fetch_scroll(stmt, SQL_FETCH_PRIOR)[1] == (0,)
        assert manager.fetch_scroll(stmt, SQL_FETCH_LAST)[1] == (9,)
        assert manager.fetch_scroll(stmt, SQL_FETCH_FIRST)[1] == (0,)
        assert manager.fetch_scroll(stmt, SQL_FETCH_ABSOLUTE, 5)[1] == (4,)
        assert manager.fetch_scroll(stmt, SQL_FETCH_RELATIVE, 3)[1] == (7,)
        assert manager.fetch_scroll(stmt, SQL_FETCH_RELATIVE, -2)[1] == (5,)

    def test_before_first_and_after_last(self, kind, static):
        _server, manager, conn = build(kind)
        stmt = open_cursor(manager, conn, static)
        rc, _row = manager.fetch_scroll(stmt, SQL_FETCH_PRIOR)
        assert rc == SQL_NO_DATA  # before first
        # NEXT from before-first returns the first row.
        assert manager.fetch_scroll(stmt, SQL_FETCH_NEXT)[1] == (0,)
        rc, _row = manager.fetch_scroll(stmt, SQL_FETCH_ABSOLUTE, 99)
        assert rc == SQL_NO_DATA  # after last
        # PRIOR from after-last returns the last row.
        assert manager.fetch_scroll(stmt, SQL_FETCH_PRIOR)[1] == (9,)

    def test_interleaves_with_plain_fetch(self, kind, static):
        _server, manager, conn = build(kind)
        stmt = open_cursor(manager, conn, static)
        assert manager.fetch(stmt)[1] == (0,)
        assert manager.fetch_scroll(stmt, SQL_FETCH_ABSOLUTE, 7)[1] == (6,)
        assert manager.fetch(stmt)[1] == (7,)


class TestForwardOnly:
    def test_native_forward_only_rejects_scroll(self):
        _server, manager, conn = build("native")
        stmt = open_cursor(manager, conn, static=False)
        rc, _row = manager.fetch_scroll(stmt, SQL_FETCH_PRIOR)
        assert rc == SQL_ERROR
        assert manager.get_diag(stmt)[0].sqlstate == "HY106"

    def test_forward_only_next_works(self):
        _server, manager, conn = build("native")
        stmt = open_cursor(manager, conn, static=False)
        assert manager.fetch_scroll(stmt, SQL_FETCH_NEXT)[1] == (0,)


class TestPersistentCursorRecovery:
    def test_scroll_across_crash(self):
        server, manager, conn = build("phoenix")
        stmt = open_cursor(manager, conn)
        assert manager.fetch_scroll(stmt, SQL_FETCH_ABSOLUTE, 6)[1] == (5,)
        server.crash()
        server.restart()
        # Backward scroll after the crash: recovery + reposition under
        # the covers, the application just keeps scrolling.
        assert manager.fetch_scroll(stmt, SQL_FETCH_PRIOR)[1] == (4,)
        assert manager.fetch_scroll(stmt, SQL_FETCH_LAST)[1] == (9,)
        assert manager.stats["recoveries"] >= 1

    def test_scroll_crash_between_every_move(self):
        server, manager, conn = build("phoenix")
        stmt = open_cursor(manager, conn)
        moves = [(SQL_FETCH_ABSOLUTE, 3, (2,)),
                 (SQL_FETCH_RELATIVE, 4, (6,)),
                 (SQL_FETCH_PRIOR, 0, (5,)),
                 (SQL_FETCH_FIRST, 0, (0,)),
                 (SQL_FETCH_LAST, 0, (9,))]
        for orientation, offset, expected in moves:
            server.crash()
            server.restart()
            rc, row = manager.fetch_scroll(stmt, orientation, offset)
            assert rc == SQL_SUCCESS
            assert row == expected

    def test_cached_cursor_scrolls_with_server_down(self):
        server, manager, conn = build("phoenix-cache")
        stmt = open_cursor(manager, conn)
        server.crash()  # never restarted
        assert manager.fetch_scroll(stmt, SQL_FETCH_LAST)[1] == (9,)
        assert manager.fetch_scroll(stmt, SQL_FETCH_FIRST)[1] == (0,)

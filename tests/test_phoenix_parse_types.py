"""Unit tests for request classification and the types module."""

import datetime

import pytest

from repro.errors import TypeMismatchError
from repro.phoenix.parse import RequestClass, classify_request
from repro.sim.meter import Meter
from repro.types import (
    Column,
    SqlType,
    coerce,
    infer_sql_type,
    row_width_bytes,
    value_width_bytes,
)


class TestClassifyRequest:
    @pytest.mark.parametrize("sql,expected", [
        ("SELECT * FROM t", RequestClass.RESULT_QUERY),
        ("  select 1", RequestClass.RESULT_QUERY),
        ("INSERT INTO t VALUES (1)", RequestClass.UPDATE),
        ("update t set a = 1", RequestClass.UPDATE),
        ("DELETE FROM t", RequestClass.UPDATE),
        ("CREATE TABLE t (a INT)", RequestClass.DDL),
        ("DROP TABLE t", RequestClass.DDL),
        ("EXEC p 1", RequestClass.EXEC),
        ("execute p", RequestClass.EXEC),
        ("BEGIN TRANSACTION", RequestClass.BEGIN),
        ("COMMIT", RequestClass.COMMIT),
        ("ROLLBACK", RequestClass.ROLLBACK),
        ("WHATEVER", RequestClass.OTHER),
        ("", RequestClass.OTHER),
    ])
    def test_classification(self, sql, expected):
        assert classify_request(sql) is expected

    def test_leading_comments_skipped(self):
        sql = "-- a comment\n/* another */ SELECT 1"
        assert classify_request(sql) is RequestClass.RESULT_QUERY

    def test_charges_parse_cost(self):
        meter = Meter()
        classify_request("SELECT 1", meter)
        assert meter.now == pytest.approx(
            meter.costs.client_parse_seconds)


class TestCoerce:
    def test_none_passes_through(self):
        assert coerce(None, SqlType.INTEGER) is None

    def test_int_conversions(self):
        assert coerce("42", SqlType.INTEGER) == 42
        assert coerce(3.9, SqlType.INTEGER) == 3
        assert coerce(True, SqlType.BIGINT) == 1

    def test_float_conversions(self):
        assert coerce("2.5", SqlType.FLOAT) == 2.5
        assert coerce(2, SqlType.DECIMAL) == 2.0

    def test_text_conversions(self):
        assert coerce(5, SqlType.VARCHAR) == "5"
        assert coerce(datetime.date(2001, 4, 2), SqlType.CHAR) \
            == "2001-04-02"

    def test_date_conversions(self):
        assert coerce("1999-12-31", SqlType.DATE) \
            == datetime.date(1999, 12, 31)
        today = datetime.date(2000, 1, 1)
        assert coerce(today, SqlType.DATE) is today

    def test_bad_coercions_raise(self):
        with pytest.raises(TypeMismatchError):
            coerce("not a number", SqlType.INTEGER)
        with pytest.raises(TypeMismatchError):
            coerce("never", SqlType.DATE)
        with pytest.raises(TypeMismatchError):
            coerce(object(), SqlType.VARCHAR)


class TestWidths:
    def test_fixed_widths(self):
        assert Column("a", SqlType.INTEGER).width_bytes == 4
        assert Column("a", SqlType.FLOAT).width_bytes == 8
        assert Column("a", SqlType.DATE).width_bytes == 4

    def test_char_uses_declared_length(self):
        assert Column("a", SqlType.CHAR, length=25).width_bytes == 25

    def test_varchar_estimates_half(self):
        assert Column("a", SqlType.VARCHAR, length=40).width_bytes == 20

    def test_row_width(self):
        columns = [Column("a", SqlType.INTEGER),
                   Column("b", SqlType.CHAR, length=10)]
        assert row_width_bytes(columns) == 14
        assert row_width_bytes([]) == 1

    def test_value_widths(self):
        assert value_width_bytes(None) == 1
        assert value_width_bytes(5) == 4
        assert value_width_bytes(2 ** 40) == 8
        assert value_width_bytes(1.5) == 8
        assert value_width_bytes("hello") == 5
        assert value_width_bytes(datetime.date(2000, 1, 1)) == 4

    def test_infer_sql_type(self):
        assert infer_sql_type(1) is SqlType.INTEGER
        assert infer_sql_type(1.5) is SqlType.FLOAT
        assert infer_sql_type("s") is SqlType.VARCHAR
        assert infer_sql_type(datetime.date(2000, 1, 1)) is SqlType.DATE

"""Crash fuzz: fuzzy checkpoints + truncation under straddling txns.

Extends the index-recovery fuzz (same seeded DML generator, same
harness) with the tentpole's failure modes:

* explicit transactions that *straddle* Begin/End checkpoint pairs — the
  active-transaction table in the End record (and the first-LSN table
  that pins truncation) must carry them through recovery;
* truncating fuzzy checkpoints taken mid-workload, so recovery starts
  from an archived-away log prefix boundary;
* crashes in the middle of an in-progress fuzzy checkpoint (Begin
  written, End never made it) — recovery must fall back to the previous
  complete checkpoint;
* crashes at *every* sampled prefix of all of the above, where the
  recovered heap, B-trees and (separately) Phoenix session state must
  equal a no-crash run of the committed prefix.
"""

import copy

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.wal.records import BeginCheckpointRecord, EndCheckpointRecord
from tests.test_index_recovery_fuzz import (
    DDL,
    CrashHarness,
    assert_indexes_match_heap,
    build_workload,
)

CONTENTS = "SELECT id, owner, bal, tag FROM acct"


def build_script(seed: int, ops: int) -> list[tuple[str, str | None]]:
    """Interleave the seeded DML with explicit transactions and fuzzy
    checkpoints such that every checkpoint lands *inside* an open
    transaction (the straddle the End record's tables must survive)."""
    statements = build_workload(seed, ops)
    script: list[tuple[str, str | None]] = []
    for i in range(0, len(statements), 6):
        chunk = statements[i:i + 6]
        autocommit, wrapped = chunk[:3], chunk[3:]
        for sql in autocommit:
            script.append(("sql", sql))
        if wrapped:
            script.append(("sql", "BEGIN TRANSACTION"))
            script.append(("sql", wrapped[0]))
            script.append(("checkpoint", None))  # straddles the txn
            for sql in wrapped[1:]:
                script.append(("sql", sql))
            script.append(("sql", "COMMIT"))
    return script


def committed_prefix(script, upto: int) -> list[str]:
    """Statements whose effects a crash after ``script[upto-1]`` must
    preserve: autocommit DML plus explicitly committed transactions."""
    oracle: list[str] = []
    txn: list[str] | None = None
    for kind, sql in script[:upto]:
        if kind != "sql":
            continue
        if sql == "BEGIN TRANSACTION":
            txn = []
        elif sql == "COMMIT":
            oracle.extend(txn or [])
            txn = None
        elif txn is not None:
            txn.append(sql)
        else:
            oracle.append(sql)
    return oracle


def run_oracle(script, upto: int):
    harness = CrashHarness()
    for sql in DDL:
        harness.run(sql)
    for sql in committed_prefix(script, upto):
        harness.run(sql)
    return sorted(harness.run(CONTENTS))


@pytest.mark.parametrize("seed", [1, 2])
def test_fuzzy_checkpoints_and_truncation_survive_crash_sweep(seed):
    script = build_script(seed, ops=24)
    for crash_at in range(1, len(script) + 1, 3):
        harness = CrashHarness()
        for sql in DDL:
            harness.run(sql)
        checkpoints = 0
        for kind, sql in script[:crash_at]:
            if kind == "checkpoint":
                harness.engine.fuzzy_checkpoint(truncate=True)
                checkpoints += 1
            else:
                harness.run(sql)
        truncated = harness.wal.truncated_lsn
        harness.crash()
        report = harness.restart()
        if checkpoints:
            assert report.fuzzy, f"crash point {crash_at} ignored the " \
                "fuzzy checkpoint"
            assert report.redo_start > truncated
        assert sorted(harness.run(CONTENTS)) == \
            run_oracle(script, crash_at), \
            f"seed {seed} crash point {crash_at} diverged from no-crash"
        assert assert_indexes_match_heap(harness.engine) >= 3


@pytest.mark.parametrize("seed", [3])
def test_crash_mid_fuzzy_checkpoint_falls_back(seed):
    """Begin written, some pages flushed, End lost: recovery must use
    the previous complete checkpoint and still match the oracle."""
    script = build_script(seed, ops=24)
    for crash_at in range(4, len(script) + 1, 5):
        harness = CrashHarness()
        for sql in DDL:
            harness.run(sql)
        for kind, sql in script[:crash_at]:
            if kind == "checkpoint":
                harness.engine.fuzzy_checkpoint(truncate=True)
            else:
                harness.run(sql)
        previous = harness.wal.last_complete_checkpoint()
        # An in-progress checkpoint: Begin reaches the durable log, one
        # dirty page is flushed, the End record never happens.
        harness.wal.append(BeginCheckpointRecord(txn_id=0))
        harness.wal.force(sync=False)
        dirty = sorted(harness.engine.buffer_pool.dirty_page_table())
        if dirty:
            harness.engine.buffer_pool.flush_page(*dirty[0])
        harness.crash()
        report = harness.restart()
        resolved = harness.wal.last_complete_checkpoint()
        if previous is not None:
            assert resolved is not None
            assert resolved.lsn == previous.lsn
            if isinstance(previous, EndCheckpointRecord):
                assert report.fuzzy
        assert sorted(harness.run(CONTENTS)) == \
            run_oracle(script, crash_at)
        assert assert_indexes_match_heap(harness.engine) >= 3


def test_worker_count_equivalence_with_straddling_txn():
    """The same crashed world recovered with 1 and 4 redo workers (and
    serially) yields identical contents — including a loser that
    straddled a truncating checkpoint."""
    script = build_script(seed=4, ops=24)
    harness = CrashHarness()
    for sql in DDL:
        harness.run(sql)
    for kind, sql in script[:-2]:  # stop before the final COMMIT
        if kind == "checkpoint":
            harness.engine.fuzzy_checkpoint(truncate=True)
        else:
            harness.run(sql)
    harness.wal.force()
    harness.crash()

    recovered = {}
    for workers in (0, 1, 4):
        disk = copy.deepcopy(harness.disk)
        wal = copy.deepcopy(harness.wal)
        meter = Meter(CostModel(redo_workers=workers))
        wal.attach_meter(meter)
        engine = DatabaseEngine.restart(disk, wal, meter=meter)
        session = EngineSession(session_id=7)
        recovered[workers] = sorted(
            engine.execute(CONTENTS, session).fetch_all())
    assert recovered[0] == recovered[1] == recovered[4]


def test_phoenix_session_survives_crash_with_fuzzy_knobs_on():
    """Phoenix crash transparency is orthogonal to the checkpoint
    regime: with cadence, truncation and parallel redo all on, a
    session crashed mid-fetch still drains the same rows."""
    from repro.odbc.constants import SQL_NO_DATA, SQL_SUCCESS
    from repro.server.server import DatabaseServer
    from repro.workloads.app import BenchmarkApp

    def run_leg(crash_mid_fetch: bool):
        costs = CostModel(checkpoint_interval_seconds=0.05,
                          checkpoint_truncate_log=True, redo_workers=2,
                          output_buffer_bytes=16)
        server = DatabaseServer(meter=Meter(costs))
        setup = BenchmarkApp(server)
        setup.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                            "PRIMARY KEY (k))")
        setup.run_statement("INSERT INTO t VALUES " + ", ".join(
            f"({i}, {i * i})" for i in range(12)))
        for i in range(30):
            setup.run_statement(
                f"UPDATE t SET v = v + 1 WHERE k = {i % 12}")
        app = BenchmarkApp(server, use_phoenix=True)
        statement = app.manager.alloc_statement(app.conn)
        assert app.manager.exec_direct(
            statement, "SELECT k, v FROM t ORDER BY k") == SQL_SUCCESS
        rows = []
        for _ in range(3):
            rc, row = app.manager.fetch(statement)
            assert rc == SQL_SUCCESS
            rows.append(row)
        if crash_mid_fetch:
            server.crash()
            server.restart()
            assert server.engine.last_recovery.fuzzy
        while True:
            rc, row = app.manager.fetch(statement)
            if rc == SQL_NO_DATA:
                break
            assert rc == SQL_SUCCESS
            rows.append(row)
        return rows

    assert run_leg(crash_mid_fetch=True) == run_leg(crash_mid_fetch=False)

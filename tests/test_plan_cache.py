"""Statement/plan cache tests: normalization, reuse, invalidation.

The cache layer is a host-time optimization only — every test here that
touches the meter asserts the cached path charges *exactly* what the
cold path charges.
"""

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.meter import Meter
from repro.sql.plan_cache import normalize_statement


# ---------------------------------------------------------------------------
# Auto-parameterization (normalize_statement)
# ---------------------------------------------------------------------------


class TestNormalization:
    def test_literals_collapse_to_one_template(self):
        a = normalize_statement("SELECT a FROM t WHERE b = 7")
        b = normalize_statement("SELECT a FROM t WHERE b = 99")
        assert a is not None and b is not None
        assert a.text == b.text
        assert a.params != b.params

    def test_values_and_signature_recorded(self):
        norm = normalize_statement(
            "SELECT a FROM t WHERE b = 7 AND s = 'x'")
        assert sorted(norm.params.values(), key=str) == [7, "x"]
        assert len(norm.signature) == 2

    def test_top_limit_literals_are_grammar(self):
        norm = normalize_statement("SELECT TOP 5 a FROM t WHERE b = 1")
        assert "TOP 5" in norm.text
        assert 5 not in norm.params.values()

    def test_order_by_position_kept(self):
        norm = normalize_statement(
            "SELECT a, b FROM t WHERE a = 3 ORDER BY 2")
        assert norm.text.rstrip().endswith("ORDER BY 2")

    def test_where_zero_equals_one_kept(self):
        # The Phoenix metadata probe relies on WHERE 0 = 1 pruning the
        # plan to nothing; parameterizing it would change plan shape.
        norm = normalize_statement("SELECT a FROM t WHERE 0 = 1")
        assert norm is None or "0 = 1" in norm.text

    def test_date_literal_becomes_one_date_param(self):
        import datetime

        norm = normalize_statement(
            "SELECT a FROM t WHERE d < date '2001-04-02'")
        assert datetime.date(2001, 4, 2) in norm.params.values()

    def test_ddl_not_normalized(self):
        assert normalize_statement("CREATE TABLE t (a INT)") is None
        assert normalize_statement("DROP TABLE t") is None

    def test_no_literals_means_none(self):
        assert normalize_statement("SELECT a FROM t") is None

    def test_fast_path_agrees_with_tokenizer_path(self, monkeypatch):
        """The regex fast path must extract the same parameters as the
        tokenizer path on every text it accepts (templates may differ in
        whitespace only — each path is self-consistent as a cache key)."""
        from repro.sql import plan_cache

        corpus = [
            "SELECT c_first, c_last FROM customer WHERE c_id = 42",
            "SELECT s_quantity FROM stock WHERE s_i_id = 7 AND s_w_id = 1",
            "SELECT a FROM t WHERE b IN (1, 2, 3)",
            "UPDATE stock SET s_quantity = 18 WHERE s_i_id = 7",
            "INSERT INTO history VALUES (1, 2, 'payment')",
            "DELETE FROM new_order WHERE no_o_id = 3001",
            "SELECT a FROM t WHERE s = 'abc' GROUP BY a HAVING COUNT(*) > 2",
            # Texts the fast path must decline (constant folding, grammar
            # literals, escapes) — the tokenizer path decides these.
            "SELECT a FROM t WHERE 1 = 1",
            "SELECT a FROM t WHERE (3 = 3)",
            "SELECT TOP 5 a FROM t WHERE b = 1",
            "SELECT a, b FROM t WHERE a = 3 ORDER BY 2",
            "SELECT a FROM t WHERE s = 'it''s'",
            "SELECT 1",
        ]
        fast_hits = 0
        for sql in corpus:
            fast = plan_cache._fast_normalize(sql)
            with monkeypatch.context() as m:
                m.setattr(plan_cache, "_fast_normalize", lambda s: None)
                slow = normalize_statement(sql)
            if fast is None:
                continue
            fast_hits += 1
            assert slow is not None, sql
            assert fast.values == slow.values, sql
            assert fast.signature == slow.signature, sql
        assert fast_hits >= 6  # the fast path actually covers the mix

    def test_fast_path_declines_constant_folding_texts(self):
        from repro.sql import plan_cache

        for sql in ["SELECT a FROM t WHERE 1 = 1",
                    "SELECT a FROM t WHERE (3 = 3)",
                    "SELECT a FROM t WHERE 0 = 1",
                    "SELECT TOP 5 a FROM t WHERE b = 1",
                    "SELECT a, b FROM t WHERE a = 3 ORDER BY 2",
                    "SELECT a FROM t WHERE s = 'it''s'",
                    "SELECT 1"]:
            assert plan_cache._fast_normalize(sql) is None, sql


# ---------------------------------------------------------------------------
# Plan reuse and invalidation (engine level)
# ---------------------------------------------------------------------------


@pytest.fixture
def cached_run(run, engine):
    """Like ``run``, returning (rows, hits-delta) per call."""

    def _go(sql):
        before = engine.cache_stats["plan_hits"]
        rows = run(sql)
        return rows, engine.cache_stats["plan_hits"] - before

    return _go


@pytest.fixture
def people(run):
    run("CREATE TABLE people (id INT NOT NULL, name VARCHAR(20), "
        "age INT, PRIMARY KEY (id))")
    run("INSERT INTO people (id, name, age) VALUES "
        "(1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35)")


class TestPlanReuse:
    def test_second_execution_hits(self, cached_run, people):
        _, hits = cached_run("SELECT name FROM people WHERE age > 20")
        assert hits == 0
        rows, hits = cached_run("SELECT name FROM people WHERE age > 20")
        assert hits == 1
        assert sorted(rows) == [("alice",), ("bob",), ("carol",)]

    def test_different_literals_share_plan(self, cached_run, people):
        rows, _ = cached_run("SELECT name FROM people WHERE id = 1")
        assert rows == [("alice",)]
        rows, hits = cached_run("SELECT name FROM people WHERE id = 3")
        assert hits == 1
        assert rows == [("carol",)]

    def test_cached_rows_match_cold_engine(self, people, run):
        cold = DatabaseEngine(meter=Meter(), plan_cache_capacity=0)
        cold_session = EngineSession(session_id=9)
        cold.execute("CREATE TABLE people (id INT NOT NULL, "
                     "name VARCHAR(20), age INT, PRIMARY KEY (id))",
                     cold_session)
        cold.execute("INSERT INTO people (id, name, age) VALUES "
                     "(1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35)",
                     cold_session)
        for key in (1, 2, 3, 2, 1):
            sql = f"SELECT name, age FROM people WHERE id = {key}"
            assert run(sql) == cold.execute(sql,
                                            cold_session).fetch_all()

    def test_param_type_change_replans(self, engine, session, people):
        # A VARCHAR(5) vs VARCHAR(6) literal is a different signature —
        # both must execute correctly, as separate plan entries.
        sql = "SELECT id FROM people WHERE name = {0!r}"
        assert engine.execute(sql.format("bob"), session).fetch_all() \
            == [(2,)]
        assert engine.execute(sql.format("carol"), session).fetch_all() \
            == [(3,)]

    def test_sys_plan_cache_view(self, run, people):
        run("SELECT * FROM people WHERE id = 1")
        run("SELECT * FROM people WHERE id = 2")
        stats = dict(run("SELECT metric, value FROM sys_plan_cache"))
        assert stats["plan_hits"] >= 1
        assert stats["plan_entries"] >= 1


class TestInvalidation:
    def test_create_table_bumps_version(self, run, engine):
        before = engine.catalog.schema_version
        run("CREATE TABLE t (a INT)")
        assert engine.catalog.version_of("t") == 1
        assert engine.catalog.schema_version > before

    def test_drop_table_evicts_plan(self, run, engine, people):
        run("SELECT name FROM people WHERE id = 1")
        # Two entries: the fixture INSERT (DML plans are cached too) and
        # this SELECT.
        assert len(engine._plan_cache) == 2
        run("DROP TABLE people")
        run("CREATE TABLE people (id INT, name VARCHAR(20), age INT)")
        run("INSERT INTO people VALUES (7, 'dora', 40)")
        before = engine.cache_stats["plan_invalidations"]
        assert run("SELECT name FROM people WHERE id = 7") == [("dora",)]
        assert engine.cache_stats["plan_invalidations"] == before + 1

    def test_create_index_invalidates_and_is_used(self, run, engine,
                                                  people):
        run("SELECT name FROM people WHERE age = 25")
        run("CREATE INDEX ix_age ON people (age)")
        before = engine.cache_stats["plan_invalidations"]
        assert run("SELECT name FROM people WHERE age = 25") == [("bob",)]
        assert engine.cache_stats["plan_invalidations"] == before + 1
        plan = run("EXPLAIN SELECT name FROM people WHERE age = 25")
        assert any("ix_age" in str(row) for row in plan)

    def test_create_index_replans_range_to_index_scan(self, run, engine,
                                                      people):
        # Cache the pre-index range plan, create the index, and check
        # the stale SeqScan plan is not served: the replan must pick
        # the ordered IndexRangeScan access path.
        run("SELECT name FROM people WHERE age > 20")
        run("CREATE INDEX ix_age ON people (age)")
        before = engine.cache_stats["plan_invalidations"]
        # No ORDER BY: the index path returns age order, not heap order.
        assert sorted(run("SELECT name FROM people WHERE age > 20")) == \
            [("alice",), ("bob",), ("carol",)]
        assert engine.cache_stats["plan_invalidations"] == before + 1
        plan = run("EXPLAIN SELECT name FROM people WHERE age > 20")
        assert any("IndexRangeScan" in str(row) for row in plan)

    def test_drop_index_invalidates_back_to_seq_scan(self, run, engine,
                                                     people):
        run("CREATE INDEX ix_age ON people (age)")
        plan = run("EXPLAIN SELECT name FROM people WHERE age = 25")
        assert any("ix_age" in str(row) for row in plan)
        run("SELECT name FROM people WHERE age = 25")
        run("DROP INDEX ix_age")
        before = engine.cache_stats["plan_invalidations"]
        assert run("SELECT name FROM people WHERE age = 25") == [("bob",)]
        assert engine.cache_stats["plan_invalidations"] == before + 1
        plan = run("EXPLAIN SELECT name FROM people WHERE age = 25")
        assert not any("ix_age" in str(row) for row in plan)
        assert any("SeqScan" in str(row) for row in plan)

    def test_unrelated_ddl_keeps_plan(self, run, engine, people):
        run("SELECT name FROM people WHERE id = 1")
        run("CREATE TABLE other (x INT)")
        before = engine.cache_stats["plan_hits"]
        run("SELECT name FROM people WHERE id = 1")
        assert engine.cache_stats["plan_hits"] == before + 1


class TestTempTablePlans:
    def test_temp_plan_is_session_scoped(self, engine, session, run):
        run("CREATE TABLE #scratch (a INT)")
        run("INSERT INTO #scratch VALUES (1), (2)")
        assert run("SELECT a FROM #scratch WHERE a = 1") == [(1,)]
        # INSERT and SELECT plans both live on the session, not the engine.
        assert len(session.plan_cache) == 2
        assert len(engine._plan_cache) == 0
        other = EngineSession(session_id=2)
        with pytest.raises(Exception):
            engine.execute("SELECT a FROM #scratch WHERE a = 1", other)

    def test_temp_plan_dies_with_session(self, engine, run, session):
        run("CREATE TABLE #scratch (a INT)")
        run("INSERT INTO #scratch VALUES (1)")
        run("SELECT a FROM #scratch WHERE a = 1")
        # A crash kills the session; the replacement session re-creates
        # the temp table and must not see the old session's plan.
        fresh = EngineSession(session_id=3)
        engine.execute("CREATE TABLE #scratch (a VARCHAR(5))", fresh)
        engine.execute("INSERT INTO #scratch VALUES ('x')", fresh)
        assert engine.execute("SELECT a FROM #scratch WHERE a = 'x'",
                              fresh).fetch_all() == [("x",)]
        assert len(fresh.plan_cache) == 2  # its INSERT and its SELECT

    def test_recreated_temp_table_invalidates(self, run, session):
        run("CREATE TABLE #scratch (a INT)")
        run("INSERT INTO #scratch VALUES (1)")
        assert run("SELECT a FROM #scratch WHERE a = 1") == [(1,)]
        run("DROP TABLE #scratch")
        run("CREATE TABLE #scratch (a INT)")
        run("INSERT INTO #scratch VALUES (5)")
        # Same text, same session — but the runtime object changed, so
        # the cached plan must not resurrect the dropped heap.
        assert run("SELECT a FROM #scratch WHERE a = 5") == [(5,)]


# ---------------------------------------------------------------------------
# Virtual-time fidelity
# ---------------------------------------------------------------------------


def _fresh_world(plan_cache_capacity):
    engine = DatabaseEngine(meter=Meter(),
                            plan_cache_capacity=plan_cache_capacity)
    session = EngineSession(session_id=1)
    return engine, session


class TestVirtualFidelity:
    def _load_tpch(self, engine, session):
        from repro.workloads.tpch.datagen import generate
        from repro.workloads.tpch.schema import create_schema, load

        create_schema(engine, session)
        load(engine, session, generate(scale=0.0005, seed=11))

    def test_tpch_query_cold_vs_cached_meter_totals(self):
        """Acceptance regression: one TPC-H query, cold vs. cached."""
        from repro.workloads.tpch.queries import QUERIES

        totals = {}
        for capacity in (0, 128):
            engine, session = _fresh_world(capacity)
            self._load_tpch(engine, session)
            marks = []
            rows = []
            for _ in range(3):  # cold, then (maybe) cached twice
                start = engine.meter.now
                rows.append(engine.execute(QUERIES[6],
                                           session).fetch_all())
                marks.append(engine.meter.now - start)
            totals[capacity] = marks
            assert rows[0] == rows[1] == rows[2]
        assert totals[0] == totals[128]

    def test_execute_script_charges_like_execute(self):
        """execute_script levies the same per-statement parse/plan CPU."""
        script = ("INSERT INTO t VALUES (1); "
                  "INSERT INTO t VALUES (2); "
                  "SELECT a FROM t WHERE a = 1")
        engine, session = _fresh_world(128)
        engine.execute("CREATE TABLE t (a INT)", session)
        start = engine.meter.now
        results = engine.execute_script(script, session)
        results[-1].fetch_all()
        script_seconds = engine.meter.now - start

        engine2, session2 = _fresh_world(128)
        engine2.execute("CREATE TABLE t (a INT)", session2)
        start = engine2.meter.now
        for sql in script.split("; "):
            result = engine2.execute(sql, session2)
            if result.kind == "rows":
                result.fetch_all()
        assert engine2.meter.now - start == script_seconds

"""Tracing must be free on the virtual clock: bit-identical outputs.

The instrumentation contract is that enabling tracing changes *nothing*
a simulated world computes — every span timestamp is a pure clock read
(:meth:`Meter.peek_now`), never a flush or a charge.  This runs the
wallclock TPC-C mix (the workload that exercises batching, plan caches,
persistence, the whole stack) twice — traced via ``REPRO_TRACE=1`` and
untraced — and requires the virtual clock and every counter to match to
the last bit.
"""

from repro.bench.experiments import DEFAULT_TPCC_SCALE, _wallclock_leg
from repro.obs import trace_enabled_from_env


def run_leg():
    return _wallclock_leg(True, DEFAULT_TPCC_SCALE, txns=15,
                          point_reads=40, persists=2, seed=7)


def test_virtual_time_bit_identical_traced_vs_untraced(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert not trace_enabled_from_env()
    (_host0, virtual0, _seg0, counters0, stats0, _exec0, _lat0,
     digest0) = run_leg()

    monkeypatch.setenv("REPRO_TRACE", "1")
    assert trace_enabled_from_env()
    (_host1, virtual1, _seg1, counters1, stats1, _exec1, _lat1,
     digest1) = run_leg()

    # Bit-identical, not approximately equal: observation is free.
    assert virtual0 == virtual1
    assert counters0 == counters1
    assert stats0 == stats1


def test_phoenix_crash_recovery_bit_identical(monkeypatch):
    """Same contract on the recovery path (spans bracket every phase)."""
    from repro.odbc.constants import SQL_SUCCESS
    from repro.server.server import DatabaseServer
    from repro.sim.costs import CostModel
    from repro.sim.meter import Meter
    from repro.workloads.app import BenchmarkApp

    def crash_run() -> tuple:
        meter = Meter(CostModel(output_buffer_bytes=16))
        server = DatabaseServer(meter=meter)
        setup = BenchmarkApp(server)
        setup.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                            "PRIMARY KEY (k))")
        setup.run_statement("INSERT INTO t VALUES " + ", ".join(
            f"({i}, {i})" for i in range(10)))
        app = BenchmarkApp(server, use_phoenix=True)
        statement = app.manager.alloc_statement(app.conn)
        assert app.manager.exec_direct(
            statement, "SELECT k, v FROM t ORDER BY k") == SQL_SUCCESS
        for _ in range(3):
            rc, _row = app.manager.fetch(statement)
            assert rc == SQL_SUCCESS
        server.crash()
        server.restart()
        rows = []
        while True:
            rc, row = app.manager.fetch(statement)
            if rc != SQL_SUCCESS:
                break
            rows.append(row)
        return (meter.now, rows, dict(meter.counters),
                app.manager.recovery_phase_breakdown)

    monkeypatch.delenv("REPRO_TRACE", raising=False)
    untraced = crash_run()
    monkeypatch.setenv("REPRO_TRACE", "1")
    traced = crash_run()
    assert untraced == traced

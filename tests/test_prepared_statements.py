"""Prepared-statement (SQLPrepare/SQLExecute) tests, both managers."""

import datetime

import pytest

from repro.odbc.constants import SQL_ERROR, SQL_NO_DATA, SQL_SUCCESS
from repro.odbc.driver import NativeDriver
from repro.odbc.driver_manager import DriverManager
from repro.phoenix.driver_manager import PhoenixDriverManager
from repro.phoenix.parse import inline_parameters
from repro.server.network import SimulatedNetwork
from repro.server.server import DatabaseServer
from repro.sim.meter import Meter


@pytest.fixture(params=["native", "phoenix"])
def manager_conn(request):
    meter = Meter()
    server = DatabaseServer(meter=meter)
    network = SimulatedNetwork(meter)
    driver = NativeDriver(server, network, meter)
    if request.param == "phoenix":
        manager = PhoenixDriverManager(driver)
    else:
        manager = DriverManager(driver)
    env = manager.alloc_env()
    conn = manager.alloc_connection(env)
    assert manager.connect(conn, "app") == SQL_SUCCESS
    stmt = manager.alloc_statement(conn)
    assert manager.exec_direct(
        stmt, "CREATE TABLE t (a INT, s VARCHAR(20))") == SQL_SUCCESS
    assert manager.exec_direct(
        stmt, "INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')"
    ) == SQL_SUCCESS
    return server, manager, conn


def fetch_all(manager, stmt):
    rows = []
    while True:
        rc, row = manager.fetch(stmt)
        if rc == SQL_NO_DATA:
            return rows
        assert rc == SQL_SUCCESS
        rows.append(row)


class TestPreparedStatements:
    def test_prepare_bind_execute(self, manager_conn):
        _server, manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        assert manager.prepare(
            stmt, "SELECT s FROM t WHERE a = @key") == SQL_SUCCESS
        assert manager.bind_param(stmt, "key", 2) == SQL_SUCCESS
        assert manager.execute(stmt) == SQL_SUCCESS
        assert fetch_all(manager, stmt) == [("two",)]

    def test_rebind_and_reexecute(self, manager_conn):
        _server, manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        manager.prepare(stmt, "SELECT s FROM t WHERE a = @key")
        for key, expected in ((1, "one"), (3, "three")):
            manager.bind_param(stmt, "key", key)
            assert manager.execute(stmt) == SQL_SUCCESS
            assert fetch_all(manager, stmt) == [(expected,)]

    def test_prepared_update(self, manager_conn):
        _server, manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        manager.prepare(stmt, "UPDATE t SET s = @label WHERE a = @key")
        manager.bind_param(stmt, "label", "uno")
        manager.bind_param(stmt, "key", 1)
        assert manager.execute(stmt) == SQL_SUCCESS
        assert manager.row_count(stmt) == 1
        check = manager.alloc_statement(conn)
        manager.exec_direct(check, "SELECT s FROM t WHERE a = 1")
        assert fetch_all(manager, check) == [("uno",)]

    def test_execute_without_prepare_fails(self, manager_conn):
        _server, manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        assert manager.execute(stmt) == SQL_ERROR
        assert manager.get_diag(stmt)[0].sqlstate == "HY010"

    def test_bind_without_prepare_fails(self, manager_conn):
        _server, manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        assert manager.bind_param(stmt, "x", 1) == SQL_ERROR

    def test_prepared_survives_crash_under_phoenix(self, manager_conn):
        server, manager, conn = manager_conn
        if not isinstance(manager, PhoenixDriverManager):
            pytest.skip("crash masking is Phoenix-only")
        stmt = manager.alloc_statement(conn)
        manager.prepare(stmt, "SELECT s FROM t WHERE a = @key")
        manager.bind_param(stmt, "key", 2)
        server.crash()
        server.restart()
        assert manager.execute(stmt) == SQL_SUCCESS
        assert fetch_all(manager, stmt) == [("two",)]


class TestPlanCacheThroughManagers:
    def test_reexecution_hits_plan_cache(self, manager_conn):
        server, manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        manager.prepare(stmt, "SELECT s FROM t WHERE a = @key")
        for key in (1, 2, 3):
            manager.bind_param(stmt, "key", key)
            assert manager.execute(stmt) == SQL_SUCCESS
            fetch_all(manager, stmt)
        assert server.engine.cache_stats["plan_hits"] >= 2

    def test_ddl_between_executions_stays_correct(self, manager_conn):
        server, manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        manager.prepare(stmt, "SELECT s FROM t WHERE a = @key")
        manager.bind_param(stmt, "key", 2)
        assert manager.execute(stmt) == SQL_SUCCESS
        assert fetch_all(manager, stmt) == [("two",)]
        ddl = manager.alloc_statement(conn)
        assert manager.exec_direct(
            ddl, "CREATE INDEX ix_a ON t (a)") == SQL_SUCCESS
        assert manager.execute(stmt) == SQL_SUCCESS
        assert fetch_all(manager, stmt) == [("two",)]
        assert server.engine.cache_stats["plan_invalidations"] >= 1

    def test_phoenix_probe_cache_counts_hits(self, manager_conn):
        server, manager, conn = manager_conn
        if not isinstance(manager, PhoenixDriverManager):
            pytest.skip("metadata probes are Phoenix-only")
        # client_cache_rows defaults to 0, so each SELECT is persisted
        # and starts with a WHERE 0=1 metadata probe; the second run of
        # the same text must be answered from the probe cache.
        for _ in range(2):
            stmt = manager.alloc_statement(conn)
            assert manager.exec_direct(
                stmt, "SELECT s FROM t ORDER BY a") == SQL_SUCCESS
            fetch_all(manager, stmt)
            manager.free_statement(stmt)
        assert server.meter.counters.get("meta_probe_hits", 0) >= 1


class TestInlineParameters:
    def test_values_rendered(self):
        sql = inline_parameters(
            "SELECT * FROM t WHERE a = @a AND s = @s AND d = @d "
            "AND n = @n",
            {"a": 5, "s": "it's", "d": datetime.date(2001, 4, 2),
             "n": None})
        assert "a = 5" in sql
        assert "s = 'it''s'" in sql
        assert "d = date '2001-04-02'" in sql
        assert "n = NULL" in sql

    def test_markers_in_strings_untouched(self):
        sql = inline_parameters("SELECT '@a' FROM t WHERE b = @a",
                                {"a": 1})
        assert sql == "SELECT '@a' FROM t WHERE b = 1"

    def test_unbound_markers_left_alone(self):
        assert inline_parameters("SELECT @other", {"a": 1}) \
            == "SELECT @other"

    def test_no_params_is_identity(self):
        assert inline_parameters("SELECT 1", {}) == "SELECT 1"

"""Unit tests for the SQL lexer and parser."""

import datetime

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_script, parse_statement
from repro.sql.tokens import TokenType


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT foo FROM Bar_9")
        kinds = [(t.type, t.value) for t in tokens[:-1]]
        assert kinds == [(TokenType.KEYWORD, "SELECT"),
                         (TokenType.IDENTIFIER, "foo"),
                         (TokenType.KEYWORD, "FROM"),
                         (TokenType.IDENTIFIER, "Bar_9")]

    def test_end_token(self):
        assert tokenize("")[-1].type is TokenType.END

    def test_string_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 .5 1e3 1.5E-2")[:-1]]
        assert values == ["1", "2.5", ".5", "1e3", "1.5E-2"]

    def test_operators(self):
        values = [t.value for t in tokenize("<= >= <> != || = < >")[:-1]]
        assert values == ["<=", ">=", "<>", "<>", "||", "=", "<", ">"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing\n/* block */ + 2")
        values = [t.value for t in tokens[:-1]]
        assert values == ["SELECT", "1", "+", "2"]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("/* forever")

    def test_parameters_and_temp_names(self):
        tokens = tokenize("@Param #temp")
        assert tokens[0].type is TokenType.PARAMETER
        assert tokens[0].value == "param"
        assert tokens[1].type is TokenType.IDENTIFIER
        assert tokens[1].value == "#temp"

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT ?")


class TestParserSelect:
    def test_simple(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStatement)
        assert len(stmt.select_items) == 2
        assert isinstance(stmt.from_items[0], ast.TableName)

    def test_top_distinct(self):
        stmt = parse_statement("SELECT TOP 5 DISTINCT a FROM t")
        assert stmt.top == 5
        assert stmt.distinct

    def test_limit_maps_to_top(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 3")
        assert stmt.top == 3

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t u")
        assert stmt.select_items[0].alias == "x"
        assert stmt.select_items[1].alias == "y"
        assert stmt.from_items[0].alias == "u"

    def test_group_having_order(self):
        stmt = parse_statement(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 1 "
            "ORDER BY 2 DESC, a")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_joins(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x "
            "LEFT OUTER JOIN c ON b.y = c.y")
        join = stmt.from_items[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "left"
        assert isinstance(join.left, ast.Join)
        assert join.left.kind == "inner"

    def test_right_join_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT * FROM a RIGHT JOIN b ON a.x = b.x")

    def test_derived_table(self):
        stmt = parse_statement("SELECT * FROM (SELECT 1 AS one) AS d")
        derived = stmt.from_items[0]
        assert isinstance(derived, ast.DerivedTable)
        assert derived.alias == "d"

    def test_subqueries(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE a IN (SELECT b FROM u) "
            "AND EXISTS (SELECT * FROM v) "
            "AND a > (SELECT max(b) FROM u)")
        conj = stmt.where
        assert isinstance(conj, ast.Binary) and conj.op == "AND"

    def test_case_expression(self):
        stmt = parse_statement(
            "SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' "
            "ELSE 'zero' END FROM t")
        case = stmt.select_items[0].expr
        assert isinstance(case, ast.CaseWhen)
        assert len(case.whens) == 2
        assert case.else_result is not None

    def test_date_and_interval(self):
        stmt = parse_statement(
            "SELECT date '1998-12-01' - interval '90' day")
        expr = stmt.select_items[0].expr
        assert isinstance(expr, ast.Binary)
        assert expr.left.value == datetime.date(1998, 12, 1)
        assert isinstance(expr.right, ast.Interval)
        assert expr.right.amount == 90

    def test_bad_date(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT date 'not-a-date'")

    def test_extract_and_substring(self):
        stmt = parse_statement(
            "SELECT extract(year FROM d), substring(s, 1, 2), "
            "substring(s FROM 3) FROM t")
        assert isinstance(stmt.select_items[0].expr, ast.Extract)
        sub = stmt.select_items[1].expr
        assert isinstance(sub, ast.FuncCall) and len(sub.args) == 3

    def test_count_star_and_distinct(self):
        stmt = parse_statement("SELECT count(*), count(DISTINCT a) FROM t")
        star = stmt.select_items[0].expr
        distinct = stmt.select_items[1].expr
        assert star.star
        assert distinct.distinct

    def test_between_not_in_like(self):
        stmt = parse_statement(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 2 "
            "AND b NOT IN (1, 2) AND c LIKE 'x%' AND d IS NOT NULL")
        assert stmt.where is not None

    def test_operator_precedence(self):
        stmt = parse_statement("SELECT 1 + 2 * 3")
        expr = stmt.select_items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT 1 SELECT 2")


class TestParserOther:
    def test_insert_values(self):
        stmt = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert stmt.table == "t"

    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT NOT NULL, b VARCHAR(10), "
            "c DECIMAL(12, 2), PRIMARY KEY (a))")
        assert [c.name for c in stmt.columns] == ["a", "b", "c"]
        assert not stmt.columns[0].nullable
        assert stmt.columns[1].length == 10
        assert stmt.primary_key == ["a"]

    def test_inline_primary_key(self):
        stmt = parse_statement("CREATE TABLE t (a INT PRIMARY KEY)")
        assert stmt.primary_key == ["a"]

    def test_create_index(self):
        stmt = parse_statement("CREATE UNIQUE INDEX ix ON t (a, b)")
        assert stmt.unique
        assert stmt.columns == ["a", "b"]

    def test_create_procedure_captures_body(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p (@x INT) AS INSERT INTO t VALUES (@x)")
        assert stmt.params == [("x", "INT")]
        assert stmt.body_sql == "INSERT INTO t VALUES (@x)"

    def test_exec(self):
        stmt = parse_statement("EXEC p 1, 'two'")
        assert stmt.name == "p"
        assert len(stmt.args) == 2

    def test_transactions(self):
        assert isinstance(parse_statement("BEGIN TRANSACTION"),
                          ast.BeginTransactionStatement)
        assert isinstance(parse_statement("COMMIT"), ast.CommitStatement)
        assert isinstance(parse_statement("ROLLBACK TRAN"),
                          ast.RollbackStatement)

    def test_script(self):
        stmts = parse_script("SELECT 1; SELECT 2;")
        assert len(stmts) == 2

    def test_unknown_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("GRANT stuff")

"""Tests for system tables and the Phoenix orphan-cleanup tool."""

import pytest

from repro.odbc.driver import NativeDriver
from repro.odbc.driver_manager import DriverManager
from repro.phoenix.config import PhoenixConfig
from repro.phoenix.driver_manager import PhoenixDriverManager
from repro.phoenix.maintenance import cleanup_orphans, live_op_keys
from repro.server.network import SimulatedNetwork
from repro.server.server import DatabaseServer
from repro.sim.meter import Meter


@pytest.fixture
def world():
    meter = Meter()
    server = DatabaseServer(meter=meter)
    network = SimulatedNetwork(meter)
    driver = NativeDriver(server, network, meter)
    return server, driver


def connect_phoenix(driver, config=None):
    manager = PhoenixDriverManager(driver, config)
    env = manager.alloc_env()
    conn = manager.alloc_connection(env)
    assert manager.connect(conn, "app") == 0
    return manager, conn


def native_run(driver, sql):
    manager = DriverManager(driver)
    env = manager.alloc_env()
    conn = manager.alloc_connection(env)
    manager.connect(conn, "setup")
    stmt = manager.alloc_statement(conn)
    rc = manager.exec_direct(stmt, sql)
    assert rc == 0, manager.get_diag(stmt)
    rows = []
    while True:
        rc, row = manager.fetch(stmt)
        if rc != 0:
            break
        rows.append(row)
    manager.disconnect(conn)
    return rows


class TestSystemTables:
    def test_sys_tables_lists_user_tables(self, world, run_setup=None):
        server, driver = world
        native_run(driver, "CREATE TABLE alpha (a INT)")
        native_run(driver, "CREATE TABLE beta (b INT)")
        names = [r[0] for r in native_run(
            driver, "SELECT name FROM sys_tables ORDER BY name")]
        assert "alpha" in names and "beta" in names

    def test_sys_columns(self, world):
        server, driver = world
        native_run(driver, "CREATE TABLE t (a INT, b VARCHAR(9))")
        rows = native_run(
            driver, "SELECT name, type_name, length FROM sys_columns "
                    "WHERE table_name = 't' ORDER BY position")
        assert rows == [("a", "INTEGER", 0), ("b", "VARCHAR", 9)]

    def test_sys_indexes_and_views(self, world):
        server, driver = world
        native_run(driver, "CREATE TABLE t (a INT)")
        native_run(driver, "CREATE UNIQUE INDEX ix ON t (a)")
        native_run(driver, "CREATE VIEW v AS SELECT a FROM t")
        indexes = native_run(driver,
                             "SELECT name, is_unique FROM sys_indexes")
        assert ("ix", 1) in indexes
        views = [r[0] for r in native_run(driver,
                                          "SELECT name FROM sys_views")]
        assert "v" in views

    def test_system_tables_are_read_only_snapshots(self, world):
        server, driver = world
        native_run(driver, "CREATE TABLE t (a INT)")
        before = native_run(driver, "SELECT count(*) FROM sys_tables")
        native_run(driver, "CREATE TABLE u (a INT)")
        after = native_run(driver, "SELECT count(*) FROM sys_tables")
        assert after[0][0] == before[0][0] + 1


class TestCleanup:
    def seed(self, driver):
        native_run(driver, "CREATE TABLE items (id INT, PRIMARY KEY (id))")
        native_run(driver,
                   "INSERT INTO items VALUES " + ", ".join(
                       f"({i})" for i in range(30)))

    def orphan_tables(self, server):
        return [n for n in server.engine.catalog.tables
                if n.startswith("phoenix_rs_")]

    def test_cleanup_removes_orphans(self, world):
        server, driver = world
        self.seed(driver)
        manager, conn = connect_phoenix(driver)
        stmt = manager.alloc_statement(conn)
        manager.exec_direct(stmt, "SELECT id FROM items")
        assert self.orphan_tables(server)
        # The client process "dies": nothing claims the table any more.
        report = cleanup_orphans(driver, managers=[])
        assert report.dropped_tables
        assert not self.orphan_tables(server)
        assert report.pruned_status_keys  # its status record went too

    def test_cleanup_spares_claimed_results(self, world):
        server, driver = world
        self.seed(driver)
        manager, conn = connect_phoenix(driver)
        stmt = manager.alloc_statement(conn)
        manager.exec_direct(stmt, "SELECT id FROM items ORDER BY id")
        rc, row = manager.fetch(stmt)
        assert rc == 0
        report = cleanup_orphans(driver, managers=[manager])
        assert report.dropped_tables == []
        # The live statement keeps working afterwards.
        rc, row = manager.fetch(stmt)
        assert rc == 0 and row == (1,)

    def test_live_op_keys(self, world):
        server, driver = world
        self.seed(driver)
        manager, conn = connect_phoenix(driver)
        stmt = manager.alloc_statement(conn)
        manager.exec_direct(stmt, "SELECT id FROM items")
        keys = live_op_keys([manager])
        assert len(keys) == 1

    def test_cleanup_on_empty_server(self, world):
        server, driver = world
        report = cleanup_orphans(driver, managers=[])
        assert report.total == 0

    def test_cleanup_handles_cached_mode(self, world):
        server, driver = world
        self.seed(driver)
        manager, conn = connect_phoenix(
            driver, PhoenixConfig(client_cache_rows=100))
        stmt = manager.alloc_statement(conn)
        manager.exec_direct(stmt, "SELECT id FROM items")
        # Cached results create no server tables; nothing to clean.
        report = cleanup_orphans(driver, managers=[])
        assert report.dropped_tables == []

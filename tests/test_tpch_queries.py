"""All 22 TPC-H queries parse, plan and execute on generated data."""

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.meter import Meter
from repro.workloads.tpch.datagen import generate, generate_refresh_orders
from repro.workloads.tpch.queries import QUERIES, q11, top_n_lineitem
from repro.workloads.tpch.schema import create_schema, load


@pytest.fixture(scope="module")
def tpch_engine():
    meter = Meter()
    engine = DatabaseEngine(meter=meter)
    session = EngineSession(session_id=1)
    create_schema(engine, session)
    load(engine, session, generate(scale=0.0005, seed=11))
    return engine, session


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_query_executes(tpch_engine, number):
    engine, session = tpch_engine
    result = engine.execute(QUERIES[number], session)
    rows = result.fetch_all()
    assert isinstance(rows, list)
    for row in rows:
        assert isinstance(row, tuple)


def test_q1_aggregates_are_consistent(tpch_engine):
    engine, session = tpch_engine
    rows = engine.execute(QUERIES[1], session).fetch_all()
    assert rows, "Q1 must produce groups"
    total = sum(r[-1] for r in rows)  # count_order per group
    scan = engine.execute(
        "SELECT count(*) FROM lineitem "
        "WHERE l_shipdate <= date '1998-12-01' - interval '90' day",
        session).fetch_all()
    assert total == scan[0][0]
    # Groups arrive ordered by (returnflag, linestatus).
    keys = [(r[0], r[1]) for r in rows]
    assert keys == sorted(keys)

    for row in rows:
        count = row[-1]
        assert row[6] == pytest.approx(row[2] / count)  # avg_qty
        assert row[7] == pytest.approx(row[3] / count)  # avg_price


def test_q6_matches_manual_computation(tpch_engine):
    engine, session = tpch_engine
    rows = engine.execute(
        "SELECT l_extendedprice, l_discount, l_quantity, l_shipdate "
        "FROM lineitem", session).fetch_all()
    import datetime

    lo = datetime.date(1994, 1, 1)
    hi = datetime.date(1995, 1, 1)
    expected = sum(
        price * disc
        for price, disc, qty, ship in rows
        if lo <= ship < hi and 0.05 <= disc <= 0.07 and qty < 24)
    got = engine.execute(QUERIES[6], session).fetch_all()[0][0]
    if expected == 0:
        assert got is None or got == 0
    else:
        assert got == pytest.approx(expected)


def test_q11_fraction_controls_result_size(tpch_engine):
    engine, session = tpch_engine
    small = engine.execute(q11(fraction=0.05), session).fetch_all()
    large = engine.execute(q11(fraction=0.0), session).fetch_all()
    assert len(small) <= len(large)
    # Descending by value.
    values = [r[1] for r in large]
    assert values == sorted(values, reverse=True)


def test_q13_counts_customers_without_orders(tpch_engine):
    engine, session = tpch_engine
    rows = engine.execute(QUERIES[13], session).fetch_all()
    total_customers = sum(r[1] for r in rows)
    count = engine.execute("SELECT count(*) FROM customer",
                           session).fetch_all()[0][0]
    assert total_customers == count


def test_top_n_lineitem(tpch_engine):
    engine, session = tpch_engine
    rows = engine.execute(top_n_lineitem(7), session).fetch_all()
    assert len(rows) == 7


def test_refresh_generator_continues_keys(tpch_engine):
    data = generate(scale=0.0005, seed=11)
    before = data.max_orderkey
    orders, lineitems = generate_refresh_orders(data, count=10)
    assert len(orders) == 10
    assert all(o[0] > before for o in orders)
    assert data.max_orderkey == max(o[0] for o in orders)
    order_keys = {o[0] for o in orders}
    assert {l[0] for l in lineitems} == order_keys

"""Tests for the server, network, native driver and driver manager."""

import pytest

from repro.errors import ConnectionLostError, ServerDownError
from repro.odbc.constants import SQL_ERROR, SQL_NO_DATA, SQL_SUCCESS
from repro.odbc.driver import NativeDriver
from repro.odbc.driver_manager import DriverManager
from repro.server.network import SimulatedNetwork
from repro.server.protocol import ConnectRequest, ExecuteRequest, PingRequest
from repro.server.server import DatabaseServer
from repro.sim.meter import Meter


@pytest.fixture
def world():
    meter = Meter()
    server = DatabaseServer(meter=meter)
    network = SimulatedNetwork(meter)
    driver = NativeDriver(server, network, meter)
    manager = DriverManager(driver)
    return meter, server, network, manager


@pytest.fixture
def connected(world):
    meter, server, network, manager = world
    env = manager.alloc_env()
    conn = manager.alloc_connection(env)
    assert manager.connect(conn, "app") == SQL_SUCCESS
    return meter, server, network, manager, conn


def exec_ok(manager, conn, sql):
    stmt = manager.alloc_statement(conn)
    rc = manager.exec_direct(stmt, sql)
    assert rc == SQL_SUCCESS, manager.get_diag(stmt)
    return stmt


def fetch_all(manager, stmt):
    rows = []
    while True:
        rc, row = manager.fetch(stmt)
        if rc == SQL_NO_DATA:
            return rows
        assert rc == SQL_SUCCESS
        rows.append(row)


class TestServerProtocol:
    def test_ping(self, world):
        _meter, server, network, _manager = world
        assert network.call(server, PingRequest()).alive

    def test_connect_creates_session(self, world):
        _meter, server, network, _manager = world
        response = network.call(server, ConnectRequest(login="x"))
        assert response.session_token > 0
        assert server.open_session_count() == 1

    def test_execute_unknown_session_raises(self, world):
        _meter, server, network, _manager = world
        with pytest.raises(ConnectionLostError):
            network.call(server, ExecuteRequest(session_token=999,
                                                sql="SELECT 1"))

    def test_down_server_refuses(self, world):
        _meter, server, network, _manager = world
        server.crash()
        with pytest.raises(ServerDownError):
            network.call(server, PingRequest())

    def test_restart_answers_again(self, world):
        _meter, server, network, _manager = world
        server.crash()
        server.restart()
        assert network.call(server, PingRequest()).alive

    def test_crash_destroys_sessions(self, world):
        _meter, server, network, _manager = world
        token = network.call(server, ConnectRequest()).session_token
        server.crash()
        server.restart()
        with pytest.raises(ConnectionLostError):
            network.call(server, ExecuteRequest(session_token=token,
                                                sql="SELECT 1"))


class TestDriverManager:
    def test_query_roundtrip(self, connected):
        _meter, _server, _network, manager, conn = connected
        exec_ok(manager, conn, "CREATE TABLE t (a INT)")
        exec_ok(manager, conn, "INSERT INTO t VALUES (1), (2)")
        stmt = exec_ok(manager, conn, "SELECT a FROM t ORDER BY a")
        assert fetch_all(manager, stmt) == [(1,), (2,)]

    def test_rowcount(self, connected):
        _meter, _server, _network, manager, conn = connected
        exec_ok(manager, conn, "CREATE TABLE t (a INT)")
        stmt = exec_ok(manager, conn, "INSERT INTO t VALUES (1), (2), (3)")
        assert manager.row_count(stmt) == 3

    def test_describe_col(self, connected):
        _meter, _server, _network, manager, conn = connected
        exec_ok(manager, conn, "CREATE TABLE t (a INT, b VARCHAR(7))")
        stmt = exec_ok(manager, conn, "SELECT * FROM t")
        assert manager.num_result_cols(stmt) == 2
        name, _sql_type, length = manager.describe_col(stmt, 2)
        assert name == "b"
        assert length == 7

    def test_error_sets_diagnostics(self, connected):
        _meter, _server, _network, manager, conn = connected
        stmt = manager.alloc_statement(conn)
        rc = manager.exec_direct(stmt, "SELECT * FROM missing_table")
        assert rc == SQL_ERROR
        diags = manager.get_diag(stmt)
        assert diags and "missing_table" in diags[0].message

    def test_crash_surfaces_comm_link_failure(self, connected):
        _meter, server, _network, manager, conn = connected
        server.crash()
        stmt = manager.alloc_statement(conn)
        rc = manager.exec_direct(stmt, "SELECT 1")
        assert rc == SQL_ERROR
        assert manager.get_diag(stmt)[0].sqlstate == "08S01"

    def test_session_lost_after_restart(self, connected):
        _meter, server, _network, manager, conn = connected
        server.crash()
        server.restart()
        stmt = manager.alloc_statement(conn)
        rc = manager.exec_direct(stmt, "SELECT 1")
        assert rc == SQL_ERROR
        assert manager.get_diag(stmt)[0].sqlstate == "08003"

    def test_fetch_block(self, connected):
        _meter, _server, _network, manager, conn = connected
        exec_ok(manager, conn, "CREATE TABLE t (a INT)")
        exec_ok(manager, conn, "INSERT INTO t VALUES (1), (2), (3)")
        stmt = exec_ok(manager, conn, "SELECT a FROM t ORDER BY a")
        rc, rows = manager.fetch_block(stmt, 10)
        assert rc == SQL_SUCCESS
        assert rows == [(1,), (2,), (3,)]
        rc, rows = manager.fetch_block(stmt, 10)
        assert rc == SQL_NO_DATA

    def test_durable_data_survives_crash(self, connected):
        _meter, server, _network, manager, conn = connected
        exec_ok(manager, conn, "CREATE TABLE t (a INT)")
        exec_ok(manager, conn, "INSERT INTO t VALUES (42)")
        server.crash()
        server.restart()
        env = manager.alloc_env()
        conn2 = manager.alloc_connection(env)
        manager.connect(conn2, "app")
        stmt = exec_ok(manager, conn2, "SELECT a FROM t")
        assert fetch_all(manager, stmt) == [(42,)]

    def test_temp_table_gone_after_reconnect(self, connected):
        """Temp tables die with the session — Phoenix's crash probe."""
        _meter, server, _network, manager, conn = connected
        exec_ok(manager, conn, "CREATE TABLE #probe (a INT)")
        server.crash()
        server.restart()
        env = manager.alloc_env()
        conn2 = manager.alloc_connection(env)
        manager.connect(conn2, "app")
        stmt = manager.alloc_statement(conn2)
        rc = manager.exec_direct(stmt, "SELECT * FROM #probe")
        assert rc == SQL_ERROR


class TestOutputBuffer:
    def test_large_result_delivered_in_batches(self, connected):
        meter, server, _network, manager, conn = connected
        exec_ok(manager, conn, "CREATE TABLE big (a INT, pad CHAR(150))")
        for chunk in range(10):
            values = ", ".join(f"({chunk * 100 + i}, 'x')"
                               for i in range(100))
            exec_ok(manager, conn, f"INSERT INTO big VALUES {values}")
        stmt = exec_ok(manager, conn, "SELECT * FROM big")
        # The first batch fits the 75 KB output buffer; more rows exist.
        assert not stmt.result.done
        rows = fetch_all(manager, stmt)
        assert len(rows) == 1000

    def test_execute_time_flat_once_buffer_full(self, connected):
        """Table 3's artifact: response time stops growing at buffer size."""
        meter, server, _network, manager, conn = connected
        exec_ok(manager, conn, "CREATE TABLE big (a INT, pad CHAR(150))")
        for chunk in range(20):
            values = ", ".join(f"({chunk * 100 + i}, 'x')"
                               for i in range(100))
            exec_ok(manager, conn, f"INSERT INTO big VALUES {values}")

        def execute_cost(n):
            start = meter.now
            stmt = manager.alloc_statement(conn)
            assert manager.exec_direct(
                stmt, f"SELECT TOP {n} * FROM big") == SQL_SUCCESS
            elapsed = meter.now - start
            manager.close_cursor(stmt)
            return elapsed

        t_600 = execute_cost(600)
        t_2000 = execute_cost(2000)
        # Both exceed the ~480-row buffer: response time is ~flat.
        assert t_2000 == pytest.approx(t_600, rel=0.15)
        # While below the buffer, response time grows with N.
        assert execute_cost(100) < 0.6 * t_600

"""Server protocol details: advance, options, disconnect, wire sizing."""

import pytest

from repro.errors import ConnectionLostError
from repro.server.network import SimulatedNetwork
from repro.server.protocol import (
    AdvanceRequest,
    CloseStatementRequest,
    ConnectRequest,
    DisconnectRequest,
    ExecuteRequest,
    FetchRequest,
    PingRequest,
    SetOptionRequest,
)
from repro.server.server import DatabaseServer
from repro.sim.costs import NETWORK, CostModel
from repro.sim.meter import Meter


@pytest.fixture
def world():
    meter = Meter(CostModel(output_buffer_bytes=48,
                            client_fetch_batch_bytes=16))
    server = DatabaseServer(meter=meter)
    network = SimulatedNetwork(meter)
    token = network.call(server, ConnectRequest(login="t")).session_token
    network.call(server, ExecuteRequest(
        session_token=token, sql="CREATE TABLE t (a INT)"))
    values = ", ".join(f"({i})" for i in range(20))
    network.call(server, ExecuteRequest(
        session_token=token, sql=f"INSERT INTO t VALUES {values}"))
    return meter, server, network, token


def open_result(network, server, token):
    return network.call(server, ExecuteRequest(
        session_token=token, sql="SELECT a FROM t ORDER BY a"))


class TestExecuteFetch:
    def test_execute_returns_first_batch_only(self, world):
        _meter, server, network, token = world
        response = open_result(network, server, token)
        assert response.kind == "rows"
        assert not response.done
        assert 0 < len(response.rows) < 20

    def test_fetch_continues_in_order(self, world):
        _meter, server, network, token = world
        response = open_result(network, server, token)
        statement_id = response.statement_id
        rows = list(response.rows)
        done = response.done
        while not done:
            batch = network.call(server, FetchRequest(
                session_token=token, statement_id=statement_id))
            rows.extend(batch.rows)
            done = batch.done
        assert rows == [(i,) for i in range(20)]

    def test_fetch_respects_max_rows(self, world):
        _meter, server, network, token = world
        response = open_result(network, server, token)
        batch = network.call(server, FetchRequest(
            session_token=token, statement_id=response.statement_id,
            max_rows=1))
        assert len(batch.rows) == 1

    def test_fetch_unknown_statement_is_done(self, world):
        _meter, server, network, token = world
        response = network.call(server, FetchRequest(
            session_token=token, statement_id=999))
        assert response.done and response.rows == []

    def test_close_statement_frees_result(self, world):
        _meter, server, network, token = world
        response = open_result(network, server, token)
        network.call(server, CloseStatementRequest(
            session_token=token, statement_id=response.statement_id))
        again = network.call(server, FetchRequest(
            session_token=token, statement_id=response.statement_id))
        assert again.done


class TestAdvance:
    def test_advance_skips_without_shipping(self, world):
        meter, server, network, token = world
        response = open_result(network, server, token)
        consumed = len(response.rows)
        reply = network.call(server, AdvanceRequest(
            session_token=token, statement_id=response.statement_id,
            count=10))
        assert reply.skipped == 10
        batch = network.call(server, FetchRequest(
            session_token=token, statement_id=response.statement_id))
        assert batch.rows[0] == (consumed + 10,)

    def test_advance_past_end(self, world):
        _meter, server, network, token = world
        response = open_result(network, server, token)
        reply = network.call(server, AdvanceRequest(
            session_token=token, statement_id=response.statement_id,
            count=1000))
        assert reply.done
        assert reply.skipped <= 20


class TestSessionManagement:
    def test_set_option_lands_on_session(self, world):
        _meter, server, network, token = world
        network.call(server, SetOptionRequest(
            session_token=token, name="lock_timeout", value=5))
        session = server._sessions[token].engine_session
        assert session.get_option("lock_timeout") == 5

    def test_disconnect_aborts_open_transaction(self, world):
        _meter, server, network, token = world
        network.call(server, ExecuteRequest(session_token=token,
                                            sql="BEGIN TRANSACTION"))
        network.call(server, ExecuteRequest(
            session_token=token, sql="INSERT INTO t VALUES (999)"))
        network.call(server, DisconnectRequest(session_token=token))
        token2 = network.call(server, ConnectRequest()).session_token
        response = network.call(server, ExecuteRequest(
            session_token=token2,
            sql="SELECT count(*) FROM t WHERE a = 999"))
        assert response.rows == [(0,)]

    def test_disconnect_twice_is_harmless(self, world):
        _meter, server, network, token = world
        network.call(server, DisconnectRequest(session_token=token))
        network.call(server, DisconnectRequest(session_token=token))
        with pytest.raises(ConnectionLostError):
            network.call(server, ExecuteRequest(session_token=token,
                                                sql="SELECT 1"))


class TestWireAccounting:
    def test_bigger_payloads_cost_more_network_time(self, world):
        meter, server, network, token = world
        before = meter.seconds_on(NETWORK)
        with meter.request("small"):
            network.call(server, PingRequest())
        small = meter.seconds_on(NETWORK) - before
        before = meter.seconds_on(NETWORK)
        with meter.request("large"):
            network.call(server, ExecuteRequest(
                session_token=token, sql="SELECT a FROM t " + " " * 5000))
        large = meter.seconds_on(NETWORK) - before
        assert large > small

    def test_request_wire_bytes(self):
        tiny = ExecuteRequest(sql="SELECT 1").wire_bytes()
        big = ExecuteRequest(sql="SELECT 1" + " " * 1000).wire_bytes()
        assert big > tiny
        assert ConnectRequest(options={"a": 1}).wire_bytes() \
            > ConnectRequest().wire_bytes()

"""Index-aware planning: range scans, index-only scans, sort elimination,
and the WAL asynchronous-commit window those query savings pair with.

The planner rules under test (see planner.py):

* equality + range conjuncts on a key prefix become ``IndexRangeScan``
  (full-width pure equality stays ``IndexSeek``/``PointLookup``);
* a query that touches only indexed columns runs *index-only* — rows are
  synthesized from B-tree keys and the heap is never read;
* ``ORDER BY`` matching the scan's key order (after any equality-pinned
  prefix) drops the ``Sort`` operator outright.

Asynchronous commit lives in ``wal/log.py``: a commit force arriving
inside the open window is acked without flushing (bounded durability
loss, documented in ``TransactionManager.commit``); the window is
virtual time, so everything here is deterministic.
"""

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.costs import CostModel
from repro.sim.meter import Meter


@pytest.fixture(params=["batch", "rows"])
def exec_mode(request, monkeypatch):
    if request.param == "rows":
        monkeypatch.setenv("REPRO_ROW_EXEC", "1")
    else:
        monkeypatch.delenv("REPRO_ROW_EXEC", raising=False)
    return request.param


@pytest.fixture
def world():
    engine = DatabaseEngine(meter=Meter(), plan_cache_capacity=0)
    session = EngineSession(session_id=1)

    def run(sql):
        result = engine.execute(sql, session)
        if result.kind == "rows":
            return result.fetch_all()
        if result.kind == "rowcount":
            return result.rowcount
        return None

    run("CREATE TABLE ev (w INT NOT NULL, d INT NOT NULL, "
        "id INT NOT NULL, v INT, note VARCHAR(12), "
        "PRIMARY KEY (w, d, id))")
    # Shuffled insert order so heap order differs from key order.
    rows = [(w, d, i) for w in (2, 1) for d in (2, 1) for i in (3, 1, 2)]
    run("INSERT INTO ev VALUES " + ", ".join(
        f"({w}, {d}, {i}, {w * 100 + d * 10 + i}, 'n{i}')"
        for w, d, i in rows))
    return engine, run


def plan_of(run, sql):
    return [line for (line,) in run("EXPLAIN " + sql)]


# ---------------------------------------------------------------------------
# Access-path selection
# ---------------------------------------------------------------------------


class TestAccessPaths:
    def test_range_on_key_suffix_is_index_range_scan(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2 "
                            "AND id >= 2")
        assert any("IndexRangeScan" in line and "prefix=2" in line
                   and "lo>=" in line for line in plan)

    def test_partial_equality_prefix_is_range_scan(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2")
        assert any("IndexRangeScan" in line for line in plan)

    def test_full_width_equality_stays_point_lookup(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2 "
                            "AND id = 3")
        assert plan[0].startswith("PointLookup")

    def test_range_scan_rows_match_seq_scan(self, world, exec_mode):
        _engine, run = world
        indexed = run("SELECT w, d, id, v FROM ev "
                      "WHERE w = 1 AND d = 2 AND id >= 2")
        # Same predicate forced through a full scan (OR defeats the
        # index-sargable conjunct analysis).
        scanned = run("SELECT w, d, id, v FROM ev "
                      "WHERE (w = 1 OR w = -1) AND d = 2 AND id >= 2")
        assert sorted(indexed) == sorted(scanned)
        assert len(indexed) == 2

    def test_exclusive_bounds(self, world, exec_mode):
        _engine, run = world
        assert run("SELECT id FROM ev WHERE w = 1 AND d = 1 "
                   "AND id > 1 AND id < 3") == [(2,)]


# ---------------------------------------------------------------------------
# Index-only scans
# ---------------------------------------------------------------------------


class TestIndexOnly:
    def test_covering_projection_marks_index_only(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT id, d FROM ev WHERE w = 1 AND d = 2")
        assert any("index-only" in line for line in plan)

    def test_non_covering_reads_heap(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2")
        assert not any("index-only" in line for line in plan)

    def test_index_only_rows_and_counter(self, world, exec_mode):
        engine, run = world
        before = engine.meter.executor_stats.get("index_only_scans", 0)
        assert run("SELECT id FROM ev WHERE w = 2 AND d = 1 "
                   "ORDER BY id") == [(1,), (2,), (3,)]
        after = engine.meter.executor_stats.get("index_only_scans", 0)
        assert after == before + 1

    def test_covering_aggregate_is_index_only(self, world, exec_mode):
        _engine, run = world
        plan = plan_of(run, "SELECT count(*) FROM ev WHERE w = 1")
        assert any("index-only" in line for line in plan)
        assert run("SELECT count(*) FROM ev WHERE w = 1") == [(6,)]


# ---------------------------------------------------------------------------
# Sort elimination
# ---------------------------------------------------------------------------


class TestSortElimination:
    def test_order_by_key_suffix_drops_sort(self, world, exec_mode):
        engine, run = world
        sql = "SELECT v FROM ev WHERE w = 1 AND d = 2 ORDER BY id"
        plan = plan_of(run, sql)
        assert not any("Sort" in line for line in plan)
        # The stat is execution-time (EXPLAIN alone must not tick it).
        before = engine.meter.executor_stats.get("sort_eliminations", 0)
        assert run(sql) == [(121,), (122,), (123,)]
        assert engine.meter.executor_stats["sort_eliminations"] == before + 1

    def test_sort_elimination_counts_per_execution_from_plan_cache(self):
        # Unlike the shared fixture, this engine caches plans — the
        # counter must tick on cache hits too, in step with the
        # executor's other per-execution scan counters.
        engine = DatabaseEngine(meter=Meter(), plan_cache_capacity=16)
        session = EngineSession(session_id=1)
        engine.execute("CREATE TABLE pc (a INT NOT NULL, b INT NOT NULL, "
                       "PRIMARY KEY (a, b))", session)
        engine.execute("INSERT INTO pc VALUES (1, 2), (1, 1)", session)
        sql = "SELECT b FROM pc WHERE a = 1 ORDER BY b"
        for expected in (1, 2, 3):
            rows = engine.execute(sql, session).fetch_all()
            assert rows == [(1,), (2,)]
            assert engine.meter.executor_stats["sort_eliminations"] \
                == expected
        assert engine.meter.counters.get("plan_cache_hits", 0) >= 2

    def test_equality_pinned_columns_may_appear_anywhere(self, world):
        _engine, run = world
        # d and w are single-valued under the equality prefix, so
        # ORDER BY d, id, w is still satisfied by the scan.
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2 "
                            "ORDER BY d, id, w")
        assert not any("Sort" in line for line in plan)

    def test_descending_keeps_sort(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2 "
                            "ORDER BY id DESC")
        assert any("Sort" in line for line in plan)

    def test_order_mismatch_keeps_sort(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 ORDER BY id")
        assert any("Sort" in line for line in plan)

    def test_eliminated_sort_rows_are_ordered(self, world, exec_mode):
        _engine, run = world
        assert run("SELECT id, v FROM ev WHERE w = 2 AND d = 2 "
                   "ORDER BY id") == [(1, 221), (2, 222), (3, 223)]

    def test_alias_shadowing_keeps_sort(self, world):
        _engine, run = world
        # ``id`` in ORDER BY resolves to the output alias (v AS id), so
        # the scan's key order does NOT satisfy it.
        sql = ("SELECT v AS id FROM ev WHERE w = 1 AND d = 2 "
               "ORDER BY id")
        plan = plan_of(run, sql)
        assert any("Sort" in line for line in plan)
        assert run(sql) == [(121,), (122,), (123,)]


# ---------------------------------------------------------------------------
# NULL in indexed columns (non-unique indexes store a NULL sentinel)
# ---------------------------------------------------------------------------


class TestNullIndexKeys:
    @pytest.fixture
    def nworld(self):
        engine = DatabaseEngine(meter=Meter(), plan_cache_capacity=0)
        session = EngineSession(session_id=1)

        def run(sql):
            result = engine.execute(sql, session)
            if result.kind == "rows":
                return result.fetch_all()
            if result.kind == "rowcount":
                return result.rowcount
            return None

        run("CREATE TABLE nx (id INT NOT NULL, grp INT, "
            "PRIMARY KEY (id))")
        run("INSERT INTO nx VALUES (1, 5), (2, NULL), (3, 5)")
        return engine, run

    def test_create_index_over_null_rows(self, nworld, exec_mode):
        _engine, run = nworld
        run("CREATE INDEX ix_nx ON nx (grp)")  # used to TypeError
        assert sorted(run("SELECT id FROM nx WHERE grp = 5")) \
            == [(1,), (3,)]

    def test_insert_null_into_indexed_column(self, nworld, exec_mode):
        _engine, run = nworld
        run("CREATE INDEX ix_nx ON nx (grp)")
        assert run("INSERT INTO nx VALUES (4, NULL)") == 1
        assert sorted(run("SELECT id FROM nx WHERE grp IS NULL")) \
            == [(2,), (4,)]

    def test_upper_bounded_range_excludes_null(self, nworld, exec_mode):
        # `grp <= 10` is consumed by the range scan (no residual
        # filter), so the scan itself must not leak the NULL-sentinel
        # keys that sort below every value.
        engine, run = nworld
        run("CREATE INDEX ix_nx ON nx (grp)")
        assert sorted(run("SELECT id FROM nx WHERE grp <= 10")) \
            == [(1,), (3,)]
        assert run("SELECT id FROM nx WHERE grp >= 0 AND grp <= 10 "
                   "ORDER BY grp") == [(1,), (3,)]
        # Same property asserted on the operator directly, independent
        # of whether the planner picks the index for a bare upper bound.
        from repro.sql.executor import ExecContext, IndexSeek

        table = engine._tables["nx"]
        hi_only = IndexSeek(table, "ix_nx", prefix_fns=[],
                            hi_fn=lambda ctx: 10)
        assert sorted(row[0] for row in
                      hi_only.rows(ExecContext(meter=None))) == [1, 3]

    def test_seek_binding_null_matches_nothing(self, nworld):
        # SQL three-valued logic: a seek whose prefix or bound value
        # evaluates to NULL short-circuits to zero matches.
        from repro.sql.executor import ExecContext, IndexSeek

        engine, run = nworld
        run("CREATE INDEX ix_nx ON nx (grp)")
        table = engine._tables["nx"]
        eq_null = IndexSeek(table, "ix_nx", prefix_fns=[lambda ctx: None])
        assert list(eq_null.rows(ExecContext(meter=None))) == []
        lt_null = IndexSeek(table, "ix_nx", prefix_fns=[],
                            hi_fn=lambda ctx: None)
        assert list(lt_null.rows(ExecContext(meter=None))) == []

    def test_unique_index_still_rejects_null(self, nworld):
        from repro.errors import ConstraintError

        _engine, run = nworld
        run("CREATE TABLE ux (id INT NOT NULL, tag INT, "
            "PRIMARY KEY (id))")
        run("CREATE UNIQUE INDEX ux_tag ON ux (tag)")
        with pytest.raises(ConstraintError):
            run("INSERT INTO ux VALUES (1, NULL)")


# ---------------------------------------------------------------------------
# Asynchronous commit
# ---------------------------------------------------------------------------


def _commit_burst(window: float, commits: int = 10):
    engine = DatabaseEngine(
        meter=Meter(CostModel(async_commit_window_seconds=window)))
    session = EngineSession(session_id=1)
    engine.execute("CREATE TABLE gc (a INT)", session)
    base = dict(engine.meter.counters)
    for i in range(commits):
        engine.execute(f"INSERT INTO gc VALUES ({i})", session)
    delta = {k: v - base.get(k, 0)
             for k, v in engine.meter.counters.items()
             if v != base.get(k, 0)}
    return engine, session, delta


class TestAsyncCommit:
    def test_window_zero_forces_every_commit(self):
        _engine, _session, delta = _commit_burst(0.0)
        assert delta.get("log_forces", 0) >= 10
        assert "async_commit_deferrals" not in delta
        assert "async_commit_windows" not in delta

    def test_window_defers_commit_forces(self):
        # The CREATE TABLE commit (before the snapshot) opens the first
        # window, so with a huge window every insert commit is deferred.
        _engine, _session, delta = _commit_burst(10.0)
        deferrals = delta.get("async_commit_deferrals", 0)
        windows = delta.get("async_commit_windows", 0)
        assert deferrals + windows == 10
        assert deferrals >= 9
        assert delta.get("log_forces", 0) <= 1

    def test_deferred_commits_still_readable_and_durable_later(self):
        engine, session, _delta = _commit_burst(10.0)
        # Deferred commits ride the volatile tail until any real force
        # (here: a checkpoint's page flushes) lands them.
        engine.checkpoint()
        assert engine.wal.flushed_lsn == engine.wal.last_lsn
        rows = engine.execute("SELECT count(*) FROM gc",
                              session).fetch_all()
        assert rows == [(10,)]

    def test_crash_inside_window_loses_acked_commits(self):
        # The documented durability bound: a crash inside the window
        # discards commits that were already acknowledged, and closes
        # the open deferral window.
        engine, _session, _delta = _commit_burst(10.0)
        lost = engine.wal.crash()
        assert lost > 0
        assert engine.wal._async_deadline == 0.0

    def test_sys_executor_exposes_async_commit(self):
        engine, session, _delta = _commit_burst(10.0)
        stats = dict(engine.execute(
            "SELECT metric, value FROM sys_executor", session).fetch_all())
        assert stats.get("async_commit_deferrals", 0) >= 9


# ---------------------------------------------------------------------------
# sys_indexes entries column
# ---------------------------------------------------------------------------


def test_sys_indexes_reports_entry_counts(world):
    _engine, run = world
    rows = {name: (cols, entries)
            for name, _t, cols, _u, entries in run(
                "SELECT name, table_name, column_names, is_unique, "
                "entries FROM sys_indexes")}
    assert rows["__pk_ev"][1] == 12

"""Index-aware planning: range scans, index-only scans, sort elimination,
and the WAL group-commit window those query savings pair with.

The planner rules under test (see planner.py):

* equality + range conjuncts on a key prefix become ``IndexRangeScan``
  (full-width pure equality stays ``IndexSeek``/``PointLookup``);
* a query that touches only indexed columns runs *index-only* — rows are
  synthesized from B-tree keys and the heap is never read;
* ``ORDER BY`` matching the scan's key order (after any equality-pinned
  prefix) drops the ``Sort`` operator outright.

Group commit lives in ``wal/log.py``: a commit force arriving inside the
open window joins the group instead of forcing; the window is virtual
time, so everything here is deterministic.
"""

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.costs import CostModel
from repro.sim.meter import Meter


@pytest.fixture(params=["batch", "rows"])
def exec_mode(request, monkeypatch):
    if request.param == "rows":
        monkeypatch.setenv("REPRO_ROW_EXEC", "1")
    else:
        monkeypatch.delenv("REPRO_ROW_EXEC", raising=False)
    return request.param


@pytest.fixture
def world():
    engine = DatabaseEngine(meter=Meter(), plan_cache_capacity=0)
    session = EngineSession(session_id=1)

    def run(sql):
        result = engine.execute(sql, session)
        if result.kind == "rows":
            return result.fetch_all()
        if result.kind == "rowcount":
            return result.rowcount
        return None

    run("CREATE TABLE ev (w INT NOT NULL, d INT NOT NULL, "
        "id INT NOT NULL, v INT, note VARCHAR(12), "
        "PRIMARY KEY (w, d, id))")
    # Shuffled insert order so heap order differs from key order.
    rows = [(w, d, i) for w in (2, 1) for d in (2, 1) for i in (3, 1, 2)]
    run("INSERT INTO ev VALUES " + ", ".join(
        f"({w}, {d}, {i}, {w * 100 + d * 10 + i}, 'n{i}')"
        for w, d, i in rows))
    return engine, run


def plan_of(run, sql):
    return [line for (line,) in run("EXPLAIN " + sql)]


# ---------------------------------------------------------------------------
# Access-path selection
# ---------------------------------------------------------------------------


class TestAccessPaths:
    def test_range_on_key_suffix_is_index_range_scan(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2 "
                            "AND id >= 2")
        assert any("IndexRangeScan" in line and "prefix=2" in line
                   and "lo>=" in line for line in plan)

    def test_partial_equality_prefix_is_range_scan(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2")
        assert any("IndexRangeScan" in line for line in plan)

    def test_full_width_equality_stays_point_lookup(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2 "
                            "AND id = 3")
        assert plan[0].startswith("PointLookup")

    def test_range_scan_rows_match_seq_scan(self, world, exec_mode):
        _engine, run = world
        indexed = run("SELECT w, d, id, v FROM ev "
                      "WHERE w = 1 AND d = 2 AND id >= 2")
        # Same predicate forced through a full scan (OR defeats the
        # index-sargable conjunct analysis).
        scanned = run("SELECT w, d, id, v FROM ev "
                      "WHERE (w = 1 OR w = -1) AND d = 2 AND id >= 2")
        assert sorted(indexed) == sorted(scanned)
        assert len(indexed) == 2

    def test_exclusive_bounds(self, world, exec_mode):
        _engine, run = world
        assert run("SELECT id FROM ev WHERE w = 1 AND d = 1 "
                   "AND id > 1 AND id < 3") == [(2,)]


# ---------------------------------------------------------------------------
# Index-only scans
# ---------------------------------------------------------------------------


class TestIndexOnly:
    def test_covering_projection_marks_index_only(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT id, d FROM ev WHERE w = 1 AND d = 2")
        assert any("index-only" in line for line in plan)

    def test_non_covering_reads_heap(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2")
        assert not any("index-only" in line for line in plan)

    def test_index_only_rows_and_counter(self, world, exec_mode):
        engine, run = world
        before = engine.meter.executor_stats.get("index_only_scans", 0)
        assert run("SELECT id FROM ev WHERE w = 2 AND d = 1 "
                   "ORDER BY id") == [(1,), (2,), (3,)]
        after = engine.meter.executor_stats.get("index_only_scans", 0)
        assert after == before + 1

    def test_covering_aggregate_is_index_only(self, world, exec_mode):
        _engine, run = world
        plan = plan_of(run, "SELECT count(*) FROM ev WHERE w = 1")
        assert any("index-only" in line for line in plan)
        assert run("SELECT count(*) FROM ev WHERE w = 1") == [(6,)]


# ---------------------------------------------------------------------------
# Sort elimination
# ---------------------------------------------------------------------------


class TestSortElimination:
    def test_order_by_key_suffix_drops_sort(self, world):
        engine, run = world
        sql = "SELECT v FROM ev WHERE w = 1 AND d = 2 ORDER BY id"
        before = engine.meter.executor_stats.get("sort_eliminations", 0)
        plan = plan_of(run, sql)
        assert not any("Sort" in line for line in plan)
        assert engine.meter.executor_stats["sort_eliminations"] == before + 1

    def test_equality_pinned_columns_may_appear_anywhere(self, world):
        _engine, run = world
        # d and w are single-valued under the equality prefix, so
        # ORDER BY d, id, w is still satisfied by the scan.
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2 "
                            "ORDER BY d, id, w")
        assert not any("Sort" in line for line in plan)

    def test_descending_keeps_sort(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 AND d = 2 "
                            "ORDER BY id DESC")
        assert any("Sort" in line for line in plan)

    def test_order_mismatch_keeps_sort(self, world):
        _engine, run = world
        plan = plan_of(run, "SELECT v FROM ev WHERE w = 1 ORDER BY id")
        assert any("Sort" in line for line in plan)

    def test_eliminated_sort_rows_are_ordered(self, world, exec_mode):
        _engine, run = world
        assert run("SELECT id, v FROM ev WHERE w = 2 AND d = 2 "
                   "ORDER BY id") == [(1, 221), (2, 222), (3, 223)]

    def test_alias_shadowing_keeps_sort(self, world):
        _engine, run = world
        # ``id`` in ORDER BY resolves to the output alias (v AS id), so
        # the scan's key order does NOT satisfy it.
        sql = ("SELECT v AS id FROM ev WHERE w = 1 AND d = 2 "
               "ORDER BY id")
        plan = plan_of(run, sql)
        assert any("Sort" in line for line in plan)
        assert run(sql) == [(121,), (122,), (123,)]


# ---------------------------------------------------------------------------
# Group commit
# ---------------------------------------------------------------------------


def _commit_burst(window: float, commits: int = 10):
    engine = DatabaseEngine(
        meter=Meter(CostModel(group_commit_window_seconds=window)))
    session = EngineSession(session_id=1)
    engine.execute("CREATE TABLE gc (a INT)", session)
    base = dict(engine.meter.counters)
    for i in range(commits):
        engine.execute(f"INSERT INTO gc VALUES ({i})", session)
    delta = {k: v - base.get(k, 0)
             for k, v in engine.meter.counters.items()
             if v != base.get(k, 0)}
    return engine, session, delta


class TestGroupCommit:
    def test_window_zero_forces_every_commit(self):
        _engine, _session, delta = _commit_burst(0.0)
        assert delta.get("log_forces", 0) >= 10
        assert "group_commit_joins" not in delta
        assert "group_commit_batches" not in delta

    def test_window_coalesces_commit_forces(self):
        # The CREATE TABLE commit (before the snapshot) opens the first
        # group, so with a huge window every insert commit joins it.
        _engine, _session, delta = _commit_burst(10.0)
        joins = delta.get("group_commit_joins", 0)
        batches = delta.get("group_commit_batches", 0)
        assert joins + batches == 10
        assert joins >= 9
        assert delta.get("log_forces", 0) <= 1

    def test_joined_commits_still_readable_and_durable_later(self):
        engine, session, _delta = _commit_burst(10.0)
        # The deferred group rides the volatile tail until any real
        # force (here: a checkpoint's page flushes) lands it.
        engine.checkpoint()
        assert engine.wal.flushed_lsn == engine.wal.last_lsn
        rows = engine.execute("SELECT count(*) FROM gc",
                              session).fetch_all()
        assert rows == [(10,)]

    def test_crash_closes_open_group(self):
        engine, _session, _delta = _commit_burst(10.0)
        engine.wal.crash()
        assert engine.wal._group_deadline == 0.0

    def test_sys_executor_exposes_group_commit(self):
        engine, session, _delta = _commit_burst(10.0)
        stats = dict(engine.execute(
            "SELECT metric, value FROM sys_executor", session).fetch_all())
        assert stats.get("group_commit_joins", 0) >= 9


# ---------------------------------------------------------------------------
# sys_indexes entries column
# ---------------------------------------------------------------------------


def test_sys_indexes_reports_entry_counts(world):
    _engine, run = world
    rows = {name: (cols, entries)
            for name, _t, cols, _u, entries in run(
                "SELECT name, table_name, column_names, is_unique, "
                "entries FROM sys_indexes")}
    assert rows["__pk_ev"][1] == 12

"""Crash sweep: secondary indexes equal the heap after restart recovery.

Recovery maintains the B-trees *incrementally* — every redone or undone
heap change routes through the table runtime's ``apply_*_with_indexes``
methods instead of a wholesale post-recovery rebuild.  That only works
if index = f(heap) holds at every crash point, so this fuzz runs a
seeded DML workload (inserts, key-changing updates, deletes, some of it
in a transaction that never commits), crashes after every prefix of the
workload, restarts, and checks each B-tree's entries against what a
fresh scan of its heap would produce.

Indexed columns never hold NULL here: B-tree keys compare
lexicographically and the engine rejects NULL in unique keys, so the
workload stays inside the supported key domain.
"""

import random

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.meter import Meter


class CrashHarness:
    """Owns the durable parts (disk + log) across engine incarnations."""

    def __init__(self):
        self.meter = Meter()
        self.engine = DatabaseEngine(meter=self.meter)
        self.disk = self.engine.disk
        self.wal = self.engine.wal
        self.session = EngineSession(session_id=1)

    def run(self, sql):
        result = self.engine.execute(sql, self.session)
        if result.kind == "rows":
            return result.fetch_all()
        if result.kind == "rowcount":
            return result.rowcount
        return None

    def crash(self):
        self.wal.crash()
        self.engine.buffer_pool.crash()
        self.engine = None
        self.session = EngineSession(session_id=self.session.session_id + 1)

    def restart(self):
        self.engine = DatabaseEngine.restart(self.disk, self.wal,
                                             meter=self.meter)
        return self.engine.last_recovery


DDL = (
    "CREATE TABLE acct (id INT NOT NULL, owner VARCHAR(16), bal INT, "
    "tag INT, PRIMARY KEY (id))",
    "CREATE INDEX ix_acct_tag ON acct (tag, id)",
    "CREATE UNIQUE INDEX ix_acct_owner ON acct (owner)",
)


def build_workload(seed: int, ops: int) -> list[str]:
    """A seeded DML mix that churns every index: inserts, non-key and
    key-changing updates (including the unique key), and deletes."""
    rng = random.Random(seed)
    alive: list[int] = []
    next_id = 0
    statements: list[str] = []
    for _ in range(ops):
        kind = rng.choice(["insert", "insert", "bal", "tag", "owner",
                           "delete"])
        if kind == "insert" or not alive:
            statements.append(
                f"INSERT INTO acct VALUES ({next_id}, 'own{next_id}', "
                f"{rng.randint(0, 500)}, {rng.randint(0, 4)})")
            alive.append(next_id)
            next_id += 1
        elif kind == "bal":
            statements.append(
                f"UPDATE acct SET bal = bal + {rng.randint(1, 9)} "
                f"WHERE id = {rng.choice(alive)}")
        elif kind == "tag":
            statements.append(
                f"UPDATE acct SET tag = {rng.randint(0, 4)} "
                f"WHERE id = {rng.choice(alive)}")
        elif kind == "owner":
            victim = rng.choice(alive)
            statements.append(
                f"UPDATE acct SET owner = 'own{victim}x' "
                f"WHERE id = {victim}")
        else:
            victim = rng.choice(alive)
            alive.remove(victim)
            statements.append(f"DELETE FROM acct WHERE id = {victim}")
    return statements


def assert_indexes_match_heap(engine) -> int:
    """Every materialized B-tree holds exactly the heap's (key, rid)s."""
    checked = 0
    for runtime in engine._tables.values():
        heap_rows = dict(runtime.heap.scan())
        for info in runtime.indexes():
            positions = [runtime.info.column_index(c)
                         for c in info.column_names]
            expected = sorted(
                (tuple(row[p] for p in positions), rid)
                for rid, row in heap_rows.items())
            actual = sorted(runtime.index_tree(info.name).items())
            assert actual == expected, (
                f"index {info.name} diverged from heap "
                f"{runtime.info.name}")
            checked += 1
    return checked


@pytest.mark.parametrize("seed", [1, 2])
def test_indexes_survive_crash_at_every_statement(seed):
    statements = build_workload(seed, ops=24)
    for crash_at in range(1, len(statements) + 1, 2):
        harness = CrashHarness()
        for sql in DDL:
            harness.run(sql)
        if crash_at > 4:
            harness.engine.checkpoint()  # exercise the redo-from-LSN path
        for sql in statements[:crash_at]:
            harness.run(sql)
        harness.crash()
        harness.restart()
        harness.run("SELECT id FROM acct WHERE tag >= 0")  # touch runtime
        assert assert_indexes_match_heap(harness.engine) >= 3, \
            f"crash point {crash_at} checked too few indexes"


@pytest.mark.parametrize("flush_pages", [False, True])
def test_loser_undo_restores_indexes(flush_pages):
    """A transaction that dies mid-flight must leave no index trace —
    its redone changes are compensated, B-trees included."""
    harness = CrashHarness()
    for sql in DDL:
        harness.run(sql)
    for sql in build_workload(seed=3, ops=12):
        harness.run(sql)
    committed = sorted(harness.run("SELECT id, owner, bal, tag FROM acct"))

    harness.run("BEGIN TRANSACTION")
    harness.run("INSERT INTO acct VALUES (900, 'own900', 1, 0)")
    harness.run("UPDATE acct SET tag = 4, owner = 'ownx' WHERE id = 0")
    harness.run("DELETE FROM acct WHERE id = 1")
    # Durable loser: force the log (and optionally the stolen pages) so
    # recovery must first redo the loser's work, then undo it — both
    # legs routed through the index-maintaining apply path.
    harness.engine.wal.force()
    if flush_pages:
        harness.engine.buffer_pool.flush_all()
    harness.crash()
    report = harness.restart()
    assert len(report.losers) == 1

    assert sorted(harness.run("SELECT id, owner, bal, tag FROM acct")) \
        == committed
    assert assert_indexes_match_heap(harness.engine) >= 3
    # The unique index must also still *work*: reinserting the undone
    # key succeeds, duplicating a committed one fails.
    assert harness.run("INSERT INTO acct VALUES (901, 'own900', 1, 0)") == 1
    from repro.errors import ConstraintError

    with pytest.raises(ConstraintError):
        harness.run("INSERT INTO acct VALUES (902, 'own900', 2, 1)")

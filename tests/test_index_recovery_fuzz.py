"""Crash sweep: secondary indexes equal the heap after restart recovery.

Recovery maintains the B-trees *incrementally* — every redone or undone
heap change routes through the table runtime's ``apply_*_with_indexes``
methods instead of a wholesale post-recovery rebuild.  That only works
if index = f(heap) holds at every crash point, so this fuzz runs a
seeded DML workload (inserts, key-changing updates, deletes, *unique
keys reused after deletes*, some of it in a transaction that never
commits), crashes after every prefix of the workload, restarts, and
checks each B-tree's entries against what a fresh scan of its heap
would produce.

Key reuse matters: repeating history can transiently duplicate a unique
key mid-recovery (the attach-time tree build may already hold a
re-inserted key that redo then inserts again before replaying the
delete between them), so apply-mode inserts must tolerate duplicates
and recovery must re-validate uniqueness afterwards — see
``test_unique_key_reuse_survives_partial_flush`` for the directed case.
"""

import random

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.meter import Meter
from repro.storage.btree import encode_key


class CrashHarness:
    """Owns the durable parts (disk + log) across engine incarnations."""

    def __init__(self):
        self.meter = Meter()
        self.engine = DatabaseEngine(meter=self.meter)
        self.disk = self.engine.disk
        self.wal = self.engine.wal
        self.session = EngineSession(session_id=1)

    def run(self, sql):
        result = self.engine.execute(sql, self.session)
        if result.kind == "rows":
            return result.fetch_all()
        if result.kind == "rowcount":
            return result.rowcount
        return None

    def crash(self):
        self.wal.crash()
        self.engine.buffer_pool.crash()
        self.engine = None
        self.session = EngineSession(session_id=self.session.session_id + 1)

    def restart(self):
        self.engine = DatabaseEngine.restart(self.disk, self.wal,
                                             meter=self.meter)
        return self.engine.last_recovery


DDL = (
    "CREATE TABLE acct (id INT NOT NULL, owner VARCHAR(16), bal INT, "
    "tag INT, PRIMARY KEY (id))",
    "CREATE INDEX ix_acct_tag ON acct (tag, id)",
    "CREATE UNIQUE INDEX ix_acct_owner ON acct (owner)",
)


def build_workload(seed: int, ops: int) -> list[str]:
    """A seeded DML mix that churns every index: inserts (sometimes
    reusing a unique owner freed by an earlier delete or owner change),
    non-key and key-changing updates (including the unique key), and
    deletes."""
    rng = random.Random(seed)
    alive: list[int] = []
    owners: dict[int, str] = {}   # id -> current owner value
    used: set[str] = set()        # owners of alive rows
    freed: list[str] = []         # owners released by deletes/updates
    next_id = 0
    statements: list[str] = []
    for _ in range(ops):
        kind = rng.choice(["insert", "insert", "bal", "tag", "owner",
                           "delete"])
        if kind == "insert" or not alive:
            if freed and rng.random() < 0.5:
                owner = freed.pop(rng.randrange(len(freed)))
            else:
                owner = f"own{next_id}"
            statements.append(
                f"INSERT INTO acct VALUES ({next_id}, '{owner}', "
                f"{rng.randint(0, 500)}, {rng.randint(0, 4)})")
            alive.append(next_id)
            owners[next_id] = owner
            used.add(owner)
            next_id += 1
        elif kind == "bal":
            statements.append(
                f"UPDATE acct SET bal = bal + {rng.randint(1, 9)} "
                f"WHERE id = {rng.choice(alive)}")
        elif kind == "tag":
            statements.append(
                f"UPDATE acct SET tag = {rng.randint(0, 4)} "
                f"WHERE id = {rng.choice(alive)}")
        elif kind == "owner":
            victim = rng.choice(alive)
            new_owner = f"own{victim}x"
            if new_owner in used and owners[victim] != new_owner:
                continue  # another row took it — skip, stay unique
            if owners[victim] != new_owner:
                used.discard(owners[victim])
                freed.append(owners[victim])
                owners[victim] = new_owner
                used.add(new_owner)
            statements.append(
                f"UPDATE acct SET owner = '{new_owner}' "
                f"WHERE id = {victim}")
        else:
            victim = rng.choice(alive)
            alive.remove(victim)
            used.discard(owners[victim])
            freed.append(owners.pop(victim))
            statements.append(f"DELETE FROM acct WHERE id = {victim}")
    return statements


def assert_indexes_match_heap(engine) -> int:
    """Every materialized B-tree holds exactly the heap's (key, rid)s."""
    checked = 0
    for runtime in engine._tables.values():
        heap_rows = dict(runtime.heap.scan())
        for info in runtime.indexes():
            positions = [runtime.info.column_index(c)
                         for c in info.column_names]
            expected = sorted(
                (encode_key(row[p] for p in positions), rid)
                for rid, row in heap_rows.items())
            actual = sorted(runtime.index_tree(info.name).items())
            assert actual == expected, (
                f"index {info.name} diverged from heap "
                f"{runtime.info.name}")
            checked += 1
    return checked


@pytest.mark.parametrize("seed", [1, 2])
def test_indexes_survive_crash_at_every_statement(seed):
    statements = build_workload(seed, ops=24)
    for crash_at in range(1, len(statements) + 1, 2):
        harness = CrashHarness()
        for sql in DDL:
            harness.run(sql)
        if crash_at > 4:
            harness.engine.checkpoint()  # exercise the redo-from-LSN path
        for sql in statements[:crash_at]:
            harness.run(sql)
        harness.crash()
        harness.restart()
        harness.run("SELECT id FROM acct WHERE tag >= 0")  # touch runtime
        assert assert_indexes_match_heap(harness.engine) >= 3, \
            f"crash point {crash_at} checked too few indexes"


@pytest.mark.parametrize("flush_pages", [False, True])
def test_loser_undo_restores_indexes(flush_pages):
    """A transaction that dies mid-flight must leave no index trace —
    its redone changes are compensated, B-trees included."""
    harness = CrashHarness()
    for sql in DDL:
        harness.run(sql)
    for sql in build_workload(seed=3, ops=12):
        harness.run(sql)
    committed = sorted(harness.run("SELECT id, owner, bal, tag FROM acct"))

    harness.run("BEGIN TRANSACTION")
    harness.run("INSERT INTO acct VALUES (900, 'own900', 1, 0)")
    harness.run("UPDATE acct SET tag = 4, owner = 'ownx' WHERE id = 0")
    harness.run("DELETE FROM acct WHERE id = 1")
    # Durable loser: force the log (and optionally the stolen pages) so
    # recovery must first redo the loser's work, then undo it — both
    # legs routed through the index-maintaining apply path.
    harness.engine.wal.force()
    if flush_pages:
        harness.engine.buffer_pool.flush_all()
    harness.crash()
    report = harness.restart()
    assert len(report.losers) == 1

    assert sorted(harness.run("SELECT id, owner, bal, tag FROM acct")) \
        == committed
    assert assert_indexes_match_heap(harness.engine) >= 3
    # The unique index must also still *work*: reinserting the undone
    # key succeeds, duplicating a committed one fails.
    assert harness.run("INSERT INTO acct VALUES (901, 'own900', 1, 0)") == 1
    from repro.errors import ConstraintError

    with pytest.raises(ConstraintError):
        harness.run("INSERT INTO acct VALUES (902, 'own900', 2, 1)")


def test_unique_key_reuse_survives_partial_flush():
    """Committed insert/delete/re-insert of one unique key, crashed with
    only the re-insert's page flushed.

    At restart the attach-time tree build (from the flushed page)
    already holds the key, and redo then replays the *first* insert of
    it — page-LSN can't skip it, the first page never reached disk —
    before replaying the delete that resolves the duplicate.  Restart
    used to abort with ConstraintError here; apply-mode inserts now
    tolerate the transient duplicate and recovery re-validates
    uniqueness once undo completes.
    """
    harness = CrashHarness()
    harness.run("CREATE TABLE t (id INT NOT NULL, k VARCHAR(8), "
                "PRIMARY KEY (id))")
    harness.run("CREATE UNIQUE INDEX ux_k ON t (k)")
    runtime = harness.engine._tables["t"]
    heap = runtime.heap
    per_page = heap.rows_per_page
    # First incarnation of the reused key plus fillers fill page 0.
    harness.run("INSERT INTO t VALUES (0, 'dup')")
    for i in range(1, per_page):
        harness.run(f"INSERT INTO t VALUES ({i}, 'f{i}')")
    # Free page 0's slot, plug it, then re-insert the key: it must land
    # on a fresh page so the two incarnations flush independently.
    harness.run("DELETE FROM t WHERE id = 0")
    harness.run(f"INSERT INTO t VALUES ({per_page}, 'plug')")
    harness.run(f"INSERT INTO t VALUES ({per_page + 1}, 'dup')")
    rids = runtime.index_tree("ux_k").search(("dup",))
    assert len(rids) == 1 and rids[0].page_no > 0, \
        "re-insert was expected to land on a new page"
    # Everything is committed and log-durable; flush ONLY the
    # re-insert's page, then crash.
    harness.engine.wal.force()
    harness.engine.buffer_pool.flush_page(heap.file_id, rids[0].page_no)
    harness.crash()
    report = harness.restart()
    assert not report.losers
    rows = dict(harness.run("SELECT k, id FROM t"))
    assert rows["dup"] == per_page + 1
    assert len(rows) == per_page + 1  # fillers + plug + dup, minus id 0
    assert assert_indexes_match_heap(harness.engine) >= 2


def test_null_indexed_rows_survive_restart():
    """NULL in a non-unique indexed column must not break attach-time
    tree builds or index-aware redo (keys store the NULL sentinel)."""
    harness = CrashHarness()
    harness.run("CREATE TABLE n (id INT NOT NULL, grp INT, "
                "PRIMARY KEY (id))")
    harness.run("CREATE INDEX ix_grp ON n (grp)")
    harness.run("INSERT INTO n VALUES (1, 10), (2, NULL), (3, 10), "
                "(4, NULL)")
    harness.run("UPDATE n SET grp = NULL WHERE id = 3")
    harness.run("UPDATE n SET grp = 7 WHERE id = 4")
    harness.engine.wal.force()
    harness.crash()
    harness.restart()
    assert sorted(harness.run("SELECT id, grp FROM n")) == \
        [(1, 10), (2, None), (3, None), (4, 7)]
    # The seek itself never matches NULL (three-valued logic)…
    assert harness.run("SELECT id FROM n WHERE grp = 10") == [(1,)]
    # …but IS NULL over the full table still sees the rows.
    assert sorted(harness.run("SELECT id FROM n WHERE grp IS NULL")) == \
        [(2,), (3,)]
    assert assert_indexes_match_heap(harness.engine) >= 2

"""Cost-based optimizer: ANALYZE, estimation, plan shape, invalidation.

Everything here runs against ``optimizer_mode = "cost"`` (the CostModel
knob) except the tests that assert the heuristic default is untouched.
Plan-shape tests doctor statistics directly through
``Catalog.set_table_stats`` so a flip in join order, join algorithm or
hash build side is forced by numbers we control, then read the choice
back out of EXPLAIN.
"""

import math

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.meter import Meter


def _cost_mode(engine) -> None:
    engine.meter.costs.optimizer_mode = "cost"


def _explain(run, sql: str) -> list[str]:
    return [str(row[0]) for row in run("EXPLAIN " + sql)]


def _stats(row_count: int, page_count: int = 1, **ndvs) -> dict:
    """A doctored statistics dict in the ANALYZE format."""
    columns = {name: {"ndv": ndv, "null_frac": 0.0, "min": None,
                      "max": None, "histogram": None}
               for name, ndv in ndvs.items()}
    return {"row_count": row_count, "page_count": page_count,
            "columns": columns}


@pytest.fixture
def joined(run):
    """Three comma-joinable tables with real rows (stats get doctored)."""
    run("CREATE TABLE fact (k INT, g INT, v INT)")
    run("CREATE TABLE dim_a (k INT, name VARCHAR(8))")
    run("CREATE TABLE dim_b (g INT, name VARCHAR(8))")
    run("INSERT INTO fact VALUES " + ", ".join(
        f"({i % 5}, {i % 3}, {i})" for i in range(30)))
    run("INSERT INTO dim_a VALUES " + ", ".join(
        f"({i}, 'a{i}')" for i in range(5)))
    run("INSERT INTO dim_b VALUES " + ", ".join(
        f"({i}, 'b{i}')" for i in range(3)))


# ---------------------------------------------------------------------------
# ANALYZE collection + sys_table_stats
# ---------------------------------------------------------------------------


class TestAnalyze:
    def test_analyze_one_table(self, run, engine):
        run("CREATE TABLE t (a INT, s VARCHAR(8))")
        run("INSERT INTO t VALUES " + ", ".join(
            f"({i % 7}, 's{i % 4}')" for i in range(20)))
        run("ANALYZE t")
        stats = engine.catalog.get_table_stats("t")
        assert stats["row_count"] == 20
        assert stats["columns"]["a"]["ndv"] == 7
        assert stats["columns"]["a"]["min"] == 0
        assert stats["columns"]["a"]["max"] == 6
        assert stats["columns"]["s"]["ndv"] == 4
        assert stats["columns"]["a"]["histogram"] is not None
        assert engine.catalog.stats_version_of("t") == 1

    def test_analyze_all_tables_and_view(self, run, engine):
        run("CREATE TABLE t1 (a INT)")
        run("CREATE TABLE t2 (b INT)")
        run("INSERT INTO t1 VALUES (1), (2)")
        run("INSERT INTO t2 VALUES (3)")
        run("ANALYZE")
        rows = run("SELECT table_name, row_count, stats_version "
                   "FROM sys_table_stats ORDER BY table_name")
        tables = {r[0]: (r[1], r[2]) for r in rows}
        assert tables["t1"] == (2, 1)
        assert tables["t2"] == (1, 1)

    def test_null_fraction_recorded(self, run, engine):
        run("CREATE TABLE t (a INT)")
        run("INSERT INTO t VALUES (1), (NULL), (NULL), (4)")
        run("ANALYZE t")
        col = engine.catalog.get_table_stats("t")["columns"]["a"]
        assert col["null_frac"] == pytest.approx(0.5)
        assert col["ndv"] == 2

    def test_analyze_charges_virtual_time(self, run, engine):
        run("CREATE TABLE t (a INT)")
        run("INSERT INTO t VALUES " + ", ".join(
            f"({i})" for i in range(50)))
        before = engine.meter.now
        run("ANALYZE t")
        assert engine.meter.now > before


# ---------------------------------------------------------------------------
# EXPLAIN annotations (cost mode only)
# ---------------------------------------------------------------------------


class TestExplainAnnotations:
    SQL = "SELECT a, count(*) FROM t WHERE a > 2 GROUP BY a"

    @pytest.fixture(autouse=True)
    def table(self, run):
        run("CREATE TABLE t (a INT)")
        run("INSERT INTO t VALUES " + ", ".join(
            f"({i % 10})" for i in range(40)))

    def test_heuristic_plans_have_no_estimates(self, run):
        assert not any("est_rows=" in line
                       for line in _explain(run, self.SQL))

    def test_cost_plans_annotate_every_operator(self, run, engine):
        run("ANALYZE t")
        _cost_mode(engine)
        lines = _explain(run, self.SQL)
        assert lines and all("est_rows=" in line and "est_cost=" in line
                             for line in lines)

    def test_estimates_track_statistics(self, run, engine):
        run("ANALYZE t")
        _cost_mode(engine)
        # a > 2 keeps 7 of 10 distinct values: the scan estimate must be
        # statistics-driven (~28 of 40 rows), not the fixed default.
        line = next(line for line in
                    _explain(run, "SELECT a FROM t WHERE a > 2")
                    if "Filter" in line or "SeqScan" in line)
        assert "est_rows=" in line


# ---------------------------------------------------------------------------
# Plan shape under doctored statistics
# ---------------------------------------------------------------------------


def _scan_order(lines: list[str], *tables: str) -> list[str]:
    """Tables in the order their scans appear in the EXPLAIN output."""
    order = []
    for line in lines:
        for table in tables:
            if f"({table}" in line and table not in order:
                order.append(table)
    return order


class TestPlanShape:
    SQL2 = ("SELECT count(*) FROM fact, dim_a "
            "WHERE fact.k = dim_a.k")
    SQL3 = ("SELECT count(*) FROM fact, dim_a, dim_b "
            "WHERE fact.k = dim_a.k AND fact.g = dim_b.g")

    def test_build_side_follows_estimates(self, run, engine, joined):
        _cost_mode(engine)
        # dim_a tiny, fact huge: the hash join must build on dim_a, so
        # the probe (left child, printed first) is fact.
        engine.catalog.set_table_stats("fact", _stats(100000, 100, k=5))
        engine.catalog.set_table_stats("dim_a", _stats(5, 1, k=5))
        assert _scan_order(_explain(run, self.SQL2),
                           "fact", "dim_a") == ["fact", "dim_a"]
        # Flip the numbers and the build side must flip with them.
        engine.catalog.set_table_stats("fact", _stats(5, 1, k=5))
        engine.catalog.set_table_stats("dim_a", _stats(100000, 100, k=5))
        assert _scan_order(_explain(run, self.SQL2),
                           "fact", "dim_a") == ["dim_a", "fact"]

    def test_doctored_stats_flip_join_order(self, run, engine, joined):
        _cost_mode(engine)
        engine.catalog.set_table_stats("fact", _stats(100000, 100,
                                                      k=5, g=3))
        engine.catalog.set_table_stats("dim_a", _stats(5, 1, k=5))
        engine.catalog.set_table_stats("dim_b", _stats(40000, 40, g=3))
        small_a = _scan_order(_explain(run, self.SQL3),
                              "fact", "dim_a", "dim_b")
        engine.catalog.set_table_stats("dim_a", _stats(40000, 40, k=5))
        engine.catalog.set_table_stats("dim_b", _stats(5, 1, g=3))
        small_b = _scan_order(_explain(run, self.SQL3),
                              "fact", "dim_a", "dim_b")
        # The cheap dimension is joined first; swapping which dimension
        # is cheap must reorder the join tree.
        assert small_a != small_b
        assert small_a.index("dim_a") < small_a.index("dim_b")
        assert small_b.index("dim_b") < small_b.index("dim_a")

    def test_heuristic_plan_shape_is_unchanged(self, run, engine, joined):
        engine.catalog.set_table_stats("fact", _stats(5, 1, k=5))
        engine.catalog.set_table_stats("dim_a", _stats(100000, 100, k=5))
        # Doctored stats must be invisible while the knob is default.
        assert _scan_order(_explain(run, self.SQL2),
                           "fact", "dim_a") == ["fact", "dim_a"]

    def test_results_identical_across_flips(self, run, engine, joined):
        expected = run(self.SQL3)
        _cost_mode(engine)
        engine.catalog.set_table_stats("fact", _stats(100000, 100,
                                                      k=5, g=3))
        engine.catalog.set_table_stats("dim_a", _stats(5, 1, k=5))
        engine.catalog.set_table_stats("dim_b", _stats(40000, 40, g=3))
        assert run(self.SQL3) == expected
        engine.catalog.set_table_stats("dim_a", _stats(40000, 40, k=5))
        engine.catalog.set_table_stats("dim_b", _stats(5, 1, g=3))
        assert run(self.SQL3) == expected


class TestSortMergeJoin:
    SQL = ("SELECT a.k, b.v FROM ordered_a a, ordered_b b "
           "WHERE a.k = b.k AND a.k > 0 AND b.k > 0")

    @pytest.fixture(autouse=True)
    def tables(self, run):
        run("CREATE TABLE ordered_a (k INT NOT NULL, PRIMARY KEY (k))")
        run("CREATE TABLE ordered_b (k INT NOT NULL, v INT, "
            "PRIMARY KEY (k))")
        run("INSERT INTO ordered_a VALUES " + ", ".join(
            f"({i})" for i in range(1, 12)))
        run("INSERT INTO ordered_b VALUES " + ", ".join(
            f"({i}, {i * 10})" for i in range(1, 20, 2)))
        run("ANALYZE")

    def test_sort_merge_chosen_when_both_sides_ordered(self, run,
                                                       engine):
        assert not any("SortMergeJoin" in line
                       for line in _explain(run, self.SQL))
        _cost_mode(engine)
        lines = _explain(run, self.SQL)
        assert any("SortMergeJoin" in line for line in lines), lines
        assert engine.meter.counters.get(
            "optimizer.sortmerge_chosen", 0) >= 1

    def test_sort_merge_results_match_heuristic(self, run, engine):
        expected = run(self.SQL)
        _cost_mode(engine)
        assert sorted(run(self.SQL)) == sorted(expected)


class TestTopNHeapSort:
    SQL = "SELECT TOP 3 v, k FROM pile ORDER BY v DESC, k"

    @pytest.fixture(autouse=True)
    def table(self, run):
        run("CREATE TABLE pile (k INT, v INT)")
        run("INSERT INTO pile VALUES " + ", ".join(
            f"({i}, {(i * 37) % 50})" for i in range(60)))
        run("ANALYZE pile")

    def test_cost_mode_uses_heap(self, run, engine):
        heuristic = _explain(run, self.SQL)
        assert any("Sort(" in line for line in heuristic)
        assert not any("TopNHeapSort" in line for line in heuristic)
        _cost_mode(engine)
        lines = _explain(run, self.SQL)
        assert any("TopNHeapSort(n=3" in line for line in lines), lines
        assert not any("Limit" in line for line in lines)
        assert engine.meter.counters.get("optimizer.topn_heap_used",
                                         0) >= 1

    def test_heap_rows_identical_to_sort_limit(self, run, engine):
        expected = run(self.SQL)
        _cost_mode(engine)
        assert run(self.SQL) == expected

    def test_heap_handles_nulls_and_ties(self, run, engine):
        run("INSERT INTO pile VALUES (100, NULL), (101, NULL), (102, 49)")
        sql = "SELECT TOP 5 v, k FROM pile ORDER BY v, k DESC"
        expected = run(sql)
        _cost_mode(engine)
        assert run(sql) == expected


# ---------------------------------------------------------------------------
# ANALYZE invalidates cached plans (stats-version fix)
# ---------------------------------------------------------------------------


class TestStatsInvalidation:
    def test_analyze_invalidates_cached_plan(self, run, engine):
        run("CREATE TABLE t (a INT)")
        run("INSERT INTO t VALUES (1), (2), (3)")
        assert run("SELECT a FROM t WHERE a > 1") == [(2,), (3,)]
        before = engine.cache_stats["plan_invalidations"]
        run("ANALYZE t")
        assert run("SELECT a FROM t WHERE a > 1") == [(2,), (3,)]
        assert engine.cache_stats["plan_invalidations"] == before + 1

    def test_replanned_plan_sees_new_stats(self, run, engine):
        """The replan after ANALYZE must pick up the fresh statistics —
        the cost-mode EXPLAIN shows statistics-driven estimates only
        after the stats exist."""
        run("CREATE TABLE t (a INT)")
        run("INSERT INTO t VALUES " + ", ".join(
            f"({i})" for i in range(20)))
        _cost_mode(engine)
        fallback_before = engine.meter.counters.get(
            "optimizer.stats_missing_fallbacks", 0)
        run("SELECT a FROM t WHERE a = 5")
        assert engine.meter.counters.get(
            "optimizer.stats_missing_fallbacks", 0) > fallback_before
        run("ANALYZE t")
        after_analyze = engine.meter.counters.get(
            "optimizer.stats_missing_fallbacks", 0)
        run("SELECT a FROM t WHERE a = 5")
        assert engine.meter.counters.get(
            "optimizer.stats_missing_fallbacks", 0) == after_analyze

    def test_unanalyzed_tables_unaffected(self, run, engine):
        run("CREATE TABLE t (a INT)")
        run("CREATE TABLE u (b INT)")
        run("INSERT INTO t VALUES (1)")
        run("INSERT INTO u VALUES (2)")
        run("SELECT b FROM u")
        before = engine.cache_stats["plan_invalidations"]
        run("ANALYZE t")
        run("SELECT b FROM u")
        assert engine.cache_stats["plan_invalidations"] == before


# ---------------------------------------------------------------------------
# optimizer.* counters + sys_optimizer
# ---------------------------------------------------------------------------


class TestOptimizerCounters:
    def test_heuristic_mode_keeps_counters_at_zero(self, run, engine,
                                                   joined):
        run("ANALYZE")
        run(TestPlanShape.SQL3)
        run("SELECT TOP 2 v FROM fact ORDER BY v DESC")
        assert not any(name.startswith("optimizer.")
                       for name in engine.meter.counters)
        assert run("SELECT metric FROM sys_optimizer") == []

    def test_cost_mode_populates_counters(self, run, engine, joined):
        run("ANALYZE")
        _cost_mode(engine)
        run(TestPlanShape.SQL3)
        run("SELECT TOP 2 v FROM fact ORDER BY v DESC")
        counters = dict(run("SELECT metric, value FROM sys_optimizer"))
        assert counters["optimizer.plans_costed"] >= 2
        assert counters["optimizer.join_orders_considered"] >= 1
        assert counters["optimizer.topn_heap_used"] >= 1
        metrics = dict(
            run("SELECT name, value FROM sys_metrics "
                "WHERE kind = 'counter' AND name = "
                "'optimizer.plans_costed'"))
        assert metrics["optimizer.plans_costed"] >= 2


# ---------------------------------------------------------------------------
# Statistics survive crash recovery
# ---------------------------------------------------------------------------


class TestStatsPersistence:
    def _world(self):
        from repro.server.server import DatabaseServer
        from repro.workloads.app import BenchmarkApp

        server = DatabaseServer(meter=Meter())
        app = BenchmarkApp(server)
        app.run_statement("CREATE TABLE t (a INT)")
        app.run_statement("INSERT INTO t VALUES " + ", ".join(
            f"({i % 6})" for i in range(24)))
        app.run_statement("ANALYZE t")
        return server, app

    def test_stats_survive_restart(self):
        server, app = self._world()
        expected = server.engine.catalog.get_table_stats("t")
        assert expected["row_count"] == 24
        server.crash()
        server.restart()
        assert server.engine.catalog.get_table_stats("t") == expected
        assert server.engine.catalog.stats_version_of("t") == 1

    def test_stats_survive_checkpointed_restart(self):
        server, app = self._world()
        server.engine.checkpoint()
        expected = server.engine.catalog.get_table_stats("t")
        server.crash()
        server.restart()
        assert server.engine.catalog.get_table_stats("t") == expected

    def test_view_reflects_recovered_stats(self):
        server, app = self._world()
        server.crash()
        server.restart()
        app2 = __import__("repro.workloads.app",
                          fromlist=["BenchmarkApp"]).BenchmarkApp(server)
        rows = app2.query_rows("SELECT table_name, row_count "
                               "FROM sys_table_stats")
        assert ("t", 24) in rows


# ---------------------------------------------------------------------------
# Cost vs heuristic: value equivalence on TPC-H
# ---------------------------------------------------------------------------


def _cells_close(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def _rows_close(got, want) -> bool:
    if len(got) != len(want):
        return False
    got = sorted(got, key=repr)
    want = sorted(want, key=repr)
    return all(len(x) == len(y)
               and all(_cells_close(c, d) for c, d in zip(x, y))
               for x, y in zip(got, want))


def test_tpch_cost_mode_matches_heuristic_values():
    """Every TPC-H query returns the same values in cost mode as in the
    heuristic default (modulo float-summation order: a reordered join
    feeds SUM in a different row order, so aggregates may differ in the
    last ulp — compared with 1e-9 relative tolerance)."""
    from repro.workloads.tpch.datagen import generate
    from repro.workloads.tpch.queries import QUERIES
    from repro.workloads.tpch.schema import create_schema, load

    def leg(cost_mode: bool):
        engine = DatabaseEngine(meter=Meter(), plan_cache_capacity=128)
        session = EngineSession(session_id=1)
        create_schema(engine, session)
        load(engine, session, generate(scale=0.0005, seed=11))
        if cost_mode:
            engine.execute("ANALYZE", session)
            _cost_mode(engine)
        return {n: engine.execute(QUERIES[n], session).fetch_all()
                for n in sorted(QUERIES)}

    heuristic = leg(False)
    cost = leg(True)
    for number in sorted(heuristic):
        assert _rows_close(cost[number], heuristic[number]), (
            f"cost-mode values diverged on TPC-H Q{number}")

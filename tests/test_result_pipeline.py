"""Pipelined result delivery: fetch-ahead, adaptive batching, overlap.

The contract under test (DESIGN.md "Result delivery pipeline"):

* with every knob at its default the wire behaviour is bit-identical to
  the stop-and-wait seed;
* with knobs on, the application observes *exactly* the same rows in the
  same order, at a lower (never higher) virtual clock and with fewer
  fetch round trips;
* prefetched-but-undelivered rows never advance ``position``, survive
  interleaved scrolling/advancing exactly once, and are discarded (not
  delivered) when the server incarnation that produced them dies.
"""

import pytest

from repro.errors import ConnectionLostError
from repro.odbc.constants import (
    SQL_ATTR_CURSOR_TYPE,
    SQL_CURSOR_STATIC,
    SQL_FETCH_PRIOR,
)
from repro.odbc.driver import NativeDriver
from repro.odbc.handles import (
    ConnectionHandle,
    EnvironmentHandle,
    StatementHandle,
)
from repro.phoenix.config import PhoenixConfig
from repro.server.network import SimulatedNetwork
from repro.server.server import DatabaseServer
from repro.sim.costs import NETWORK, CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp

ROWS = 400


def build_world(**cost_overrides):
    """A populated single-table world reached through the raw driver."""
    costs = CostModel(**cost_overrides)
    meter = Meter(costs)
    server = DatabaseServer(meter=meter)
    network = SimulatedNetwork(meter)
    driver = NativeDriver(server, network, meter)
    env = EnvironmentHandle()
    conn = ConnectionHandle(env)
    driver.connect(conn, "app")
    setup = StatementHandle(conn)
    driver.execute(setup, "CREATE TABLE t (a INTEGER, b VARCHAR(40))")
    for i in range(ROWS):
        driver.execute(setup, f"INSERT INTO t VALUES ({i}, 'row-{i}')")
    meter.reset_traces()
    network.requests_sent = 0
    return meter, network, driver, conn


def drain(driver, conn, sql="SELECT a, b FROM t ORDER BY a"):
    statement = StatementHandle(conn)
    driver.execute(statement, sql)
    rows = []
    while True:
        row = driver.fetch_one(statement)
        if row is None:
            break
        rows.append(row)
    driver.close_statement(statement)
    return rows


# -- forward-drain equivalence -------------------------------------------------


def test_fetch_ahead_rows_identical_and_clock_lower():
    m0, n0, d0, c0 = build_world()
    t0 = m0.now
    rows0 = drain(d0, c0)
    seed_clock = m0.now - t0

    m1, n1, d1, c1 = build_world(fetch_ahead_depth=2)
    t1 = m1.now
    rows1 = drain(d1, c1)
    pf_clock = m1.now - t1

    assert rows1 == rows0
    assert len(rows0) == ROWS
    assert pf_clock < seed_clock
    assert m1.counters["prefetch_hits"] > 0
    assert m1.counters["prefetch_overlap_seconds"] > 0
    # Fetch-ahead reorders *when* round trips happen, not how many.
    assert n1.requests_sent == n0.requests_sent


def test_adaptive_batching_cuts_fetch_round_trips():
    m0, n0, d0, c0 = build_world()
    rows0 = drain(d0, c0)
    fetches0 = m0.counters["net.requests.FetchRequest"]

    m1, n1, d1, c1 = build_world(fetch_ahead_depth=2,
                                 fetch_batch_max_bytes=8192,
                                 output_buffer_max_bytes=256 * 1024)
    t1 = m1.now
    rows1 = drain(d1, c1)
    fetches1 = m1.counters["net.requests.FetchRequest"]

    assert rows1 == rows0
    assert fetches0 > 0
    assert fetches1 <= 0.8 * fetches0, (
        f"adaptive batching cut fetch round trips only "
        f"{fetches0} -> {fetches1}")
    assert n1.requests_sent < n0.requests_sent


def test_depth_zero_is_wire_identical_to_seed():
    """Every knob at default: same requests, same virtual clock."""
    m0, n0, d0, c0 = build_world()
    t0 = m0.now
    rows0 = drain(d0, c0)
    seed_clock = m0.now - t0
    seed_counters = dict(m0.counters)

    m1, n1, d1, c1 = build_world(fetch_ahead_depth=0,
                                 fetch_batch_max_bytes=0,
                                 output_buffer_max_bytes=0,
                                 persist_pipeline=False)
    t1 = m1.now
    rows1 = drain(d1, c1)

    assert rows1 == rows0
    assert m1.now - t1 == seed_clock
    assert dict(m1.counters) == seed_counters
    assert "prefetch_issued" not in m1.counters


# -- position / advance semantics ---------------------------------------------


def test_prefetched_rows_do_not_advance_position():
    meter, network, driver, conn = build_world(fetch_ahead_depth=2)
    statement = StatementHandle(conn)
    driver.execute(statement, "SELECT a, b FROM t ORDER BY a")
    result = statement.result
    delivered = 0
    while result.prefetch == [] and delivered < ROWS:
        driver.fetch_one(statement)
        delivered += 1
    assert result.prefetch, "fetch-ahead never went in flight"
    in_flight_rows = sum(len(e.response.rows) for e in result.prefetch)
    assert in_flight_rows > 0
    assert result.position == delivered
    driver.close_statement(statement)
    assert meter.counters["prefetch_wasted"] == \
        meter.counters["prefetch_issued"] - meter.counters.get(
            "prefetch_hits", 0)


def test_advance_clamps_on_fully_buffered_result():
    """Satellite fix: a result with no server-side remainder skips only
    what the client buffer holds, and ``position`` tracks reality."""
    meter, network, driver, conn = build_world()
    statement = StatementHandle(conn)
    # Single-batch result: the stream is exhausted, everything
    # client-side — a remote AdvanceRequest would have nothing to skip.
    driver.execute(statement, "SELECT a FROM t WHERE a < 5 ORDER BY a")
    result = statement.result
    assert result.done
    before = network.requests_sent
    skipped = driver.advance(statement, 50)
    assert skipped == 5
    assert result.position == 5
    assert network.requests_sent == before  # no remote round trip
    assert driver.fetch_one(statement) is None


def test_advance_consumes_in_flight_batches_exactly_once():
    meter, network, driver, conn = build_world(fetch_ahead_depth=2)
    statement = StatementHandle(conn)
    driver.execute(statement, "SELECT a, b FROM t ORDER BY a")
    result = statement.result
    # Drain into prefetch territory, then skip across the in-flight
    # batches: the landing row must be exactly first-row + delivered +
    # skipped, proving in-flight rows were neither lost nor re-shipped.
    delivered = 0
    while not result.prefetch:
        driver.fetch_one(statement)
        delivered += 1
    skip = sum(len(e.response.rows) for e in result.prefetch) + 3
    skipped = driver.advance(statement, skip)
    assert skipped == skip
    row = driver.fetch_one(statement)
    assert row[0] == delivered + skip
    driver.close_statement(statement)


# -- crash semantics ----------------------------------------------------------


def test_crash_discards_in_flight_batches():
    meter, network, driver, conn = build_world(fetch_ahead_depth=2)
    statement = StatementHandle(conn)
    driver.execute(statement, "SELECT a, b FROM t ORDER BY a")
    result = statement.result
    seen = []
    while not result.prefetch:
        seen.append(driver.fetch_one(statement))
    in_flight = len(result.prefetch)
    assert in_flight > 0
    driver.server.crash()
    driver.server.restart()
    # Client-buffered rows are still client property and deliver fine;
    # the in-flight batches died with the old incarnation.
    while result.buffered:
        seen.append(driver.fetch_one(statement))
    with pytest.raises(ConnectionLostError):
        driver.fetch_one(statement)
    assert meter.counters["prefetch_wasted"] == in_flight
    assert result.prefetch == []
    assert seen == sorted(seen)
    assert len(seen) == len(set(seen))
    assert result.position == len(seen)


# -- cursors ------------------------------------------------------------------


def test_static_cursor_materialize_consumes_prefetch_exactly_once():
    m0, _n0, d0, c0 = build_world()
    s0 = StatementHandle(c0)
    s0.attrs[SQL_ATTR_CURSOR_TYPE] = SQL_CURSOR_STATIC
    d0.execute(s0, "SELECT a, b FROM t ORDER BY a")
    seed_rows = list(s0.result.static_rows)

    m1, _n1, d1, c1 = build_world(fetch_ahead_depth=3)
    s1 = StatementHandle(c1)
    s1.attrs[SQL_ATTR_CURSOR_TYPE] = SQL_CURSOR_STATIC
    d1.execute(s1, "SELECT a, b FROM t ORDER BY a")
    result = s1.result

    assert result.static_rows == seed_rows
    assert len(result.static_rows) == ROWS
    assert result.prefetch == [], "materialize left a batch in flight"
    assert m1.counters["prefetch_hits"] > 0
    assert m1.counters.get("prefetch_wasted", 0) == 0


def test_fetch_prior_after_prefetch_does_not_double_charge():
    meter, network, driver, conn = build_world(fetch_ahead_depth=2)
    statement = StatementHandle(conn)
    statement.attrs[SQL_ATTR_CURSOR_TYPE] = SQL_CURSOR_STATIC
    driver.execute(statement, "SELECT a, b FROM t ORDER BY a")
    first = driver.fetch_one(statement)
    second = driver.fetch_one(statement)
    assert (first[0], second[0]) == (0, 1)
    requests_before = network.requests_sent
    clock_before = meter.now
    row = driver.fetch_scroll(statement, SQL_FETCH_PRIOR)
    assert row == first
    # Scrolling a materialized cursor is pure client CPU: exactly one
    # SQLFetchScroll charge, no wire traffic, no re-realized prefetch.
    assert meter.now - clock_before == pytest.approx(
        meter.costs.client_fetch_seconds)
    assert network.requests_sent == requests_before


# -- adaptive output buffer ---------------------------------------------------


def test_adaptive_output_buffer_grows_refill():
    small = 256
    m0, _n0, d0, c0 = build_world(output_buffer_bytes=small)
    rows0 = drain(d0, c0)
    fetches0 = m0.counters["net.requests.FetchRequest"]

    m1, _n1, d1, c1 = build_world(output_buffer_bytes=small,
                                  output_buffer_max_bytes=64 * 1024)
    rows1 = drain(d1, c1)
    fetches1 = m1.counters["net.requests.FetchRequest"]

    assert rows1 == rows0
    # A grown refill target keeps the buffer ahead of the default wire
    # batch, so the count of suspensions/refills must not rise; the
    # visible round-trip win comes from pairing it with bigger wire
    # batches.
    assert fetches1 <= fetches0
    m2, _n2, d2, c2 = build_world(output_buffer_bytes=small,
                                  output_buffer_max_bytes=64 * 1024,
                                  fetch_batch_max_bytes=8192)
    rows2 = drain(d2, c2)
    assert rows2 == rows0
    assert m2.counters["net.requests.FetchRequest"] < fetches0


# -- phoenix persist pipelining ----------------------------------------------


def _phoenix_persist_world(**cost_overrides):
    costs = CostModel(**cost_overrides)
    server = DatabaseServer(meter=Meter(costs))
    setup = BenchmarkApp(server)
    setup.run_statement("CREATE TABLE big (k INT NOT NULL, pad "
                        "VARCHAR(60), PRIMARY KEY (k))")
    for i in range(60):
        setup.run_statement(f"INSERT INTO big VALUES ({i}, 'p-{i}')")
    app = BenchmarkApp(server, use_phoenix=True,
                       phoenix_config=PhoenixConfig(client_cache_rows=0))
    server.meter.reset_traces()
    return server, app


def test_persist_pipeline_same_rows_lower_clock():
    server0, app0 = _phoenix_persist_world()
    t0 = app0.meter.now
    rows0 = app0.query_rows("SELECT k, pad FROM big ORDER BY k")
    seed_clock = app0.meter.now - t0

    server1, app1 = _phoenix_persist_world(persist_pipeline=True)
    t1 = app1.meter.now
    rows1 = app1.query_rows("SELECT k, pad FROM big ORDER BY k")
    pipe_clock = app1.meter.now - t1

    assert rows1 == rows0 and len(rows0) == 60
    assert app1.meter.counters["pipeline_requests"] > 0
    assert pipe_clock < seed_clock
    saved = (app1.meter.counters["pipeline_overlap_seconds"]
             - app1.meter.counters.get("pipeline_stall_seconds", 0.0))
    assert saved == pytest.approx(seed_clock - pipe_clock)


# -- observability ------------------------------------------------------------


def test_sys_network_view_reports_round_trip_ledger():
    server, app = _phoenix_persist_world(persist_pipeline=True,
                                         fetch_ahead_depth=2)
    app.query_rows("SELECT k, pad FROM big ORDER BY k")
    rows = app.query_rows("SELECT metric, value FROM sys_network")
    ledger = dict(rows)
    assert ledger["net.requests_sent"] > 0
    assert ledger["net.wire_bytes_up"] > 0
    assert ledger["net.wire_bytes_down"] > 0
    assert ledger["net.requests.ExecuteRequest"] > 0
    assert ledger["net.bytes_down.ExecuteRequest"] > 0
    assert ledger["pipeline_requests"] > 0
    assert all(name.startswith(("net.", "prefetch_", "pipeline_"))
               for name in ledger)
    # The view reads the same counters the network mirrors into the
    # metrics registry (satellite: requests_sent is now observable) —
    # modulo the requests the two view queries themselves sent.
    assert ledger["net.requests_sent"] <= app.network.requests_sent


def test_overlap_window_records_without_clocking():
    meter = Meter(CostModel())
    with meter.request("r") as trace:
        meter.charge(NETWORK, 1.0, "before")
        sink = meter.begin_overlap()
        meter.charge(NETWORK, 5.0, "inside")
        service = meter.end_overlap(sink)
        meter.charge(NETWORK, 0.5, "after")
    assert service == 5.0
    assert meter.clock.now == 1.5
    # Suppressed segments stay out of the request trace (the caller
    # charges the unoverlapped remainder itself) but still hit metrics.
    assert [s.note for s in trace.segments] == ["before", "after"]
    assert meter.obs.metrics.counters == {}
    with pytest.raises(ValueError):
        inner = meter.begin_overlap()
        try:
            meter.begin_overlap()
        finally:
            meter.end_overlap(inner)

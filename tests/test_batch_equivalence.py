"""Batch engine vs. row engine: bit-identical virtual outputs.

The batch-at-a-time executor is a host-time optimization; the original
row-at-a-time operators are retained behind ``REPRO_ROW_EXEC=1``.  These
tests run identical workloads in both modes and require *exact* equality
of every virtual output: row streams, the virtual clock, and the meter's
counters.  Any drift means a batch operator charges differently from the
row loop it replaced.
"""

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.meter import Meter


@pytest.fixture(params=["batch", "rows"])
def exec_mode(request, monkeypatch):
    """Run the decorated test once per executor mode."""
    if request.param == "rows":
        monkeypatch.setenv("REPRO_ROW_EXEC", "1")
    else:
        monkeypatch.delenv("REPRO_ROW_EXEC", raising=False)
    return request.param


def _set_mode(monkeypatch, mode: str) -> None:
    if mode == "rows":
        monkeypatch.setenv("REPRO_ROW_EXEC", "1")
    else:
        monkeypatch.delenv("REPRO_ROW_EXEC", raising=False)


# ---------------------------------------------------------------------------
# TPC-H power run
# ---------------------------------------------------------------------------


def _tpch_power_outputs(cost_mode: bool = False):
    """(rows per query, final clock, counters) of a small power run."""
    from repro.workloads.tpch.datagen import generate
    from repro.workloads.tpch.queries import QUERIES
    from repro.workloads.tpch.schema import create_schema, load

    engine = DatabaseEngine(meter=Meter(), plan_cache_capacity=128)
    session = EngineSession(session_id=1)
    create_schema(engine, session)
    load(engine, session, generate(scale=0.0005, seed=11))
    if cost_mode:
        engine.execute("ANALYZE", session)
        engine.meter.costs.optimizer_mode = "cost"
    outputs = []
    for number in sorted(QUERIES):
        outputs.append((number,
                        engine.execute(QUERIES[number],
                                       session).fetch_all()))
    return outputs, engine.meter.now, dict(engine.meter.counters)


@pytest.mark.parametrize("cost_mode", [False, True],
                         ids=["heuristic", "cost"])
def test_tpch_power_batch_vs_row_bit_identical(monkeypatch, cost_mode):
    """Bit-identity holds under the cost-based optimizer too: the new
    operators (TopNHeapSort, SortMergeJoin) and reordered joins must
    charge the batch path exactly what the row path charges."""
    _set_mode(monkeypatch, "batch")
    batch_rows, batch_clock, batch_counters = _tpch_power_outputs(
        cost_mode)
    _set_mode(monkeypatch, "rows")
    row_rows, row_clock, row_counters = _tpch_power_outputs(cost_mode)

    for (num_b, rows_b), (num_r, rows_r) in zip(batch_rows, row_rows):
        assert num_b == num_r
        assert rows_b == rows_r, f"rows diverged on TPC-H Q{num_b}"
    assert batch_clock == row_clock
    assert batch_counters == row_counters
    if cost_mode:
        assert batch_counters.get("optimizer.plans_costed", 0) > 0


# ---------------------------------------------------------------------------
# Phoenix crash fuzzer workload
# ---------------------------------------------------------------------------


def _crash_run(crash_at: int | None, prefetch: bool = False,
               result_cache: bool = False, cost_mode: bool = False):
    """Observed app outputs + clock for one crash-injected run."""
    from tests.test_phoenix_crash_fuzz import build_world, workload

    # The shared result cache admits via the §4 client cache, so the
    # cache-on variant turns both on — hits then bypass the server in
    # both executor modes, and the equivalence must still hold to the
    # bit (including the result_cache.* counters).
    server, app = build_world(cache_rows=100 if result_cache else 0,
                              prefetch=prefetch,
                              result_cache=result_cache,
                              cost_mode=cost_mode)
    if crash_at is not None:
        fired = {"count": 0, "done": False}

        def injector(request):
            fired["count"] += 1
            if fired["count"] == crash_at and not fired["done"]:
                fired["done"] = True
                server.crash()
                server.restart()

        app.network.fault_injector = injector
    return workload(app), app.meter.now, dict(app.meter.counters)


@pytest.mark.parametrize("prefetch,result_cache,cost_mode",
                         [(False, False, False), (True, False, False),
                          (False, True, False), (False, False, True)],
                         ids=["seed", "prefetch", "shared-cache",
                              "cost"])
@pytest.mark.parametrize("crash_at", [None, 3, 7, 11])
def test_phoenix_crash_workload_batch_vs_row(monkeypatch, crash_at,
                                             prefetch, result_cache,
                                             cost_mode):
    """Bit-identity holds with pipelined result delivery on, too: the
    overlap windows charge the same seconds in both executor modes.
    Likewise with the shared result cache — a hit skips the server in
    both modes, so clock and counters must still match exactly — and
    with the cost-based optimizer, whose plans must charge identically
    in both executor modes."""
    _set_mode(monkeypatch, "batch")
    batch = _crash_run(crash_at, prefetch, result_cache, cost_mode)
    _set_mode(monkeypatch, "rows")
    rows = _crash_run(crash_at, prefetch, result_cache, cost_mode)
    assert batch[0] == rows[0], f"observed outputs diverged (crash_at="\
                                f"{crash_at})"
    assert batch[1] == rows[1], f"virtual clock diverged (crash_at="\
                                f"{crash_at})"
    assert batch[2] == rows[2], f"counters diverged (crash_at={crash_at})"


# ---------------------------------------------------------------------------
# Mixed DML + join workload on the bare engine
# ---------------------------------------------------------------------------


def _mixed_dml_outputs():
    engine = DatabaseEngine(meter=Meter(), plan_cache_capacity=128)
    session = EngineSession(session_id=1)
    run = lambda sql: engine.execute(sql, session)
    run("CREATE TABLE acct (id INT NOT NULL, owner VARCHAR(10), "
        "balance INT, PRIMARY KEY (id))")
    run("CREATE TABLE movement (acct_id INT, delta INT)")
    run("CREATE INDEX ix_move ON movement (acct_id)")
    run("INSERT INTO acct VALUES " + ", ".join(
        f"({i}, 'own{i % 3}', {i * 100})" for i in range(1, 21)))
    run("INSERT INTO movement VALUES " + ", ".join(
        f"({1 + (i * 7) % 20}, {(-1) ** i * i})" for i in range(40)))
    outputs = []
    for _ in range(3):  # repeat so the plan cache's hot path is exercised
        run("UPDATE acct SET balance = balance + 1 "
            "WHERE id IN (2, 4, 6, 8)")
        run("DELETE FROM movement WHERE delta = 0")
        run("INSERT INTO movement VALUES (3, 5), (9, -2)")
        outputs.append(run(
            "SELECT a.owner, count(*), sum(m.delta) "
            "FROM acct a, movement m WHERE a.id = m.acct_id "
            "GROUP BY a.owner ORDER BY a.owner").fetch_all())
        outputs.append(run(
            "SELECT id, balance FROM acct WHERE balance > 500 "
            "ORDER BY balance DESC").fetch_all())
    return outputs, engine.meter.now, dict(engine.meter.counters)


def test_mixed_dml_batch_vs_row_bit_identical(monkeypatch):
    _set_mode(monkeypatch, "batch")
    batch = _mixed_dml_outputs()
    _set_mode(monkeypatch, "rows")
    rows = _mixed_dml_outputs()
    assert batch[0] == rows[0]
    assert batch[1] == rows[1]
    assert batch[2] == rows[2]


# ---------------------------------------------------------------------------
# sys_executor view
# ---------------------------------------------------------------------------


def test_sys_executor_view_reports_batch_activity():
    engine = DatabaseEngine(meter=Meter(), plan_cache_capacity=128)
    session = EngineSession(session_id=1)
    engine.execute("CREATE TABLE t (a INT, b VARCHAR(4))", session)
    engine.execute("INSERT INTO t VALUES " + ", ".join(
        f"({i}, 'v{i % 5}')" for i in range(50)), session)
    for _ in range(3):
        engine.execute("SELECT b, count(*) FROM t WHERE a > 10 "
                       "GROUP BY b ORDER BY b", session).fetch_all()
    stats = dict(engine.execute(
        "SELECT metric, value FROM sys_executor", session).fetch_all())
    assert stats, "sys_executor returned no rows"
    batch_totals = [v for k, v in stats.items() if k.startswith("batches.")]
    assert batch_totals and sum(batch_totals) > 0
    assert all(isinstance(v, int) and v >= 0 for v in stats.values())


def test_sys_executor_counts_stay_out_of_meter_counters():
    """Executor diagnostics must not leak into the fidelity counters."""
    engine = DatabaseEngine(meter=Meter(), plan_cache_capacity=128)
    session = EngineSession(session_id=1)
    engine.execute("CREATE TABLE t (a INT)", session)
    engine.execute("INSERT INTO t VALUES (1), (2), (3)", session)
    engine.execute("SELECT a FROM t WHERE a > 1", session).fetch_all()
    assert engine.meter.executor_stats  # diagnostics were recorded
    assert not any(key.startswith("batches.")
                   for key in engine.meter.counters)

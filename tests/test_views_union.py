"""Tests for views and UNION support."""

import pytest

from repro.errors import EngineError, PlanningError


@pytest.fixture
def numbers(run):
    run("CREATE TABLE odds (n INT)")
    run("CREATE TABLE evens (n INT)")
    run("INSERT INTO odds VALUES (1), (3), (5)")
    run("INSERT INTO evens VALUES (2), (4), (4)")


class TestUnion:
    def test_union_dedups(self, run, numbers):
        rows = run("SELECT n FROM odds UNION SELECT n FROM evens "
                   "ORDER BY n")
        assert rows == [(1,), (2,), (3,), (4,), (5,)]

    def test_union_all_keeps_duplicates(self, run, numbers):
        rows = run("SELECT n FROM evens UNION ALL SELECT n FROM evens")
        assert len(rows) == 6

    def test_union_dedups_across_inputs(self, run, numbers):
        rows = run("SELECT n FROM evens UNION SELECT n FROM evens")
        assert sorted(rows) == [(2,), (4,)]

    def test_three_way_chain(self, run, numbers):
        rows = run("SELECT n FROM odds UNION SELECT n FROM evens "
                   "UNION ALL SELECT 99 ORDER BY 1")
        assert rows[-1] == (99,)
        # Mixed chain with a plain UNION dedups the whole result.
        assert len(rows) == 6

    def test_order_by_position_and_name(self, run, numbers):
        by_name = run("SELECT n FROM odds UNION SELECT n FROM evens "
                      "ORDER BY n DESC")
        assert by_name[0] == (5,)
        by_pos = run("SELECT n FROM odds UNION SELECT n FROM evens "
                     "ORDER BY 1 DESC")
        assert by_pos == by_name

    def test_limit_applies_to_union(self, run, numbers):
        rows = run("SELECT n FROM odds UNION SELECT n FROM evens "
                   "ORDER BY n LIMIT 2")
        assert rows == [(1,), (2,)]

    def test_arity_mismatch_rejected(self, run, numbers):
        with pytest.raises(PlanningError):
            run("SELECT n FROM odds UNION SELECT n, n FROM evens")

    def test_union_in_derived_table(self, run, numbers):
        rows = run("SELECT count(*) FROM "
                   "(SELECT n FROM odds UNION ALL SELECT n FROM evens) u")
        assert rows == [(6,)]

    def test_union_in_subquery(self, run, numbers):
        rows = run("SELECT n FROM odds WHERE n IN "
                   "(SELECT n FROM evens UNION SELECT 3)")
        assert rows == [(3,)]

    def test_insert_from_union(self, run, numbers):
        run("CREATE TABLE all_n (n INT)")
        count = run("INSERT INTO all_n SELECT n FROM odds "
                    "UNION SELECT n FROM evens")
        assert count == 5


class TestViews:
    def test_create_and_query(self, run, numbers):
        run("CREATE VIEW big_odds AS SELECT n FROM odds WHERE n > 1")
        assert sorted(run("SELECT * FROM big_odds")) == [(3,), (5,)]

    def test_view_with_alias_and_join(self, run, numbers):
        run("CREATE VIEW v AS SELECT n FROM odds")
        rows = run("SELECT a.n, b.n FROM v a, v b WHERE a.n = b.n")
        assert len(rows) == 3

    def test_view_reflects_base_changes(self, run, numbers):
        run("CREATE VIEW v AS SELECT n FROM odds")
        run("INSERT INTO odds VALUES (7)")
        assert (7,) in run("SELECT * FROM v")

    def test_view_over_union(self, run, numbers):
        run("CREATE VIEW both_v AS SELECT n FROM odds "
            "UNION SELECT n FROM evens")
        assert len(run("SELECT * FROM both_v")) == 5

    def test_view_of_view(self, run, numbers):
        run("CREATE VIEW v1 AS SELECT n FROM odds")
        run("CREATE VIEW v2 AS SELECT n FROM v1 WHERE n >= 3")
        assert sorted(run("SELECT * FROM v2")) == [(3,), (5,)]

    def test_view_with_aggregation(self, run, numbers):
        run("CREATE VIEW totals AS SELECT count(*) AS c, sum(n) AS s "
            "FROM odds")
        assert run("SELECT c, s FROM totals") == [(3, 9)]

    def test_predicates_push_into_view(self, run, numbers):
        run("CREATE VIEW v AS SELECT n FROM odds")
        assert run("SELECT n FROM v WHERE n = 3") == [(3,)]

    def test_drop_view(self, run, numbers):
        run("CREATE VIEW v AS SELECT n FROM odds")
        run("DROP VIEW v")
        from repro.errors import TableNotFoundError

        with pytest.raises(TableNotFoundError):
            run("SELECT * FROM v")

    def test_drop_missing_view_fails(self, run):
        with pytest.raises(EngineError):
            run("DROP VIEW ghost")

    def test_invalid_definition_rejected(self, run, numbers):
        with pytest.raises(PlanningError):
            run("CREATE VIEW v AS DELETE FROM odds")
        from repro.errors import ColumnNotFoundError

        with pytest.raises(ColumnNotFoundError):
            run("CREATE VIEW v AS SELECT ghost FROM odds")

    def test_duplicate_view_rejected(self, run, numbers):
        run("CREATE VIEW v AS SELECT n FROM odds")
        with pytest.raises(EngineError):
            run("CREATE VIEW v AS SELECT n FROM evens")

    def test_view_name_cannot_shadow_table(self, run, numbers):
        with pytest.raises(EngineError):
            run("CREATE VIEW odds AS SELECT n FROM evens")


class TestViewRecovery:
    def test_views_survive_crash(self):
        from tests.test_engine_recovery import CrashHarness

        harness = CrashHarness()
        harness.run("CREATE TABLE t (a INT)")
        harness.run("INSERT INTO t VALUES (1), (2)")
        harness.run("CREATE VIEW v AS SELECT a FROM t WHERE a > 1")
        harness.crash()
        harness.restart()
        assert harness.run("SELECT * FROM v") == [(2,)]

    def test_uncommitted_view_rolled_back(self):
        from tests.test_engine_recovery import CrashHarness

        harness = CrashHarness()
        harness.run("CREATE TABLE t (a INT)")
        harness.run("BEGIN TRANSACTION")
        harness.run("CREATE VIEW doomed AS SELECT a FROM t")
        harness.engine.wal.force()
        harness.crash()
        harness.restart()
        assert harness.engine.catalog.get_view("doomed") is None

    def test_dropped_view_stays_dropped(self):
        from tests.test_engine_recovery import CrashHarness

        harness = CrashHarness()
        harness.run("CREATE TABLE t (a INT)")
        harness.run("CREATE VIEW v AS SELECT a FROM t")
        harness.engine.checkpoint()
        harness.run("DROP VIEW v")
        harness.crash()
        harness.restart()
        assert harness.engine.catalog.get_view("v") is None

    def test_view_rollback_online(self):
        from tests.test_engine_recovery import CrashHarness

        harness = CrashHarness()
        harness.run("CREATE TABLE t (a INT)")
        harness.run("BEGIN TRANSACTION")
        harness.run("CREATE VIEW v AS SELECT a FROM t")
        harness.run("ROLLBACK")
        assert harness.engine.catalog.get_view("v") is None


class TestQ15WithView:
    """Q15 can now be written with the official CREATE VIEW form."""

    def test_official_q15_formulation(self, engine, session):
        from repro.workloads.tpch.datagen import generate
        from repro.workloads.tpch.schema import create_schema, load

        create_schema(engine, session)
        load(engine, session, generate(scale=0.0005, seed=11))
        engine.execute(
            "CREATE VIEW revenue0 AS "
            "SELECT l_suppkey AS supplier_no, "
            "sum(l_extendedprice * (1 - l_discount)) AS total_revenue "
            "FROM lineitem WHERE l_shipdate >= date '1996-01-01' "
            "AND l_shipdate < date '1996-01-01' + interval '3' month "
            "GROUP BY l_suppkey", session)
        rows = engine.execute(
            "SELECT s_suppkey, s_name, s_address, s_phone, total_revenue "
            "FROM supplier, revenue0 WHERE s_suppkey = supplier_no "
            "AND total_revenue = (SELECT max(total_revenue) FROM revenue0) "
            "ORDER BY s_suppkey", session).fetch_all()
        # Compare against the inlined formulation used by the harness.
        from repro.workloads.tpch.queries import Q15

        expected = engine.execute(Q15, session).fetch_all()
        assert rows == expected

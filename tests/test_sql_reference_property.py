"""Property-based test: the engine agrees with a naive reference evaluator.

Hypothesis generates random small tables and random simple queries
(filters, projections, aggregates, order, joins); the engine's answer is
compared against a straightforward in-Python evaluation of the same
semantics.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.meter import Meter

COLUMNS = ("a", "b", "c")


@st.composite
def table_rows(draw):
    n = draw(st.integers(0, 25))
    return [
        (draw(st.integers(-5, 5)),
         draw(st.one_of(st.none(), st.integers(-3, 3))),
         draw(st.sampled_from(["x", "y", "z"])))
        for _ in range(n)
    ]


def make_engine(rows):
    engine = DatabaseEngine(meter=Meter())
    session = EngineSession(session_id=1)
    engine.execute("CREATE TABLE t (a INT, b INT, c VARCHAR(2))", session)
    if rows:
        values = ", ".join(
            f"({a}, {'NULL' if b is None else b}, '{c}')"
            for a, b, c in rows)
        engine.execute(f"INSERT INTO t VALUES {values}", session)
    return engine, session


def run(engine, session, sql):
    return engine.execute(sql, session).fetch_all()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=table_rows(), threshold=st.integers(-5, 5))
def test_filter_matches_reference(rows, threshold):
    engine, session = make_engine(rows)
    got = run(engine, session,
              f"SELECT a FROM t WHERE a > {threshold} ORDER BY a")
    expected = sorted(a for a, _b, _c in rows if a > threshold)
    assert [r[0] for r in got] == expected


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=table_rows())
def test_null_aware_filter_matches_reference(rows):
    engine, session = make_engine(rows)
    got = run(engine, session, "SELECT b FROM t WHERE b <> 1 ORDER BY b")
    # SQL: NULLs never satisfy <>.
    expected = sorted(b for _a, b, _c in rows
                      if b is not None and b != 1)
    assert [r[0] for r in got] == expected


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=table_rows())
def test_aggregates_match_reference(rows):
    engine, session = make_engine(rows)
    got = run(engine, session,
              "SELECT count(*), count(b), sum(a), min(a), max(a) FROM t")
    count_star, count_b, total, lo, hi = got[0]
    assert count_star == len(rows)
    assert count_b == sum(1 for _a, b, _c in rows if b is not None)
    if rows:
        assert total == sum(a for a, _b, _c in rows)
        assert lo == min(a for a, _b, _c in rows)
        assert hi == max(a for a, _b, _c in rows)
    else:
        assert total is None and lo is None and hi is None


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=table_rows())
def test_group_by_matches_reference(rows):
    engine, session = make_engine(rows)
    got = run(engine, session,
              "SELECT c, count(*), sum(a) FROM t GROUP BY c ORDER BY c")
    expected = {}
    for a, _b, c in rows:
        count, total = expected.get(c, (0, 0))
        expected[c] = (count + 1, total + a)
    assert [(c, n, s) for c, n, s in got] == [
        (c, expected[c][0], expected[c][1]) for c in sorted(expected)]


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=table_rows(), other=table_rows())
def test_join_matches_reference(rows, other):
    engine, session = make_engine(rows)
    engine.execute("CREATE TABLE u (x INT, y INT, z VARCHAR(2))", session)
    if other:
        values = ", ".join(
            f"({x}, {'NULL' if y is None else y}, '{z}')"
            for x, y, z in other)
        engine.execute(f"INSERT INTO u VALUES {values}", session)
    got = run(engine, session,
              "SELECT a, x FROM t, u WHERE a = x ORDER BY a, x")
    expected = sorted((a, x) for a, _b, _c in rows
                      for x, _y, _z in other if a == x)
    assert got == expected


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=table_rows(), n=st.integers(0, 10))
def test_top_and_distinct_match_reference(rows, n):
    engine, session = make_engine(rows)
    got = run(engine, session,
              f"SELECT TOP {n} DISTINCT a FROM t ORDER BY a")
    expected = sorted(set(a for a, _b, _c in rows))[:n]
    assert [r[0] for r in got] == expected


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=table_rows())
def test_update_matches_reference(rows):
    engine, session = make_engine(rows)
    engine.execute("UPDATE t SET a = a * 2 WHERE c = 'x'", session)
    got = run(engine, session, "SELECT a FROM t ORDER BY a")
    expected = sorted(a * 2 if c == "x" else a for a, _b, c in rows)
    assert [r[0] for r in got] == expected


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=table_rows())
def test_delete_matches_reference(rows):
    engine, session = make_engine(rows)
    engine.execute("DELETE FROM t WHERE b IS NULL", session)
    got = run(engine, session, "SELECT count(*) FROM t")
    assert got[0][0] == sum(1 for _a, b, _c in rows if b is not None)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=table_rows(), threshold=st.integers(-5, 5))
def test_batch_and_row_engines_bit_identical(rows, threshold):
    """The batch executor must match row-at-a-time mode exactly —
    same rows AND same virtual clock — on randomized inputs."""
    import os

    queries = [
        f"SELECT a, c FROM t WHERE a > {threshold} ORDER BY a, c",
        "SELECT c, count(*), sum(a) FROM t GROUP BY c ORDER BY c",
        f"SELECT TOP 3 DISTINCT a FROM t WHERE b <> {threshold} "
        "ORDER BY a",
    ]

    def outputs():
        engine, session = make_engine(rows)
        got = [run(engine, session, sql) for sql in queries]
        return got, engine.meter.now, dict(engine.meter.counters)

    saved = os.environ.pop("REPRO_ROW_EXEC", None)
    try:
        batch = outputs()
        os.environ["REPRO_ROW_EXEC"] = "1"
        row = outputs()
    finally:
        if saved is None:
            os.environ.pop("REPRO_ROW_EXEC", None)
        else:
            os.environ["REPRO_ROW_EXEC"] = saved
    assert batch[0] == row[0]
    assert batch[1] == row[1]
    assert batch[2] == row[2]

"""Unit tests for expression semantics: 3VL, LIKE, dates, comparisons."""

import datetime

import pytest

from repro.errors import TypeMismatchError
from repro.sql.expressions import (
    _IntervalValue,
    _shift_date,
    is_true,
    like_match,
    sql_and,
    sql_compare,
    sql_not,
    sql_or,
)


class TestThreeValuedLogic:
    @pytest.mark.parametrize("a,b,expected", [
        (True, True, True), (True, False, False), (False, False, False),
        (True, None, None), (None, None, None), (False, None, False),
    ])
    def test_and(self, a, b, expected):
        assert sql_and(a, b) is expected
        assert sql_and(b, a) is expected

    @pytest.mark.parametrize("a,b,expected", [
        (True, True, True), (True, False, True), (False, False, False),
        (True, None, True), (None, None, None), (False, None, None),
    ])
    def test_or(self, a, b, expected):
        assert sql_or(a, b) is expected
        assert sql_or(b, a) is expected

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None

    def test_is_true(self):
        assert is_true(True)
        assert not is_true(False)
        assert not is_true(None)


class TestCompare:
    def test_null_propagates(self):
        assert sql_compare("=", None, 1) is None
        assert sql_compare("<", 1, None) is None

    def test_numbers_and_strings(self):
        assert sql_compare("<", 1, 2) is True
        assert sql_compare(">=", 2.5, 2.5) is True
        assert sql_compare("=", "abc", "abc") is True
        assert sql_compare("<>", "a", "b") is True

    def test_dates(self):
        a = datetime.date(1995, 1, 1)
        b = datetime.date(1996, 1, 1)
        assert sql_compare("<", a, b) is True

    def test_numeric_string_coercion(self):
        assert sql_compare("=", "2", 2) is True
        assert sql_compare("<", 1, "10") is True

    def test_incompatible_types_raise(self):
        with pytest.raises(TypeMismatchError):
            sql_compare("<", datetime.date(2000, 1, 1), 5)


class TestLike:
    @pytest.mark.parametrize("value,pattern,expected", [
        ("hello", "hello", True),
        ("hello", "h%", True),
        ("hello", "%llo", True),
        ("hello", "h_llo", True),
        ("hello", "H%", False),       # LIKE is case-sensitive
        ("hello", "%z%", False),
        ("a.b", "a.b", True),          # dots are literal, not regex
        ("axb", "a.b", False),
        ("", "%", True),
        ("special%requests", "%special%requests%", True),
    ])
    def test_patterns(self, value, pattern, expected):
        assert like_match(value, pattern) is expected

    def test_null(self):
        assert like_match(None, "%") is None
        assert like_match("x", None) is None


class TestDateArithmetic:
    def test_add_days(self):
        d = datetime.date(1998, 12, 1)
        assert _IntervalValue(90, "day").subtract_from(d) == \
            datetime.date(1998, 9, 2)

    def test_add_months_clamps_day(self):
        d = datetime.date(1999, 1, 31)
        assert _shift_date(d, 1, "month") == datetime.date(1999, 2, 28)

    def test_add_years(self):
        d = datetime.date(1994, 1, 1)
        assert _IntervalValue(1, "year").add_to(d) == \
            datetime.date(1995, 1, 1)

    def test_month_wraparound(self):
        d = datetime.date(1994, 11, 15)
        assert _shift_date(d, 3, "month") == datetime.date(1995, 2, 15)
        assert _shift_date(d, -12, "month") == datetime.date(1993, 11, 15)

"""Tests for the benchmark harness plumbing: reporting, orderings, CLI."""

import pytest

from repro.bench.reporting import format_table
from repro.workloads.tpch.throughput import STREAM_ORDERINGS


class TestReporting:
    def test_basic_table(self):
        text = format_table("Title", ["A", "B"],
                            [["x", 1.5], ["yy", 22.0]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="
        assert "A" in lines[2] and "B" in lines[2]
        assert "x" in lines[4]

    def test_footers_separated(self):
        text = format_table("T", ["A"], [["r1"]], footers=[["total"]])
        lines = text.splitlines()
        dashes = [i for i, line in enumerate(lines)
                  if set(line.strip()) == {"-"} or "-" in line
                  and set(line.replace(" ", "")) == {"-"}]
        assert len(dashes) >= 2  # header rule and footer rule

    def test_number_formatting(self):
        text = format_table("T", ["V"],
                            [[1234.5678], [0.00012], [3.14159], [0.0]])
        assert "1234.6" in text
        assert "0.0001" in text
        assert "3.142" in text
        assert "0.000" in text

    def test_alignment_widths(self):
        text = format_table("T", ["Name", "N"],
                            [["a-very-long-label", 1]])
        header, rule, row = text.splitlines()[2:5]
        assert len(rule) >= len("a-very-long-label")


class TestStreamOrderings:
    def test_each_is_a_permutation_of_22(self):
        for ordering in STREAM_ORDERINGS:
            assert sorted(ordering) == list(range(1, 23))

    def test_orderings_differ(self):
        assert len({tuple(o) for o in STREAM_ORDERINGS}) \
            == len(STREAM_ORDERINGS)


class TestCli:
    def test_micro_via_cli(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        rc = main(["micro", "--scale", "0.001", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Micro overheads" in out
        assert (tmp_path / "micro.txt").exists()

    def test_unknown_experiment_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestRefreshSplitting:
    def test_halves_partition_key_range(self):
        from repro.workloads.tpch.datagen import (
            generate,
            generate_refresh_orders,
        )
        from repro.workloads.tpch.refresh import _split_by_order_key

        data = generate(scale=0.0005, seed=2)
        orders, lines = generate_refresh_orders(data, count=11, seed=3)
        halves = _split_by_order_key(orders, lines)
        assert len(halves) == 2
        all_orders = [o for half in halves for o in half[0]]
        assert sorted(o[0] for o in all_orders) == \
            sorted(o[0] for o in orders)
        first_keys = {o[0] for o in halves[0][0]}
        second_keys = {o[0] for o in halves[1][0]}
        assert max(first_keys) < min(second_keys)
        # Lineitems follow their orders.
        for order_half, line_half in halves:
            keys = {o[0] for o in order_half}
            assert {l[0] for l in line_half} == keys


class TestNotNullEnforcement:
    def test_explicit_null_rejected(self, run):
        from repro.errors import EngineError

        run("CREATE TABLE t (a INT NOT NULL, b INT)")
        with pytest.raises(EngineError):
            run("INSERT INTO t VALUES (NULL, 1)")

    def test_update_to_null_rejected(self, run):
        from repro.errors import EngineError

        run("CREATE TABLE t (a INT NOT NULL, b INT)")
        run("INSERT INTO t VALUES (1, 2)")
        with pytest.raises(EngineError):
            run("UPDATE t SET a = NULL")
        # Nullable columns still accept NULL.
        run("UPDATE t SET b = NULL")
        assert run("SELECT a, b FROM t") == [(1, None)]

"""Directed log-truncation safety regressions.

Truncation may only drop a prefix no future recovery can need:

* nothing at or above any active transaction's first LSN (undo walks
  that far back);
* nothing at or above any dirty page's recLSN (redo starts there);
* and if those invariants are violated by hand, recovery must fail
  *loudly* with ``LogTruncatedError`` — never silently recover wrong
  state from a hole in the log.
"""

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.errors import LogTruncatedError
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.wal.records import EndCheckpointRecord


def make_engine(costs: CostModel | None = None):
    engine = DatabaseEngine(meter=Meter(costs or CostModel()))
    session = EngineSession(session_id=1)

    def run(sql):
        result = engine.execute(sql, session)
        if result.kind == "rows":
            return result.fetch_all()
        if result.kind == "rowcount":
            return result.rowcount
        return None

    return engine, run, session


def crash(engine):
    engine.wal.crash()
    engine.buffer_pool.crash()


def test_truncation_preserves_loser_begun_before_checkpoint():
    """A transaction that began before the checkpoint pins the log: its
    whole undo chain must survive truncation, and after a crash the
    loser rolls back cleanly."""
    engine, run, _session = make_engine()
    run("CREATE TABLE t (k INT NOT NULL, v INT, PRIMARY KEY (k))")
    run("INSERT INTO t VALUES (1, 0)")
    committed = sorted(run("SELECT k, v FROM t"))

    run("BEGIN TRANSACTION")
    run("UPDATE t SET v = 99 WHERE k = 1")
    loser = next(iter(engine.txns.active_transactions.values()))
    for _ in range(5):
        engine.fuzzy_checkpoint(truncate=True)
    # The checkpoint chain kept the loser's first LSN reachable.
    assert engine.wal.truncated_lsn < loser.first_lsn
    end = engine.wal.last_complete_checkpoint()
    assert isinstance(end, EndCheckpointRecord)
    assert loser.txn_id in end.active_first_lsns

    engine.wal.force()
    crash(engine)
    restarted = DatabaseEngine.restart(engine.disk, engine.wal,
                                       meter=engine.meter)
    report = restarted.last_recovery
    assert loser.txn_id in report.losers
    session = EngineSession(session_id=2)
    rows = restarted.execute("SELECT k, v FROM t", session).fetch_all()
    assert sorted(rows) == committed


def test_truncation_preserves_dirty_page_reclsn():
    """An unflushed page's recLSN caps the truncation point — redo must
    still find the records that rebuild the page."""
    engine, run, _session = make_engine()
    run("CREATE TABLE t (k INT NOT NULL, v INT, PRIMARY KEY (k))")
    run("INSERT INTO t VALUES (1, 0)")
    engine.buffer_pool.flush_all()
    run("UPDATE t SET v = 7 WHERE k = 1")
    rec_lsn = min(engine.buffer_pool.dirty_page_table().values())
    assert rec_lsn > 0
    engine.fuzzy_checkpoint(truncate=True)
    assert engine.wal.truncated_lsn < rec_lsn
    # The page stayed dirty (hot), so recovery redoes from its recLSN.
    crash(engine)
    restarted = DatabaseEngine.restart(engine.disk, engine.wal,
                                       meter=engine.meter)
    assert restarted.last_recovery.redo_start <= rec_lsn
    session = EngineSession(session_id=2)
    rows = restarted.execute("SELECT k, v FROM t", session).fetch_all()
    assert rows == [(1, 7)]


def test_unsafe_truncation_fails_loudly_not_silently():
    """Drop records a dirty page still needs: recovery must raise
    ``LogTruncatedError`` instead of recovering wrong contents."""
    engine, run, _session = make_engine()
    run("CREATE TABLE t (k INT NOT NULL, v INT, PRIMARY KEY (k))")
    run("INSERT INTO t VALUES (1, 0)")
    run("UPDATE t SET v = 5 WHERE k = 1")
    engine.wal.force()
    # Bypass the safety rule: throw away the whole flushed prefix even
    # though the table's pages were never written to disk.
    engine.wal.truncate(engine.wal.flushed_lsn)
    crash(engine)
    with pytest.raises(LogTruncatedError):
        DatabaseEngine.restart(engine.disk, engine.wal,
                               meter=engine.meter)


def test_truncate_beyond_flushed_tail_rejected():
    engine, run, _session = make_engine()
    run("CREATE TABLE t (k INT NOT NULL, PRIMARY KEY (k))")
    wal = engine.wal
    with pytest.raises(ValueError):
        wal.truncate(wal.last_lsn + 10)


def test_reads_below_truncation_point_raise():
    engine, run, _session = make_engine()
    run("CREATE TABLE t (k INT NOT NULL, PRIMARY KEY (k))")
    run("INSERT INTO t VALUES (1)")
    engine.buffer_pool.flush_all()
    engine.fuzzy_checkpoint(truncate=True)
    wal = engine.wal
    assert wal.truncated_lsn > 0
    with pytest.raises(LogTruncatedError):
        wal.record(1)
    with pytest.raises(LogTruncatedError):
        list(wal.records_from(1))
    # Reads above the boundary still work.
    assert wal.record(wal.truncated_lsn + 1) is not None


def test_txn_ids_never_reused_after_truncation():
    """Analysis would corrupt if an archived transaction id came back."""
    engine, run, _session = make_engine()
    run("CREATE TABLE t (k INT NOT NULL, PRIMARY KEY (k))")
    run("INSERT INTO t VALUES (1)")
    engine.buffer_pool.flush_all()
    engine.fuzzy_checkpoint(truncate=True)
    assert engine.wal.truncated_max_txn_id > 0
    crash(engine)
    restarted = DatabaseEngine.restart(engine.disk, engine.wal,
                                       meter=engine.meter)
    txn = restarted.txns.begin()
    assert txn.txn_id > engine.wal.truncated_max_txn_id
    restarted.txns.commit(txn)


def test_truncated_prefix_is_archived_in_order():
    engine, run, _session = make_engine()
    run("CREATE TABLE t (k INT NOT NULL, PRIMARY KEY (k))")
    run("INSERT INTO t VALUES (1)")
    before = list(engine.wal.all_records())
    engine.buffer_pool.flush_all()
    engine.fuzzy_checkpoint(truncate=True)
    dropped = engine.wal.truncated_lsn
    assert dropped > 0
    archive = engine.disk.read_blob("wal_archive")
    assert [rec.lsn for rec in archive] == list(range(1, dropped + 1))
    assert [type(rec) for rec in archive] == \
        [type(rec) for rec in before[:dropped]]
    # A second truncating checkpoint appends to the same archive.
    run("INSERT INTO t VALUES (2)")
    engine.buffer_pool.flush_all()
    engine.fuzzy_checkpoint(truncate=True)
    if engine.wal.truncated_lsn > dropped:
        archive = engine.disk.read_blob("wal_archive")
        assert [rec.lsn for rec in archive] == \
            list(range(1, engine.wal.truncated_lsn + 1))

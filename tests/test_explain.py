"""EXPLAIN output tests (and plan-shape checks through the SQL surface)."""

import pytest


@pytest.fixture
def shop(run):
    run("CREATE TABLE goods (id INT NOT NULL, cat INT, price FLOAT, "
        "PRIMARY KEY (id))")
    run("CREATE INDEX ix_cat ON goods (cat)")
    run("INSERT INTO goods VALUES (1, 10, 5.0), (2, 10, 7.5), "
        "(3, 20, 2.0)")


def explain(run, sql):
    return [row[0] for row in run(f"EXPLAIN {sql}")]


class TestExplain:
    def test_seq_scan(self, run, shop):
        lines = explain(run, "SELECT * FROM goods")
        assert any("SeqScan(goods" in line for line in lines)

    def test_pk_seek(self, run, shop):
        lines = explain(run, "SELECT * FROM goods WHERE id = 2")
        assert any("IndexSeek(goods index=__pk_goods" in line
                   for line in lines)

    def test_secondary_seek_with_range(self, run, shop):
        lines = explain(run,
                        "SELECT * FROM goods WHERE cat = 10 AND id < 5")
        assert any("IndexSeek" in line for line in lines)

    def test_hash_join_visible(self, run, shop):
        run("CREATE TABLE cats (cat INT, label VARCHAR(8))")
        lines = explain(run,
                        "SELECT label FROM goods, cats "
                        "WHERE goods.cat = cats.cat")
        assert any("HashJoin(inner keys=1" in line for line in lines)

    def test_aggregate_sort_limit(self, run, shop):
        lines = explain(run,
                        "SELECT TOP 2 cat, sum(price) AS total "
                        "FROM goods GROUP BY cat ORDER BY total DESC")
        text = "\n".join(lines)
        assert "HashAggregate(groups=1 aggs=1)" in text
        assert "Sort(1 keys)" in text
        assert "Limit(2)" in text

    def test_contradiction_shows_empty_scan(self, run, shop):
        lines = explain(run, "SELECT * FROM goods WHERE 0 = 1")
        assert any("EmptyScan" in line for line in lines)

    def test_union_shows_concat_distinct(self, run, shop):
        lines = explain(run,
                        "SELECT id FROM goods UNION SELECT cat FROM goods")
        text = "\n".join(lines)
        assert "Concat(2 inputs)" in text
        assert "Distinct" in text

    def test_indentation_reflects_tree(self, run, shop):
        lines = explain(run, "SELECT id FROM goods WHERE price > 1")
        # Root at depth 0, children indented.
        assert not lines[0].startswith(" ")
        assert any(line.startswith("  ") for line in lines[1:])

    def test_explain_does_not_execute(self, run, shop):
        run("EXPLAIN SELECT * FROM goods")
        # The table is unchanged and no side effects happened; a plain
        # count still sees 3 rows.
        assert run("SELECT count(*) FROM goods") == [(3,)]

    def test_work_amplification_annotated(self, engine, session):
        engine.meter.costs.work_amplification = 50.0
        engine.execute("CREATE TABLE big (a INT)", session)
        result = engine.execute("EXPLAIN SELECT * FROM big", session)
        lines = [r[0] for r in result.fetch_all()]
        assert any("x50" in line for line in lines)

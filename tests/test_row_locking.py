"""Hierarchical row-level locking: modes, deadlocks, escalation, TPC-C.

Covers the lock manager in isolation (compatibility matrix, conflict
reporting, wait-for-graph cycle detection, escalation), the engine
integration under ``lock_granularity="row"`` (two-phase row locking,
deadlock-victim sessions, the ``sys_locks`` view), and the interleaved
multi-session TPC-C mix (row locking must beat no-wait table locking in
virtual-time makespan while committing the exact same final state).
"""

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.errors import DeadlockError, LockWaitError
from repro.obs.latency import COMPONENTS, classify
from repro.sim.costs import SERVER_CPU, CostModel
from repro.sim.meter import Meter
from repro.txn.locks import LockManager, LockMode

IS = LockMode.INTENT_SHARED
IX = LockMode.INTENT_EXCLUSIVE
S = LockMode.SHARED
X = LockMode.EXCLUSIVE


def row_lock_manager(threshold: int = 0) -> LockManager:
    costs = CostModel(lock_granularity="row",
                      lock_escalation_threshold=threshold)
    return LockManager(meter=Meter(costs))


class TestModeAlgebra:
    def test_intent_modes_coexist_with_row_activity(self):
        locks = row_lock_manager()
        locks.acquire(1, "t", IS)
        locks.acquire(2, "t", IX)
        locks.acquire(3, "t", IS)
        # Row locks under the intent modes: disjoint rows never touch.
        locks.acquire_row(2, "t", (1,), X)
        locks.acquire_row(3, "t", (2,), S)
        assert locks.held(1, "t") is IS
        assert locks.held(2, "t") is IX

    def test_shared_table_lock_blocks_intent_exclusive(self):
        locks = row_lock_manager()
        locks.acquire(1, "t", S)
        with pytest.raises(LockWaitError):
            locks.acquire(2, "t", IX)

    def test_same_txn_upgrade_merges_to_supremum(self):
        locks = row_lock_manager()
        locks.acquire(1, "t", S)
        locks.acquire(1, "t", IX)  # {S, IX} -> X
        assert locks.held(1, "t") is X

    def test_table_exclusive_subsumes_row_requests(self):
        locks = row_lock_manager()
        locks.acquire(1, "t", X)
        locks.acquire_row(1, "t", (7,), X)
        # Subsumed by the table lock: no separate row lock recorded.
        assert locks.row_lock_count(1, "t") == 0

    def test_row_writers_on_distinct_rows_do_not_conflict(self):
        locks = row_lock_manager()
        locks.acquire(1, "t", IX)
        locks.acquire(2, "t", IX)
        locks.acquire_row(1, "t", (1,), X)
        locks.acquire_row(2, "t", (2,), X)
        assert locks.row_holders("t", (1,)) == {1: X}
        assert locks.row_holders("t", (2,)) == {2: X}


class TestConflictReporting:
    """The seed's conflict message always claimed an X blocker — wrong
    whenever the holder blocks with a *shared* lock (S vs X upgrade)."""

    def test_shared_holder_is_reported_as_shared(self):
        locks = LockManager()  # table granularity, seed no-wait
        locks.acquire(1, "t", S)
        with pytest.raises(DeadlockError) as info:
            locks.acquire(2, "t", X)
        message = str(info.value)
        assert "S lock" in message
        assert "txn 1" in message
        assert "X lock" not in message

    def test_multiple_holders_list_all_modes_and_txns(self):
        locks = row_lock_manager()
        locks.acquire(1, "t", IS)
        locks.acquire(2, "t", S)
        with pytest.raises(LockWaitError) as info:
            locks.acquire(3, "t", X)
        message = str(info.value)
        assert "IS,S locks held by" in message
        assert "txns 1, 2" in message


class TestDeadlockDetection:
    def test_two_cycle_aborts_youngest(self):
        aborted = []
        locks = row_lock_manager()
        locks.on_victim = lambda txn_id: (aborted.append(txn_id),
                                          locks.release_all(txn_id))
        locks.acquire(1, "t", IX)
        locks.acquire(2, "t", IX)
        locks.acquire_row(1, "t", ("a",), X)
        locks.acquire_row(2, "t", ("b",), X)
        with pytest.raises(LockWaitError):
            locks.acquire_row(2, "t", ("a",), X)  # 2 waits on 1
        with pytest.raises(LockWaitError) as info:
            locks.acquire_row(1, "t", ("b",), X)  # closes the cycle
        # Youngest (largest txn id) dies; the requester just retries.
        assert aborted == [2]
        assert "aborting txn 2" in str(info.value)
        locks.acquire_row(1, "t", ("b",), X)  # victim's locks are gone

    def test_requester_as_youngest_gets_deadlock_error(self):
        locks = row_lock_manager()
        locks.on_victim = lambda txn_id: locks.release_all(txn_id)
        locks.acquire(1, "t", IX)
        locks.acquire(2, "t", IX)
        locks.acquire_row(1, "t", ("a",), X)
        locks.acquire_row(2, "t", ("b",), X)
        with pytest.raises(LockWaitError):
            locks.acquire_row(1, "t", ("b",), X)  # 1 waits on 2
        with pytest.raises(DeadlockError) as info:
            locks.acquire_row(2, "t", ("a",), X)  # requester is youngest
        assert "deadlock victim" in str(info.value)
        # The victim's own wait is deregistered; txn 1 still waits.
        assert locks.waiting_for(2) is None
        assert locks.waiting_for(1) == frozenset({2})

    def test_three_cycle_detected(self):
        aborted = []
        locks = row_lock_manager()
        locks.on_victim = lambda txn_id: (aborted.append(txn_id),
                                          locks.release_all(txn_id))
        for txn, row in ((1, "a"), (2, "b"), (3, "c")):
            locks.acquire(txn, "t", IX)
            locks.acquire_row(txn, "t", (row,), X)
        with pytest.raises(LockWaitError):
            locks.acquire_row(2, "t", ("a",), X)  # 2 -> 1
        with pytest.raises(LockWaitError):
            locks.acquire_row(3, "t", ("b",), X)  # 3 -> 2
        with pytest.raises(LockWaitError):
            locks.acquire_row(1, "t", ("c",), X)  # 1 -> 3: cycle, kill 3
        assert aborted == [3]

    def test_pure_shared_load_never_detects_deadlocks(self):
        locks = row_lock_manager()
        meter = locks._meter
        for txn in (1, 2, 3):
            locks.acquire(txn, "t", IS)
            locks.acquire_row(txn, "t", ("hot",), S)
        # A writer waiting on shared holders is a plain wait, no cycle.
        locks.acquire(4, "t", IX)
        with pytest.raises(LockWaitError):
            locks.acquire_row(4, "t", ("hot",), X)
        assert meter.counters.get("locks.deadlocks_detected", 0) == 0

    def test_finished_blockers_are_dead_ends_not_cycles(self):
        locks = row_lock_manager()
        locks.acquire(1, "t", IX)
        locks.acquire(2, "t", IX)
        locks.acquire_row(1, "t", ("a",), X)
        with pytest.raises(LockWaitError):
            locks.acquire_row(2, "t", ("a",), X)  # 2 waits on 1
        locks.release_all(1)  # 1 finishes; 2's wait entry goes stale
        # A new conflict whose DFS crosses the stale edge finds no cycle.
        locks.acquire(3, "t", IX)
        locks.acquire_row(3, "t", ("b",), X)
        with pytest.raises(LockWaitError):
            locks.acquire_row(2, "t", ("b",), X)
        assert locks._meter.counters.get("locks.deadlocks_detected",
                                         0) == 0


class TestEscalation:
    def test_row_locks_escalate_past_threshold(self):
        locks = row_lock_manager(threshold=4)
        locks.acquire(1, "t", IX)
        for key in range(4):
            locks.acquire_row(1, "t", (key,), X)
        assert locks.held(1, "t") is IX  # at the threshold: not yet
        locks.acquire_row(1, "t", (4,), X)  # past it: trade up
        assert locks.held(1, "t") is X
        assert locks.row_lock_count(1, "t") == 0
        assert locks._meter.counters["locks.escalations"] == 1.0

    def test_shared_only_rows_escalate_to_shared(self):
        locks = row_lock_manager(threshold=2)
        locks.acquire(1, "t", IS)
        for key in range(3):
            locks.acquire_row(1, "t", (key,), S)
        assert locks.held(1, "t") is S

    def test_escalation_skipped_while_other_txn_holds_intent(self):
        locks = row_lock_manager(threshold=2)
        locks.acquire(1, "t", IX)
        locks.acquire(2, "t", IX)  # would conflict with an escalated X
        locks.acquire_row(2, "t", (99,), X)
        for key in range(3):
            locks.acquire_row(1, "t", (key,), X)
        assert locks.held(1, "t") is IX  # escalation deferred
        assert locks.row_lock_count(1, "t") == 3


def row_world():
    costs = CostModel(lock_granularity="row")
    engine = DatabaseEngine(meter=Meter(costs))
    alice = EngineSession(session_id=1)
    bob = EngineSession(session_id=2)
    engine.execute("CREATE TABLE acct (id INT NOT NULL, bal INT, "
                   "PRIMARY KEY (id))", alice)
    engine.execute("INSERT INTO acct VALUES (1, 100), (2, 200), "
                   "(3, 300)", alice)
    return engine, alice, bob


def run(engine, session, sql):
    result = engine.execute(sql, session)
    if result.kind == "rows":
        return result.fetch_all()
    if result.kind == "rowcount":
        return result.rowcount
    return None


class TestRowModeEngine:
    def test_writers_on_distinct_rows_proceed(self):
        engine, alice, bob = row_world()
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "UPDATE acct SET bal = 0 WHERE id = 1")
        run(engine, bob, "BEGIN TRANSACTION")
        # Under the seed's table locks this raised DeadlockError.
        assert run(engine, bob,
                   "UPDATE acct SET bal = 5 WHERE id = 2") == 1
        run(engine, alice, "COMMIT")
        run(engine, bob, "COMMIT")
        assert run(engine, alice,
                   "SELECT bal FROM acct ORDER BY id") == \
            [(0,), (5,), (300,)]

    def test_writers_on_same_row_wait(self):
        engine, alice, bob = row_world()
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "UPDATE acct SET bal = 0 WHERE id = 1")
        run(engine, bob, "BEGIN TRANSACTION")
        with pytest.raises(LockWaitError):
            run(engine, bob, "UPDATE acct SET bal = 5 WHERE id = 1")
        # The waiter keeps its transaction and retries after commit.
        run(engine, alice, "COMMIT")
        assert run(engine, bob,
                   "UPDATE acct SET bal = 5 WHERE id = 1") == 1
        run(engine, bob, "COMMIT")
        assert run(engine, alice,
                   "SELECT bal FROM acct WHERE id = 1") == [(5,)]

    def test_update_locks_all_rows_before_mutating_any(self):
        engine, alice, bob = row_world()
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "UPDATE acct SET bal = 0 WHERE id = 3")
        run(engine, bob, "BEGIN TRANSACTION")
        # Bob's multi-row update overlaps alice's locked row: it must
        # wait *without* applying the non-conflicting rows first, so the
        # eventual retry is not a double-application.
        with pytest.raises(LockWaitError):
            run(engine, bob, "UPDATE acct SET bal = bal + 7")
        run(engine, alice, "COMMIT")
        assert run(engine, bob, "UPDATE acct SET bal = bal + 7") == 3
        run(engine, bob, "COMMIT")
        assert run(engine, alice,
                   "SELECT bal FROM acct ORDER BY id") == \
            [(107,), (207,), (7,)]

    def test_victim_session_fails_until_rollback(self):
        engine, alice, bob = row_world()
        run(engine, alice, "BEGIN TRANSACTION")  # older txn
        run(engine, bob, "BEGIN TRANSACTION")    # younger: the victim
        run(engine, alice, "UPDATE acct SET bal = 1 WHERE id = 1")
        run(engine, bob, "UPDATE acct SET bal = 2 WHERE id = 2")
        with pytest.raises(LockWaitError):
            run(engine, bob, "UPDATE acct SET bal = 3 WHERE id = 1")
        # Alice closes the cycle; the detector aborts bob (younger) and
        # alice unwinds with a retryable wait.
        with pytest.raises(LockWaitError):
            run(engine, alice, "UPDATE acct SET bal = 4 WHERE id = 2")
        assert run(engine, alice,
                   "UPDATE acct SET bal = 4 WHERE id = 2") == 1
        # Bob's session is doomed until it acknowledges with ROLLBACK —
        # including for *cached* DML plans, which must not slip into a
        # fresh autocommit transaction.
        with pytest.raises(DeadlockError):
            run(engine, bob, "UPDATE acct SET bal = 9 WHERE id = 3")
        with pytest.raises(DeadlockError):
            run(engine, bob, "SELECT * FROM acct")
        run(engine, bob, "ROLLBACK")
        run(engine, alice, "COMMIT")
        # Bob's writes are gone; alice's survived.
        assert run(engine, bob,
                   "SELECT bal FROM acct ORDER BY id") == \
            [(1,), (4,), (300,)]

    def test_transactional_readers_take_row_shares(self):
        engine, alice, bob = row_world()
        run(engine, alice, "BEGIN TRANSACTION")
        rows = run(engine, alice, "SELECT * FROM acct WHERE id = 1")
        assert rows == [(1, 100)]
        txn = alice.current_txn
        assert engine.locks.row_holders("acct", (1,)) == \
            {txn.txn_id: S}
        # A shared row blocks a writer on that row but not on others.
        run(engine, bob, "BEGIN TRANSACTION")
        assert run(engine, bob,
                   "UPDATE acct SET bal = 9 WHERE id = 2") == 1
        with pytest.raises(LockWaitError):
            run(engine, bob, "UPDATE acct SET bal = 9 WHERE id = 1")
        run(engine, alice, "COMMIT")
        run(engine, bob, "ROLLBACK")

    def test_sys_locks_view_lists_table_and_row_locks(self):
        engine, alice, bob = row_world()
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "UPDATE acct SET bal = 0 WHERE id = 2")
        txn_id = alice.current_txn.txn_id
        rows = run(engine, bob, "SELECT table_name, granularity, "
                                "lock_key, mode, txn_id FROM sys_locks")
        assert ("acct", "table", "", "IX", txn_id) in rows
        assert ("acct", "row", "(2,)", "X", txn_id) in rows
        run(engine, alice, "ROLLBACK")
        assert run(engine, bob, "SELECT count(*) FROM sys_locks") == \
            [(0,)]

    def test_lock_counters_tick(self):
        engine, alice, _bob = row_world()
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "UPDATE acct SET bal = 0 WHERE id = 1")
        run(engine, alice, "COMMIT")
        assert engine.meter.counters["locks.row_locks_acquired"] >= 1


class TestTableModeUnchanged:
    def test_default_granularity_still_no_waits(self):
        engine = DatabaseEngine(meter=Meter())
        alice = EngineSession(session_id=1)
        bob = EngineSession(session_id=2)
        engine.execute("CREATE TABLE t (k INT NOT NULL, PRIMARY KEY "
                       "(k))", alice)
        engine.execute("INSERT INTO t VALUES (1), (2)", alice)
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "UPDATE t SET k = 3 WHERE k = 1")
        run(engine, bob, "BEGIN TRANSACTION")
        with pytest.raises(DeadlockError):
            run(engine, bob, "UPDATE t SET k = 4 WHERE k = 2")
        run(engine, bob, "ROLLBACK")
        run(engine, alice, "ROLLBACK")
        # No row-lock machinery ticked on the default path.
        for counter in ("locks.row_locks_acquired", "locks.escalations",
                        "locks.deadlocks_detected",
                        "locks.lock_wait_seconds"):
            assert engine.meter.counters.get(counter, 0) == 0


class TestLatencyComponent:
    def test_lock_wait_is_a_ledger_component(self):
        assert "lock_wait" in COMPONENTS

    def test_scheduler_wait_charge_classifies_as_lock_wait(self):
        assert classify(SERVER_CPU, "lock wait") == "lock_wait"
        # Ordinary engine work is untouched.
        assert classify(SERVER_CPU, "row scan") == "engine_execute"


class TestConcurrentTpcc:
    @pytest.fixture(scope="class")
    def mixes(self):
        from repro.workloads.tpcc.concurrent import (
            ConcurrentMix, build_concurrent_world, digest_database)

        out = {}
        for leg, granularity, interleave in (
                ("serial", "table", False),
                ("table", "table", True),
                ("row", "row", True)):
            server, apps, plans, scale = build_concurrent_world(
                8, granularity, txns_per_session=2, items=60,
                customers_per_district=8, initial_orders_per_district=4)
            mix = ConcurrentMix(server, apps, plans, scale)
            result = (mix.run_interleaved() if interleave
                      else mix.run_serial())
            out[leg] = (result, digest_database(server.engine),
                        dict(server.meter.counters))
        return out

    def test_row_locking_beats_table_locking(self, mixes):
        table = mixes["table"][0]
        row = mixes["row"][0]
        assert row.makespan_seconds < table.makespan_seconds
        # The win comes from waiting instead of abort-and-retry.
        assert table.txn_retries > row.txn_retries
        assert row.lock_waits > 0

    def test_all_legs_commit_identical_final_state(self, mixes):
        serial_digest = mixes["serial"][1]
        assert mixes["table"][1] == serial_digest
        assert mixes["row"][1] == serial_digest
        # And everything actually committed.
        serial = mixes["serial"][0]
        assert serial.committed + serial.rolled_back == 16
        for leg in ("table", "row"):
            assert mixes[leg][0].committed == serial.committed

    def test_row_leg_counters_recorded(self, mixes):
        counters = mixes["row"][2]
        assert counters.get("locks.row_locks_acquired", 0) > 0
        assert counters.get("locks.lock_wait_seconds", 0) > 0
        serial_counters = mixes["serial"][2]
        assert serial_counters.get("locks.row_locks_acquired", 0) == 0

    def test_interleaved_runs_are_reproducible(self, mixes):
        from repro.workloads.tpcc.concurrent import (
            ConcurrentMix, build_concurrent_world, digest_database)

        server, apps, plans, scale = build_concurrent_world(
            8, "row", txns_per_session=2, items=60,
            customers_per_district=8, initial_orders_per_district=4)
        mix = ConcurrentMix(server, apps, plans, scale)
        result = mix.run_interleaved()
        reference = mixes["row"][0]
        assert result.makespan_seconds == reference.makespan_seconds
        assert digest_database(server.engine) == mixes["row"][1]

"""The observability subsystem: spans, metrics, views, export, report.

Covers the tracer's nesting rules, the ``sys_*`` views (including the
acceptance scenario: a crash mid-fetch must leave one
``sys_recovery_phases`` row per phase with nonzero durations), the JSONL
export/validate round trip, and the trace-report rendering.
"""

import pytest

from repro.obs import RECOVERY_PHASES, Observability
from repro.obs.export import export_trace, load_records, trace_records
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.report import build_trace_report, summarize_spans
from repro.obs.trace import NOOP_SPAN, Tracer
from repro.obs.validate import validate_records, validate_spans
from repro.odbc.constants import SQL_SUCCESS
from repro.phoenix.config import PhoenixConfig
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp


# ---------------------------------------------------------------------------
# Tracer mechanics
# ---------------------------------------------------------------------------


def make_tracer(clock={"now": 0.0}):
    clock = dict(clock)

    def now():
        return clock["now"]

    tracer = Tracer(now, enabled=True)
    return tracer, clock


def test_spans_nest_parent_child():
    tracer, clock = make_tracer()
    with tracer.span("outer", layer="a") as outer:
        clock["now"] = 1.0
        with tracer.span("inner", layer="b") as inner:
            clock["now"] = 2.0
        clock["now"] = 3.0
    assert inner.parent_id == outer.span_id
    assert outer.parent_id == 0
    assert (outer.start, outer.end) == (0.0, 3.0)
    assert (inner.start, inner.end) == (1.0, 2.0)
    assert [s.name for s in tracer.finished] == ["inner", "outer"]
    assert validate_spans(tracer.finished) == []
    assert tracer.open_span_count == 0


def test_error_inside_span_closes_with_error_status():
    tracer, _clock = make_tracer()
    with pytest.raises(ValueError):
        with tracer.span("fails"):
            raise ValueError("boom")
    (span,) = tracer.finished
    assert span.status == "error"
    assert tracer.open_span_count == 0


def test_stream_spans_may_overlap_siblings():
    tracer, clock = make_tracer()
    with tracer.span("parent"):
        stream = tracer.start_stream("lazy", layer="executor")
    clock["now"] = 5.0
    with tracer.span("sibling"):
        clock["now"] = 6.0
    tracer.end_stream(stream)  # outlives parent and sibling
    assert validate_spans(tracer.finished) == []


def test_disabled_tracer_hands_out_noop_spans():
    tracer, _clock = make_tracer()
    tracer.disable()
    span_ctx = tracer.span("ignored")
    assert span_ctx is NOOP_SPAN
    with span_ctx as span:
        span.set_attr("x", 1)  # must not blow up
    assert len(tracer.finished) == 0


def test_ring_buffer_drops_oldest_and_counts():
    def now():
        return 0.0

    tracer = Tracer(now, enabled=True, max_spans=3)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.finished) == 3
    assert tracer.dropped == 2
    assert [s.name for s in tracer.finished] == ["s2", "s3", "s4"]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def test_histogram_buckets_and_rollups():
    histogram = Histogram("h", (1.0, 10.0))
    for value in (0.5, 5.0, 50.0, 0.2):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.bucket_counts == [2, 1, 1]
    assert histogram.mean == pytest.approx(55.7 / 4)


def test_registry_rows_flatten_all_kinds():
    registry = MetricsRegistry()
    registry.count("c", 2)
    registry.gauge_set("g", 7.5)
    registry.observe("h", 0.5, bounds=(1.0,))
    rows = registry.rows()
    kinds = {(kind, name) for kind, name, _b, _v in rows}
    assert ("counter", "c") in kinds
    assert ("gauge", "g") in kinds
    assert ("histogram", "h") in kinds
    hist_buckets = [b for kind, name, b, _v in rows
                    if kind == "histogram" and name == "h"]
    assert "count" in hist_buckets and "sum" in hist_buckets


def test_meter_counters_are_the_registry_counters():
    meter = Meter()
    meter.count("pages_read", 3)
    assert meter.counters["pages_read"] == 3
    assert meter.obs.metrics.counters is meter.counters
    meter.reset_traces()
    assert meter.obs.metrics.counters == {}


def test_peek_now_never_flushes_pending_batch():
    from repro.sim.costs import SERVER_CPU

    meter = Meter()
    meter.charge_batched(SERVER_CPU, 0.25, "hot loop")
    assert meter.peek_now() == pytest.approx(0.25)
    assert meter._pending is not None  # still pending: peek was pure
    assert meter.now == pytest.approx(0.25)  # .now flushes
    assert meter._pending is None


# ---------------------------------------------------------------------------
# The acceptance scenario: crash mid-fetch, then query the views
# ---------------------------------------------------------------------------


def crashed_phoenix_world():
    meter = Meter(CostModel(output_buffer_bytes=16))
    meter.obs.tracer.enable()
    server = DatabaseServer(meter=meter)
    setup = BenchmarkApp(server)
    setup.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                        "PRIMARY KEY (k))")
    setup.run_statement("INSERT INTO t VALUES " + ", ".join(
        f"({i}, {i})" for i in range(12)))
    app = BenchmarkApp(server, use_phoenix=True,
                       phoenix_config=PhoenixConfig())
    statement = app.manager.alloc_statement(app.conn)
    assert app.manager.exec_direct(
        statement, "SELECT k, v FROM t ORDER BY k") == SQL_SUCCESS
    for _ in range(3):
        rc, _row = app.manager.fetch(statement)
        assert rc == SQL_SUCCESS
    server.crash()
    server.restart()
    rc, _row = app.manager.fetch(statement)  # triggers recovery
    assert rc == SQL_SUCCESS
    return server, app


def test_sys_recovery_phases_row_per_phase_nonzero():
    _server, app = crashed_phoenix_world()
    rows = app.query_rows("SELECT recovery_id, phase, seconds "
                          "FROM sys_recovery_phases")
    assert [phase for _rid, phase, _s in rows] == list(RECOVERY_PHASES)
    for _rid, phase, seconds in rows:
        assert seconds > 0, f"phase {phase} has zero duration"
    assert app.manager.recovery_phase_breakdown.keys() \
        == set(RECOVERY_PHASES)


def test_sys_traces_and_sys_metrics_views():
    _server, app = crashed_phoenix_world()
    layers = dict(app.query_rows(
        "SELECT layer, count(*) FROM sys_traces GROUP BY layer"))
    for layer in ("phoenix", "server", "engine", "wal"):
        assert layers.get(layer, 0) > 0, f"no spans in layer {layer}"
    recover = app.query_rows(
        "SELECT duration_s FROM sys_traces "
        "WHERE name = 'phoenix.recover'")
    assert len(recover) == 1 and recover[0][0] > 0
    counters = app.query_rows(
        "SELECT name, value FROM sys_metrics WHERE kind = 'counter'")
    assert dict(counters).get("log_forces", 0) > 0
    charge = app.query_rows(
        "SELECT count(*) FROM sys_metrics "
        "WHERE kind = 'histogram' AND name = 'charge.server_cpu'")
    assert charge[0][0] > 0


def test_sys_plan_cache_reports_sessions_and_evictions():
    _server, app = crashed_phoenix_world()
    rows = dict(app.query_rows("SELECT * FROM sys_plan_cache"))
    # the legacy metrics stay (tests and tools depend on them) ...
    assert "plan_hits" in rows and "plan_entries" in rows
    # ... and the new eviction / per-session metrics appear.
    for metric in ("plan_evictions", "stmt_evictions",
                   "session_plan_entries", "session_plan_evictions"):
        assert metric in rows, f"missing {metric}"


# ---------------------------------------------------------------------------
# Export / validate / report round trip
# ---------------------------------------------------------------------------


def test_export_validate_report_roundtrip(tmp_path):
    _server, app = crashed_phoenix_world()
    path = tmp_path / "trace.jsonl"
    count = export_trace(app.meter.obs, path)
    records = load_records(path)
    assert len(records) == count
    assert records[0]["type"] == "meta"
    assert validate_records(records) == []

    report = build_trace_report(path)
    assert report.span_count == len(app.meter.obs.tracer.finished)
    reported_layers = {s.layer for s in report.layers}
    assert {"phoenix", "server", "engine", "wal"} <= reported_layers
    text = report.format()
    assert "Trace report" in text and "phoenix" in text


def test_validator_rejects_corrupted_traces(tmp_path):
    meter = Meter()
    meter.obs.tracer.enable()
    with meter.obs.tracer.span("ok"):
        pass
    records = trace_records(meter.obs)

    # orphan parent (and no drops to excuse it)
    bad = [dict(r) for r in records]
    bad[1]["parent_id"] = 999
    assert any("orphan" in e for e in validate_records(bad))

    # span never closed
    bad = [dict(r) for r in records]
    bad[1]["status"] = "open"
    assert any("never closed" in e for e in validate_records(bad))

    # child escapes its parent's interval
    meter2 = Meter()
    meter2.obs.tracer.enable()
    tracer = meter2.obs.tracer
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    records2 = trace_records(meter2.obs)
    inner = next(r for r in records2 if r.get("name") == "inner")
    inner["end"] = 99.0
    assert any("not nested" in e for e in validate_records(records2))

    # broken JSON line surfaces with its location
    path = tmp_path / "broken.jsonl"
    path.write_text('{"type": "meta"}\nnot json\n')
    with pytest.raises(ValueError, match="broken.jsonl:2"):
        load_records(path)


def test_summarize_spans_groups_by_layer():
    spans = [{"layer": "a", "start": 0.0, "end": 1.0},
             {"layer": "a", "start": 0.0, "end": 3.0},
             {"layer": "b", "start": 0.0, "end": 0.5}]
    report = summarize_spans(spans)
    assert [s.layer for s in report.layers] == ["a", "b"]
    a = report.layers[0]
    assert a.count == 2 and a.total == 4.0 and a.max == 3.0


def test_summarize_spans_tolerates_parentless_and_cut_spans(tmp_path):
    """Spans with no parent phase (no layer) group under "(none)";
    spans with unusable timestamps (cut short, hand-edited) are counted
    as ``malformed_spans`` and excluded from the statistics instead of
    folding zero durations into the percentiles."""
    spans = [{"layer": "a", "start": 0.0, "end": 1.0},
             {"start": 0.0, "end": 2.0},            # no parent phase
             {"layer": None, "start": 1.0},          # cut short: no end
             {"layer": "a", "start": "x", "end": 2}  # mangled timestamp
             ]
    report = summarize_spans(spans)
    assert report.span_count == 4
    assert report.malformed_spans == 2
    by_layer = {s.layer: s for s in report.layers}
    assert by_layer["(none)"].count == 1
    assert by_layer["(none)"].total == 2.0
    assert by_layer["a"].count == 1 and by_layer["a"].total == 1.0
    text = report.format()
    assert "Trace report" in text
    assert "skipped 2 malformed spans" in text

    # End to end through the file loader: a metric record missing its
    # value and an unparentable, timestampless span must both survive.
    path = tmp_path / "ragged.jsonl"
    path.write_text(
        '{"type": "meta", "dropped": 0}\n'
        '{"type": "span", "name": "orphan"}\n'
        '{"type": "metric", "kind": "counter", "name": "incomplete"}\n')
    report = build_trace_report(path)
    assert report.span_count == 1
    assert report.malformed_spans == 1
    assert report.layers == []
    assert report.counters == {}


# ---------------------------------------------------------------------------
# Recovery log plumbing (works with tracing off)
# ---------------------------------------------------------------------------


def test_recovery_log_records_even_when_tracing_disabled():
    obs = Observability(lambda: 0.0, enabled=False)
    record = obs.record_recovery(
        {"reposition": 0.5, "failure_detection": 0.1, "custom": 0.2},
        finished_at=1.0)
    assert record["phases"][0] == ("failure_detection", 0.1)
    assert record["phases"][-1] == ("custom", 0.2)  # extras sort last
    assert list(obs.recovery_log) == [record]

"""TPC-C: data generation, all five transactions, multi-user runs."""

import random

import pytest

from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp
from repro.workloads.tpcc.datagen import TpccScale, generate_tpcc, last_name
from repro.workloads.tpcc.driver import (
    TRANSACTION_MIX,
    choose_transaction,
    collect_transaction_traces,
    run_multiuser,
)
from repro.workloads.tpcc.schema import setup_tpcc_server
from repro.workloads.tpcc.transactions import (
    TRANSACTIONS,
    delivery,
    new_order,
    order_status,
    payment,
    stock_level,
)

SCALE = TpccScale(warehouses=1, districts_per_warehouse=3,
                  customers_per_district=10, items=50,
                  initial_orders_per_district=10)


@pytest.fixture(scope="module")
def tpcc_world():
    meter = Meter(CostModel())
    server = DatabaseServer(meter=meter)
    data = generate_tpcc(SCALE, seed=9)
    setup_tpcc_server(server, data)
    app = BenchmarkApp(server, use_phoenix=False)
    return server, app


class TestDatagen:
    def test_cardinalities(self):
        data = generate_tpcc(SCALE, seed=9)
        assert len(data.warehouse) == 1
        assert len(data.district) == 3
        assert len(data.customer) == 30
        assert len(data.item) == 50
        assert len(data.stock) == 50
        assert len(data.orders) == 30
        # ~30% of initial orders are undelivered.
        assert 0 < len(data.new_order) < len(data.orders)

    def test_last_name_syllables(self):
        assert last_name(0) == "BARBARBAR"
        assert last_name(371) == "PRICALLYOUGHT"
        assert last_name(999) == "EINGEINGEING"

    def test_deterministic(self):
        a = generate_tpcc(SCALE, seed=9)
        b = generate_tpcc(SCALE, seed=9)
        assert a.customer == b.customer
        assert a.order_line == b.order_line


class TestTransactions:
    def test_new_order_commits(self, tpcc_world):
        server, app = tpcc_world
        rng = random.Random(1)
        before = app.query_rows("SELECT count(*) FROM orders")[0][0]
        outcome = new_order(app, rng, SCALE, 1)
        after = app.query_rows("SELECT count(*) FROM orders")[0][0]
        if outcome == "committed":
            assert after == before + 1
        else:
            assert after == before

    def test_new_order_rollback_on_bad_item(self, tpcc_world):
        server, app = tpcc_world

        class AlwaysRollback(random.Random):
            def random(self):
                return 0.0  # forces the 1% unused-item branch

        before = app.query_rows("SELECT count(*) FROM orders")[0][0]
        outcome = new_order(app, AlwaysRollback(3), SCALE, 1)
        after = app.query_rows("SELECT count(*) FROM orders")[0][0]
        assert outcome == "rolled_back"
        assert after == before

    def test_payment_updates_balances(self, tpcc_world):
        server, app = tpcc_world
        rng = random.Random(2)
        w_ytd_before = app.query_rows(
            "SELECT w_ytd FROM warehouse WHERE w_id = 1")[0][0]
        assert payment(app, rng, SCALE, 1) == "committed"
        w_ytd_after = app.query_rows(
            "SELECT w_ytd FROM warehouse WHERE w_id = 1")[0][0]
        assert w_ytd_after > w_ytd_before

    def test_order_status_runs(self, tpcc_world):
        server, app = tpcc_world
        assert order_status(app, random.Random(3), SCALE, 1) == "committed"

    def test_delivery_consumes_new_orders(self, tpcc_world):
        server, app = tpcc_world
        before = app.query_rows("SELECT count(*) FROM new_order")[0][0]
        assert delivery(app, random.Random(4), SCALE, 1) == "committed"
        after = app.query_rows("SELECT count(*) FROM new_order")[0][0]
        assert after <= before

    def test_stock_level_runs(self, tpcc_world):
        server, app = tpcc_world
        assert stock_level(app, random.Random(5), SCALE, 1) == "committed"

    def test_all_types_registered(self):
        assert set(TRANSACTIONS) == {name for name, _ in TRANSACTION_MIX}


class TestMix:
    def test_mix_shares_sum_to_one(self):
        assert sum(share for _n, share in TRANSACTION_MIX) == pytest.approx(1.0)

    def test_new_order_at_most_43_percent(self):
        rng = random.Random(11)
        picks = [choose_transaction(rng) for _ in range(5000)]
        share = picks.count("new_order") / len(picks)
        assert share < 0.46


class TestMultiUser:
    def test_trace_collection_and_queueing(self, tpcc_world):
        server, app = tpcc_world
        traces = collect_transaction_traces(app, SCALE, count=30, seed=8)
        assert len(traces) == 30
        assert all(t.total_seconds > 0 for t in traces)
        result = run_multiuser(traces, users=4, warmup_seconds=5.0,
                               measure_seconds=30.0)
        assert result.completions > 0
        assert result.tpmc >= 0
        assert 0 <= result.cpu_utilization <= 1
        assert 0 <= result.disk_utilization <= 1
        assert result.total_tpm >= result.tpmc

    def test_phoenix_transactions_also_run(self, tpcc_world):
        server, _native_app = tpcc_world
        app = BenchmarkApp(server, use_phoenix=True)
        rng = random.Random(21)
        assert new_order(app, rng, SCALE, 1) in ("committed",
                                                 "rolled_back")
        assert payment(app, rng, SCALE, 1) == "committed"
        assert app.manager.stats["persisted_results"] > 0

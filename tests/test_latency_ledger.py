"""The request latency ledger: the accounting identity, attribution,
percentiles, views, and the export round trip.

The hard contract under test: for every protocol request, the
per-component attribution sums *bit-exactly* to the measured latency
(Fractions, not tolerances), enabling the ledger never moves the
virtual clock, and the ledger is off unless asked for.
"""

from fractions import Fraction

import pytest

from repro.bench.experiments import DEFAULT_TPCC_SCALE, _wallclock_leg
from repro.obs.export import (SCHEMA_VERSION, export_trace, load_records,
                              trace_records)
from repro.obs.latency import (COMPONENTS, LatencyLedger, classify,
                               format_latency_report)
from repro.obs.metrics import percentile
from repro.obs.validate import validate_records
from repro.odbc.constants import SQL_NO_DATA, SQL_SUCCESS
from repro.phoenix.config import PhoenixConfig
from repro.server.server import DatabaseServer
from repro.sim.costs import (CLIENT_CPU, NETWORK, SERVER_CPU, SERVER_DISK,
                             CostModel)
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp


def small_mix():
    # [:7] drops the trailing point-select row digest — every consumer
    # here wants the ledger as the last element.
    return _wallclock_leg(True, DEFAULT_TPCC_SCALE, txns=15,
                          point_reads=40, persists=2, seed=7)[:7]


def fetch_heavy_world(prefetch: bool):
    """A tiny-buffer world where one SELECT spans many wire batches."""
    costs = CostModel(output_buffer_bytes=16)
    if prefetch:
        costs.fetch_ahead_depth = 2
        costs.fetch_batch_max_bytes = 64
        costs.output_buffer_max_bytes = 64
    meter = Meter(costs)
    meter.enable_latency_ledger()
    server = DatabaseServer(meter=meter)
    setup = BenchmarkApp(server)
    setup.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                        "PRIMARY KEY (k))")
    setup.run_statement("INSERT INTO t VALUES " + ", ".join(
        f"({i}, {i * 7})" for i in range(40)))
    app = BenchmarkApp(server, use_phoenix=True,
                       phoenix_config=PhoenixConfig())
    return server, app


def drain(app) -> list:
    statement = app.manager.alloc_statement(app.conn)
    assert app.manager.exec_direct(
        statement, "SELECT k, v FROM t ORDER BY k") == SQL_SUCCESS
    rows = []
    while True:
        rc, row = app.manager.fetch(statement)
        if rc == SQL_NO_DATA:
            break
        assert rc == SQL_SUCCESS
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# The accounting identity
# ---------------------------------------------------------------------------


def test_identity_holds_across_the_tracked_mix():
    """Every request of the wallclock mix balances bit-exactly."""
    *_, ledger = small_mix()
    assert ledger.enabled
    assert ledger.opened == ledger.closed > 0
    assert ledger.identity_violations == []
    # Spot-check the exactness claim on the raw entries too: the
    # ledger-wide list must agree with per-entry recomputation.
    for entry in ledger.entries:
        assert sum(entry.components.values(), Fraction(0)) == entry.total


def test_identity_holds_with_prefetch_knobs_on():
    """Pipelined delivery (detached entries, realized stalls, hidden
    service) must balance identically."""
    _server, app = fetch_heavy_world(prefetch=True)
    rows = drain(app)
    assert len(rows) == 40
    ledger = app.meter.obs.latency
    assert app.meter.counters.get("prefetch_issued", 0) > 0
    assert ledger.identity_violations == []
    assert "FetchRequest" in ledger.kinds
    # The in-flight tail may stay open, but nothing leaks unclosed
    # beyond the configured fetch-ahead depth.
    assert ledger.opened - ledger.closed <= 2


def test_fetch_requests_attributed_per_kind():
    _server, app = fetch_heavy_world(prefetch=False)
    drain(app)
    ledger = app.meter.obs.latency
    stats = ledger.kinds["FetchRequest"]
    assert stats.count > 5
    assert float(stats.total) > 0.0
    components = {name for kind in ledger.kinds.values()
                  for name in kind.components}
    assert components <= set(COMPONENTS)
    assert "net_uplink" in components and "net_downlink" in components
    assert "engine_execute" in components


def test_wasted_entries_counted_when_crash_discards_prefetch():
    server, app = fetch_heavy_world(prefetch=True)
    statement = app.manager.alloc_statement(app.conn)
    assert app.manager.exec_direct(
        statement, "SELECT k, v FROM t ORDER BY k") == SQL_SUCCESS
    for _ in range(3):
        rc, _row = app.manager.fetch(statement)
        assert rc == SQL_SUCCESS
    server.crash()
    server.restart()
    while app.manager.fetch(statement)[0] == SQL_SUCCESS:
        pass
    ledger = app.meter.obs.latency
    assert ledger.identity_violations == []
    assert sum(stats.wasted for stats in ledger.kinds.values()) > 0


# ---------------------------------------------------------------------------
# Zero clock impact, off by default
# ---------------------------------------------------------------------------


def test_ledger_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_LATENCY", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    meter = Meter()
    assert not meter.obs.latency.enabled
    meter.charge(SERVER_CPU, 0.001, "query cpu")
    assert meter.obs.latency.opened == 0


def test_env_knob_enables_the_ledger(monkeypatch):
    monkeypatch.setenv("REPRO_LATENCY", "1")
    meter = Meter()
    assert meter.obs.latency.enabled


def test_virtual_clock_bit_identical_ledger_on_vs_off():
    def run(enable: bool):
        costs = CostModel(output_buffer_bytes=16)
        costs.fetch_ahead_depth = 2
        costs.fetch_batch_max_bytes = 64
        costs.output_buffer_max_bytes = 64
        meter = Meter(costs)
        if enable:
            meter.enable_latency_ledger()
        server = DatabaseServer(meter=meter)
        setup = BenchmarkApp(server)
        setup.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                            "PRIMARY KEY (k))")
        setup.run_statement("INSERT INTO t VALUES " + ", ".join(
            f"({i}, {i * 7})" for i in range(40)))
        app = BenchmarkApp(server, use_phoenix=True,
                           phoenix_config=PhoenixConfig())
        rows = drain(app)
        return meter.now, rows, dict(meter.counters)

    assert run(False) == run(True)


def test_ledger_rows_deterministic_across_identical_runs():
    *_, first = small_mix()
    *_, second = small_mix()
    assert first.rows() == second.rows()


# ---------------------------------------------------------------------------
# Classification and attribution hints
# ---------------------------------------------------------------------------


def test_classify_maps_resources_and_notes():
    assert classify(NETWORK, "request") == "net_uplink"
    assert classify(NETWORK, "response") == "net_downlink"
    assert classify(NETWORK, "prefetch stall") == "prefetch_stall"
    assert classify(NETWORK, "pipeline stall") == "server_queue"
    assert classify(SERVER_CPU, "statement parse/plan") == "parse_plan"
    assert classify(SERVER_CPU, "query cpu") == "engine_execute"
    assert classify(SERVER_DISK, "log force") == "wal_force"
    assert classify(SERVER_DISK, "page io") == "engine_execute"
    assert classify(CLIENT_CPU, "request timeout") == "server_queue"
    assert classify(CLIENT_CPU, "persist row") == "client_cpu"
    # An attribution hint always wins over the mechanical mapping.
    assert classify(SERVER_DISK, "page io", "checkpoint") == "checkpoint"


def test_attribute_to_routes_charges_to_the_hinted_component():
    meter = Meter()
    meter.enable_latency_ledger()
    entry = meter.latency_open("TestRequest")
    meter.charge(SERVER_DISK, 0.002, "page io")
    with meter.attribute_to("checkpoint"):
        meter.charge(SERVER_DISK, 0.005, "page io")
        meter.charge(SERVER_DISK, 0.001, "log force")
    meter.latency_close(entry)
    assert set(entry.components) == {"engine_execute", "checkpoint"}
    assert entry.components["checkpoint"] == Fraction(0.005) + Fraction(0.001)
    assert entry.identity_holds()
    assert meter.obs.latency.identity_violations == []


def test_attribute_to_is_inert_when_ledger_disabled():
    meter = Meter()
    before = meter.now
    with meter.attribute_to("checkpoint"):
        meter.charge(SERVER_CPU, 0.001, "query cpu")
    assert meter.now == pytest.approx(before + 0.001)
    assert meter.obs.latency.opened == 0


# ---------------------------------------------------------------------------
# Percentiles
# ---------------------------------------------------------------------------


def test_percentile_linear_interpolation():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0.50) == pytest.approx(2.5)
    assert percentile(values, 0.25) == pytest.approx(1.75)
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 4.0


def test_percentile_edge_cases():
    assert percentile([], 0.5) == 0.0
    assert percentile([7.5], 0.99) == 7.5
    values = list(range(1, 101))
    assert percentile([float(v) for v in values], 0.99) == \
        pytest.approx(99.01)
    # Clamped outside [0, 1].
    assert percentile([1.0, 2.0], -0.5) == 1.0
    assert percentile([1.0, 2.0], 1.5) == 2.0


def test_kind_percentiles_exact_over_samples():
    ledger = LatencyLedger(enabled=True)
    for seconds in (0.001, 0.002, 0.003, 0.004):
        entry = ledger.open("K", start=0.0, clocked=False)
        entry.add_attributed("engine_execute", seconds)
        ledger.close(entry, end=seconds)
    p50, p95, p99 = ledger.kind_percentiles("K")
    assert p50 == pytest.approx(0.0025)
    assert p95 == pytest.approx(0.00385)
    assert p99 == pytest.approx(0.00397)
    assert ledger.kind_percentiles("missing") == (0.0, 0.0, 0.0)


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------


def test_sys_latency_view_reports_slos():
    _server, app = fetch_heavy_world(prefetch=False)
    drain(app)
    rows = app.query_rows("SELECT * FROM sys_latency")
    by_kind = {row[0]: row for row in rows}
    assert "ExecuteRequest" in by_kind and "FetchRequest" in by_kind
    for kind, count, wasted, p50, p95, p99, peak, total, hidden, ok in \
            rows:
        assert count > 0 and wasted >= 0
        assert 0.0 <= p50 <= p95 <= p99 <= peak <= total
        assert ok == 1, f"identity flagged broken for {kind}"


def test_sys_sessions_view_reports_live_sessions():
    _server, app = fetch_heavy_world(prefetch=False)
    drain(app)
    rows = app.query_rows("SELECT * FROM sys_sessions")
    assert len(rows) >= 1
    for (session_id, temp_tables, in_txn, txn_id, settings,
         plan_entries, plan_evictions) in rows:
        assert session_id >= 0 and temp_tables >= 0
        assert in_txn in (0, 1)
        assert txn_id >= 0 and settings >= 0
        assert plan_entries >= 0 and plan_evictions >= 0


# ---------------------------------------------------------------------------
# Export round trip + report rendering
# ---------------------------------------------------------------------------


def test_export_roundtrip_carries_latency_records(tmp_path):
    _server, app = fetch_heavy_world(prefetch=False)
    drain(app)
    app.meter.obs.tracer.enable()
    path = tmp_path / "trace.jsonl"
    export_trace(app.meter.obs, path)
    records = load_records(path)
    assert records[0]["schema_version"] == SCHEMA_VERSION == 2
    latency = [r for r in records if r.get("type") == "latency"]
    assert {r["kind"] for r in latency} >= {"ExecuteRequest",
                                            "FetchRequest"}
    for record in latency:
        assert set(record["components"]) <= set(COMPONENTS)
        assert sum(record["components"].values()) == \
            pytest.approx(record["total"])
    assert validate_records(records) == []


def test_latency_records_absent_when_ledger_idle():
    meter = Meter()
    meter.obs.tracer.enable()
    records = trace_records(meter.obs)
    assert [r for r in records if r.get("type") == "latency"] == []


def test_format_latency_report_renders_attribution_table():
    *_, ledger = small_mix()
    text = format_latency_report(ledger, source="small mix")
    assert "Request latency by kind" in text
    assert "ExecuteRequest" in text
    assert "Where the virtual seconds went" in text
    assert "engine_execute" in text and "wal_force" in text
    assert "accounting identity: every request's components sum" \
        in text

"""Tests for the catalog: DDL metadata, snapshot/restore."""

import pytest

from repro.errors import (
    CatalogError,
    ProcedureNotFoundError,
    TableExistsError,
    TableNotFoundError,
)
from repro.storage.catalog import Catalog
from repro.types import Column, SqlType


def make_columns():
    return [Column("id", SqlType.INTEGER, nullable=False),
            Column("name", SqlType.VARCHAR, length=20)]


class TestCatalogTables:
    def test_create_and_get(self):
        catalog = Catalog()
        info = catalog.create_table("T", make_columns(),
                                    primary_key=("ID",))
        assert info.name == "t"
        assert info.primary_key == ("id",)
        assert catalog.get_table("t") is info
        assert catalog.get_table("T") is info  # case-insensitive

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", make_columns())
        with pytest.raises(TableExistsError):
            catalog.create_table("T", make_columns())

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table("t", make_columns())
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(TableNotFoundError):
            catalog.get_table("t")

    def test_drop_missing_raises(self):
        with pytest.raises(TableNotFoundError):
            Catalog().drop_table("ghost")

    def test_ids_are_unique_and_monotonic(self):
        catalog = Catalog()
        a = catalog.create_table("a", make_columns())
        b = catalog.create_table("b", make_columns())
        assert b.file_id > a.file_id
        assert b.table_id > a.table_id

    def test_explicit_ids_advance_counters(self):
        catalog = Catalog()
        catalog.create_table("a", make_columns(), table_id=10, file_id=20)
        b = catalog.create_table("b", make_columns())
        assert b.table_id == 11
        assert b.file_id == 21

    def test_column_index(self):
        catalog = Catalog()
        info = catalog.create_table("t", make_columns())
        assert info.column_index("NAME") == 1
        with pytest.raises(CatalogError):
            info.column_index("ghost")

    def test_rename(self):
        catalog = Catalog()
        info = catalog.create_table("old", make_columns())
        renamed = catalog.rename_table("old", "new")
        assert renamed.file_id == info.file_id
        assert catalog.has_table("new")
        assert not catalog.has_table("old")


class TestCatalogIndexes:
    def test_create_index_validates_columns(self):
        catalog = Catalog()
        catalog.create_table("t", make_columns())
        catalog.create_index("ix", "t", ["id"])
        with pytest.raises(CatalogError):
            catalog.create_index("ix2", "t", ["ghost"])

    def test_duplicate_index_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", make_columns())
        catalog.create_index("ix", "t", ["id"])
        with pytest.raises(CatalogError):
            catalog.create_index("IX", "t", ["name"])

    def test_drop_table_drops_its_indexes(self):
        catalog = Catalog()
        catalog.create_table("t", make_columns())
        catalog.create_index("ix", "t", ["id"])
        catalog.drop_table("t")
        assert "ix" not in catalog.indexes

    def test_indexes_on(self):
        catalog = Catalog()
        catalog.create_table("t", make_columns())
        catalog.create_table("u", make_columns())
        catalog.create_index("ix_t", "t", ["id"])
        catalog.create_index("ix_u", "u", ["id"])
        assert [ix.name for ix in catalog.indexes_on("t")] == ["ix_t"]


class TestCatalogProcedures:
    def test_create_get_drop(self):
        catalog = Catalog()
        catalog.create_procedure("p", ["a"], "SELECT 1")
        assert catalog.get_procedure("P").body_sql == "SELECT 1"
        catalog.drop_procedure("p")
        with pytest.raises(ProcedureNotFoundError):
            catalog.get_procedure("p")

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_procedure("p", [], "SELECT 1")
        with pytest.raises(CatalogError):
            catalog.create_procedure("p", [], "SELECT 2")


class TestSnapshotRestore:
    def test_roundtrip(self):
        catalog = Catalog()
        catalog.create_table("t", make_columns(), primary_key=("id",))
        catalog.create_index("ix", "t", ["name"])
        catalog.create_procedure("p", ["x"], "SELECT @x")
        restored = Catalog.restore(catalog.snapshot())
        table = restored.get_table("t")
        assert table.primary_key == ("id",)
        assert [c.name for c in table.columns] == ["id", "name"]
        assert restored.indexes["ix"].column_names == ("name",)
        assert restored.get_procedure("p").param_names == ("x",)
        assert restored.next_file_id == catalog.next_file_id

    def test_volatile_tables_excluded(self):
        catalog = Catalog()
        catalog.create_table("temp", make_columns(), volatile=True)
        catalog.create_table("real", make_columns())
        restored = Catalog.restore(catalog.snapshot())
        assert not restored.has_table("temp")
        assert restored.has_table("real")

    def test_restore_none_is_empty(self):
        catalog = Catalog.restore(None)
        assert catalog.tables == {}
        assert catalog.next_file_id == 1

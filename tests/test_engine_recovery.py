"""Crash/restart recovery tests at the engine level.

These drive the core durability contract Phoenix depends on: committed
tables survive any crash, uncommitted work never does, and recovery is
idempotent.
"""

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.meter import Meter


class CrashHarness:
    """Owns the durable parts (disk + log) across engine incarnations."""

    def __init__(self):
        self.meter = Meter()
        self.engine = DatabaseEngine(meter=self.meter)
        self.disk = self.engine.disk
        self.wal = self.engine.wal
        self.session = EngineSession(session_id=1)

    def run(self, sql, params=None):
        result = self.engine.execute(sql, self.session, params)
        if result.kind == "rows":
            return result.fetch_all()
        if result.kind == "rowcount":
            return result.rowcount
        return None

    def crash(self):
        """Power-cut: volatile state dies, disk and forced log survive."""
        self.wal.crash()
        self.engine.buffer_pool.crash()
        self.engine = None
        self.session = EngineSession(session_id=self.session.session_id + 1)

    def restart(self):
        self.engine = DatabaseEngine.restart(self.disk, self.wal,
                                             meter=self.meter)
        return self.engine.last_recovery


@pytest.fixture
def harness():
    return CrashHarness()


class TestCrashRecovery:
    def test_committed_insert_survives(self, harness):
        harness.run("CREATE TABLE t (a INT)")
        harness.run("INSERT INTO t VALUES (1), (2)")
        harness.crash()
        harness.restart()
        assert sorted(harness.run("SELECT * FROM t")) == [(1,), (2,)]

    def test_committed_without_checkpoint_survives(self, harness):
        """No checkpoint ever taken: redo must replay from the log start."""
        harness.run("CREATE TABLE t (a INT)")
        harness.run("INSERT INTO t VALUES (7)")
        assert harness.engine.buffer_pool.dirty_pages > 0  # nothing flushed
        harness.crash()
        harness.restart()
        assert harness.run("SELECT * FROM t") == [(7,)]

    def test_uncommitted_insert_lost(self, harness):
        harness.run("CREATE TABLE t (a INT)")
        harness.run("BEGIN TRANSACTION")
        harness.run("INSERT INTO t VALUES (99)")
        # Force so the loser's records are durable (otherwise they simply
        # vanish with the un-forced log tail — also a correct outcome,
        # covered by test_unforced_tail_is_lost).
        harness.engine.wal.force()
        harness.crash()
        report = harness.restart()
        assert harness.run("SELECT * FROM t") == []
        assert len(report.losers) == 1

    def test_uncommitted_update_rolled_back(self, harness):
        harness.run("CREATE TABLE t (a INT)")
        harness.run("INSERT INTO t VALUES (1)")
        harness.run("BEGIN TRANSACTION")
        harness.run("UPDATE t SET a = 2")
        # Force the log so the loser's records are durable, then flush the
        # dirty page so the uncommitted value is physically on disk (steal).
        harness.engine.wal.force()
        harness.engine.buffer_pool.flush_all()
        harness.crash()
        harness.restart()
        assert harness.run("SELECT * FROM t") == [(1,)]

    def test_uncommitted_delete_rolled_back(self, harness):
        harness.run("CREATE TABLE t (a INT)")
        harness.run("INSERT INTO t VALUES (1), (2)")
        harness.run("BEGIN TRANSACTION")
        harness.run("DELETE FROM t WHERE a = 1")
        harness.engine.wal.force()
        harness.crash()
        harness.restart()
        assert sorted(harness.run("SELECT * FROM t")) == [(1,), (2,)]

    def test_checkpoint_then_more_work(self, harness):
        harness.run("CREATE TABLE t (a INT)")
        harness.run("INSERT INTO t VALUES (1)")
        harness.engine.checkpoint()
        harness.run("INSERT INTO t VALUES (2)")
        harness.crash()
        report = harness.restart()
        assert report.checkpoint_lsn > 0
        assert sorted(harness.run("SELECT * FROM t")) == [(1,), (2,)]

    def test_table_created_after_checkpoint_survives(self, harness):
        harness.run("CREATE TABLE a (x INT)")
        harness.engine.checkpoint()
        harness.run("CREATE TABLE b (y INT)")
        harness.run("INSERT INTO b VALUES (5)")
        harness.crash()
        harness.restart()
        assert harness.run("SELECT * FROM b") == [(5,)]

    def test_dropped_table_stays_dropped(self, harness):
        harness.run("CREATE TABLE t (a INT)")
        harness.run("INSERT INTO t VALUES (1)")
        harness.engine.checkpoint()
        harness.run("DROP TABLE t")
        harness.crash()
        harness.restart()
        from repro.errors import TableNotFoundError

        with pytest.raises(TableNotFoundError):
            harness.run("SELECT * FROM t")

    def test_unforced_tail_is_lost(self, harness):
        """Work whose commit never forced the log does not survive.

        (Commits always force, so build the scenario manually: append a
        record without forcing.)"""
        harness.run("CREATE TABLE t (a INT)")
        harness.engine.wal.force()
        flushed = harness.engine.wal.flushed_lsn
        from repro.wal.records import BeginRecord

        harness.engine.wal.append(BeginRecord(txn_id=12345))
        lost = harness.wal.crash()
        assert lost == 1
        assert harness.wal.last_lsn == flushed

    def test_temp_tables_do_not_survive(self, harness):
        harness.run("CREATE TABLE #probe (a INT)")
        harness.run("INSERT INTO #probe VALUES (1)")
        harness.crash()
        harness.restart()
        from repro.errors import TableNotFoundError

        with pytest.raises(TableNotFoundError):
            harness.run("SELECT * FROM #probe")

    def test_procedures_survive(self, harness):
        harness.run("CREATE TABLE t (a INT)")
        harness.run("CREATE PROCEDURE fill (@v INT) AS "
                    "INSERT INTO t VALUES (@v)")
        harness.crash()
        harness.restart()
        harness.run("EXEC fill 3")
        assert harness.run("SELECT * FROM t") == [(3,)]

    def test_secondary_index_rebuilt(self, harness):
        harness.run("CREATE TABLE t (a INT, b INT)")
        harness.run("CREATE INDEX ix_b ON t (b)")
        harness.run("INSERT INTO t VALUES (1, 10), (2, 20)")
        harness.crash()
        harness.restart()
        assert harness.run("SELECT a FROM t WHERE b = 20") == [(2,)]

    def test_pk_index_rebuilt_and_enforced(self, harness):
        harness.run("CREATE TABLE t (a INT, PRIMARY KEY (a))")
        harness.run("INSERT INTO t VALUES (1)")
        harness.crash()
        harness.restart()
        from repro.errors import ConstraintError

        with pytest.raises(ConstraintError):
            harness.run("INSERT INTO t VALUES (1)")

    def test_recovery_is_idempotent(self, harness):
        harness.run("CREATE TABLE t (a INT)")
        harness.run("INSERT INTO t VALUES (1)")
        harness.run("BEGIN TRANSACTION")
        harness.run("INSERT INTO t VALUES (2)")
        harness.engine.wal.force()
        harness.crash()
        harness.restart()
        # Crash immediately after recovery and recover again.
        harness.crash()
        harness.restart()
        assert harness.run("SELECT * FROM t") == [(1,)]

    def test_double_crash_with_new_work_between(self, harness):
        harness.run("CREATE TABLE t (a INT)")
        harness.run("INSERT INTO t VALUES (1)")
        harness.crash()
        harness.restart()
        harness.run("INSERT INTO t VALUES (2)")
        harness.crash()
        harness.restart()
        assert sorted(harness.run("SELECT * FROM t")) == [(1,), (2,)]

    def test_txn_ids_not_reused_after_crash(self, harness):
        harness.run("CREATE TABLE t (a INT)")
        harness.run("BEGIN TRANSACTION")
        harness.run("INSERT INTO t VALUES (1)")
        loser_id = harness.session.current_txn.txn_id
        harness.engine.wal.force()
        harness.crash()
        harness.restart()
        new_txn = harness.engine.txns.begin()
        assert new_txn.txn_id > loser_id
        harness.engine.txns.commit(new_txn)

    def test_many_rows_across_checkpoint(self, harness):
        harness.run("CREATE TABLE t (a INT)")
        for i in range(50):
            harness.run(f"INSERT INTO t VALUES ({i})")
            if i == 25:
                harness.engine.checkpoint()
        harness.crash()
        harness.restart()
        rows = harness.run("SELECT count(*) FROM t")
        assert rows == [(50,)]

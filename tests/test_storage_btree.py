"""Tests for the B-tree, including hypothesis properties against a dict."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstraintError
from repro.storage.btree import BTree


class TestBTreeBasics:
    def test_empty(self):
        tree = BTree()
        assert len(tree) == 0
        assert tree.search((1,)) == []
        assert tree.min_key() is None
        assert tree.max_key() is None

    def test_insert_search(self):
        tree = BTree()
        tree.insert((5,), "a")
        assert tree.search((5,)) == ["a"]
        assert tree.contains((5,))
        assert not tree.contains((6,))

    def test_duplicate_keys_non_unique(self):
        tree = BTree()
        tree.insert((5,), "a")
        tree.insert((5,), "b")
        assert sorted(tree.search((5,))) == ["a", "b"]
        assert len(tree) == 2

    def test_unique_rejects_duplicates(self):
        tree = BTree(unique=True)
        tree.insert((5,), "a")
        with pytest.raises(ConstraintError):
            tree.insert((5,), "b")

    def test_delete_specific_value(self):
        tree = BTree()
        tree.insert((5,), "a")
        tree.insert((5,), "b")
        assert tree.delete((5,), "a")
        assert tree.search((5,)) == ["b"]
        assert len(tree) == 1

    def test_delete_whole_key(self):
        tree = BTree()
        tree.insert((5,), "a")
        tree.insert((5,), "b")
        assert tree.delete((5,))
        assert tree.search((5,)) == []
        assert len(tree) == 0

    def test_delete_missing_returns_false(self):
        tree = BTree()
        assert not tree.delete((1,))
        tree.insert((1,), "a")
        assert not tree.delete((1,), "other")

    def test_many_inserts_force_splits(self):
        tree = BTree(t=2)
        for i in range(200):
            tree.insert((i,), i)
        assert len(tree) == 200
        assert [k[0] for k, _v in tree.items()] == list(range(200))

    def test_interleaved_deletes_force_merges(self):
        tree = BTree(t=2)
        for i in range(100):
            tree.insert((i,), i)
        for i in range(0, 100, 2):
            assert tree.delete((i,))
        remaining = [k[0] for k, _v in tree.items()]
        assert remaining == list(range(1, 100, 2))

    def test_range_scan_inclusive(self):
        tree = BTree()
        for i in range(10):
            tree.insert((i,), i)
        got = [k[0] for k, _v in tree.range((3,), (6,))]
        assert got == [3, 4, 5, 6]

    def test_range_scan_exclusive(self):
        tree = BTree()
        for i in range(10):
            tree.insert((i,), i)
        got = [k[0] for k, _v in tree.range((3,), (6,),
                                            lo_inclusive=False,
                                            hi_inclusive=False)]
        assert got == [4, 5]

    def test_range_open_ended(self):
        tree = BTree()
        for i in range(5):
            tree.insert((i,), i)
        assert [k[0] for k, _v in tree.range(lo=(3,))] == [3, 4]
        assert [k[0] for k, _v in tree.range(hi=(1,))] == [0, 1]

    def test_composite_keys_order(self):
        tree = BTree()
        keys = [(1, "b"), (1, "a"), (0, "z"), (2, "a")]
        for key in keys:
            tree.insert(key, key)
        assert [k for k, _v in tree.items()] == sorted(keys)

    def test_min_max(self):
        tree = BTree(t=2)
        for i in [5, 3, 8, 1, 9]:
            tree.insert((i,), i)
        assert tree.min_key() == (1,)
        assert tree.max_key() == (9,)

    def test_bad_degree_rejected(self):
        with pytest.raises(ValueError):
            BTree(t=1)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(-50, 50), st.integers(0, 5)),
                max_size=300))
def test_btree_matches_dict_under_inserts(pairs):
    """Insert-only property: contents match a reference multimap."""
    tree = BTree(t=2)
    reference: dict[tuple, list] = {}
    for key_val in pairs:
        key = (key_val[0],)
        tree.insert(key, key_val[1])
        reference.setdefault(key, []).append(key_val[1])
    for key, values in reference.items():
        assert sorted(tree.search(key)) == sorted(values)
    assert len(tree) == sum(len(v) for v in reference.values())
    assert [k for k, _v in tree.items()] == sorted(
        k for k in reference for _ in reference[k])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(-20, 20)),
                max_size=300))
def test_btree_matches_dict_under_mixed_ops(ops):
    """Insert/delete property: tree always agrees with a reference dict."""
    tree = BTree(t=2)
    reference: dict[tuple, list] = {}
    for is_delete, raw in ops:
        key = (raw,)
        if is_delete:
            expected = bool(reference.pop(key, None))
            assert tree.delete(key) == expected
        else:
            tree.insert(key, raw)
            reference.setdefault(key, []).append(raw)
    assert sorted(k for k, _v in tree.items()) == sorted(
        k for k in reference for _ in reference[k])
    for key, values in reference.items():
        assert sorted(tree.search(key)) == sorted(values)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(-100, 100), max_size=120),
       st.integers(-100, 100), st.integers(-100, 100))
def test_btree_range_matches_sorted_filter(keys, lo, hi):
    tree = BTree(t=3)
    for k in keys:
        tree.insert((k,), k)
    lo_key, hi_key = min(lo, hi), max(lo, hi)
    got = [k[0] for k, _v in tree.range((lo_key,), (hi_key,))]
    assert got == sorted(k for k in keys if lo_key <= k <= hi_key)

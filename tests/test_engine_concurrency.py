"""Cross-session transaction and locking behaviour."""

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.errors import DeadlockError
from repro.sim.meter import Meter


@pytest.fixture
def world():
    engine = DatabaseEngine(meter=Meter())
    alice = EngineSession(session_id=1)
    bob = EngineSession(session_id=2)
    engine.execute("CREATE TABLE acct (id INT NOT NULL, bal INT, "
                   "PRIMARY KEY (id))", alice)
    engine.execute("INSERT INTO acct VALUES (1, 100), (2, 200)", alice)
    return engine, alice, bob


def run(engine, session, sql):
    result = engine.execute(sql, session)
    if result.kind == "rows":
        return result.fetch_all()
    if result.kind == "rowcount":
        return result.rowcount
    return None


class TestWriteConflicts:
    def test_writer_blocks_writer(self, world):
        engine, alice, bob = world
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "UPDATE acct SET bal = 0 WHERE id = 1")
        with pytest.raises(DeadlockError):
            run(engine, bob, "UPDATE acct SET bal = 1 WHERE id = 2")
        run(engine, alice, "ROLLBACK")
        # After the lock is released the blocked writer can proceed.
        assert run(engine, bob, "UPDATE acct SET bal = 1 WHERE id = 2") == 1

    def test_writer_blocks_reader_in_txn(self, world):
        engine, alice, bob = world
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "UPDATE acct SET bal = 0 WHERE id = 1")
        run(engine, bob, "BEGIN TRANSACTION")
        with pytest.raises(DeadlockError):
            run(engine, bob, "SELECT * FROM acct")
        run(engine, bob, "ROLLBACK")
        run(engine, alice, "COMMIT")

    def test_readers_share(self, world):
        engine, alice, bob = world
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "SELECT * FROM acct")
        run(engine, bob, "BEGIN TRANSACTION")
        assert len(run(engine, bob, "SELECT * FROM acct")) == 2
        run(engine, alice, "COMMIT")
        run(engine, bob, "COMMIT")

    def test_autocommit_select_takes_no_lock(self, world):
        engine, alice, bob = world
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "UPDATE acct SET bal = 0 WHERE id = 1")
        # An autocommit read outside a transaction does not queue on
        # locks in this single-threaded server (read-committed-ish).
        rows = run(engine, bob, "SELECT count(*) FROM acct")
        assert rows == [(2,)]
        run(engine, alice, "ROLLBACK")

    def test_victim_transaction_is_aborted_by_lock_manager(self, world):
        engine, alice, bob = world
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "UPDATE acct SET bal = 0 WHERE id = 1")
        run(engine, bob, "BEGIN TRANSACTION")
        with pytest.raises(DeadlockError):
            run(engine, bob, "UPDATE acct SET bal = 5 WHERE id = 2")
        # Bob's transaction is still open (no-wait raises, app decides).
        assert bob.in_transaction
        run(engine, bob, "ROLLBACK")
        run(engine, alice, "COMMIT")


class TestInterleavedCommits:
    """Locks are table-granularity, so interleaved writers use disjoint
    tables — strict 2PL still interleaves their begin/commit windows."""

    @pytest.fixture
    def ledgers(self, world):
        engine, alice, bob = world
        run(engine, alice, "CREATE TABLE a_log (v INT)")
        run(engine, alice, "CREATE TABLE b_log (v INT)")
        return engine, alice, bob

    def test_interleaved_transactions_both_apply(self, ledgers):
        engine, alice, bob = ledgers
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "INSERT INTO a_log VALUES (1)")
        run(engine, bob, "BEGIN TRANSACTION")
        run(engine, bob, "INSERT INTO b_log VALUES (2)")
        run(engine, bob, "COMMIT")
        run(engine, alice, "COMMIT")
        assert run(engine, alice, "SELECT count(*) FROM a_log") == [(1,)]
        assert run(engine, alice, "SELECT count(*) FROM b_log") == [(1,)]

    def test_one_commits_one_aborts(self, ledgers):
        engine, alice, bob = ledgers
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "INSERT INTO a_log VALUES (1)")
        run(engine, bob, "BEGIN TRANSACTION")
        run(engine, bob, "INSERT INTO b_log VALUES (2)")
        run(engine, alice, "COMMIT")
        run(engine, bob, "ROLLBACK")
        assert run(engine, alice, "SELECT count(*) FROM a_log") == [(1,)]
        assert run(engine, alice, "SELECT count(*) FROM b_log") == [(0,)]

    def test_crash_with_two_open_transactions(self, ledgers):
        engine, alice, bob = ledgers
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "INSERT INTO a_log VALUES (1)")
        run(engine, bob, "BEGIN TRANSACTION")
        run(engine, bob, "INSERT INTO b_log VALUES (2)")
        engine.wal.force()
        disk, wal = engine.disk, engine.wal
        wal.crash()
        engine.buffer_pool.crash()
        restarted = DatabaseEngine.restart(disk, wal, meter=engine.meter)
        assert len(restarted.last_recovery.losers) == 2
        fresh = EngineSession(session_id=9)
        for table in ("a_log", "b_log"):
            rows = restarted.execute(f"SELECT count(*) FROM {table}",
                                     fresh).fetch_all()
            assert rows == [(0,)]

    def test_abort_all_active(self, ledgers):
        engine, alice, bob = ledgers
        run(engine, alice, "BEGIN TRANSACTION")
        run(engine, alice, "INSERT INTO a_log VALUES (1)")
        run(engine, bob, "BEGIN TRANSACTION")
        run(engine, bob, "INSERT INTO b_log VALUES (2)")
        aborted = engine.txns.abort_all_active()
        assert len(aborted) == 2
        fresh = EngineSession(session_id=3)
        assert run(engine, fresh, "SELECT count(*) FROM a_log") == [(0,)]
        assert run(engine, fresh, "SELECT count(*) FROM b_log") == [(0,)]

"""ODBC surface details: handles, diagnostics, attrs, block cursors."""

import pytest

from repro.errors import OdbcError
from repro.odbc.constants import (
    SQL_ATTR_ROW_ARRAY_SIZE,
    SQL_ERROR,
    SQL_NO_DATA,
    SQL_SUCCESS,
)
from repro.odbc.driver import NativeDriver
from repro.odbc.driver_manager import DriverManager, sqlstate_for
from repro.odbc.handles import ConnectionHandle, EnvironmentHandle
from repro.server.network import SimulatedNetwork
from repro.server.server import DatabaseServer
from repro.sim.meter import Meter


@pytest.fixture
def manager_conn():
    meter = Meter()
    server = DatabaseServer(meter=meter)
    network = SimulatedNetwork(meter)
    manager = DriverManager(NativeDriver(server, network, meter))
    env = manager.alloc_env()
    conn = manager.alloc_connection(env)
    assert manager.connect(conn, "app") == SQL_SUCCESS
    return manager, conn


class TestHandles:
    def test_env_tracks_connections(self):
        env = EnvironmentHandle()
        a = ConnectionHandle(env)
        b = ConnectionHandle(env)
        assert env.connections == [a, b]

    def test_connection_tracks_statements(self, manager_conn):
        manager, conn = manager_conn
        s1 = manager.alloc_statement(conn)
        s2 = manager.alloc_statement(conn)
        assert conn.statements[-2:] == [s1, s2]

    def test_handle_ids_unique(self, manager_conn):
        manager, conn = manager_conn
        ids = {manager.alloc_statement(conn).handle_id for _ in range(5)}
        assert len(ids) == 5

    def test_diag_cleared_per_operation(self, manager_conn):
        manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        assert manager.exec_direct(stmt, "SELECT * FROM ghost") == SQL_ERROR
        assert manager.get_diag(stmt)
        assert manager.exec_direct(stmt, "SELECT 1") == SQL_SUCCESS
        assert manager.get_diag(stmt) == []


class TestFetchPaths:
    def test_fetch_without_result(self, manager_conn):
        manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        rc, row = manager.fetch(stmt)
        assert rc == SQL_ERROR
        assert manager.get_diag(stmt)[0].sqlstate == "24000"

    def test_block_fetch_partial_batches(self, manager_conn):
        manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        manager.exec_direct(stmt, "CREATE TABLE t (a INT)")
        manager.exec_direct(stmt, "INSERT INTO t VALUES (1), (2), (3), "
                                  "(4), (5)")
        manager.exec_direct(stmt, "SELECT a FROM t ORDER BY a")
        rc, rows = manager.fetch_block(stmt, 2)
        assert rc == SQL_SUCCESS and len(rows) == 2
        rc, rows = manager.fetch_block(stmt, 10)
        assert rc == SQL_SUCCESS and len(rows) == 3
        rc, rows = manager.fetch_block(stmt, 10)
        assert rc == SQL_NO_DATA

    def test_row_array_size_attr_is_stored(self, manager_conn):
        manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        assert manager.set_stmt_attr(stmt, SQL_ATTR_ROW_ARRAY_SIZE,
                                     64) == SQL_SUCCESS
        assert stmt.attrs[SQL_ATTR_ROW_ARRAY_SIZE] == 64

    def test_row_count_semantics(self, manager_conn):
        manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        manager.exec_direct(stmt, "CREATE TABLE t (a INT)")
        assert manager.row_count(stmt) == -1  # DDL: no count
        manager.exec_direct(stmt, "INSERT INTO t VALUES (1), (2)")
        assert manager.row_count(stmt) == 2

    def test_free_statement_closes_cursor(self, manager_conn):
        manager, conn = manager_conn
        stmt = manager.alloc_statement(conn)
        manager.exec_direct(stmt, "CREATE TABLE t (a INT)")
        manager.exec_direct(stmt, "INSERT INTO t VALUES (1)")
        manager.exec_direct(stmt, "SELECT a FROM t")
        assert manager.free_statement(stmt) == SQL_SUCCESS
        assert stmt.freed


class TestSqlstateMapping:
    def test_transport_errors(self):
        from repro.errors import (
            ConnectionLostError,
            RequestTimeoutError,
            ServerCrashedError,
            ServerDownError,
        )

        assert sqlstate_for(ServerDownError("x")) == "08S01"
        assert sqlstate_for(ServerCrashedError("x")) == "08S01"
        assert sqlstate_for(RequestTimeoutError("x")) == "08S01"
        assert sqlstate_for(ConnectionLostError("x")) == "08003"

    def test_engine_errors(self):
        from repro.errors import (
            ConstraintError,
            DeadlockError,
            EngineError,
            SqlSyntaxError,
        )

        assert sqlstate_for(SqlSyntaxError("x")) == "42000"
        assert sqlstate_for(ConstraintError("x")) == "23000"
        assert sqlstate_for(DeadlockError("x")) == "40001"
        assert sqlstate_for(EngineError("x")) == "HY000"

    def test_odbc_error_passthrough(self):
        assert sqlstate_for(OdbcError("24000", "m")) == "24000"


class TestDisconnectSemantics:
    def test_disconnect_resets_handle(self, manager_conn):
        manager, conn = manager_conn
        assert manager.disconnect(conn) == SQL_SUCCESS
        assert not conn.connected
        assert conn.session_token == 0

    def test_operations_after_disconnect_fail(self, manager_conn):
        manager, conn = manager_conn
        manager.disconnect(conn)
        stmt = manager.alloc_statement(conn)
        assert manager.exec_direct(stmt, "SELECT 1") == SQL_ERROR

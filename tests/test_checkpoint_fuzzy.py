"""Fuzzy checkpoints: dirty-page table, cadence, recovery, observability.

The tentpole contract: a fuzzy checkpoint is a Begin/End record pair
carrying the dirty-page table (page -> recLSN) and active-transaction
table, taken without flushing the pool or blocking anything; recovery
seeded from it starts redo at the minimum recLSN and skips records whose
effects provably reached disk.  All knobs default off, in which case
nothing here may perturb seed behaviour.
"""

import copy

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.wal.records import BeginCheckpointRecord, EndCheckpointRecord
from repro.workloads.app import BenchmarkApp


def make_engine(costs: CostModel | None = None):
    engine = DatabaseEngine(meter=Meter(costs or CostModel()))
    session = EngineSession(session_id=1)

    def run(sql):
        result = engine.execute(sql, session)
        if result.kind == "rows":
            return result.fetch_all()
        if result.kind == "rowcount":
            return result.rowcount
        return None

    return engine, run


# -- dirty-page table ---------------------------------------------------------

def test_dirty_page_table_tracks_rec_lsns():
    engine, run = make_engine()
    run("CREATE TABLE t (k INT NOT NULL, v INT, PRIMARY KEY (k))")
    run("INSERT INTO t VALUES (1, 0)")
    pool = engine.buffer_pool
    dpt = pool.dirty_page_table()
    assert dpt, "insert left no dirty page"
    # recLSN is the FIRST lsn that dirtied the page: later updates to the
    # same page must not advance it.
    before = dict(dpt)
    run("UPDATE t SET v = 1 WHERE k = 1")
    after = pool.dirty_page_table()
    for key, rec_lsn in before.items():
        assert after[key] == rec_lsn
    # Flushing clears the entry; the next change re-registers the page
    # with a fresh (higher) recLSN.
    key = next(iter(before))
    pool.flush_page(*key)
    assert key not in pool.dirty_page_table()
    run("UPDATE t SET v = 2 WHERE k = 1")
    redirtied = pool.dirty_page_table()
    if key in redirtied:  # same page touched again
        assert redirtied[key] > before[key]


def test_flush_dirtied_before_is_selective():
    engine, run = make_engine()
    run("CREATE TABLE a (k INT NOT NULL, v INT, PRIMARY KEY (k))")
    run("CREATE TABLE b (k INT NOT NULL, v INT, PRIMARY KEY (k))")
    run("INSERT INTO a VALUES (1, 0)")
    run("INSERT INTO b VALUES (1, 0)")
    pool = engine.buffer_pool
    # Freshly created pages carry the conservative recLSN 0; flush so the
    # next change registers each page with its true first-dirty LSN.
    pool.flush_all()
    run("UPDATE a SET v = 1 WHERE k = 1")
    cut = engine.wal.last_lsn
    run("UPDATE b SET v = 1 WHERE k = 1")
    dirty_before = {k for k, rec in pool.dirty_page_table().items()
                    if 0 < rec < cut}
    assert dirty_before
    flushed = pool.flush_dirtied_before(cut)
    assert flushed == len(dirty_before)
    # Only pages dirtied strictly before the cut were written out.
    remaining = pool.dirty_page_table()
    assert remaining
    assert all(rec >= cut for rec in remaining.values())


# -- taking fuzzy checkpoints -------------------------------------------------

def test_fuzzy_checkpoint_does_not_flush_hot_pages():
    engine, run = make_engine()
    run("CREATE TABLE t (k INT NOT NULL, v INT, PRIMARY KEY (k))")
    run("INSERT INTO t VALUES (1, 0)")
    pool = engine.buffer_pool
    dirty = set(pool.dirty_page_table())
    begin_lsn = engine.fuzzy_checkpoint(truncate=False)
    # Non-blocking: the first fuzzy checkpoint flushes nothing (the
    # background flusher only writes pages dirty since the *previous*
    # Begin record) and every hot page stays dirty.
    assert set(pool.dirty_page_table()) == dirty
    end = engine.wal.last_complete_checkpoint()
    assert isinstance(end, EndCheckpointRecord)
    assert end.begin_lsn == begin_lsn
    assert set(end.dirty_pages) == dirty
    # The Begin record really is in the log below the End record.
    assert isinstance(engine.wal.record(begin_lsn), BeginCheckpointRecord)


def test_background_flusher_advances_min_reclsn():
    engine, run = make_engine()
    run("CREATE TABLE t (k INT NOT NULL, v INT, PRIMARY KEY (k))")
    run("INSERT INTO t VALUES (1, 0)")
    engine.fuzzy_checkpoint(truncate=False)
    first_min = engine.buffer_pool.min_rec_lsn()
    # No new dirtying between checkpoints: the second checkpoint's
    # flusher writes out everything dirtied before the first Begin.
    engine.fuzzy_checkpoint(truncate=False)
    engine.fuzzy_checkpoint(truncate=False)
    remaining = engine.buffer_pool.min_rec_lsn()
    assert remaining is None or remaining > first_min
    assert engine.meter.counters.get("pages_flushed_background", 0) > 0


def test_cadence_knob_triggers_checkpoints():
    costs = CostModel(checkpoint_interval_seconds=0.05)
    server = DatabaseServer(meter=Meter(costs))
    app = BenchmarkApp(server)
    app.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                      "PRIMARY KEY (k))")
    app.run_statement("INSERT INTO t VALUES (1, 0)")
    for _ in range(40):
        app.run_statement("UPDATE t SET v = v + 1 WHERE k = 1")
    taken = server.meter.counters.get("checkpoints_taken", 0)
    assert taken >= 2, f"cadence produced only {taken} checkpoints"
    assert isinstance(server.wal.last_complete_checkpoint(),
                      EndCheckpointRecord)


def test_defaults_leave_log_untouched():
    """All knobs at their defaults: no checkpoint records, no
    truncation, no counters — the seed path."""
    server = DatabaseServer(meter=Meter(CostModel()))
    app = BenchmarkApp(server)
    app.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                      "PRIMARY KEY (k))")
    for _ in range(20):
        app.run_statement("UPDATE t SET v = 1 WHERE k = 0")
    assert server.wal.truncated_lsn == 0
    assert server.wal.last_complete_checkpoint() is None
    counters = server.meter.counters
    assert "checkpoints_taken" not in counters
    assert "log_records_truncated" not in counters
    report = server.engine.last_recovery
    assert report is None or not report.fuzzy


# -- recovery from a fuzzy checkpoint -----------------------------------------

def _workload(run):
    run("CREATE TABLE t (k INT NOT NULL, v INT, PRIMARY KEY (k))")
    for i in range(8):
        run(f"INSERT INTO t VALUES ({i}, 0)")
    for rnd in range(6):
        run(f"UPDATE t SET v = v + {rnd + 1} WHERE k < 4")


def test_fuzzy_recovery_equals_no_crash_state():
    engine, run = make_engine()
    _workload(run)
    expected = sorted(run("SELECT k, v FROM t"))

    engine2, run2 = make_engine()
    run2("CREATE TABLE t (k INT NOT NULL, v INT, PRIMARY KEY (k))")
    for i in range(8):
        run2(f"INSERT INTO t VALUES ({i}, 0)")
    for rnd in range(6):
        run2(f"UPDATE t SET v = v + {rnd + 1} WHERE k < 4")
        if rnd % 2 == 0:
            engine2.fuzzy_checkpoint(truncate=True)
    disk, wal, meter = engine2.disk, engine2.wal, engine2.meter
    wal.crash()
    engine2.buffer_pool.crash()
    restarted = DatabaseEngine.restart(disk, wal, meter=meter)
    report = restarted.last_recovery
    assert report.fuzzy
    assert report.redo_start >= 1
    session = EngineSession(session_id=9)
    rows = restarted.execute("SELECT k, v FROM t", session).fetch_all()
    assert sorted(rows) == expected


def test_worker_count_never_changes_recovered_contents():
    """1-worker and 4-worker redo recover bit-identical state (records
    are applied serially in LSN order either way)."""
    engine, run = make_engine(CostModel(checkpoint_interval_seconds=0.02,
                                        checkpoint_truncate_log=True))
    _workload(run)
    engine.fuzzy_checkpoint()
    run("UPDATE t SET v = v + 100 WHERE k >= 4")
    engine.wal.force()
    engine.wal.crash()
    engine.buffer_pool.crash()

    recovered = {}
    for workers in (1, 4):
        disk = copy.deepcopy(engine.disk)
        wal = copy.deepcopy(engine.wal)
        meter = Meter(CostModel(redo_workers=workers))
        wal.attach_meter(meter)
        restarted = DatabaseEngine.restart(disk, wal, meter=meter)
        assert restarted.last_recovery.redo_workers == workers
        session = EngineSession(session_id=5)
        recovered[workers] = sorted(
            restarted.execute("SELECT k, v FROM t", session).fetch_all())
    assert recovered[1] == recovered[4]


def test_parallel_redo_charges_at_most_serial_time():
    """More workers can only shrink the charged redo makespan."""
    engine, run = make_engine()
    # All DDL first: a CREATE in the redo stream is a serial barrier, so
    # interleaving it with the DML would leave each round one partition.
    for t in range(3):
        run(f"CREATE TABLE m{t} (k INT NOT NULL, v INT, PRIMARY KEY (k))")
    for t in range(3):
        for i in range(6):
            run(f"INSERT INTO m{t} VALUES ({i}, 0)")
        run(f"UPDATE m{t} SET v = 1 WHERE k < 6")
    engine.wal.force()
    engine.wal.crash()
    engine.buffer_pool.crash()

    elapsed = {}
    for workers in (1, 4):
        disk = copy.deepcopy(engine.disk)
        wal = copy.deepcopy(engine.wal)
        meter = Meter(CostModel(redo_workers=workers))
        wal.attach_meter(meter)
        start = meter.now
        restarted = DatabaseEngine.restart(disk, wal, meter=meter)
        elapsed[workers] = meter.now - start
        report = restarted.last_recovery
        assert len(report.partition_seconds) == 3
    assert elapsed[4] < elapsed[1]


# -- observability ------------------------------------------------------------

def test_sys_checkpoint_view_is_queryable():
    costs = CostModel(checkpoint_interval_seconds=0.05,
                      checkpoint_truncate_log=True)
    server = DatabaseServer(meter=Meter(costs))
    app = BenchmarkApp(server)
    app.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                      "PRIMARY KEY (k))")
    app.run_statement("INSERT INTO t VALUES (1, 0)")
    for _ in range(40):
        app.run_statement("UPDATE t SET v = v + 1 WHERE k = 1")
    rows = dict(app.query_rows("SELECT metric, value FROM sys_checkpoint"))
    assert rows["checkpoints_taken"] >= 2
    assert rows["last_checkpoint_lsn"] > 0
    assert rows["flushed_lsn"] >= rows["truncated_lsn"]
    assert rows["dirty_pages"] >= 0


def test_recovery_phases_recorded_for_fuzzy_restarts():
    costs = CostModel(checkpoint_interval_seconds=0.05, redo_workers=2)
    server = DatabaseServer(meter=Meter(costs))
    app = BenchmarkApp(server)
    app.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                      "PRIMARY KEY (k))")
    for _ in range(30):
        app.run_statement("UPDATE t SET v = 1 WHERE k = 0")
    server.crash()
    server.restart()
    survivor = BenchmarkApp(server)
    phases = dict(
        (phase, seconds) for _rid, phase, seconds, _at in
        [row for row in survivor.query_rows(
            "SELECT recovery_id, phase, seconds, finished_at "
            "FROM sys_recovery_phases")])
    assert "wal_analysis" in phases
    assert "wal_redo" in phases
    assert "wal_undo" in phases


def test_sys_checkpoint_traced_vs_untraced_bit_identical(monkeypatch):
    """Observation is free: the fuzzy-checkpoint path runs bit-identically
    with tracing on and off (sys_checkpoint reads, no charges)."""
    from repro.obs import trace_enabled_from_env

    def run_world():
        costs = CostModel(checkpoint_interval_seconds=0.05,
                          checkpoint_truncate_log=True, redo_workers=4)
        server = DatabaseServer(meter=Meter(costs))
        app = BenchmarkApp(server)
        app.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                          "PRIMARY KEY (k))")
        app.run_statement("INSERT INTO t VALUES (1, 0)")
        for _ in range(40):
            app.run_statement("UPDATE t SET v = v + 1 WHERE k = 1")
        server.crash()
        server.restart()
        survivor = BenchmarkApp(server)
        rows = survivor.query_rows(
            "SELECT metric, value FROM sys_checkpoint")
        return server.meter.now, sorted(rows), dict(server.meter.counters)

    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert not trace_enabled_from_env()
    untraced = run_world()
    monkeypatch.setenv("REPRO_TRACE", "1")
    traced = run_world()
    assert untraced == traced

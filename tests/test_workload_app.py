"""Tests for the measurement application (BenchmarkApp)."""

import pytest

from repro.errors import ReproError
from repro.server.server import DatabaseServer
from repro.sim.costs import CLIENT_CPU, SERVER_CPU
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp, Timing


@pytest.fixture
def server():
    server = DatabaseServer(meter=Meter())
    app = BenchmarkApp(server)
    app.run_statement("CREATE TABLE t (a INT)")
    app.run_statement("INSERT INTO t VALUES (1), (2), (3)")
    return server


class TestBenchmarkApp:
    def test_native_and_phoenix_construction(self, server):
        native = BenchmarkApp(server, use_phoenix=False)
        phoenix = BenchmarkApp(server, use_phoenix=True)
        assert not hasattr(native.manager, "stats")
        assert hasattr(phoenix.manager, "stats")

    def test_run_query_counts_rows_and_time(self, server):
        app = BenchmarkApp(server)
        timing = app.run_query("SELECT a FROM t ORDER BY a",
                               label="probe")
        assert isinstance(timing, Timing)
        assert timing.rows == 3
        assert timing.seconds > 0
        assert timing.label == "probe"

    def test_run_query_without_fetch(self, server):
        app = BenchmarkApp(server)
        fetched = app.run_query("SELECT a FROM t", fetch=True)
        unfetched = app.run_query("SELECT a FROM t", fetch=False)
        assert unfetched.rows == 0
        assert unfetched.seconds < fetched.seconds

    def test_run_statement_reports_rowcount(self, server):
        app = BenchmarkApp(server)
        timing = app.run_statement("UPDATE t SET a = a + 1")
        assert timing.rowcount == 3

    def test_query_rows_convenience(self, server):
        app = BenchmarkApp(server)
        assert sorted(app.query_rows("SELECT a FROM t")) \
            == [(1,), (2,), (3,)]

    def test_trace_captures_resources(self, server):
        app = BenchmarkApp(server)
        timing = app.run_query("SELECT a FROM t")
        assert timing.trace is not None
        assert timing.trace.seconds_on(SERVER_CPU) > 0
        assert timing.trace.seconds_on(CLIENT_CPU) > 0
        assert timing.trace.total_seconds == pytest.approx(timing.seconds)

    def test_measured_steps_wraps_compound_work(self, server):
        app = BenchmarkApp(server)

        def steps(a):
            a.query_rows("SELECT count(*) FROM t")
            a.run_statement("INSERT INTO t VALUES (99)")

        timing = app.execute_measured_steps("compound", steps)
        assert timing.label == "compound"
        # Nested requests folded into one top-level trace.
        assert timing.trace.total_seconds == pytest.approx(timing.seconds)

    def test_failed_statement_raises_with_diag(self, server):
        app = BenchmarkApp(server)
        with pytest.raises(ReproError) as excinfo:
            app.run_query("SELECT * FROM missing")
        assert "missing" in str(excinfo.value)

    def test_connect_failure_surfaces(self):
        down = DatabaseServer(meter=Meter())
        down.crash()
        with pytest.raises(ReproError):
            BenchmarkApp(down)

    def test_apps_share_the_server_meter(self, server):
        app = BenchmarkApp(server)
        assert app.meter is server.meter
        before = app.meter.now
        app.query_rows("SELECT a FROM t")
        assert app.meter.now > before

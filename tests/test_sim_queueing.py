"""Tests for the multi-stream queueing simulator."""

import pytest

from repro.sim.costs import CLIENT_CPU, SERVER_CPU, SERVER_DISK
from repro.sim.meter import RequestTrace, Segment
from repro.sim.queueing import QueueingSimulator


def request(label: str, *segments: tuple[str, float]) -> RequestTrace:
    return RequestTrace(label=label,
                        segments=[Segment(r, s) for r, s in segments])


class TestQueueingSimulator:
    def test_single_stream_is_serial(self):
        sim = QueueingSimulator()
        result = sim.run([[request("a", (SERVER_CPU, 1.0), (SERVER_DISK, 2.0)),
                           request("b", (SERVER_CPU, 0.5))]])
        assert result.elapsed_seconds == pytest.approx(3.5)
        assert len(result.streams[0].completions) == 2

    def test_two_streams_serialize_on_shared_resource(self):
        sim = QueueingSimulator()
        streams = [[request("a", (SERVER_CPU, 1.0))],
                   [request("b", (SERVER_CPU, 1.0))]]
        result = sim.run(streams)
        # Both need the same CPU: total elapsed is the sum.
        assert result.elapsed_seconds == pytest.approx(2.0)

    def test_per_stream_resource_runs_in_parallel(self):
        sim = QueueingSimulator()
        streams = [[request("a", (CLIENT_CPU, 1.0))],
                   [request("b", (CLIENT_CPU, 1.0))]]
        result = sim.run(streams)
        assert result.elapsed_seconds == pytest.approx(1.0)

    def test_pipeline_overlap(self):
        # Stream 1 uses CPU then disk; stream 2 can use CPU while stream 1
        # is on disk.
        sim = QueueingSimulator()
        streams = [[request("a", (SERVER_CPU, 1.0), (SERVER_DISK, 1.0))],
                   [request("b", (SERVER_CPU, 1.0), (SERVER_DISK, 1.0))]]
        result = sim.run(streams)
        assert result.elapsed_seconds == pytest.approx(3.0)

    def test_utilization(self):
        sim = QueueingSimulator()
        streams = [[request("a", (SERVER_DISK, 2.0))],
                   [request("b", (SERVER_DISK, 2.0))]]
        result = sim.run(streams)
        assert result.utilization(SERVER_DISK) == pytest.approx(1.0)
        assert result.utilization(SERVER_CPU) == 0.0

    def test_start_times_offset_streams(self):
        sim = QueueingSimulator()
        result = sim.run([[request("a", (CLIENT_CPU, 1.0))]],
                         start_times=[10.0])
        assert result.elapsed_seconds == pytest.approx(11.0)

    def test_completions_in_window(self):
        sim = QueueingSimulator()
        stream = [request("neworder-1", (CLIENT_CPU, 1.0)),
                  request("payment-1", (CLIENT_CPU, 1.0)),
                  request("neworder-2", (CLIENT_CPU, 1.0))]
        result = sim.run([stream])
        assert result.completions_in(0.0, 3.0) == 3
        assert result.completions_in(0.0, 3.0, label_prefix="neworder") == 2
        assert result.completions_in(1.5, 2.5) == 1

    def test_empty_request_completes_instantly(self):
        sim = QueueingSimulator()
        result = sim.run([[request("noop")]])
        assert result.elapsed_seconds == 0.0
        assert len(result.streams[0].completions) == 1

    def test_latency_includes_queueing(self):
        sim = QueueingSimulator()
        streams = [[request("a", (SERVER_CPU, 2.0))],
                   [request("b", (SERVER_CPU, 1.0))]]
        result = sim.run(streams)
        latencies = {c.label: c.latency
                     for s in result.streams for c in s.completions}
        # One of them waited behind the other on the shared CPU.
        assert max(latencies.values()) > min(latencies.values())

    def test_mismatched_start_times_rejected(self):
        with pytest.raises(ValueError):
            QueueingSimulator().run([[]], start_times=[0.0, 1.0])

    def test_closed_loop_stream_order_preserved(self):
        sim = QueueingSimulator()
        stream = [request(f"r{i}", (SERVER_CPU, 0.1)) for i in range(5)]
        result = sim.run([stream])
        finishes = [c.finish_time for c in result.streams[0].completions]
        assert finishes == sorted(finishes)
        assert result.elapsed_seconds == pytest.approx(0.5)

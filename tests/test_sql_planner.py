"""Planner tests: access-path selection, join strategy, plan shapes."""

import pytest

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.sim.meter import Meter
from repro.sql.executor import (
    EmptyScan,
    Filter,
    HashAggregate,
    HashJoin,
    IndexSeek,
    Limit,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    is_streamable_plan,
)
from repro.sql.parser import parse_statement
from repro.sql.planner import Planner


@pytest.fixture
def world():
    engine = DatabaseEngine(meter=Meter())
    session = EngineSession(session_id=1)
    engine.execute("CREATE TABLE t (a INT, b INT, c VARCHAR(10), "
                   "PRIMARY KEY (a))", session)
    engine.execute("CREATE TABLE u (x INT, y INT, PRIMARY KEY (x))",
                   session)
    engine.execute("CREATE INDEX ix_t_b ON t (b)", session)
    planner = Planner(engine.table_provider(session), engine.meter)
    return engine, session, planner


def plan_of(planner, sql):
    return planner.plan_select(parse_statement(sql))


def operators(root):
    found = []
    stack = [root]
    while stack:
        op = stack.pop()
        found.append(op)
        stack.extend(op.children())
    return found


def has_op(root, kind) -> bool:
    return any(isinstance(op, kind) for op in operators(root))


class TestAccessPaths:
    def test_pk_equality_uses_index(self, world):
        _e, _s, planner = world
        plan = plan_of(planner, "SELECT * FROM t WHERE a = 5")
        assert has_op(plan.root, IndexSeek)
        assert not has_op(plan.root, SeqScan)

    def test_secondary_index_used(self, world):
        _e, _s, planner = world
        plan = plan_of(planner, "SELECT * FROM t WHERE b = 5")
        seek = next(op for op in operators(plan.root)
                    if isinstance(op, IndexSeek))
        assert seek.index_name == "ix_t_b"

    def test_range_on_pk(self, world):
        _e, _s, planner = world
        plan = plan_of(planner,
                       "SELECT * FROM t WHERE a >= 2 AND a < 9")
        seek = next(op for op in operators(plan.root)
                    if isinstance(op, IndexSeek))
        assert seek.lo_fn is not None
        assert seek.hi_fn is not None
        assert seek.lo_inclusive and not seek.hi_inclusive

    def test_no_index_falls_back_to_scan(self, world):
        _e, _s, planner = world
        plan = plan_of(planner, "SELECT * FROM t WHERE c = 'x'")
        assert has_op(plan.root, SeqScan)
        assert has_op(plan.root, Filter)

    def test_residual_kept_with_index(self, world):
        _e, _s, planner = world
        plan = plan_of(planner,
                       "SELECT * FROM t WHERE a = 5 AND c = 'x'")
        assert has_op(plan.root, IndexSeek)
        assert has_op(plan.root, Filter)


class TestJoins:
    def test_equi_becomes_hash_join(self, world):
        _e, _s, planner = world
        plan = plan_of(planner,
                       "SELECT * FROM t, u WHERE a = x")
        assert has_op(plan.root, HashJoin)

    def test_non_equi_uses_nested_loop(self, world):
        _e, _s, planner = world
        plan = plan_of(planner,
                       "SELECT * FROM t, u WHERE a < x")
        assert has_op(plan.root, NestedLoopJoin)

    def test_left_join_kind(self, world):
        _e, _s, planner = world
        plan = plan_of(planner,
                       "SELECT * FROM t LEFT JOIN u ON a = x")
        join = next(op for op in operators(plan.root)
                    if isinstance(op, HashJoin))
        assert join.kind == "left"

    def test_pushdown_below_join(self, world):
        _e, _s, planner = world
        plan = plan_of(planner,
                       "SELECT * FROM t, u WHERE a = x AND b = 7")
        seek = [op for op in operators(plan.root)
                if isinstance(op, IndexSeek)]
        assert seek, "single-table predicate should reach the index"


class TestShapes:
    def test_aggregate_and_sort(self, world):
        _e, _s, planner = world
        plan = plan_of(planner,
                       "SELECT b, count(*) AS n FROM t GROUP BY b "
                       "ORDER BY n DESC")
        assert has_op(plan.root, HashAggregate)
        assert has_op(plan.root, Sort)

    def test_top_limit(self, world):
        _e, _s, planner = world
        plan = plan_of(planner, "SELECT TOP 3 * FROM t")
        assert isinstance(plan.root, Limit)

    def test_contradiction_detected(self, world):
        _e, _s, planner = world
        plan = plan_of(planner, "SELECT * FROM t WHERE 0 = 1")
        assert has_op(plan.root, EmptyScan)
        assert not has_op(plan.root, SeqScan)

    def test_contradiction_on_wrapped_query(self, world):
        _e, _s, planner = world
        plan = plan_of(planner,
                       "SELECT * FROM (SELECT a, b FROM t) q WHERE 0 = 1")
        assert has_op(plan.root, EmptyScan)

    def test_streamable_detection(self, world):
        _e, _s, planner = world
        bare = plan_of(planner, "SELECT * FROM t")
        assert is_streamable_plan(bare.root)
        filtered = plan_of(planner, "SELECT * FROM t WHERE a = 1")
        assert not is_streamable_plan(filtered.root)
        limited = plan_of(planner, "SELECT TOP 5 * FROM t")
        assert not is_streamable_plan(limited.root)

    def test_output_schema_types(self, world):
        _e, _s, planner = world
        plan = plan_of(planner,
                       "SELECT a, c, count(*) AS n, sum(b) AS s "
                       "FROM t GROUP BY a, c")
        types = [col.sql_type.value for col in plan.output_columns]
        assert types == ["INTEGER", "VARCHAR", "INTEGER", "FLOAT"]
        names = [col.name for col in plan.output_columns]
        assert names == ["a", "c", "n", "s"]

"""Core Phoenix/ODBC behaviour: persistence, masking, exactly-once."""

import pytest

from repro.odbc.constants import SQL_ERROR, SQL_NO_DATA, SQL_SUCCESS
from repro.odbc.driver import NativeDriver
from repro.odbc.driver_manager import DriverManager
from repro.phoenix.config import PhoenixConfig
from repro.phoenix.driver_manager import PhoenixDriverManager
from repro.server.network import SimulatedNetwork
from repro.server.server import DatabaseServer
from repro.sim.meter import Meter


class PhoenixWorld:
    """One simulated world: server + network + phoenix manager.

    The network output buffer is shrunk to a few rows so that result
    delivery spans multiple wire batches — otherwise small test results
    are fully client-buffered at execute time and a crash never needs
    recovery at all (which is correct, but not what these tests probe).
    """

    def __init__(self, config: PhoenixConfig | None = None):
        from repro.sim.costs import CostModel

        self.meter = Meter(CostModel(output_buffer_bytes=4))
        self.server = DatabaseServer(meter=self.meter)
        self.network = SimulatedNetwork(self.meter)
        self.driver = NativeDriver(self.server, self.network, self.meter)
        self.manager = PhoenixDriverManager(self.driver, config)
        env = self.manager.alloc_env()
        self.conn = self.manager.alloc_connection(env)
        rc = self.manager.connect(self.conn, "app")
        assert rc == SQL_SUCCESS, self.manager.get_diag(self.conn)

    def execute(self, sql):
        stmt = self.manager.alloc_statement(self.conn)
        rc = self.manager.exec_direct(stmt, sql)
        assert rc == SQL_SUCCESS, self.manager.get_diag(stmt)
        return stmt

    def execute_rc(self, sql):
        stmt = self.manager.alloc_statement(self.conn)
        return self.manager.exec_direct(stmt, sql), stmt

    def fetch_all(self, stmt):
        rows = []
        while True:
            rc, row = self.manager.fetch(stmt)
            if rc == SQL_NO_DATA:
                return rows
            assert rc == SQL_SUCCESS, self.manager.get_diag(stmt)
            rows.append(row)

    def crash_and_restart(self):
        self.server.crash()
        self.server.restart()

    def seed(self, rows=10):
        self.execute("CREATE TABLE items (id INT, name VARCHAR(16), "
                     "PRIMARY KEY (id))")
        values = ", ".join(f"({i}, 'item{i}')" for i in range(rows))
        self.execute(f"INSERT INTO items VALUES {values}")


@pytest.fixture
def world():
    return PhoenixWorld()


@pytest.fixture
def cached_world():
    return PhoenixWorld(PhoenixConfig(client_cache_rows=100))


class TestResultPersistence:
    def test_select_served_from_persistent_table(self, world):
        world.seed(5)
        stmt = world.execute("SELECT id, name FROM items ORDER BY id")
        assert world.fetch_all(stmt) == [(i, f"item{i}") for i in range(5)]
        assert world.manager.stats["persisted_results"] == 1

    def test_result_table_created_on_server(self, world):
        world.seed(3)
        world.execute("SELECT id FROM items")
        catalog = world.server.engine.catalog
        phoenix_tables = [n for n in catalog.tables if n.startswith(
            "phoenix_rs_")]
        assert len(phoenix_tables) == 1

    def test_describe_reports_original_names(self, world):
        world.seed(3)
        stmt = world.execute("SELECT id AS item_id, name FROM items")
        assert world.manager.num_result_cols(stmt) == 2
        name, _t, _l = world.manager.describe_col(stmt, 1)
        assert name == "item_id"

    def test_close_cursor_drops_result_table(self, world):
        world.seed(3)
        stmt = world.execute("SELECT id FROM items")
        world.manager.close_cursor(stmt)
        catalog = world.server.engine.catalog
        assert not [n for n in catalog.tables if n.startswith("phoenix_rs_")]

    def test_reexecute_replaces_result_table(self, world):
        world.seed(3)
        stmt = world.execute("SELECT id FROM items")
        world.manager.exec_direct(stmt, "SELECT name FROM items")
        catalog = world.server.engine.catalog
        assert len([n for n in catalog.tables
                    if n.startswith("phoenix_rs_")]) == 1

    def test_load_procedure_cleaned_up(self, world):
        world.seed(3)
        world.execute("SELECT id FROM items")
        catalog = world.server.engine.catalog
        assert not [p for p in catalog.procedures
                    if p.startswith("phoenix_load_")]


class TestCrashMasking:
    def test_fetch_across_crash_is_seamless(self, world):
        world.seed(10)
        stmt = world.execute("SELECT id FROM items ORDER BY id")
        first = [world.manager.fetch(stmt)[1] for _ in range(4)]
        world.crash_and_restart()
        rest = world.fetch_all(stmt)
        assert first + rest == [(i,) for i in range(10)]
        assert world.manager.stats["recoveries"] == 1

    def test_crash_before_first_fetch(self, world):
        world.seed(6)
        stmt = world.execute("SELECT id FROM items ORDER BY id")
        world.crash_and_restart()
        assert world.fetch_all(stmt) == [(i,) for i in range(6)]

    def test_multiple_crashes_during_one_result(self, world):
        world.seed(9)
        stmt = world.execute("SELECT id FROM items ORDER BY id")
        rows = []
        for i in range(9):
            if i in (2, 5, 7):
                world.crash_and_restart()
            rc, row = world.manager.fetch(stmt)
            assert rc == SQL_SUCCESS
            rows.append(row)
        assert rows == [(i,) for i in range(9)]
        assert world.manager.stats["recoveries"] == 3

    def test_execute_after_crash_reconnects(self, world):
        world.seed(3)
        world.crash_and_restart()
        stmt = world.execute("SELECT count(*) FROM items")
        assert world.fetch_all(stmt) == [(3,)]

    def test_crash_during_execute_pipeline(self, world):
        """Crash injected mid-persistence: the pipeline restarts and the
        result is still delivered exactly once."""
        world.seed(8)
        calls = {"n": 0}

        def injector(request):
            calls["n"] += 1
            if calls["n"] == 3:  # somewhere inside the persist pipeline
                world.server.crash()
                world.server.restart()

        world.network.fault_injector = injector
        stmt = world.execute("SELECT id FROM items ORDER BY id")
        world.network.fault_injector = None
        assert world.fetch_all(stmt) == [(i,) for i in range(8)]

    def test_give_up_exposes_original_error(self):
        config = PhoenixConfig(reconnect_budget_seconds=3.0,
                               retry_interval_seconds=1.0)
        world = PhoenixWorld(config)
        world.seed(3)
        stmt = world.execute("SELECT id FROM items")
        world.server.crash()  # never restarted
        # Rows already in the client buffer still arrive; the first fetch
        # that needs the server surfaces the failure after the budget.
        rc = SQL_SUCCESS
        for _ in range(5):
            rc, _row = world.manager.fetch(stmt)
            if rc != SQL_SUCCESS:
                break
        assert rc == SQL_ERROR
        diag = world.manager.get_diag(stmt)[0]
        assert diag.sqlstate in ("08S01", "08003")

    def test_recovery_waits_for_server(self):
        """Server comes back only after a few ping rounds."""
        config = PhoenixConfig(retry_interval_seconds=1.0,
                               reconnect_budget_seconds=60.0)
        world = PhoenixWorld(config)
        world.seed(4)
        stmt = world.execute("SELECT id FROM items ORDER BY id")
        world.server.crash()
        pings = {"n": 0}

        def injector(request):
            from repro.server.protocol import PingRequest

            if isinstance(request, PingRequest):
                pings["n"] += 1
                if pings["n"] == 3:
                    world.server.restart()

        world.network.fault_injector = injector
        # The server is down: is_running check happens before the
        # injector, so restart must come from ping attempts.
        rows = world.fetch_all(stmt)
        world.network.fault_injector = None
        assert rows == [(i,) for i in range(4)]


class TestUpdatesExactlyOnce:
    def test_update_rowcount_reported(self, world):
        world.seed(10)
        _rc, stmt = world.execute_rc("UPDATE items SET name = 'x' "
                                     "WHERE id < 4")
        assert world.manager.row_count(stmt) == 4

    def test_update_after_crash_is_not_reapplied(self, world):
        """Crash after commit but before the response reaches the client:
        the status table prevents a double apply."""
        world.seed(1)
        world.execute("CREATE TABLE counter (n INT)")
        world.execute("INSERT INTO counter VALUES (0)")

        fired = {"done": False}

        def injector(request):
            from repro.server.protocol import ExecuteRequest

            # Crash right when the wrapped COMMIT is about to be sent:
            # the wrapping transaction never committed, so the retry
            # applies the update exactly once.
            if (isinstance(request, ExecuteRequest)
                    and request.sql.strip().upper() == "COMMIT"
                    and not fired["done"]):
                fired["done"] = True
                world.server.crash()
                world.server.restart()

        world.network.fault_injector = injector
        rc, _stmt = world.execute_rc("UPDATE counter SET n = n + 1")
        world.network.fault_injector = None
        assert rc == SQL_SUCCESS
        check = world.execute("SELECT n FROM counter")
        assert world.fetch_all(check) == [(1,)]

    def test_completed_update_not_resubmitted(self, world):
        """Crash after the wrapped txn committed: the recorded status is
        honoured and the update is not run twice."""
        world.seed(1)
        world.execute("CREATE TABLE counter (n INT)")
        world.execute("INSERT INTO counter VALUES (0)")

        state = {"armed": False, "fired": False}

        def injector(request):
            from repro.server.protocol import ExecuteRequest

            if not isinstance(request, ExecuteRequest):
                return
            sql = request.sql.strip().upper()
            if sql == "COMMIT":
                state["armed"] = True
                return
            if state["armed"] and not state["fired"]:
                # First request after the commit went through.
                state["fired"] = True
                world.server.crash()
                world.server.restart()

        # Run one wrapped update; crash it after commit on the next
        # request, then ensure the retry sees the status record.
        world.network.fault_injector = injector
        rc, _stmt = world.execute_rc("UPDATE counter SET n = n + 1")
        world.network.fault_injector = None
        assert rc == SQL_SUCCESS
        check = world.execute("SELECT n FROM counter")
        assert world.fetch_all(check) == [(1,)]

    def test_ddl_wrapped_and_recovered(self, world):
        calls = {"n": 0}

        def injector(request):
            calls["n"] += 1
            if calls["n"] == 2:
                world.server.crash()
                world.server.restart()

        world.network.fault_injector = injector
        rc, _stmt = world.execute_rc("CREATE TABLE made_during_crash (a INT)")
        world.network.fault_injector = None
        assert rc == SQL_SUCCESS
        stmt = world.execute("SELECT count(*) FROM made_during_crash")
        assert world.fetch_all(stmt) == [(0,)]


class TestApplicationTransactions:
    def test_txn_commit_passthrough(self, world):
        world.seed(2)
        world.execute("BEGIN TRANSACTION")
        world.execute("UPDATE items SET name = 'changed' WHERE id = 0")
        world.execute("COMMIT")
        stmt = world.execute("SELECT name FROM items WHERE id = 0")
        assert world.fetch_all(stmt) == [("changed",)]

    def test_crash_in_txn_surfaces_abort(self, world):
        world.seed(2)
        world.execute("BEGIN TRANSACTION")
        world.execute("UPDATE items SET name = 'doomed' WHERE id = 0")
        world.crash_and_restart()
        rc, stmt = world.execute_rc("UPDATE items SET name = 'x' "
                                    "WHERE id = 1")
        assert rc == SQL_ERROR
        assert world.manager.get_diag(stmt)[0].sqlstate == "40001"
        # The update never happened; the session works again and the app
        # can restart its transaction.
        check = world.execute("SELECT name FROM items WHERE id = 0")
        assert world.fetch_all(check) == [("item0",)]
        world.execute("BEGIN TRANSACTION")
        world.execute("UPDATE items SET name = 'retried' WHERE id = 0")
        world.execute("COMMIT")
        check = world.execute("SELECT name FROM items WHERE id = 0")
        assert world.fetch_all(check) == [("retried",)]


class TestVirtualSession:
    def test_options_replayed_after_crash(self, world):
        world.seed(1)
        world.manager.set_connect_option(world.conn, "lock_timeout", 30)
        world.crash_and_restart()
        stmt = world.execute("SELECT id FROM items")
        world.fetch_all(stmt)
        token = world.conn.session_token
        session = world.server._sessions[token].engine_session
        assert session.get_option("lock_timeout") == 30

    def test_connection_handle_identity_stable(self, world):
        world.seed(1)
        handle_before = world.conn
        token_before = world.conn.session_token
        world.crash_and_restart()
        stmt = world.execute("SELECT id FROM items")
        world.fetch_all(stmt)
        assert world.conn is handle_before
        assert world.conn.session_token != token_before

    def test_blip_does_not_trigger_recovery(self, world):
        """A transient transport error with the server still up: the
        session probe shows the session survived."""
        world.seed(4)
        stmt = world.execute("SELECT id FROM items ORDER BY id")
        from repro.errors import RequestTimeoutError

        fired = {"done": False}

        def injector(request):
            from repro.server.protocol import FetchRequest

            if isinstance(request, FetchRequest) and not fired["done"]:
                fired["done"] = True
                raise RequestTimeoutError("spurious timeout")

        world.network.fault_injector = injector
        rows = world.fetch_all(stmt)
        world.network.fault_injector = None
        assert rows == [(i,) for i in range(4)]
        assert world.manager.stats["blips"] == 1
        assert world.manager.stats["recoveries"] == 0


class TestClientCache:
    def test_small_result_served_from_cache(self, cached_world):
        world = cached_world
        world.seed(5)
        stmt = world.execute("SELECT id FROM items ORDER BY id")
        assert world.fetch_all(stmt) == [(i,) for i in range(5)]
        assert world.manager.stats["cached_results"] == 1
        assert world.manager.stats["persisted_results"] == 0

    def test_no_server_table_created_when_cached(self, cached_world):
        world = cached_world
        world.seed(5)
        world.execute("SELECT id FROM items")
        catalog = world.server.engine.catalog
        assert not [n for n in catalog.tables if n.startswith("phoenix_rs_")]

    def test_cached_result_survives_crash_without_server(self, cached_world):
        world = cached_world
        world.seed(6)
        stmt = world.execute("SELECT id FROM items ORDER BY id")
        world.server.crash()  # never restarted!
        rows = []
        while True:
            rc, row = world.manager.fetch(stmt)
            if rc == SQL_NO_DATA:
                break
            assert rc == SQL_SUCCESS
            rows.append(row)
        assert rows == [(i,) for i in range(6)]

    def test_overflow_falls_back_to_persistence(self):
        world = PhoenixWorld(PhoenixConfig(client_cache_rows=3))
        world.seed(10)
        stmt = world.execute("SELECT id FROM items ORDER BY id")
        assert world.fetch_all(stmt) == [(i,) for i in range(10)]
        assert world.manager.stats["cache_overflows"] == 1
        assert world.manager.stats["persisted_results"] == 1

    def test_crash_before_cache_complete_reexecutes(self, cached_world):
        world = cached_world
        world.seed(5)
        fired = {"done": False}

        def injector(request):
            from repro.server.protocol import ExecuteRequest

            if (isinstance(request, ExecuteRequest)
                    and request.sql.startswith("SELECT id")
                    and not fired["done"]):
                fired["done"] = True
                world.server.crash()
                world.server.restart()

        world.network.fault_injector = injector
        stmt = world.execute("SELECT id FROM items ORDER BY id")
        world.network.fault_injector = None
        assert world.fetch_all(stmt) == [(i,) for i in range(5)]


class TestTransparency:
    """The headline property: an app sees the same rows with Phoenix +
    crashes as with the native manager and no crashes."""

    def _run_app(self, manager, conn, crash_points=(), world=None):
        outputs = []
        stmt = manager.alloc_statement(conn)
        assert manager.exec_direct(
            stmt, "SELECT id, name FROM items ORDER BY id") == SQL_SUCCESS
        i = 0
        while True:
            if world is not None and i in crash_points:
                world.crash_and_restart()
            rc, row = manager.fetch(stmt)
            if rc == SQL_NO_DATA:
                break
            assert rc == SQL_SUCCESS
            outputs.append(row)
            i += 1
        count_stmt = manager.alloc_statement(conn)
        assert manager.exec_direct(
            count_stmt, "SELECT count(*) FROM items") == SQL_SUCCESS
        rc, row = manager.fetch(count_stmt)
        outputs.append(row)
        return outputs

    @pytest.mark.parametrize("crash_points", [(0,), (3,), (0, 1),
                                              (2, 5, 8)])
    def test_same_rows_with_and_without_crashes(self, crash_points):
        # Native world, no crashes: the reference output.
        native = PhoenixWorld()  # connection machinery reused for setup
        native.seed(12)
        reference_manager = DriverManager(native.driver)
        env = reference_manager.alloc_env()
        ref_conn = reference_manager.alloc_connection(env)
        reference_manager.connect(ref_conn, "app")
        reference = self._run_app(reference_manager, ref_conn)

        # Phoenix world with crashes injected at fetch boundaries.
        phoenix = PhoenixWorld()
        phoenix.seed(12)
        observed = self._run_app(phoenix.manager, phoenix.conn,
                                 crash_points, phoenix)
        assert observed == reference

"""Tests for the buffer pool: caching, eviction, crash, WAL interplay."""

import pytest

from repro.sim.costs import SERVER_DISK
from repro.sim.meter import Meter
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page


@pytest.fixture
def disk():
    return SimulatedDisk()


@pytest.fixture
def meter():
    return Meter()


class TestBufferPool:
    def test_new_page_is_dirty_and_resident(self, disk, meter):
        pool = BufferPool(disk, meter)
        pool.new_page(1, 0, capacity=4)
        assert pool.is_dirty(1, 0)
        assert pool.resident_pages == 1
        assert not disk.has_page(1, 0)

    def test_duplicate_new_page_rejected(self, disk, meter):
        pool = BufferPool(disk, meter)
        pool.new_page(1, 0, capacity=4)
        with pytest.raises(ValueError):
            pool.new_page(1, 0, capacity=4)

    def test_flush_writes_to_disk(self, disk, meter):
        pool = BufferPool(disk, meter)
        page = pool.new_page(1, 0, capacity=4)
        page.insert(("x",))
        pool.flush_page(1, 0)
        assert disk.has_page(1, 0)
        assert not pool.is_dirty(1, 0)

    def test_get_page_faults_from_disk_and_charges(self, disk, meter):
        pool = BufferPool(disk, meter)
        page = pool.new_page(1, 0, capacity=4)
        page.insert(("x",))
        pool.flush_all()
        pool.crash()
        before = meter.now
        fetched = pool.get_page(1, 0)
        assert fetched.read(0) == ("x",)
        assert meter.now > before  # read I/O charged
        # Second access is a hit: no extra I/O.
        at_hit = meter.now
        pool.get_page(1, 0)
        assert meter.now == at_hit

    def test_get_missing_page_returns_none(self, disk, meter):
        pool = BufferPool(disk, meter)
        assert pool.get_page(9, 9) is None

    def test_crash_loses_dirty_pages(self, disk, meter):
        pool = BufferPool(disk, meter)
        page = pool.new_page(1, 0, capacity=4)
        page.insert(("lost",))
        pool.crash()
        assert pool.get_page(1, 0) is None

    def test_crash_keeps_flushed_pages_on_disk(self, disk, meter):
        pool = BufferPool(disk, meter)
        page = pool.new_page(1, 0, capacity=4)
        page.insert(("kept",))
        pool.flush_all()
        page.insert(("lost",))  # dirty again, not flushed
        pool.mark_dirty(1, 0)
        pool.crash()
        refetched = pool.get_page(1, 0)
        assert refetched.live_rows == 1
        assert refetched.read(0) == ("kept",)

    def test_eviction_respects_capacity(self, disk, meter):
        pool = BufferPool(disk, meter, capacity_pages=3)
        for i in range(5):
            pool.new_page(1, i, capacity=4)
        assert pool.resident_pages <= 3
        # Evicted dirty pages were flushed, not lost.
        evicted = [i for i in range(5) if disk.has_page(1, i)]
        assert len(evicted) >= 2

    def test_volatile_pages_never_flushed_or_evicted(self, disk, meter):
        pool = BufferPool(disk, meter, capacity_pages=2)
        pool.register_volatile(99)
        pool.new_page(99, 0, capacity=4)
        for i in range(4):
            pool.new_page(1, i, capacity=4)
        assert pool.get_page(99, 0) is not None
        pool.flush_all()
        assert not disk.has_page(99, 0)

    def test_volatile_pages_vanish_on_crash(self, disk, meter):
        pool = BufferPool(disk, meter)
        pool.register_volatile(99)
        pool.new_page(99, 0, capacity=4)
        pool.crash()
        assert pool.get_page(99, 0) is None

    def test_volatile_frames_stay_out_of_the_lru(self, disk, meter):
        # The eviction scan must never walk volatile frames: they live
        # in their own dict, so the durable LRU holds only candidates.
        pool = BufferPool(disk, meter, capacity_pages=8)
        pool.register_volatile(99)
        for i in range(6):
            pool.new_page(99, i, capacity=4)
        pool.new_page(1, 0, capacity=4)
        assert all(key[0] != 99 for key in pool._frames)
        assert pool.resident_pages == 7
        # Filling past capacity evicts the durable page even though the
        # volatile majority is unevictable.
        pool.new_page(1, 1, capacity=4)
        pool.new_page(1, 2, capacity=4)
        assert disk.has_page(1, 0)
        assert pool.get_page(99, 3) is not None

    def test_drop_file_forgets_pages(self, disk, meter):
        pool = BufferPool(disk, meter)
        pool.new_page(1, 0, capacity=4)
        pool.drop_file(1)
        assert pool.resident_pages == 0
        assert pool.dirty_pages == 0

    def test_wal_forced_before_flush(self, disk, meter):
        forced = []

        class FakeWal:
            def force(self, up_to_lsn=None, sync=True):
                forced.append((up_to_lsn, sync))

        pool = BufferPool(disk, meter, wal=FakeWal())
        page = pool.new_page(1, 0, capacity=4)
        page.insert(("x",))
        page.page_lsn = 42
        pool.flush_page(1, 0)
        # WAL-rule flushes are write-behind (no synchronous force).
        assert forced == [(42, False)]

    def test_flush_charges_disk_time(self, disk, meter):
        pool = BufferPool(disk, meter)
        pool.new_page(1, 0, capacity=4)
        before = meter.now
        pool.flush_all()
        assert meter.now - before == pytest.approx(
            meter.costs.disk_page_write_seconds)

    def test_cost_factor_scales_io(self, disk, meter):
        pool = BufferPool(disk, meter)
        page = pool.new_page(1, 0, capacity=4)
        page.insert(("x",))
        pool.flush_all()
        pool.crash()
        before = meter.now
        pool.get_page(1, 0, cost_factor=10.0)
        assert meter.now - before == pytest.approx(
            10.0 * meter.costs.disk_page_read_seconds)

    def test_disk_isolation_from_pool_mutation(self, disk, meter):
        """Mutating a resident page must not leak to disk without flush."""
        pool = BufferPool(disk, meter)
        page = pool.new_page(1, 0, capacity=4)
        page.insert(("v1",))
        pool.flush_all()
        page.update(0, ("v2",))
        pool.mark_dirty(1, 0)
        pool.crash()
        assert pool.get_page(1, 0).read(0) == ("v1",)

    def test_zero_capacity_rejected(self, disk, meter):
        with pytest.raises(ValueError):
            BufferPool(disk, meter, capacity_pages=0)

    def test_mark_dirty_nonresident_raises(self, disk, meter):
        pool = BufferPool(disk, meter)
        with pytest.raises(ValueError):
            pool.mark_dirty(1, 0)

"""Tests for slotted pages and heap files."""

import pytest

from repro.sim.meter import Meter
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile, RowId
from repro.storage.page import Page


class TestPage:
    def test_insert_and_read(self):
        page = Page(0, capacity=4)
        slot = page.insert(("a", 1))
        assert page.read(slot) == ("a", 1)

    def test_capacity_enforced(self):
        page = Page(0, capacity=2)
        page.insert((1,))
        page.insert((2,))
        assert not page.has_space()
        with pytest.raises(ValueError):
            page.insert((3,))

    def test_delete_frees_slot_for_reuse(self):
        page = Page(0, capacity=2)
        slot = page.insert((1,))
        page.insert((2,))
        page.delete(slot)
        assert page.has_space()
        new_slot = page.insert((3,))
        assert new_slot == slot
        assert page.live_rows == 2

    def test_delete_empty_slot_raises(self):
        page = Page(0, capacity=2)
        with pytest.raises(ValueError):
            page.delete(0)

    def test_update_returns_old_row(self):
        page = Page(0, capacity=2)
        slot = page.insert((1,))
        assert page.update(slot, (2,)) == (1,)
        assert page.read(slot) == (2,)

    def test_insert_at_specific_slot(self):
        page = Page(0, capacity=8)
        page.insert_at(5, ("x",))
        assert page.read(5) == ("x",)
        # Intermediate slots are free and reusable.
        assert page.has_space()
        assert page.live_rows == 1

    def test_rows_iterates_live_only(self):
        page = Page(0, capacity=4)
        a = page.insert((1,))
        page.insert((2,))
        page.delete(a)
        assert [row for _slot, row in page.rows()] == [(2,)]

    def test_clone_is_independent(self):
        page = Page(0, capacity=4)
        page.insert((1,))
        clone = page.clone()
        clone.insert((2,))
        assert page.live_rows == 1
        assert clone.live_rows == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Page(0, capacity=0)


@pytest.fixture
def pool():
    return BufferPool(SimulatedDisk(), Meter())


class TestHeapFile:
    def test_insert_read_roundtrip(self, pool):
        heap = HeapFile(1, rows_per_page=4, buffer_pool=pool)
        rid = heap.find_insert_target()
        heap.apply_insert(rid, ("hello", 42))
        assert heap.read(rid) == ("hello", 42)

    def test_rows_spill_to_new_pages(self, pool):
        heap = HeapFile(1, rows_per_page=2, buffer_pool=pool)
        for i in range(5):
            rid = heap.find_insert_target()
            heap.apply_insert(rid, (i,))
        assert heap.page_count == 3
        assert heap.count_rows() == 5

    def test_scan_returns_all_live_rows(self, pool):
        heap = HeapFile(1, rows_per_page=3, buffer_pool=pool)
        rids = []
        for i in range(7):
            rid = heap.find_insert_target()
            heap.apply_insert(rid, (i,))
            rids.append(rid)
        heap.apply_delete(rids[2])
        heap.apply_delete(rids[5])
        values = sorted(row[0] for _rid, row in heap.scan())
        assert values == [0, 1, 3, 4, 6]

    def test_deleted_slot_reused(self, pool):
        heap = HeapFile(1, rows_per_page=2, buffer_pool=pool)
        rid0 = heap.find_insert_target()
        heap.apply_insert(rid0, (0,))
        rid1 = heap.find_insert_target()
        heap.apply_insert(rid1, (1,))
        heap.apply_delete(rid0)
        rid2 = heap.find_insert_target()
        heap.apply_insert(rid2, (2,))
        assert rid2 == rid0
        assert heap.page_count == 1

    def test_update_in_place(self, pool):
        heap = HeapFile(1, rows_per_page=4, buffer_pool=pool)
        rid = heap.find_insert_target()
        heap.apply_insert(rid, ("old",))
        old = heap.apply_update(rid, ("new",))
        assert old == ("old",)
        assert heap.read(rid) == ("new",)

    def test_read_missing_returns_none(self, pool):
        heap = HeapFile(1, rows_per_page=4, buffer_pool=pool)
        assert heap.read(RowId(1, 0, 0)) is None
        assert heap.read(RowId(1, 99, 0)) is None

    def test_read_wrong_file_raises(self, pool):
        heap = HeapFile(1, rows_per_page=4, buffer_pool=pool)
        with pytest.raises(ValueError):
            heap.read(RowId(2, 0, 0))

    def test_page_lsn_stamped(self, pool):
        heap = HeapFile(1, rows_per_page=4, buffer_pool=pool)
        rid = heap.find_insert_target()
        heap.apply_insert(rid, (1,), lsn=17)
        assert heap.page_lsn(rid.page_no) == 17
        heap.apply_update(rid, (2,), lsn=20)
        assert heap.page_lsn(rid.page_no) == 20
        # LSNs never move backwards.
        heap.apply_delete(rid, lsn=5)
        assert heap.page_lsn(rid.page_no) == 20

    def test_attach_rediscovers_pages(self, pool):
        disk = SimulatedDisk()
        pool = BufferPool(disk, Meter())
        heap = HeapFile(7, rows_per_page=2, buffer_pool=pool)
        for i in range(5):
            rid = heap.find_insert_target()
            heap.apply_insert(rid, (i,))
        pool.flush_all()
        # Re-attach through a fresh pool, as restart does.
        pool2 = BufferPool(disk, Meter())
        heap2 = HeapFile.attach(7, 2, pool2, disk)
        assert heap2.page_count == 3
        assert heap2.count_rows() == 5
        # New inserts go into the partially-filled last page.
        rid = heap2.find_insert_target()
        heap2.apply_insert(rid, (99,))
        assert heap2.page_count == 3

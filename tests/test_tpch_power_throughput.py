"""Power and throughput test harnesses produce sane measurements."""

import pytest

from repro.server.server import DatabaseServer
from repro.sim.costs import SERVER_CPU, CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp
from repro.workloads.tpch.datagen import generate
from repro.workloads.tpch.power import run_power_test
from repro.workloads.tpch.schema import setup_tpch_server
from repro.workloads.tpch.throughput import run_throughput_test


@pytest.fixture(scope="module")
def tpch_world():
    meter = Meter(CostModel())
    server = DatabaseServer(meter=meter)
    data = generate(scale=0.0005, seed=3)
    setup_tpch_server(server, data)
    return server, data


class TestPowerTest:
    def test_native_power_run(self, tpch_world):
        server, data = tpch_world
        app = BenchmarkApp(server, use_phoenix=False)
        result = run_power_test(app, data, warm=False)
        assert len(result.query_seconds) == 22
        assert all(s > 0 for s in result.query_seconds.values())
        assert result.rf1_seconds > 0
        assert result.rf2_seconds > 0
        assert result.rf_rows > 0

    def test_phoenix_power_run_has_modest_overhead(self, tpch_world):
        server, data = tpch_world
        native = BenchmarkApp(server, use_phoenix=False)
        native_result = run_power_test(native, data, warm=True)
        phoenix = BenchmarkApp(server, use_phoenix=True)
        phoenix_result = run_power_test(phoenix, data, warm=True)
        assert len(phoenix_result.query_seconds) == 22
        # Phoenix pays per-query persistence overhead: total time is
        # higher, but bounded (each query adds table-create + load).
        assert phoenix_result.total_query_seconds \
            > native_result.total_query_seconds
        per_query_overhead = (
            (phoenix_result.total_query_seconds
             - native_result.total_query_seconds) / 22)
        assert per_query_overhead < 5.0

    def test_same_rows_under_both_managers(self, tpch_world):
        server, data = tpch_world
        native = BenchmarkApp(server, use_phoenix=False)
        phoenix = BenchmarkApp(server, use_phoenix=True)
        native_result = run_power_test(native, data, warm=False)
        phoenix_result = run_power_test(phoenix, data, warm=False)
        assert native_result.query_rows == phoenix_result.query_rows


class TestThroughputTest:
    def test_two_streams(self, tpch_world):
        server, data = tpch_world
        app = BenchmarkApp(server, use_phoenix=False)
        result = run_throughput_test(app, data, streams=2)
        assert result.elapsed_seconds > 0
        assert result.stream_count == 2
        # Two streams sharing the server finish no faster than one
        # stream's serial time and no slower than full serialization.
        single = sum(t.total_seconds for t in result.query_traces.values())
        assert result.elapsed_seconds >= single * 0.9
        assert result.elapsed_seconds <= single * 2.5
        # The server CPU is the contended resource for this workload.
        assert result.queueing.utilization(SERVER_CPU) > 0.3

"""Tests for the virtual clock and the meter."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.costs import CLIENT_CPU, NETWORK, SERVER_CPU, CostModel
from repro.sim.meter import Meter


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_returns_new_time(self):
        assert VirtualClock().advance(3.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-0.1)


class TestMeter:
    def test_charge_advances_clock(self):
        meter = Meter()
        meter.charge(SERVER_CPU, 0.25)
        assert meter.now == pytest.approx(0.25)

    def test_charge_zero_is_noop(self):
        meter = Meter()
        meter.charge(SERVER_CPU, 0.0)
        assert meter.now == 0.0

    def test_unknown_resource_rejected(self):
        with pytest.raises(ValueError):
            Meter().charge("gpu", 1.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Meter().charge(SERVER_CPU, -1.0)

    def test_request_trace_records_segments(self):
        meter = Meter()
        with meter.request("q1") as trace:
            meter.charge(SERVER_CPU, 0.1)
            meter.charge(NETWORK, 0.2)
        assert trace.total_seconds == pytest.approx(0.3)
        assert trace.seconds_on(SERVER_CPU) == pytest.approx(0.1)
        assert meter.traces == [trace]

    def test_charges_outside_request_not_traced(self):
        meter = Meter()
        meter.charge(SERVER_CPU, 0.1)
        assert meter.traces == []
        assert meter.now == pytest.approx(0.1)

    def test_nested_requests_fold_into_parent(self):
        meter = Meter()
        with meter.request("outer") as outer:
            meter.charge(SERVER_CPU, 0.1)
            with meter.request("inner"):
                meter.charge(CLIENT_CPU, 0.2)
        assert outer.total_seconds == pytest.approx(0.3)
        # Only the top-level trace is recorded (no double counting).
        assert [t.label for t in meter.traces] == ["outer"]
        assert meter.seconds_on(CLIENT_CPU) == pytest.approx(0.2)

    def test_mismatched_end_raises(self):
        meter = Meter()
        t1 = meter.begin_request("a")
        meter.begin_request("b")
        with pytest.raises(ValueError):
            meter.end_request(t1)

    def test_advance_clock_flag(self):
        meter = Meter()
        meter.advance_clock = False
        with meter.request("q") as trace:
            meter.charge(SERVER_CPU, 5.0)
        assert meter.now == 0.0
        assert trace.total_seconds == pytest.approx(5.0)

    def test_counters(self):
        meter = Meter()
        meter.count("disk_io")
        meter.count("disk_io", 2)
        assert meter.counters["disk_io"] == 3

    def test_reset_traces_keeps_clock(self):
        meter = Meter()
        with meter.request("q"):
            meter.charge(SERVER_CPU, 1.0)
        meter.reset_traces()
        assert meter.traces == []
        assert meter.now == pytest.approx(1.0)


class TestCostModel:
    def test_transfer_includes_message_overhead(self):
        costs = CostModel()
        base = costs.transfer_seconds(0)
        assert base == pytest.approx(costs.network_message_overhead_seconds)
        assert costs.transfer_seconds(12_500_000) == pytest.approx(base + 1.0)

    def test_transfer_negative_rejected(self):
        with pytest.raises(ValueError):
            CostModel().transfer_seconds(-1)

    def test_log_write_scales_with_bytes(self):
        costs = CostModel()
        small = costs.log_write_seconds(10)
        large = costs.log_write_seconds(10_000)
        assert large > small > 0

    def test_sort_seconds_zero_for_trivial(self):
        costs = CostModel()
        assert costs.sort_seconds(0) == 0.0
        assert costs.sort_seconds(1) == 0.0
        assert costs.sort_seconds(1024) > 0

    def test_rows_per_page_at_least_one(self):
        costs = CostModel()
        assert costs.rows_per_page(10 ** 9) == 1
        assert costs.rows_per_page(100) == costs.page_size_bytes // 100

"""TPC-H data generator: cardinalities, determinism, distributions."""

import datetime

import pytest

from repro.workloads.tpch.datagen import (
    CURRENT_DATE,
    NATIONS,
    REGIONS,
    TpchData,
    generate,
    generate_refresh_orders,
)


@pytest.fixture(scope="module")
def data() -> TpchData:
    return generate(scale=0.002, seed=42)


class TestCardinalities:
    def test_fixed_tables(self, data):
        assert len(data.region) == 5
        assert len(data.nation) == 25

    def test_scaled_tables(self, data):
        assert len(data.supplier) == 20          # 10000 * 0.002
        assert len(data.part) == 400             # 200000 * 0.002
        assert len(data.partsupp) == 4 * len(data.part)
        assert len(data.customer) == 300         # 150000 * 0.002
        assert len(data.orders) == 3000          # 1500000 * 0.002

    def test_lineitems_per_order(self, data):
        from collections import Counter

        per_order = Counter(l[0] for l in data.lineitem)
        assert set(per_order.values()) <= set(range(1, 8))
        # o_orderkey set matches lineitem's l_orderkey set.
        assert set(per_order) == {o[0] for o in data.orders}

    def test_tiny_scale_floors(self):
        tiny = generate(scale=1e-9, seed=1)
        assert len(tiny.supplier) >= 5
        assert len(tiny.orders) >= 5


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate(scale=0.0005, seed=3)
        b = generate(scale=0.0005, seed=3)
        assert a.lineitem == b.lineitem
        assert a.orders == b.orders

    def test_different_seed_differs(self):
        a = generate(scale=0.0005, seed=3)
        b = generate(scale=0.0005, seed=4)
        assert a.lineitem != b.lineitem


class TestDistributions:
    def test_primary_keys_unique(self, data):
        for rows, key_len in ((data.part, 1), (data.supplier, 1),
                              (data.customer, 1), (data.orders, 1)):
            keys = [r[:key_len] for r in rows]
            assert len(keys) == len(set(keys))
        line_keys = [(l[0], l[3]) for l in data.lineitem]
        assert len(line_keys) == len(set(line_keys))
        ps_keys = [(p[0], p[1]) for p in data.partsupp]
        assert len(ps_keys) == len(set(ps_keys))

    def test_foreign_keys_resolve(self, data):
        nation_keys = {n[0] for n in data.nation}
        assert all(s[3] in nation_keys for s in data.supplier)
        assert all(c[3] in nation_keys for c in data.customer)
        part_keys = {p[0] for p in data.part}
        supp_keys = {s[0] for s in data.supplier}
        assert all(l[1] in part_keys for l in data.lineitem)
        assert all(l[2] in supp_keys for l in data.lineitem)
        region_keys = {r[0] for r in data.region}
        assert all(n[2] in region_keys for n in NATIONS and data.nation)

    def test_date_correlations(self, data):
        by_key = {o[0]: o[4] for o in data.orders}
        for line in data.lineitem:
            order_date = by_key[line[0]]
            ship, commit, receipt = line[10], line[11], line[12]
            assert order_date < ship
            assert ship < receipt
            assert order_date < commit

    def test_returnflag_rule(self, data):
        for line in data.lineitem:
            receipt, flag = line[12], line[8]
            if receipt <= CURRENT_DATE:
                assert flag in ("R", "A")
            else:
                assert flag == "N"

    def test_order_status_consistent(self, data):
        lines_by_order: dict[int, list[str]] = {}
        for line in data.lineitem:
            lines_by_order.setdefault(line[0], []).append(line[9])
        for order in data.orders:
            statuses = lines_by_order[order[0]]
            if order[2] == "F":
                assert all(s == "F" for s in statuses)
            elif order[2] == "O":
                assert all(s == "O" for s in statuses)
            else:
                assert len(set(statuses)) == 2

    def test_discount_and_tax_ranges(self, data):
        for line in data.lineitem:
            assert 0 <= line[6] <= 0.10   # discount
            assert 0 <= line[7] <= 0.08   # tax
            assert 1 <= line[4] <= 50     # quantity

    def test_region_names(self, data):
        assert [r[1] for r in data.region] == REGIONS

    def test_some_suppliers_complain(self, data):
        complainers = [s for s in data.supplier if "complaints" in s[6]]
        assert 0 <= len(complainers) <= len(data.supplier) // 5


class TestRefreshGeneration:
    def test_refresh_orders_have_lines(self, data):
        orders, lines = generate_refresh_orders(data, count=20, seed=1)
        keys = {o[0] for o in orders}
        assert {l[0] for l in lines} == keys
        assert all(1 <= sum(1 for l in lines if l[0] == k) <= 7
                   for k in keys)

    def test_refresh_advances_max_orderkey(self, data):
        before = data.max_orderkey
        orders, _lines = generate_refresh_orders(data, count=5, seed=2)
        assert data.max_orderkey == max(o[0] for o in orders)
        assert data.max_orderkey > before

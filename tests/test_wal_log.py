"""Unit tests for the write-ahead log and lock manager."""

import pytest

from repro.errors import DeadlockError
from repro.sim.meter import Meter
from repro.txn.locks import LockManager, LockMode
from repro.wal.log import WriteAheadLog
from repro.wal.records import (
    BeginRecord,
    CheckpointRecord,
    CommitRecord,
    InsertRecord,
    UpdateRecord,
)


class TestWriteAheadLog:
    def test_lsns_are_sequential(self):
        log = WriteAheadLog()
        first = log.append(BeginRecord(txn_id=1))
        second = log.append(CommitRecord(txn_id=1))
        assert (first, second) == (1, 2)
        assert log.last_lsn == 2

    def test_force_advances_flushed_lsn(self):
        log = WriteAheadLog()
        log.append(BeginRecord(txn_id=1))
        assert log.flushed_lsn == 0
        log.force()
        assert log.flushed_lsn == 1

    def test_crash_discards_unforced_tail(self):
        log = WriteAheadLog()
        log.append(BeginRecord(txn_id=1))
        log.force()
        log.append(CommitRecord(txn_id=1))
        lost = log.crash()
        assert lost == 1
        assert log.last_lsn == 1
        with pytest.raises(IndexError):
            log.record(2)

    def test_force_is_idempotent(self):
        meter = Meter()
        log = WriteAheadLog(meter)
        log.append(BeginRecord(txn_id=1))
        log.force()
        t = meter.now
        log.force()  # nothing pending: no charge
        assert meter.now == t

    def test_sync_force_charges_latency(self):
        meter = Meter()
        log = WriteAheadLog(meter)
        log.append(BeginRecord(txn_id=1))
        log.force(sync=True)
        first = meter.now
        log.append(BeginRecord(txn_id=2))
        log.force(sync=False)
        second = meter.now - first
        assert first > second  # async flush skips the force latency

    def test_records_from(self):
        log = WriteAheadLog()
        for i in range(5):
            log.append(BeginRecord(txn_id=i + 1))
        assert [r.txn_id for r in log.records_from(3)] == [3, 4, 5]

    def test_last_checkpoint_only_counts_durable(self):
        log = WriteAheadLog()
        log.append(BeginRecord(txn_id=1))
        cp = log.append(CheckpointRecord(txn_id=0))
        assert log.last_checkpoint_lsn() == 0  # not forced yet
        log.force()
        assert log.last_checkpoint_lsn() == cp

    def test_payload_sizes_scale_with_rows(self):
        small = InsertRecord(txn_id=1, row=(1,))
        large = InsertRecord(txn_id=1, row=("x" * 500,))
        assert large.payload_bytes() > small.payload_bytes()
        update = UpdateRecord(txn_id=1, old_row=(1,), new_row=(2,))
        assert update.payload_bytes() > small.payload_bytes()


class TestLockManager:
    def test_shared_locks_coexist(self):
        locks = LockManager()
        locks.acquire(1, "t", LockMode.SHARED)
        locks.acquire(2, "t", LockMode.SHARED)
        assert locks.held(1, "t") is LockMode.SHARED

    def test_exclusive_conflicts_with_shared(self):
        locks = LockManager()
        locks.acquire(1, "t", LockMode.SHARED)
        with pytest.raises(DeadlockError):
            locks.acquire(2, "t", LockMode.EXCLUSIVE)

    def test_shared_conflicts_with_exclusive(self):
        locks = LockManager()
        locks.acquire(1, "t", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(2, "t", LockMode.SHARED)

    def test_upgrade_own_lock(self):
        locks = LockManager()
        locks.acquire(1, "t", LockMode.SHARED)
        locks.acquire(1, "t", LockMode.EXCLUSIVE)
        assert locks.held(1, "t") is LockMode.EXCLUSIVE

    def test_upgrade_blocked_by_other_reader(self):
        locks = LockManager()
        locks.acquire(1, "t", LockMode.SHARED)
        locks.acquire(2, "t", LockMode.SHARED)
        with pytest.raises(DeadlockError):
            locks.acquire(1, "t", LockMode.EXCLUSIVE)

    def test_x_subsumes_s(self):
        locks = LockManager()
        locks.acquire(1, "t", LockMode.EXCLUSIVE)
        locks.acquire(1, "t", LockMode.SHARED)  # no-op
        assert locks.held(1, "t") is LockMode.EXCLUSIVE

    def test_release_all(self):
        locks = LockManager()
        locks.acquire(1, "t", LockMode.EXCLUSIVE)
        locks.acquire(1, "u", LockMode.SHARED)
        locks.release_all(1)
        locks.acquire(2, "t", LockMode.EXCLUSIVE)
        locks.acquire(2, "u", LockMode.EXCLUSIVE)

    def test_case_insensitive_names(self):
        locks = LockManager()
        locks.acquire(1, "Orders", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(2, "ORDERS", LockMode.SHARED)

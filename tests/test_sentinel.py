"""The bench regression sentinel: history files in, verdict out.

A doctored history line (a counter that grew, a virtual clock that
drifted) must fail the build (exit 1 through the CLI); the repository's
own tracked history must pass.
"""

import json

from repro.bench.__main__ import main as bench_main
from repro.obs.sentinel import (DEFAULT_WINDOW, METRIC_TOLERANCES,
                                check_history_file, run_sentinel)


def write_history(path, entries):
    path.write_text("".join(json.dumps(e) + "\n" for e in entries))


def base_entry(**overrides):
    entry = {"date": "2026-08-01", "commit": "abc1234", "leg": "base",
             "host_seconds": 1.0, "log_forces": 42,
             "requests_sent": 6222, "fetch_requests": 0,
             "virtual_seconds": 28.38217573999367,
             "p95_execute_seconds": 0.0020168}
    entry.update(overrides)
    return entry


def test_clean_history_passes(tmp_path):
    history = tmp_path / "wallclock_history.jsonl"
    write_history(history, [base_entry() for _ in range(4)])
    report = check_history_file(history)
    assert report.ok
    assert report.findings == []
    tracked_here = [m for m in METRIC_TOLERANCES if m in base_entry()]
    assert len(report.checked) == len(tracked_here) == 6
    assert "no regressions" in report.format()


def test_counter_growth_fails_exactly(tmp_path):
    """Deterministic counters have zero tolerance: +1 request fails."""
    history = tmp_path / "wallclock_history.jsonl"
    write_history(history, [base_entry(), base_entry(),
                            base_entry(requests_sent=6223)])
    report = check_history_file(history)
    assert not report.ok
    (finding,) = report.findings
    assert finding.metric == "requests_sent"
    assert finding.latest == 6223
    assert "REGRESSION" in report.format()


def test_virtual_clock_drift_fails(tmp_path):
    history = tmp_path / "wallclock_history.jsonl"
    write_history(history, [base_entry(), base_entry(),
                            base_entry(virtual_seconds=28.3821758)])
    report = check_history_file(history)
    assert [f.metric for f in report.findings] == ["virtual_seconds"]


def test_p95_regression_fails(tmp_path):
    history = tmp_path / "wallclock_history.jsonl"
    write_history(history, [base_entry(), base_entry(),
                            base_entry(p95_execute_seconds=0.003)])
    report = check_history_file(history)
    assert [f.metric for f in report.findings] == ["p95_execute_seconds"]


def test_host_seconds_regression_is_advisory_only(tmp_path):
    """Host wall time depends on the machine running the bench: a gross
    regression surfaces as a WARNING but never fails the build."""
    history = tmp_path / "wallclock_history.jsonl"
    # 40% slower: noisy runner, within the 50% tolerance — silent.
    write_history(history, [base_entry(), base_entry(),
                            base_entry(host_seconds=1.4)])
    report = check_history_file(history)
    assert report.ok and report.advisories == []
    # 60% slower: beyond tolerance — advisory, still ok.
    write_history(history, [base_entry(), base_entry(),
                            base_entry(host_seconds=1.6)])
    report = check_history_file(history)
    assert report.ok
    (advisory,) = report.advisories
    assert advisory.metric == "host_seconds"
    assert "WARNING" in report.format()
    assert "no regressions" in report.format()


def test_decreases_never_fail(tmp_path):
    history = tmp_path / "wallclock_history.jsonl"
    write_history(history, [base_entry(), base_entry(),
                            base_entry(requests_sent=6000,
                                       virtual_seconds=27.0,
                                       host_seconds=0.5)])
    assert check_history_file(history).ok


def test_groups_compared_independently(tmp_path):
    """Legs are separate groups: a prefetch regression must not hide
    behind the base leg's median (and vice versa)."""
    history = tmp_path / "wallclock_history.jsonl"
    write_history(history, [
        base_entry(), base_entry(leg="prefetch", requests_sent=6222),
        base_entry(), base_entry(leg="prefetch", requests_sent=6222),
        base_entry(), base_entry(leg="prefetch", requests_sent=6300),
    ])
    report = check_history_file(history)
    (finding,) = report.findings
    assert "leg=prefetch" in finding.group


def test_window_median_not_last_entry(tmp_path):
    """One historic outlier must not poison the baseline: the median of
    the trailing window judges, not the previous entry."""
    history = tmp_path / "wallclock_history.jsonl"
    write_history(history, [base_entry(host_seconds=1.0),
                            base_entry(host_seconds=1.0),
                            base_entry(host_seconds=9.0),  # outlier
                            base_entry(host_seconds=1.1)])
    assert check_history_file(history, window=DEFAULT_WINDOW).ok


def test_missing_metrics_and_single_entries_skipped(tmp_path):
    history = tmp_path / "recovery_scaling_history.jsonl"
    # Old-format lines without the new virtual metrics + a brand-new
    # group with only one entry: nothing to judge, nothing to fail.
    write_history(history, [
        {"date": "2026-08-01", "commit": "a", "records": 500,
         "leg": "none", "recovery_seconds": 0.5},
        {"date": "2026-08-02", "commit": "b", "records": 500,
         "leg": "none", "recovery_seconds": 0.5},
        {"date": "2026-08-02", "commit": "b", "records": 900,
         "leg": "none", "recovery_seconds": 0.9},
    ])
    report = check_history_file(history)
    assert report.ok
    assert any("only 1 entry" in reason for reason in report.skipped)
    checked_metrics = {c[2] for c in report.checked}
    assert checked_metrics == {"recovery_seconds"}


def test_malformed_lines_skipped_not_fatal(tmp_path):
    history = tmp_path / "x_history.jsonl"
    history.write_text("not json\n"
                       + json.dumps(base_entry()) + "\n"
                       + json.dumps(base_entry()) + "\n")
    report = check_history_file(history)
    assert report.ok
    assert any("not valid JSON" in reason for reason in report.skipped)


def test_run_sentinel_scans_all_history_files(tmp_path):
    write_history(tmp_path / "wallclock_history.jsonl",
                  [base_entry(), base_entry()])
    write_history(tmp_path / "recovery_scaling_history.jsonl",
                  [{"leg": "none", "records": 500,
                    "recovery_seconds": 0.5, "redo_applied": 100},
                   {"leg": "none", "records": 500,
                    "recovery_seconds": 0.5, "redo_applied": 120}])
    report = run_sentinel(tmp_path)
    assert [f.metric for f in report.findings] == ["redo_applied"]
    assert len({c[0] for c in report.checked}) == 2


def test_run_sentinel_tolerates_missing_dir(tmp_path):
    report = run_sentinel(tmp_path / "nope")
    assert report.ok
    assert any("no such directory" in r for r in report.skipped)


def test_cli_exits_1_on_doctored_history_line(tmp_path, capsys):
    """The CI wiring contract: ``python -m repro.bench sentinel`` must
    fail the build when the latest history line regressed."""
    history = tmp_path / "wallclock_history.jsonl"
    write_history(history, [base_entry(), base_entry(),
                            base_entry(log_forces=43)])
    assert bench_main(["sentinel", "--out", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "log_forces" in out

    write_history(history, [base_entry(), base_entry(), base_entry()])
    assert bench_main(["sentinel", "--out", str(tmp_path)]) == 0


def test_sentinel_passes_on_tracked_bench_results():
    """The repository's own recorded history must be regression-free."""
    report = run_sentinel("bench_results")
    assert report.ok, report.format()

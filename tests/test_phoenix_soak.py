"""Soak test: a long random workload with random crashes.

A randomized sequence of inserts, updates, deletes and reads runs
through Phoenix while the server is crashed (and restarted) at random
request boundaries.  Every operation that Phoenix reports successful is
also applied to a plain Python model; at the end the database must match
the model exactly — the strongest end-to-end statement of the paper's
exactly-once + transparency guarantees.
"""

import random

import pytest

from repro.odbc.constants import SQL_NO_DATA, SQL_SUCCESS
from repro.phoenix.config import PhoenixConfig
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp


class Soak:
    def __init__(self, seed: int, cache_rows: int, crash_rate: float):
        self.rng = random.Random(seed)
        self.meter = Meter(CostModel(output_buffer_bytes=24))
        self.server = DatabaseServer(meter=self.meter)
        setup = BenchmarkApp(self.server)
        setup.run_statement(
            "CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k))")
        config = PhoenixConfig(client_cache_rows=cache_rows)
        self.app = BenchmarkApp(self.server, use_phoenix=True,
                                phoenix_config=config)
        self.model: dict[int, int] = {}
        self.next_key = 0
        # Random crash+restart before some requests.
        rng = self.rng

        def injector(request):
            if rng.random() < crash_rate:
                self.server.crash()
                self.server.restart()

        self.app.network.fault_injector = injector

    def step(self) -> None:
        op = self.rng.random()
        manager, conn = self.app.manager, self.app.conn
        if op < 0.4:  # insert
            key = self.next_key
            self.next_key += 1
            value = self.rng.randint(0, 99)
            stmt = manager.alloc_statement(conn)
            rc = manager.exec_direct(
                stmt, f"INSERT INTO kv VALUES ({key}, {value})")
            assert rc == SQL_SUCCESS, manager.get_diag(stmt)
            self.model[key] = value
        elif op < 0.6 and self.model:  # update
            key = self.rng.choice(sorted(self.model))
            delta = self.rng.randint(1, 9)
            stmt = manager.alloc_statement(conn)
            rc = manager.exec_direct(
                stmt, f"UPDATE kv SET v = v + {delta} WHERE k = {key}")
            assert rc == SQL_SUCCESS, manager.get_diag(stmt)
            self.model[key] += delta
        elif op < 0.7 and self.model:  # delete
            key = self.rng.choice(sorted(self.model))
            stmt = manager.alloc_statement(conn)
            rc = manager.exec_direct(stmt,
                                     f"DELETE FROM kv WHERE k = {key}")
            assert rc == SQL_SUCCESS, manager.get_diag(stmt)
            del self.model[key]
        else:  # read everything and check against the model
            stmt = manager.alloc_statement(conn)
            rc = manager.exec_direct(stmt,
                                     "SELECT k, v FROM kv ORDER BY k")
            assert rc == SQL_SUCCESS, manager.get_diag(stmt)
            rows = []
            while True:
                rc, row = manager.fetch(stmt)
                if rc == SQL_NO_DATA:
                    break
                assert rc == SQL_SUCCESS
                rows.append(row)
            manager.free_statement(stmt)
            assert rows == sorted(self.model.items()), \
                "read diverged from the model mid-workload"

    def final_check(self) -> None:
        self.app.network.fault_injector = None
        rows = self.app.query_rows("SELECT k, v FROM kv ORDER BY k")
        assert rows == sorted(self.model.items())
        # And the state is durable: a final crash changes nothing.
        self.server.crash()
        self.server.restart()
        rows = self.app.query_rows("SELECT k, v FROM kv ORDER BY k")
        assert rows == sorted(self.model.items())


@pytest.mark.parametrize("seed", [11, 23, 47])
@pytest.mark.parametrize("cache_rows", [0, 50])
def test_soak_random_crashes(seed, cache_rows):
    soak = Soak(seed=seed, cache_rows=cache_rows, crash_rate=0.03)
    for _ in range(60):
        soak.step()
    soak.final_check()
    assert soak.app.manager.stats["recoveries"] > 0, \
        "the soak should actually have exercised recovery"


def test_soak_heavy_crash_rate():
    soak = Soak(seed=5, cache_rows=25, crash_rate=0.12)
    for _ in range(40):
        soak.step()
    soak.final_check()

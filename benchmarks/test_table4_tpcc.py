"""Table 4: TPC-C under native ODBC, Phoenix, and Phoenix w/ caching.

Paper shape: 391 / 327 / 391 TPM-C — Phoenix's per-select persistence
costs a noticeable slice of throughput on a disk-limited server (100%
disk utilization in every run) with more CPU per transaction (ratio
1.27), and the client cache recovers native throughput exactly ("the
work assigned to the server was identical in both cases").
"""

from repro.bench.experiments import run_table4


def test_table4_tpcc(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_table4(measure_seconds=900.0, txn_samples=100),
        rounds=1, iterations=1)
    report("table4_tpcc", result.format())

    (native_label, native_tpmc, native_cpu, native_disk, native_ratio), \
        (_phx_label, phx_tpmc, phx_cpu, _phx_disk, phx_ratio), \
        (_cache_label, cache_tpmc, cache_cpu, cache_disk, cache_ratio) \
        = result.rows

    # The server is disk-limited in the baseline (paper: DISK UTIL 100%).
    assert native_disk > 0.9
    # Phoenix costs throughput and extra CPU per transaction.
    assert phx_tpmc < native_tpmc * 0.97
    assert phx_ratio > 1.1
    # The client cache restores native behaviour.
    assert abs(cache_tpmc - native_tpmc) / native_tpmc < 0.08
    assert abs(cache_ratio - 1.0) < 0.05
    assert cache_disk > 0.9

"""Micro overheads: the §3.4/§3.5 scalar measurements.

Paper values: parse 0.00023 s, metadata 0.00062 s, create table 0.321 s,
tuple fetch 0.00380 s (native) vs 0.00397 s (persisted table), virtual
session recovery 0.37 s.
"""

import pytest

from repro.bench.experiments import run_micro_overheads


def test_micro_overheads(benchmark, report):
    result = benchmark.pedantic(lambda: run_micro_overheads(scale=0.002),
                                rounds=1, iterations=1)
    report("micro_overheads", result.format())

    measured = {name: ours for name, _paper, ours in result.rows}
    assert measured["parse request"] == pytest.approx(0.00023)
    assert measured["create persistent table"] == pytest.approx(0.321,
                                                                rel=0.1)
    assert measured["tuple fetch (native)"] == pytest.approx(0.0038,
                                                             rel=0.05)
    extra = (measured["tuple fetch (persisted)"]
             - measured["tuple fetch (native)"])
    assert 0 < extra < 0.001, "persisted fetch should cost slightly more"
    assert measured["virtual session recovery"] == pytest.approx(0.37,
                                                                 rel=0.15)

"""Ablation: checkpoint frequency vs database restart-recovery time.

The paper pinned the server's checkpoint interval very high so no
checkpoint fell inside a measurement; the flip side is that restart
recovery must redo more log.  This ablation runs a burst of committed
updates with different checkpoint cadences, crashes, and measures the
virtual time the engine spends in ARIES redo at restart — the "pause"
component an application waits out before Phoenix can even reconnect.

Two families of legs: *sharp* checkpoints (the seed's flush-everything
``server.checkpoint()`` at a batch cadence) and *fuzzy* checkpoints
(non-blocking Begin/End on a virtual-time cadence, with log truncation
and optional parallel partitioned redo — the tentpole path).
"""

from repro.bench.reporting import format_table
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp

CADENCES = (0, 50, 10)  # checkpoints every N update batches (0 = never)
BATCHES = 97  # deliberately off-cadence so every run has a redo tail
#: (label, redo workers) legs for the fuzzy cost-model knobs; the
#: interval is derived from the never-checkpoint leg's measured
#: workload time so roughly 10 checkpoints land in every run.
FUZZY_LEGS = (("fuzzy", 0), ("fuzzy + 4-worker redo", 4))
FUZZY_CHECKPOINTS = 10


def _recovery_time(checkpoint_every: int, costs: CostModel | None = None,
                   ) -> tuple[float, int, float]:
    server = DatabaseServer(meter=Meter(costs or CostModel()))
    app = BenchmarkApp(server)
    app.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                      "PRIMARY KEY (k))")
    app.run_statement("INSERT INTO t VALUES " + ", ".join(
        f"({i}, 0)" for i in range(50)))
    workload_start = server.meter.now
    for batch in range(BATCHES):
        app.run_statement(f"UPDATE t SET v = v + 1 WHERE k < 25")
        app.run_statement(f"UPDATE t SET v = v + 2 WHERE k >= 25")
        if checkpoint_every and (batch + 1) % checkpoint_every == 0:
            server.checkpoint()
    workload = server.meter.now - workload_start
    server.crash()
    start = server.meter.now
    server.restart()
    elapsed = server.meter.now - start
    report = server.engine.last_recovery
    return elapsed, report.redo_applied, workload


def test_ablation_checkpoint_interval(benchmark, report):
    def run():
        results = {c: _recovery_time(c) for c in CADENCES}
        interval = results[0][2] / FUZZY_CHECKPOINTS
        for label, workers in FUZZY_LEGS:
            costs = CostModel(checkpoint_interval_seconds=interval,
                              checkpoint_truncate_log=True,
                              redo_workers=workers)
            results[label] = _recovery_time(0, costs)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    legs = [("never" if c == 0 else f"sharp every {c} batches", c)
            for c in CADENCES]
    legs += [(label, label) for label, _workers in FUZZY_LEGS]
    rows = [[label, results[key][1], results[key][0]]
            for label, key in legs]
    report("ablation_checkpoint", format_table(
        "Ablation: checkpoint cadence vs restart recovery",
        ["Checkpoint cadence", "Records redone", "Recovery (s)"], rows))

    never = results[0]
    frequent = results[10]
    # More frequent checkpoints mean less redo and faster recovery.
    assert frequent[1] < never[1] / 2
    assert frequent[0] < never[0]
    # Fuzzy checkpoints bound redo by dirty-page recLSNs and truncation,
    # without ever flushing the pool inside a checkpoint.
    fuzzy = results["fuzzy"]
    assert fuzzy[1] < never[1] / 2
    assert fuzzy[0] < never[0]
    # Simulated redo workers can only shrink the charged makespan.  (One
    # table means one partition here, so the legs only differ by charge
    # summation order — hence the float tolerance.)
    parallel = results["fuzzy + 4-worker redo"]
    assert parallel[0] <= fuzzy[0] + 1e-9
    assert parallel[1] == fuzzy[1]
    # Everything still recovers correctly regardless of cadence.
    for _label, key in legs:
        assert results[key][0] >= 0

"""Ablation: checkpoint frequency vs database restart-recovery time.

The paper pinned the server's checkpoint interval very high so no
checkpoint fell inside a measurement; the flip side is that restart
recovery must redo more log.  This ablation runs a burst of committed
updates with different checkpoint cadences, crashes, and measures the
virtual time the engine spends in ARIES redo at restart — the "pause"
component an application waits out before Phoenix can even reconnect.
"""

from repro.bench.reporting import format_table
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp

CADENCES = (0, 50, 10)  # checkpoints every N update batches (0 = never)
BATCHES = 97  # deliberately off-cadence so every run has a redo tail


def _recovery_time(checkpoint_every: int) -> tuple[float, int]:
    server = DatabaseServer(meter=Meter(CostModel()))
    app = BenchmarkApp(server)
    app.run_statement("CREATE TABLE t (k INT NOT NULL, v INT, "
                      "PRIMARY KEY (k))")
    app.run_statement("INSERT INTO t VALUES " + ", ".join(
        f"({i}, 0)" for i in range(50)))
    for batch in range(BATCHES):
        app.run_statement(f"UPDATE t SET v = v + 1 WHERE k < 25")
        app.run_statement(f"UPDATE t SET v = v + 2 WHERE k >= 25")
        if checkpoint_every and (batch + 1) % checkpoint_every == 0:
            server.checkpoint()
    server.crash()
    start = server.meter.now
    server.restart()
    elapsed = server.meter.now - start
    report = server.engine.last_recovery
    return elapsed, report.redo_applied


def test_ablation_checkpoint_interval(benchmark, report):
    results = benchmark.pedantic(
        lambda: {c: _recovery_time(c) for c in CADENCES},
        rounds=1, iterations=1)
    rows = [[("never" if c == 0 else f"every {c} batches"),
             results[c][1], results[c][0]] for c in CADENCES]
    report("ablation_checkpoint", format_table(
        "Ablation: checkpoint cadence vs restart recovery",
        ["Checkpoint cadence", "Records redone", "Recovery (s)"], rows))

    never = results[0]
    frequent = results[10]
    # More frequent checkpoints mean less redo and faster recovery.
    assert frequent[1] < never[1] / 2
    assert frequent[0] < never[0]
    # Everything still recovers correctly regardless of cadence.
    for cadence in CADENCES:
        assert results[cadence][0] >= 0

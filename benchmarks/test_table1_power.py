"""Table 1: TPC-H power test, native ODBC vs Phoenix/ODBC.

Paper shape: Phoenix's total query time is ~1% above native (1.011);
update functions are within ~0.5% (1.003-1.015); individual short
queries show larger relative overheads than long ones.
"""

from repro.bench.experiments import run_table1

SCALE = 0.002


def test_table1_power(benchmark, report):
    result = benchmark.pedantic(lambda: run_table1(scale=SCALE),
                                rounds=1, iterations=1)
    report("table1_power", result.format())

    # Shape assertions (paper: 1.011 for queries, 1.003 for updates).
    query_ratio = result.phoenix_query_total / result.native_query_total
    update_ratio = (result.phoenix_update_total
                    / result.native_update_total)
    assert 1.0 < query_ratio < 1.10, "query overhead should be modest"
    assert 1.0 <= update_ratio < 1.05, "update overhead should be tiny"

    # Phoenix's fixed per-query cost hurts short queries relatively more.
    rows = {label: (native, phoenix)
            for label, _n, native, phoenix in result.rows
            if label.startswith("Q")}
    shortest = min(rows.values(), key=lambda p: p[0])
    longest = max(rows.values(), key=lambda p: p[0])
    assert shortest[1] / shortest[0] > longest[1] / longest[0]

"""Shared helpers for the benchmark harness.

Each benchmark runs one experiment from :mod:`repro.bench.experiments`
(one table or figure of the paper), prints the paper-style table, and
writes it under ``bench_results/`` so EXPERIMENTS.md can reference the
regenerated artifacts.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture
def report():
    """Print an experiment's table and persist it to bench_results/."""

    def _report(name: str, text: str) -> None:
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


@pytest.fixture
def record_recovery_phases():
    """Merge one figure's per-phase breakdowns into
    ``bench_results/recovery_phases.json`` (fig3 writes the ``client``
    key, fig4 the ``server`` key; reruns overwrite only their own key).
    """

    def _record(mode: str, breakdowns: list[dict]) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "recovery_phases.json"
        merged: dict = {}
        if path.exists():
            try:
                merged = json.loads(path.read_text())
            except ValueError:
                merged = {}
        merged[mode] = breakdowns
        path.write_text(json.dumps(merged, indent=2, sort_keys=True)
                        + "\n")

    return _record

"""Shared helpers for the benchmark harness.

Each benchmark runs one experiment from :mod:`repro.bench.experiments`
(one table or figure of the paper), prints the paper-style table, and
writes it under ``bench_results/`` so EXPERIMENTS.md can reference the
regenerated artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture
def report():
    """Print an experiment's table and persist it to bench_results/."""

    def _report(name: str, text: str) -> None:
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report

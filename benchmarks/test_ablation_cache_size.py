"""Ablation: client cache capacity.

The §4 cache is "large enough to hold small result sets"; results that
do not fit fall back to server-side persistence.  Sweeping the capacity
shows the trade-off the paper's design point sits on: a larger cache
absorbs more result sets (fewer server tables, faster response), at no
benefit once it exceeds the workload's largest result.
"""

from repro.bench.reporting import format_table
from repro.phoenix.config import PhoenixConfig
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp
from repro.workloads.tpch.datagen import generate
from repro.workloads.tpch.schema import setup_tpch_server

CAPACITIES = (0, 4, 16, 64, 256)


def _run_sweep():
    rows = []
    for capacity in CAPACITIES:
        server = DatabaseServer(meter=Meter(CostModel()))
        setup_tpch_server(server, generate(scale=0.001, seed=3))
        config = PhoenixConfig(client_cache_rows=capacity)
        app = BenchmarkApp(server, use_phoenix=True,
                           phoenix_config=config)
        start = app.meter.now
        # A mix of small and mid-sized lookups, OLTP style.
        for key in range(1, 11):
            app.run_query(
                f"SELECT n_name FROM nation WHERE n_nationkey = {key}",
                label="point")
            app.run_query(
                f"SELECT TOP 30 o_orderkey, o_totalprice FROM orders "
                f"WHERE o_custkey >= {key} ORDER BY o_orderkey",
                label="range")
        elapsed = app.meter.now - start
        stats = app.manager.stats
        rows.append([capacity, stats["cached_results"],
                     stats["cache_overflows"],
                     stats["persisted_results"], elapsed])
    return rows


def test_ablation_cache_size(benchmark, report):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    report("ablation_cache_size", format_table(
        "Ablation: client cache capacity (20 OLTP-style queries)",
        ["Cache rows", "Cached", "Overflows", "Server tables",
         "Elapsed (s)"], rows))

    by_capacity = {row[0]: row for row in rows}
    # No cache -> everything persists server-side.
    assert by_capacity[0][3] == 20
    # A big enough cache absorbs everything and is much faster.
    assert by_capacity[256][1] == 20
    assert by_capacity[256][3] == 0
    assert by_capacity[256][4] < by_capacity[0][4] / 2
    # Intermediate capacities split: small lookups cached, ranges spill.
    assert by_capacity[16][1] > 0
    assert by_capacity[16][2] > 0

"""Figure 4: session recovery with server-side repositioning.

Paper shape: "a dramatic 10 to one reduction in overhead for larger
result sets" — the repositioning stored procedure advances through the
result on the server without shipping tuples, making SQL-state recovery
sub-second and nearly independent of result size.
"""

from repro.bench.experiments import run_fig3, run_fig4

SCALE = 0.02
FRACTIONS = (0.05, 0.03, 0.02, 0.015, 0.01, 0.007, 0.005, 0.002,
             0.001, 0.0)


def test_fig4_recovery_server(benchmark, report, record_recovery_phases):
    result = benchmark.pedantic(
        lambda: run_fig4(scale=SCALE, fractions=FRACTIONS),
        rounds=1, iterations=1)
    report("fig4_recovery_server", result.format())
    record_recovery_phases("server", result.breakdowns)

    assert len(result.rows) >= 3
    assert len(result.breakdowns) == len(result.rows)
    totals = [v + s for _size, v, s in result.rows]
    # Sub-second recovery across the board.
    assert all(t < 1.0 for t in totals)

    # The paper's 10x claim: compare against client-side repositioning
    # at the largest shared result size.
    client = run_fig3(scale=SCALE, fractions=FRACTIONS)
    client_by_size = {size: v + s for size, v, s in client.rows}
    shared = [size for size, _v, _s in result.rows
              if size in client_by_size]
    assert shared, "figures must share at least one result size"
    largest = max(shared)
    server_total = dict((size, v + s)
                        for size, v, s in result.rows)[largest]
    sql_client = client_by_size[largest]
    assert sql_client / server_total > 1.5, \
        "server-side repositioning should win clearly at larger sizes"

"""Figure 3: session recovery time, repositioning at the client.

Paper shape: virtual-session recovery is a constant ~0.37 s; SQL-state
recovery grows with the result size because Phoenix sequences through
the persisted result from the client, reaching seconds for
thousand-tuple results ("the upper bound for recovering SQL state").
"""

from repro.bench.experiments import run_fig3

SCALE = 0.02
FRACTIONS = (0.05, 0.03, 0.02, 0.015, 0.01, 0.007, 0.005, 0.002,
             0.001, 0.0)


def test_fig3_recovery_client(benchmark, report, record_recovery_phases):
    result = benchmark.pedantic(
        lambda: run_fig3(scale=SCALE, fractions=FRACTIONS),
        rounds=1, iterations=1)
    report("fig3_recovery_client", result.format())
    record_recovery_phases("client", result.breakdowns)

    assert len(result.rows) >= 3, "need several result sizes"
    assert len(result.breakdowns) == len(result.rows)
    for breakdown in result.breakdowns:
        assert breakdown["reconnect"] > 0
        assert breakdown["reposition"] > 0
    sizes = [size for size, _v, _s in result.rows]
    sql_state = [s for _size, _v, s in result.rows]
    virtual = [v for _size, v, _s in result.rows]

    # Virtual-session phase is constant (paper: 0.37 s for all sizes).
    assert max(virtual) - min(virtual) < 0.05
    assert 0.2 < virtual[0] < 0.6

    # SQL-state phase grows with result size (roughly linearly: the
    # client fetches-and-discards one tuple at a time).
    assert sql_state == sorted(sql_state)
    assert sql_state[-1] / sql_state[0] > 0.5 * (sizes[-1] / sizes[0])
    assert sizes == sorted(sizes)

"""Table 2: TPC-H throughput test on two streams.

Paper shape: Phoenix adds ~0.3% to the elapsed time of two concurrent
query streams plus a refresh stream (5472.00 s -> 5492.39 s, ratio
1.003) — "if Phoenix were imposing a heavy cost on the server, we would
expect to detect a noticeable drop in throughput".
"""

from repro.bench.experiments import run_table2

SCALE = 0.002


def test_table2_throughput(benchmark, report):
    result = benchmark.pedantic(lambda: run_table2(scale=SCALE, streams=2),
                                rounds=1, iterations=1)
    report("table2_throughput", result.format())

    assert result.phoenix_elapsed > result.native_elapsed
    assert result.ratio < 1.10, "throughput impact should be minor"

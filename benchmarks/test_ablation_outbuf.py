"""Ablation: network output buffer capacity.

Table 3's native-flat-after-512-tuples artifact is a consequence of the
~75 KB output buffer: "once the network buffer reaches capacity, the
scan for data is suspended".  Sweeping the buffer moves the saturation
point proportionally.
"""

from repro.bench.reporting import format_table
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp
from repro.workloads.tpch.datagen import generate
from repro.workloads.tpch.queries import top_n_lineitem
from repro.workloads.tpch.schema import setup_tpch_server

BUFFERS = (16 * 1024, 75 * 1024, 256 * 1024)
SIZES = (64, 256, 1024, 4096, 16384)


def _response_times(buffer_bytes: int):
    costs = CostModel(output_buffer_bytes=buffer_bytes,
                      work_amplification=100.0)
    server = DatabaseServer(meter=Meter(costs))
    setup_tpch_server(server, generate(scale=0.01, seed=3))
    app = BenchmarkApp(server, use_phoenix=False)
    app.run_query(top_n_lineitem(4096), label="warmup")
    times = {}
    for n in SIZES:
        times[n] = app.run_query(top_n_lineitem(n), label=f"top{n}",
                                 fetch=False).seconds
    return times


def _saturation_point(times: dict) -> int:
    sizes = sorted(times)
    for i in range(1, len(sizes)):
        if times[sizes[i]] < times[sizes[i - 1]] * 1.02:
            return sizes[i - 1]
    return sizes[-1]


def test_ablation_output_buffer(benchmark, report):
    results = benchmark.pedantic(
        lambda: {b: _response_times(b) for b in BUFFERS},
        rounds=1, iterations=1)
    rows = [[f"{b // 1024} KB"] + [results[b][n] for n in SIZES]
            for b in BUFFERS]
    report("ablation_outbuf", format_table(
        "Ablation: output buffer size vs TOP N response time (s)",
        ["Buffer"] + [str(n) for n in SIZES], rows))

    # A larger buffer saturates later: response time keeps growing for
    # larger N before going flat.
    small = _saturation_point(results[BUFFERS[0]])
    large = _saturation_point(results[BUFFERS[-1]])
    assert small < large

    # Below saturation, response time is buffer-independent.
    assert results[BUFFERS[0]][64] > 0
    for b in BUFFERS[1:]:
        assert abs(results[b][64] - results[BUFFERS[0]][64]) \
            / results[BUFFERS[0]][64] < 0.05

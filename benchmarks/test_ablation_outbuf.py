"""Ablation: network output buffer capacity, and fetch-ahead depth.

Table 3's native-flat-after-512-tuples artifact is a consequence of the
~75 KB output buffer: "once the network buffer reaches capacity, the
scan for data is suspended".  Sweeping the buffer moves the saturation
point proportionally.

The second ablation sweeps the driver's fetch-ahead depth over a full
result drain: each level of depth hides more of the per-batch RTT stall
behind client consumption (virtual seconds fall, rows stay identical),
and pairing it with adaptive batching removes most of the round trips
outright.
"""

from repro.bench.reporting import format_table
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp
from repro.workloads.tpch.datagen import generate
from repro.workloads.tpch.queries import top_n_lineitem
from repro.workloads.tpch.schema import setup_tpch_server

BUFFERS = (16 * 1024, 75 * 1024, 256 * 1024)
SIZES = (64, 256, 1024, 4096, 16384)


def _response_times(buffer_bytes: int):
    costs = CostModel(output_buffer_bytes=buffer_bytes,
                      work_amplification=100.0)
    server = DatabaseServer(meter=Meter(costs))
    setup_tpch_server(server, generate(scale=0.01, seed=3))
    app = BenchmarkApp(server, use_phoenix=False)
    app.run_query(top_n_lineitem(4096), label="warmup")
    times = {}
    for n in SIZES:
        times[n] = app.run_query(top_n_lineitem(n), label=f"top{n}",
                                 fetch=False).seconds
    return times


def _saturation_point(times: dict) -> int:
    sizes = sorted(times)
    for i in range(1, len(sizes)):
        if times[sizes[i]] < times[sizes[i - 1]] * 1.02:
            return sizes[i - 1]
    return sizes[-1]


def test_ablation_output_buffer(benchmark, report):
    results = benchmark.pedantic(
        lambda: {b: _response_times(b) for b in BUFFERS},
        rounds=1, iterations=1)
    rows = [[f"{b // 1024} KB"] + [results[b][n] for n in SIZES]
            for b in BUFFERS]
    report("ablation_outbuf", format_table(
        "Ablation: output buffer size vs TOP N response time (s)",
        ["Buffer"] + [str(n) for n in SIZES], rows))

    # A larger buffer saturates later: response time keeps growing for
    # larger N before going flat.
    small = _saturation_point(results[BUFFERS[0]])
    large = _saturation_point(results[BUFFERS[-1]])
    assert small < large

    # Below saturation, response time is buffer-independent.
    assert results[BUFFERS[0]][64] > 0
    for b in BUFFERS[1:]:
        assert abs(results[b][64] - results[BUFFERS[0]][64]) \
            / results[BUFFERS[0]][64] < 0.05


DEPTHS = (0, 1, 2, 4)


def _drain_stats(depth: int, adaptive: bool = False) -> dict:
    """Virtual cost of draining one multi-batch result at a given
    fetch-ahead depth (optionally with adaptive batching on top)."""
    costs = CostModel(work_amplification=100.0, fetch_ahead_depth=depth)
    if adaptive:
        costs.fetch_batch_max_bytes = 8192
        costs.output_buffer_max_bytes = 256 * 1024
    server = DatabaseServer(meter=Meter(costs))
    setup_tpch_server(server, generate(scale=0.01, seed=3))
    app = BenchmarkApp(server, use_phoenix=False)
    app.meter.reset_traces()
    start = app.meter.now
    rows = app.query_rows(top_n_lineitem(4096))
    counters = app.meter.counters
    return {"rows": len(rows),
            "virtual": app.meter.now - start,
            "fetches": int(counters.get("net.requests.FetchRequest", 0)),
            "hits": int(counters.get("prefetch_hits", 0)),
            "overlap": counters.get("prefetch_overlap_seconds", 0.0)}


def test_ablation_fetch_ahead_depth(benchmark, report):
    def sweep():
        stats = {d: _drain_stats(d) for d in DEPTHS}
        stats["adaptive"] = _drain_stats(2, adaptive=True)
        return stats

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[str(key), f"{r['virtual']:.6f}", r["fetches"], r["hits"],
             f"{r['overlap']:.6f}"]
            for key, r in results.items()]
    report("ablation_prefetch", format_table(
        "Ablation: fetch-ahead depth vs drain cost "
        "(virtual s / fetch RTTs / hits / overlap s)",
        ["Depth", "Virtual s", "Fetch RTTs", "Hits", "Overlap s"], rows))

    seed = results[0]
    assert seed["hits"] == 0 and seed["overlap"] == 0
    for depth in DEPTHS[1:]:
        r = results[depth]
        # Same rows, strictly less RTT stall, overlap actually banked.
        assert r["rows"] == seed["rows"]
        assert r["virtual"] < seed["virtual"]
        assert r["hits"] > 0 and r["overlap"] > 0
        # Fetch-ahead alone only *reorders* round trips.
        assert r["fetches"] == seed["fetches"]
    # Deeper pipelines never cost more virtual time than shallower ones.
    assert results[4]["virtual"] <= results[1]["virtual"]
    # Adaptive batching on top removes >=20% of the round trips.
    adaptive = results["adaptive"]
    assert adaptive["rows"] == seed["rows"]
    assert adaptive["fetches"] <= 0.8 * seed["fetches"]
    assert adaptive["virtual"] < seed["virtual"]

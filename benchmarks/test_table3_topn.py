"""Table 3: response time for SELECT TOP N * FROM LINEITEM.

Paper shape: huge Phoenix/native ratios at tiny N (fixed table-creation
cost vs a ~1 ms query), ratio declining as N grows, a window where
Phoenix is *faster* than native (256-4K tuples in the paper), native
response time flat once the ~75 KB output buffer fills (512 x 150 B),
and Phoenix growing linearly with N (materialization cost).
"""

from repro.bench.experiments import run_table3

SCALE = 0.01


def test_table3_topn(benchmark, report):
    result = benchmark.pedantic(lambda: run_table3(scale=SCALE),
                                rounds=1, iterations=1)
    report("table3_topn", result.format())

    by_n = {n: (native, phoenix) for n, native, phoenix in result.rows}
    ns = sorted(by_n)

    # Huge ratio at N=1, declining with N.
    ratio_1 = by_n[1][1] / by_n[1][0]
    ratio_128 = by_n[128][1] / by_n[128][0]
    assert ratio_1 > 20
    assert ratio_128 < ratio_1 / 5

    # A crossover window where Phoenix beats native.
    assert any(phoenix < native for _n, native, phoenix in result.rows), \
        "expected a region where Phoenix is faster (paper: 256-4K)"

    # Native response time is flat once the output buffer fills.
    big = [by_n[n][0] for n in ns if n >= 1024]
    assert max(big) / min(big) < 1.05

    # Phoenix keeps growing with N (it materializes the whole result).
    assert by_n[ns[-1]][1] > 4 * by_n[1024][1]

"""Figure 6: Q11 execute/load time, native ODBC vs Phoenix/ODBC.

Paper shape: "response time is dominated by the cost of query execution
and writing the result to a persistent table ... there is less than a
10% response time hit for producing a persistent result set for Q11" —
Phoenix's execute+load tracks native execution closely, the gap being
the extra logging to store the result.
"""

from repro.bench.experiments import run_fig6

SCALE = 0.02
FRACTIONS = (0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0)


def test_fig6_q11_load(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_fig6(scale=SCALE, fractions=FRACTIONS),
        rounds=1, iterations=1)
    report("fig6_q11_load", result.format())

    assert len(result.rows) >= 3
    for _size, native, phoenix in result.rows:
        # Phoenix's load step includes running the query, so it should
        # be in the same ballpark as native execution, modestly above.
        assert phoenix > native * 0.9
        assert phoenix < native * 1.5, \
            "load overhead should be modest for a compute-heavy query"

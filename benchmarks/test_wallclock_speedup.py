"""Wall-clock effect of the statement/plan caches (host time, §host).

Unlike every other benchmark here, this one measures *host* seconds,
not virtual seconds: the statement/plan caches and the metadata-probe
cache are pure host-time optimizations, so the same statement stream is
timed twice — once with every cache disabled, once with the defaults —
and the two legs must agree on the virtual clock to the last digit
while the cached leg finishes measurably sooner.

The mix is TPC-C flavored: a transaction mix (through the Phoenix
driver manager with the §4 client cache), a point-read loop (the OLTP
steady state the plan cache targets), and repeated persists of one
over-cache result set (metadata-probe traffic).  Results land in
``bench_results/wallclock.json`` so the speedup is a tracked number.
"""

import json

from conftest import RESULTS_DIR

from repro.bench.experiments import (
    WALLCLOCK_ASYNC_COMMIT_WINDOW,
    run_result_drain,
    run_wallclock,
)


def test_wallclock_speedup(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_wallclock(
            point_reads=2000,
            async_commit_window=WALLCLOCK_ASYNC_COMMIT_WINDOW),
        rounds=1, iterations=1)
    report("wallclock", result.format())

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "wallclock.json").write_text(json.dumps({
        "mix": "TPC-C transactions + point selects + phoenix persists",
        "leg": "base",
        "async_commit_window": WALLCLOCK_ASYNC_COMMIT_WINDOW,
        "baseline_host_seconds": round(result.baseline_host_seconds, 3),
        "cached_host_seconds": round(result.cached_host_seconds, 3),
        "speedup_percent": round(result.speedup_percent, 1),
        "baseline_segments": {k: round(v, 3) for k, v
                              in result.baseline_segments.items()},
        "cached_segments": {k: round(v, 3) for k, v
                            in result.cached_segments.items()},
        "virtual_seconds": result.cached_virtual_seconds,
        "counters": result.counters,
        "cache_stats": result.cache_stats,
        "executor_stats": {k: result.executor_stats[k]
                           for k in sorted(result.executor_stats)},
    }, indent=2) + "\n")

    # The caches must never move the virtual clock — bit-identical, not
    # approximately equal.
    assert result.baseline_virtual_seconds == result.cached_virtual_seconds
    # The tracked win: the cached leg is at least 30% faster.
    assert result.speedup_percent >= 30.0
    # And the win comes from actual cache traffic.
    assert result.counters.get("plan_cache_hits", 0) > 0
    assert result.counters.get("meta_probe_hits", 0) > 0
    assert result.cache_stats["plan_hits"] > 0
    # Async commit must defer at least 40% of the synchronous seed's
    # 183 log forces (ISSUE 4 acceptance bar).
    assert result.counters.get("log_forces", 0) <= 109
    assert result.counters.get("async_commit_deferrals", 0) > 0


def test_result_drain_prefetch_cut(benchmark, report):
    """The pipelined-delivery companion mix the wallclock CLI gates on:
    draining one multi-batch result must cut fetch round trips by >=20%
    and finish at a lower virtual clock, with identical rows."""
    seed, pipelined = benchmark.pedantic(
        lambda: (run_result_drain(prefetch=False),
                 run_result_drain(prefetch=True)),
        rounds=1, iterations=1)
    report("result_drain", json.dumps(
        {"seed": seed, "prefetch": pipelined}, indent=2))

    assert pipelined["rows"] == seed["rows"]
    assert pipelined["fetch_requests"] <= 0.8 * seed["fetch_requests"]
    assert pipelined["virtual_seconds"] < seed["virtual_seconds"]
    assert pipelined["prefetch_hits"] > 0
    assert seed["prefetch_hits"] == 0 and seed["overlap_seconds"] == 0

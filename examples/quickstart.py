"""Quickstart: a database session that survives a server crash.

Builds a simulated database server, connects through Phoenix/ODBC, and
kills the server in the middle of fetching a result set.  The
application code below never mentions crashes — it just keeps calling
``fetch`` — yet it receives every row exactly once.  Run it, then flip
``USE_PHOENIX`` to False to watch the same application break.

    python examples/quickstart.py

With ``REPRO_TRACE=1`` the run is traced end to end and the span tree
is exported as JSONL (``REPRO_TRACE_OUT``, default
``quickstart_trace.jsonl``) for ``python -m repro.obs.validate`` and
``python -m repro.bench trace-report --input``.
"""

import os

from repro.odbc.constants import SQL_NO_DATA, SQL_SUCCESS
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp

USE_PHOENIX = True


def build_server() -> DatabaseServer:
    """A server with a small inventory table."""
    # A small wire buffer makes the demo result span several round
    # trips, so the crash lands mid-delivery.
    server = DatabaseServer(meter=Meter(CostModel(output_buffer_bytes=64)))
    app = BenchmarkApp(server)  # plain native connection for setup
    app.run_statement(
        "CREATE TABLE inventory (sku INT NOT NULL, name VARCHAR(20), "
        "qty INT, PRIMARY KEY (sku))")
    values = ", ".join(f"({i}, 'widget-{i}', {i * 3})" for i in range(20))
    app.run_statement(f"INSERT INTO inventory VALUES {values}")
    return server


def main() -> None:
    server = build_server()
    app = BenchmarkApp(server, use_phoenix=USE_PHOENIX)
    kind = "Phoenix/ODBC" if USE_PHOENIX else "native ODBC"
    print(f"connected via {kind}\n")

    statement = app.manager.alloc_statement(app.conn)
    rc = app.manager.exec_direct(
        statement, "SELECT sku, name, qty FROM inventory ORDER BY sku")
    assert rc == SQL_SUCCESS

    rows_seen = 0
    while True:
        if rows_seen == 7:
            print(">>> pulling the plug on the database server ... <<<")
            server.crash()
            server.restart()
        rc, row = app.manager.fetch(statement)
        if rc == SQL_NO_DATA:
            break
        if rc != SQL_SUCCESS:
            diag = app.manager.get_diag(statement)[0]
            print(f"!! fetch failed: [{diag.sqlstate}] {diag.message}")
            print("   (this is what native ODBC applications see)")
            return
        rows_seen += 1
        print(f"  row {rows_seen:2d}: {row}")

    print(f"\nfetched all {rows_seen} rows — the application never "
          f"noticed the crash")
    if USE_PHOENIX:
        stats = app.manager.stats
        print(f"phoenix stats: {stats['persisted_results']} result set(s) "
              f"persisted, {stats['recoveries']} session recover(ies)")
    print(f"virtual time elapsed: {app.meter.now:.3f}s")

    if app.meter.obs.enabled:
        from repro.obs.export import export_trace

        out = os.environ.get("REPRO_TRACE_OUT", "quickstart_trace.jsonl")
        count = export_trace(app.meter.obs, out)
        print(f"trace: {len(app.meter.obs.tracer.finished)} span(s) "
              f"recorded, {count} record(s) exported to {out}")


if __name__ == "__main__":
    main()

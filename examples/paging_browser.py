"""A paging result browser on a persistent scrollable cursor.

Scrollable cursors are session state too: under Phoenix, the cursor
lives over the materialized result table, so jumping to the last page,
paging backwards, and random access all keep working across a server
crash — the position is exactly what recovery repositions to.

    python examples/paging_browser.py
"""

from repro.odbc.constants import (
    SQL_FETCH_ABSOLUTE,
    SQL_FETCH_NEXT,
    SQL_SUCCESS,
)
from repro.server.server import DatabaseServer
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp

PAGE_SIZE = 5


def build_server() -> DatabaseServer:
    server = DatabaseServer(meter=Meter())
    setup = BenchmarkApp(server)
    setup.run_statement(
        "CREATE TABLE log_entries (seq INT NOT NULL, msg VARCHAR(40), "
        "PRIMARY KEY (seq))")
    values = ", ".join(f"({i}, 'event number {i}')" for i in range(40))
    setup.run_statement(f"INSERT INTO log_entries VALUES {values}")
    return server


def show_page(app, stmt, page: int) -> None:
    print(f"--- page {page + 1} ---")
    rc, row = app.manager.fetch_scroll(stmt, SQL_FETCH_ABSOLUTE,
                                       page * PAGE_SIZE + 1)
    shown = 0
    while rc == SQL_SUCCESS and shown < PAGE_SIZE:
        print(f"  {row[0]:3d}  {row[1]}")
        shown += 1
        if shown < PAGE_SIZE:
            rc, row = app.manager.fetch_scroll(stmt, SQL_FETCH_NEXT)


def main() -> None:
    server = build_server()
    app = BenchmarkApp(server, use_phoenix=True)
    stmt = app.manager.alloc_statement(app.conn)
    rc = app.manager.exec_direct(
        stmt, "SELECT seq, msg FROM log_entries ORDER BY seq")
    assert rc == SQL_SUCCESS

    show_page(app, stmt, 0)          # first page
    show_page(app, stmt, 6)          # jump forward
    print(">>> server crashes while the user is reading page 7 <<<")
    server.crash()
    server.restart()
    show_page(app, stmt, 2)          # jump *backwards* across the crash
    show_page(app, stmt, 7)          # and to the end

    stats = app.manager.stats
    print(f"\nphoenix stats: recoveries = {stats['recoveries']}, "
          f"persisted results = {stats['persisted_results']}")
    print("the cursor position survived the crash — no page was shown "
          "twice or skipped")


if __name__ == "__main__":
    main()

"""Order entry: OLTP with client caching and exactly-once updates.

A miniature order-entry workload (the scenario the paper optimizes in
§4).  Every lookup is a small SELECT — with the client cache enabled no
persistent result tables are created on the server at all — and every
order placement is a status-table-wrapped update that is applied exactly
once even when the server dies right around its commit.

    python examples/order_entry.py
"""

import random

from repro.phoenix.config import PhoenixConfig
from repro.server.protocol import ExecuteRequest
from repro.server.server import DatabaseServer
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp


def build_server() -> DatabaseServer:
    server = DatabaseServer(meter=Meter())
    setup = BenchmarkApp(server)
    setup.run_statement(
        "CREATE TABLE product (pid INT NOT NULL, name VARCHAR(24), "
        "price FLOAT, stock INT, PRIMARY KEY (pid))")
    setup.run_statement(
        "CREATE TABLE order_log (oid INT NOT NULL, pid INT, qty INT, "
        "PRIMARY KEY (oid))")
    values = ", ".join(
        f"({i}, 'product-{i}', {round(1.5 * i + 0.99, 2)}, {50 + i})"
        for i in range(1, 21))
    setup.run_statement(f"INSERT INTO product VALUES {values}")
    return server


def main() -> None:
    server = build_server()
    config = PhoenixConfig(client_cache_rows=100)  # the §4 optimization
    app = BenchmarkApp(server, use_phoenix=True, phoenix_config=config)
    rng = random.Random(2024)

    # Arm a fault: the server will crash (and come back) the moment the
    # order-placement transaction tries to COMMIT.
    armed = {"shots": 2}

    def chaos(request):
        if (isinstance(request, ExecuteRequest)
                and request.sql.strip().upper() == "COMMIT"
                and armed["shots"] > 0):
            armed["shots"] -= 1
            print("   *** server crashed at COMMIT time ***")
            server.crash()
            server.restart()

    app.network.fault_injector = chaos

    orders_placed = 0
    for oid in range(1, 6):
        pid = rng.randint(1, 20)
        qty = rng.randint(1, 5)
        listing = app.query_rows(
            f"SELECT name, price, stock FROM product WHERE pid = {pid}")
        name, price, stock = listing[0]
        print(f"order {oid}: {qty} x {name} @ {price} (stock {stock})")
        timing = app.run_statement(
            f"INSERT INTO order_log VALUES ({oid}, {pid}, {qty})",
            label=f"order-{oid}")
        orders_placed += 1
        app.run_statement(
            f"UPDATE product SET stock = stock - {qty} WHERE pid = {pid}")
        print(f"   placed in {timing.seconds:.3f}s virtual")

    app.network.fault_injector = None
    logged = app.query_rows("SELECT count(*) FROM order_log")[0][0]
    print(f"\norders placed: {orders_placed}; rows in order_log: {logged}")
    assert logged == orders_placed, "exactly-once violated!"

    stats = app.manager.stats
    print(f"phoenix stats: cached results = {stats['cached_results']}, "
          f"persisted tables = {stats['persisted_results']}, "
          f"wrapped updates = {stats['wrapped_updates']}, "
          f"recoveries = {stats['recoveries']}")
    print("no server-side result tables were needed: the client cache "
          "absorbed every small result set")


if __name__ == "__main__":
    main()

"""Analytics dashboard: long reports that survive server crashes.

The decision-support scenario of §3: a reporting client runs TPC-H-style
queries whose results are materialized into persistent tables on the
server.  The server dies while the dashboard is paging through a report;
Phoenix recovers the session and repositions inside the persisted result
— compare the client-side and server-side repositioning costs (the
paper's Figures 3 and 4) printed at the end.

Each run is traced: the dashboard finishes with a per-layer span
summary, the five-phase recovery breakdown, and a ``SELECT`` against
the ``sys_recovery_phases`` system view — the observability tour.

    python examples/report_dashboard.py
"""

from repro.obs.report import summarize_spans
from repro.odbc.constants import SQL_NO_DATA, SQL_SUCCESS
from repro.phoenix.config import PhoenixConfig
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp
from repro.workloads.tpch.datagen import generate
from repro.workloads.tpch.queries import q11
from repro.workloads.tpch.schema import setup_tpch_server


def build_server() -> DatabaseServer:
    server = DatabaseServer(meter=Meter(CostModel()))
    setup_tpch_server(server, generate(scale=0.005, seed=12))
    return server


def page_through_report(server: DatabaseServer, mode: str) -> dict:
    """Run the stock report, crash mid-paging, recover, finish."""
    config = PhoenixConfig(reposition_mode=mode)
    app = BenchmarkApp(server, use_phoenix=True, phoenix_config=config)
    app.meter.obs.tracer.enable()
    sql = q11(fraction=0.0)  # the Important Stock Identification Query

    statement = app.manager.alloc_statement(app.conn)
    assert app.manager.exec_direct(statement, sql) == SQL_SUCCESS
    rows = 0
    crashed = False
    while True:
        # Crash once the dashboard has paged most of the way through and
        # its local buffer is drained (the next page needs the server).
        if not crashed and rows > 50 and not statement.result.buffered:
            server.crash()
            server.restart()
            crashed = True
        rc, _row = app.manager.fetch(statement)
        if rc == SQL_NO_DATA:
            break
        assert rc == SQL_SUCCESS
        rows += 1
    phases = app.manager.recovery_phase_seconds
    view_rows = app.query_rows(
        "SELECT recovery_id, phase, seconds FROM sys_recovery_phases")
    return {"mode": mode, "rows": rows, "crashed": crashed,
            "virtual_session_s": phases.get("virtual_session", 0.0),
            "sql_state_s": phases.get("sql_state", 0.0),
            "breakdown": app.manager.recovery_phase_breakdown,
            "obs": app.meter.obs, "view_rows": view_rows}


def main() -> None:
    print("building a TPC-H database (SF 0.005) ...")
    results = []
    for mode in ("client", "server"):
        server = build_server()
        outcome = page_through_report(server, mode)
        results.append(outcome)
        print(f"\nreport with {mode}-side repositioning:")
        print(f"  rows delivered seamlessly: {outcome['rows']} "
              f"(crash mid-report: {outcome['crashed']})")
        print(f"  recovery: virtual session "
              f"{outcome['virtual_session_s']:.3f}s + SQL state "
              f"{outcome['sql_state_s']:.3f}s")
        print("  phase breakdown (virtual seconds):")
        for phase, seconds in outcome["breakdown"].items():
            print(f"    {phase:<18} {seconds:.4f}")
        print("  SELECT phase, seconds FROM sys_recovery_phases:")
        for _rid, phase, seconds in outcome["view_rows"]:
            print(f"    {phase:<18} {seconds:.4f}")
        obs = outcome["obs"]
        spans = [span.to_dict() for span in obs.tracer.finished]
        summary = summarize_spans(
            spans, source=f"{mode}-side run",
            dropped=obs.tracer.dropped,
            counters=obs.metrics.counters)
        print()
        print(summary.format())
    client, server_side = results
    if server_side["sql_state_s"] > 0:
        speedup = client["sql_state_s"] / server_side["sql_state_s"]
        print(f"\nserver-side repositioning recovered SQL state "
              f"{speedup:.0f}x faster (the paper's Fig. 3 vs Fig. 4)")


if __name__ == "__main__":
    main()

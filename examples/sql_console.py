"""An interactive SQL console over the simulated server.

The closest thing to the paper's measurement application: it "accepts ad
hoc SQL queries as input and forwards the request to the server for
processing" through either driver manager.  Besides SQL, the console
accepts:

    \\crash      kill the database server
    \\restart    bring it back (runs restart recovery)
    \\stats      show Phoenix statistics
    \\quit       exit

Run interactively, or pipe a script:

    printf 'SELECT count(*) FROM region;\\n\\crash\\n\\restart\\n
    SELECT count(*) FROM region;\\n\\quit\\n' | python examples/sql_console.py
"""

import sys

from repro.odbc.constants import SQL_ERROR, SQL_NO_DATA, SQL_SUCCESS
from repro.server.server import DatabaseServer
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp
from repro.workloads.tpch.datagen import generate
from repro.workloads.tpch.schema import setup_tpch_server

USE_PHOENIX = True


def run_sql(app: BenchmarkApp, sql: str) -> None:
    start = app.meter.now
    statement = app.manager.alloc_statement(app.conn)
    rc = app.manager.exec_direct(statement, sql)
    if rc == SQL_ERROR:
        diag = app.manager.get_diag(statement)[0]
        print(f"ERROR [{diag.sqlstate}] {diag.message}")
        return
    rows = 0
    if app.manager.num_result_cols(statement) > 0:
        names = [app.manager.describe_col(statement, i + 1)[0]
                 for i in range(app.manager.num_result_cols(statement))]
        print(" | ".join(names))
        while True:
            rc, row = app.manager.fetch(statement)
            if rc != SQL_SUCCESS:
                break
            print(" | ".join(str(v) for v in row))
            rows += 1
            if rows >= 50:
                print("... (output capped at 50 rows)")
                app.manager.close_cursor(statement)
                break
        print(f"({rows} rows)")
    else:
        count = app.manager.row_count(statement)
        if count >= 0:
            print(f"({count} rows affected)")
        else:
            print("ok")
    app.manager.free_statement(statement)
    print(f"[{app.meter.now - start:.4f}s virtual]")


def main() -> None:
    print("loading TPC-H SF 0.001 ...")
    server = DatabaseServer(meter=Meter())
    setup_tpch_server(server, generate(scale=0.001, seed=1))
    app = BenchmarkApp(server, use_phoenix=USE_PHOENIX)
    kind = "Phoenix/ODBC" if USE_PHOENIX else "native ODBC"
    print(f"connected via {kind}; \\crash \\restart \\stats \\quit")

    interactive = sys.stdin.isatty()
    while True:
        if interactive:
            sys.stdout.write("sql> ")
            sys.stdout.flush()
        line = sys.stdin.readline()
        if not line:
            break
        command = line.strip()
        if not command:
            continue
        if not interactive:
            print(f"sql> {command}")
        if command == "\\quit":
            break
        if command == "\\crash":
            server.crash()
            print("server killed (shutdown with nowait)")
            continue
        if command == "\\restart":
            server.restart()
            print("server restarted (database recovery complete)")
            continue
        if command == "\\stats":
            if hasattr(app.manager, "stats"):
                print(app.manager.stats)
            else:
                print("(native manager: no phoenix stats)")
            continue
        run_sql(app, command.rstrip(";"))


if __name__ == "__main__":
    main()

"""Exception hierarchy for the Phoenix/ODBC reproduction.

Three families mirror the three layers of the system:

* ``EngineError`` — raised inside the database engine (SQL errors,
  constraint violations, missing objects).
* ``ServerError`` — raised by the simulated client-server substrate; in
  particular ``ServerCrashedError`` and ``ConnectionLostError`` are what a
  native ODBC driver surfaces when the server dies, and are exactly the
  errors Phoenix intercepts to trigger recovery.
* ``OdbcError`` — the driver-level error carrying a SQLSTATE, which is what
  applications see through the ODBC API when nothing masks the failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Engine errors
# ---------------------------------------------------------------------------


class EngineError(ReproError):
    """Base class for errors raised by the database engine."""


class SqlSyntaxError(EngineError):
    """The SQL text could not be tokenized or parsed."""


class PlanningError(EngineError):
    """The statement parsed but could not be planned (e.g. bad column)."""


class CatalogError(EngineError):
    """A catalog object is missing or already exists."""


class TableNotFoundError(CatalogError):
    """Referenced table does not exist."""


class TableExistsError(CatalogError):
    """CREATE TABLE target already exists."""


class ProcedureNotFoundError(CatalogError):
    """EXEC target procedure does not exist."""


class ColumnNotFoundError(PlanningError):
    """Referenced column does not exist in scope."""


class TypeMismatchError(EngineError):
    """Operand types are not compatible for the requested operation."""


class ConstraintError(EngineError):
    """A uniqueness or not-null constraint was violated."""


class TransactionError(EngineError):
    """Illegal transaction state transition (e.g. COMMIT with no BEGIN)."""


class LogTruncatedError(EngineError):
    """A log record below the truncation point was requested.

    Raised loudly instead of returning wrong state: after fuzzy-checkpoint
    log truncation, any read below the archive boundary means the
    truncation safety rule (keep everything a loser transaction or a
    dirty page's recLSN may still need) was violated, or the archive
    itself is gone.  Recovery must fail, not silently skip history.
    """


class DeadlockError(TransactionError):
    """Lock acquisition timed out; the transaction was chosen as victim."""


class LockWaitError(TransactionError):
    """A lock request must wait for other transactions (row mode only).

    Raised instead of blocking — the engine host is single-threaded, so a
    conflicting request under ``lock_granularity="row"`` registers the
    waiter in the wait-for graph and unwinds with this error; the
    scheduler parks the session and retries the statement once a blocker
    commits or aborts.  The transaction stays active and keeps every lock
    it already holds (strict 2PL).  Never raised under the default table
    granularity, which keeps the seed's no-wait ``DeadlockError``.
    """


# ---------------------------------------------------------------------------
# Server / network errors
# ---------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for client-server substrate errors."""


class ServerDownError(ServerError):
    """The server is not running (connect refused / ping failed)."""


class ServerCrashedError(ServerError):
    """The server crashed while servicing this request.

    This is the error a native driver raises mid-request when the process
    hosting the database dies; Phoenix intercepts it.
    """


class ConnectionLostError(ServerError):
    """The session this connection referred to no longer exists."""


class RequestTimeoutError(ServerError):
    """The request did not complete within the driver timeout."""


# ---------------------------------------------------------------------------
# ODBC-level errors
# ---------------------------------------------------------------------------


class OdbcError(ReproError):
    """Driver-level error with a SQLSTATE, surfaced via SQLGetDiagRec."""

    def __init__(self, sqlstate: str, message: str):
        super().__init__(f"[{sqlstate}] {message}")
        self.sqlstate = sqlstate
        self.message = message


class InvalidHandleError(OdbcError):
    """Operation on a freed or wrong-type handle."""

    def __init__(self, message: str = "invalid handle"):
        super().__init__("HY000", message)


# ---------------------------------------------------------------------------
# Phoenix errors
# ---------------------------------------------------------------------------


class PhoenixError(ReproError):
    """Base class for errors raised by the Phoenix layer itself."""


class RecoveryFailedError(PhoenixError):
    """Phoenix exhausted its reconnect budget; failure is exposed to the app."""

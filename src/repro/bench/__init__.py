"""Experiment implementations and paper-style reporting.

One function per table/figure of the paper's evaluation section; see
DESIGN.md §4 for the experiment index and ``benchmarks/`` for the
pytest-benchmark entry points that run them and print the tables.
"""

from repro.bench.experiments import (
    run_fig3,
    run_fig4,
    run_fig6,
    run_micro_overheads,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

__all__ = [
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_fig3",
    "run_fig4",
    "run_fig6",
    "run_micro_overheads",
]

"""One runnable experiment per table/figure of the paper.

Every experiment builds fresh simulated worlds (identical generated data,
separate servers for native and Phoenix so mutations don't cross), runs
the workload through the driver-manager surface, and returns a dataclass
whose ``format()`` prints a paper-style table.  Absolute numbers are
virtual seconds from the calibrated cost model; EXPERIMENTS.md records
paper-vs-measured shape for each.

``work_amplification`` defaults to ``target_scale / scale`` so that a
laptop-scale run reports SF-1-magnitude times (DESIGN.md §6).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.phoenix.config import PhoenixConfig
from repro.server.server import DatabaseServer
from repro.sim.costs import CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp
from repro.workloads.tpch.datagen import TpchData, generate
from repro.workloads.tpch.power import run_power_test
from repro.workloads.tpch.queries import q11, top_n_lineitem
from repro.workloads.tpch.schema import setup_tpch_server
from repro.workloads.tpch.throughput import run_throughput_test
from repro.workloads.tpcc.datagen import (
    LAST_NAME_SYLLABLES,
    TpccScale,
    generate_tpcc,
    last_name,
)
from repro.workloads.tpcc.driver import (
    choose_transaction,
    collect_transaction_traces,
    run_multiuser,
)
from repro.workloads.tpcc.schema import setup_tpcc_server
from repro.workloads.tpcc.transactions import TRANSACTIONS

DEFAULT_TPCH_SCALE = 0.002
TARGET_SCALE = 1.0


def make_tpch_world(scale: float = DEFAULT_TPCH_SCALE, seed: int = 7,
                    amplification: float | None = None,
                    cost_overrides: dict | None = None
                    ) -> tuple[DatabaseServer, TpchData]:
    """A fresh TPC-H server with scale-compensated costs."""
    if amplification is None:
        amplification = TARGET_SCALE / scale
    costs = CostModel(work_amplification=amplification,
                      **(cost_overrides or {}))
    server = DatabaseServer(meter=Meter(costs))
    data = generate(scale=scale, seed=seed)
    setup_tpch_server(server, data)
    return server, data


# ---------------------------------------------------------------------------
# Table 1: TPC-H power test
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    scale: float
    rows: list[tuple] = field(default_factory=list)  # label, n, odbc, phx
    native_query_total: float = 0.0
    phoenix_query_total: float = 0.0
    native_update_total: float = 0.0
    phoenix_update_total: float = 0.0

    def format(self) -> str:
        body = []
        for label, result_rows, native, phoenix in self.rows:
            diff = phoenix - native
            ratio = phoenix / native if native else float("inf")
            body.append([label, result_rows, native, phoenix, diff, ratio])
        footers = [
            ["Total (Query)", "", self.native_query_total,
             self.phoenix_query_total,
             self.phoenix_query_total - self.native_query_total,
             self.phoenix_query_total / self.native_query_total],
            ["Total (Updates)", "", self.native_update_total,
             self.phoenix_update_total,
             self.phoenix_update_total - self.native_update_total,
             self.phoenix_update_total / self.native_update_total],
        ]
        return format_table(
            f"Table 1: TPC-H power test (SF {self.scale}, virtual seconds)",
            ["Query/Update", "Result/Updates", "Native ODBC",
             "Phoenix/ODBC", "Difference", "Ratio"],
            body, footers)


def run_table1(scale: float = DEFAULT_TPCH_SCALE,
               seed: int = 7) -> Table1Result:
    native_server, native_data = make_tpch_world(scale, seed)
    native_app = BenchmarkApp(native_server, use_phoenix=False)
    native = run_power_test(native_app, native_data, warm=True)

    phoenix_server, phoenix_data = make_tpch_world(scale, seed)
    phoenix_app = BenchmarkApp(phoenix_server, use_phoenix=True)
    phoenix = run_power_test(phoenix_app, phoenix_data, warm=True)

    result = Table1Result(scale=scale)
    for number in sorted(native.query_seconds):
        result.rows.append((
            f"Q{number:02d}", native.query_rows[number],
            native.query_seconds[number], phoenix.query_seconds[number]))
    result.rows.append(("RF1", native.rf_rows, native.rf1_seconds,
                        phoenix.rf1_seconds))
    result.rows.append(("RF2", native.rf_rows, native.rf2_seconds,
                        phoenix.rf2_seconds))
    result.native_query_total = native.total_query_seconds
    result.phoenix_query_total = phoenix.total_query_seconds
    result.native_update_total = native.total_update_seconds
    result.phoenix_update_total = phoenix.total_update_seconds
    return result


# ---------------------------------------------------------------------------
# Table 2: TPC-H throughput test
# ---------------------------------------------------------------------------


@dataclass
class Table2Result:
    scale: float
    streams: int
    native_elapsed: float
    phoenix_elapsed: float

    @property
    def ratio(self) -> float:
        return self.phoenix_elapsed / self.native_elapsed

    def format(self) -> str:
        rows = [
            ["Elapsed Time for Native ODBC", self.native_elapsed],
            ["Elapsed Time for Phoenix/ODBC", self.phoenix_elapsed],
            ["Difference", self.phoenix_elapsed - self.native_elapsed],
            ["Ratio", self.ratio],
        ]
        return format_table(
            f"Table 2: TPC-H throughput test on {self.streams} streams "
            f"(SF {self.scale}, virtual seconds)",
            ["Metric", "Value"], rows)


def run_table2(scale: float = DEFAULT_TPCH_SCALE, streams: int = 2,
               seed: int = 7) -> Table2Result:
    native_server, native_data = make_tpch_world(scale, seed)
    native_app = BenchmarkApp(native_server, use_phoenix=False)
    native = run_throughput_test(native_app, native_data, streams=streams)

    phoenix_server, phoenix_data = make_tpch_world(scale, seed)
    phoenix_app = BenchmarkApp(phoenix_server, use_phoenix=True)
    phoenix = run_throughput_test(phoenix_app, phoenix_data,
                                  streams=streams)
    return Table2Result(scale=scale, streams=streams,
                        native_elapsed=native.elapsed_seconds,
                        phoenix_elapsed=phoenix.elapsed_seconds)


# ---------------------------------------------------------------------------
# Table 3: SELECT TOP N * FROM LINEITEM response times
# ---------------------------------------------------------------------------

TABLE3_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
                8192, 16384)


@dataclass
class Table3Result:
    scale: float
    rows: list[tuple] = field(default_factory=list)  # n, native, phoenix

    def format(self) -> str:
        body = [[n, native, phoenix,
                 phoenix / native if native else float("inf")]
                for n, native, phoenix in self.rows]
        return format_table(
            f"Table 3: response time for SELECT TOP N * FROM LINEITEM "
            f"(SF {self.scale}, virtual seconds)",
            ["Result Set Size", "Native ODBC", "Phoenix/ODBC", "Ratio"],
            body)


def run_table3(scale: float = 0.01, sizes: tuple = TABLE3_SIZES,
               seed: int = 7) -> Table3Result:
    """Response time only — the application does not consume results
    ("we are measuring query response time, not client transfer rate")."""
    server, data = make_tpch_world(scale, seed)
    available = len(data.lineitem)
    sizes = tuple(n for n in sizes if n <= available)
    native_app = BenchmarkApp(server, use_phoenix=False)
    phoenix_app = BenchmarkApp(server, use_phoenix=True)
    # Warm the buffer pool so response times measure steady state.
    native_app.run_query(top_n_lineitem(min(available, 4096)),
                         label="warmup")

    result = Table3Result(scale=scale)
    for n in sizes:
        native_time = native_app.run_query(
            top_n_lineitem(n), label=f"native top{n}", fetch=False).seconds
        phoenix_time = phoenix_app.run_query(
            top_n_lineitem(n), label=f"phoenix top{n}",
            fetch=False).seconds
        result.rows.append((n, native_time, phoenix_time))
    return result


# ---------------------------------------------------------------------------
# Figures 3 and 4: session recovery time vs result size
# ---------------------------------------------------------------------------

FIG34_FRACTIONS = (0.30, 0.10, 0.05, 0.02, 0.01, 0.005, 0.002, 0.0)


@dataclass
class RecoveryResult:
    reposition_mode: str
    scale: float
    #: (result size, virtual-session seconds, sql-state seconds)
    rows: list[tuple] = field(default_factory=list)
    #: One dict per measured recovery: ``result_size`` plus the
    #: five-phase breakdown (:data:`repro.obs.RECOVERY_PHASES` keys) —
    #: exported to ``bench_results/recovery_phases.json``.
    breakdowns: list[dict] = field(default_factory=list)

    def format(self) -> str:
        title = ("Figure 3" if self.reposition_mode == "client"
                 else "Figure 4")
        body = [[size, virtual, sql_state, virtual + sql_state]
                for size, virtual, sql_state in self.rows]
        return format_table(
            f"{title}: session recovery time, repositioning at "
            f"{self.reposition_mode} (SF {self.scale}, virtual seconds)",
            ["Result Set Size", "Virtual Session", "SQL State", "Total"],
            body)


def run_recovery_experiment(reposition_mode: str,
                            scale: float = DEFAULT_TPCH_SCALE,
                            fractions: tuple = FIG34_FRACTIONS,
                            seed: int = 7,
                            unread_tuples: int = 3) -> RecoveryResult:
    """Crash the server near the end of a Q11 fetch and measure the two
    recovery phases (§3.4).

    One world serves every fraction (the paper likewise reran the
    experiment against the same database); a fresh Phoenix connection per
    fraction keeps the recovery measurements independent.
    """
    result = RecoveryResult(reposition_mode=reposition_mode, scale=scale)
    seen_sizes = set()
    server, _data = make_tpch_world(scale, seed)
    for fraction in fractions:
        server.restart()  # ensure up after the previous crash cycle
        config = PhoenixConfig(reposition_mode=reposition_mode)
        app = BenchmarkApp(server, use_phoenix=True,
                           phoenix_config=config)
        sql = q11(fraction=fraction)
        size = app.query_rows(f"SELECT count(*) FROM ({sql}) sized")[0][0]
        if size <= unread_tuples or size in seen_sizes:
            continue
        statement = app.manager.alloc_statement(app.conn)
        assert app.manager.exec_direct(statement, sql) == 0
        # Fetch until near the end, stopping at a wire-batch boundary
        # (client buffer drained) so the few unread tuples are still on
        # the server side when it dies — matching the paper, which left
        # the client "waiting for the server to respond to its fetch
        # request".
        consumed = 0
        while consumed < size - unread_tuples:
            rc, _row = app.manager.fetch(statement)
            assert rc == 0
            consumed += 1
            if not statement.result.buffered and consumed >= size * 0.7:
                break
        if statement.result.buffered or statement.result.done:
            continue  # result too small to out-run the client buffer
        seen_sizes.add(size)
        server.crash()
        server.restart()
        rc, _row = app.manager.fetch(statement)
        assert rc == 0
        phases = app.manager.recovery_phase_seconds
        result.rows.append((size, phases.get("virtual_session", 0.0),
                            phases.get("sql_state", 0.0)))
        result.breakdowns.append(
            {"result_size": size,
             **app.manager.recovery_phase_breakdown})
    result.rows.sort()
    result.breakdowns.sort(key=lambda b: b["result_size"])
    return result


def run_fig3(scale: float = DEFAULT_TPCH_SCALE,
             fractions: tuple = FIG34_FRACTIONS) -> RecoveryResult:
    return run_recovery_experiment("client", scale, fractions)


def run_fig4(scale: float = DEFAULT_TPCH_SCALE,
             fractions: tuple = FIG34_FRACTIONS) -> RecoveryResult:
    return run_recovery_experiment("server", scale, fractions)


# ---------------------------------------------------------------------------
# Figure 6: Q11 execute/load times vs result size
# ---------------------------------------------------------------------------


@dataclass
class Fig6Result:
    scale: float
    #: (result size, native execute seconds, phoenix execute+load seconds)
    rows: list[tuple] = field(default_factory=list)

    def format(self) -> str:
        body = [[size, native, phoenix,
                 phoenix / native if native else float("inf")]
                for size, native, phoenix in self.rows]
        return format_table(
            f"Figure 6: Q11 execute/load time, native vs Phoenix "
            f"(SF {self.scale}, virtual seconds)",
            ["Result Set Size", "Native ODBC", "Phoenix/ODBC", "Ratio"],
            body)


def run_fig6(scale: float = DEFAULT_TPCH_SCALE,
             fractions: tuple = FIG34_FRACTIONS,
             seed: int = 7) -> Fig6Result:
    server, _data = make_tpch_world(scale, seed)
    native_app = BenchmarkApp(server, use_phoenix=False)
    phoenix_app = BenchmarkApp(server, use_phoenix=True)
    native_app.run_query(q11(fraction=0.0), label="warmup")

    result = Fig6Result(scale=scale)
    seen = set()
    for fraction in fractions:
        sql = q11(fraction=fraction)
        size = native_app.query_rows(
            f"SELECT count(*) FROM ({sql}) sized")[0][0]
        if size in seen:
            continue
        seen.add(size)
        native_time = native_app.run_query(sql, label=f"native q11",
                                           fetch=False).seconds
        phoenix_app.run_query(sql, label="phoenix q11", fetch=False)
        steps = phoenix_app.manager.persist_step_seconds
        phoenix_time = steps.get("load", 0.0)
        result.rows.append((size, native_time, phoenix_time))
    result.rows.sort()
    return result


# ---------------------------------------------------------------------------
# Table 4: TPC-C
# ---------------------------------------------------------------------------

DEFAULT_TPCC_SCALE = TpccScale(warehouses=2, districts_per_warehouse=10,
                               customers_per_district=30, items=200,
                               initial_orders_per_district=30)


@dataclass
class Table4Result:
    users: int
    rows: list[tuple] = field(default_factory=list)
    # (label, tpmc, cpu_util, disk_util, cpu_ratio)

    def format(self) -> str:
        body = [[label, round(tpmc, 1), f"{cpu:.0%}", f"{disk:.0%}",
                 round(ratio, 2)]
                for label, tpmc, cpu, disk, ratio in self.rows]
        return format_table(
            f"Table 4: TPC-C with {self.users} users "
            f"(virtual-time measurement)",
            ["Experiment", "TPM-C", "CPU UTIL", "DISK UTIL", "CPU RATIO"],
            body)


def tpcc_cost_model(amplification: float = 6.0) -> CostModel:
    """The OLTP-calibrated cost model for Table 4.

    Under a loaded multi-user server, per-statement and per-DDL *resource
    demand* is much smaller than the cold-case elapsed times of §3.5 (the
    0.321 s create-table figure is dominated by synchronous waiting that
    overlaps across users).  These marginal costs, plus a commit-force
    latency typical of a year-2000 disk, land the native run near the
    paper's operating point: ~350 TPM-C, disk-limited at 100 %, with
    CPU to spare.
    """
    return CostModel(work_amplification=amplification,
                     log_force_seconds=0.035,
                     create_table_cpu_seconds=0.0008,
                     create_table_disk_seconds=0.0015,
                     cpu_create_procedure_seconds=0.0008,
                     cpu_per_statement_seconds=0.0003,
                     page_send_seconds=0.001)


def _tpcc_run(use_phoenix: bool, cache_rows: int,
              scale: TpccScale, users: int, txn_samples: int,
              amplification: float, measure_seconds: float,
              seed: int):
    server = DatabaseServer(meter=Meter(tpcc_cost_model(amplification)))
    # A small buffer pool keeps TPC-C disk-limited, like the paper's
    # 3-disk server at 100% disk utilization.
    server.engine.buffer_pool.capacity_pages = 48
    data = generate_tpcc(scale, seed=seed)
    setup_tpcc_server(server, data)
    config = None
    if use_phoenix:
        config = PhoenixConfig(client_cache_rows=cache_rows)
    app = BenchmarkApp(server, use_phoenix=use_phoenix,
                       phoenix_config=config)
    traces = collect_transaction_traces(app, scale, count=txn_samples,
                                        seed=seed + 1)
    return run_multiuser(traces, users=users,
                         warmup_seconds=measure_seconds / 4,
                         measure_seconds=measure_seconds, seed=seed + 2)


def run_table4(scale: TpccScale = DEFAULT_TPCC_SCALE, users: int = 32,
               txn_samples: int = 100, amplification: float = 6.0,
               measure_seconds: float = 1200.0,
               seed: int = 5) -> Table4Result:
    result = Table4Result(users=users)
    runs = [
        ("1 Native ODBC", False, 0),
        ("2 Phoenix/ODBC", True, 0),
        ("3 Phoenix/ODBC w/ client caching", True, 200),
    ]
    native_cpu_per_txn = None
    for label, use_phoenix, cache_rows in runs:
        run = _tpcc_run(use_phoenix, cache_rows, scale, users,
                        txn_samples, amplification, measure_seconds,
                        seed)
        if native_cpu_per_txn is None:
            native_cpu_per_txn = run.cpu_seconds_per_txn or 1.0
        ratio = run.cpu_seconds_per_txn / native_cpu_per_txn
        result.rows.append((label, run.tpmc, run.cpu_utilization,
                            run.disk_utilization, ratio))
    return result


# ---------------------------------------------------------------------------
# Micro overheads (§3.4 / §3.5 scalars)
# ---------------------------------------------------------------------------


@dataclass
class MicroResult:
    rows: list[tuple] = field(default_factory=list)  # (name, paper, ours)

    def format(self) -> str:
        body = [[name, paper, ours] for name, paper, ours in self.rows]
        return format_table(
            "Micro overheads: paper vs reproduction (seconds)",
            ["Step", "Paper", "Measured"], body)


def run_micro_overheads(scale: float = DEFAULT_TPCH_SCALE,
                        seed: int = 7) -> MicroResult:
    server, _data = make_tpch_world(scale, seed)
    costs = server.meter.costs
    phoenix_app = BenchmarkApp(server, use_phoenix=True)
    native_app = BenchmarkApp(server, use_phoenix=False)

    sql = q11(fraction=0.0)
    phoenix_app.run_query(sql, label="persist probe", fetch=False)
    steps = phoenix_app.manager.persist_step_seconds

    # Per-tuple fetch costs, measured over a persisted vs native result.
    native_timing = _fetch_per_tuple(native_app, sql)
    phoenix_timing = _fetch_per_tuple(phoenix_app, sql)

    # Virtual-session recovery time: crash the server and let the next
    # request drive recovery (small results are fully client-buffered, so
    # an outstanding fetch alone might never need the server — correct,
    # but not what we want to measure here).
    server.crash()
    server.restart()
    phoenix_app.run_query("SELECT count(*) FROM nation",
                          label="post-crash probe")
    phases = phoenix_app.manager.recovery_phase_seconds

    result = MicroResult()
    result.rows.append(("parse request", 0.00023,
                        costs.client_parse_seconds))
    result.rows.append(("access metadata", 0.00062, steps["metadata"]))
    result.rows.append(("create persistent table", 0.321,
                        steps["create_table"]))
    result.rows.append(("tuple fetch (native)", 0.00380, native_timing))
    result.rows.append(("tuple fetch (persisted)", 0.00397,
                        phoenix_timing))
    result.rows.append(("virtual session recovery", 0.37,
                        phases.get("virtual_session", 0.0)))
    return result


def _fetch_per_tuple(app: BenchmarkApp, sql: str) -> float:
    statement = app.manager.alloc_statement(app.conn)
    assert app.manager.exec_direct(statement, sql) == 0
    fetched = 0
    start = app.meter.now
    while True:
        rc, _row = app.manager.fetch(statement)
        if rc != 0:
            break
        fetched += 1
    elapsed = app.meter.now - start
    app.manager.free_statement(statement)
    return elapsed / max(1, fetched)


# ---------------------------------------------------------------------------
# Wall-clock speedup of the statement/plan caches (host time, not virtual)
# ---------------------------------------------------------------------------

#: The repeated point reads of the wall-clock mix (OLTP steady state,
#: where parse+plan rivals execution and the plan cache pays off).
_WALLCLOCK_POINT_QUERIES = (
    "SELECT c_balance, c_first, c_middle, c_last FROM customer "
    "WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}",
    "SELECT s_quantity FROM stock WHERE s_w_id = {w} AND s_i_id = {i}",
)

#: The indexed variant of the point-read mix: the same volume of reads,
#: but through the ``ix_customer_name`` secondary index — a full-width
#: equality seek (payment-by-last-name) and a covering range scan that
#: the planner runs index-only.
_WALLCLOCK_INDEXED_QUERIES = (
    "SELECT c_balance, c_first, c_middle, c_last FROM customer "
    "WHERE c_w_id = {w} AND c_d_id = {d} AND c_last = '{last}'",
    "SELECT c_last FROM customer WHERE c_w_id = {w} AND c_d_id = {d} "
    "AND c_last >= '{lo}' AND c_last < '{hi}'",
)

#: Asynchronous-commit window (virtual seconds) the tracked wallclock
#: mix runs with.  Applied to *both* legs so the caches-off/caches-on
#: virtual clocks still agree bit-for-bit; EXPERIMENTS.md records the
#: resulting artifact shift against the synchronous-commit baseline.
WALLCLOCK_ASYNC_COMMIT_WINDOW = 0.25

#: A result wider than the client cache, so Phoenix persists it —
#: repeating it exercises the metadata-probe cache.
_WALLCLOCK_PERSIST_QUERY = (
    "SELECT c_id, c_balance FROM customer "
    "WHERE c_w_id = 1 AND c_d_id = 1 ORDER BY c_id")

#: Pipelined-delivery knobs of the wallclock ``prefetch`` leg.  Applied
#: to *both* cache legs (the caches-off/caches-on virtual clocks must
#: still agree bit-for-bit); the tracked claims are fewer fetch round
#: trips (≥20% on the drain mix), a lower virtual clock than the same
#: mix without the knobs, and never a higher request count.
PREFETCH_COST_OVERRIDES = {
    "fetch_ahead_depth": 2,
    "fetch_batch_max_bytes": 8192,
    "output_buffer_max_bytes": 256 * 1024,
    "persist_pipeline": True,
}

#: Shared-result-cache knobs of the wallclock ``cached-shared`` leg.
#: Applied to the caches-on sub-leg only: the cache removes entire
#: execute round trips, so — unlike the plan/metadata caches — it is a
#: *virtual-time* optimization and the sub-leg clocks legitimately
#: diverge.  The capacity comfortably holds every distinct point
#: statement of the tracked mix (~1000), so steady state is one miss
#: per distinct statement; the tracked claims are a ≥40% cut in
#: ``net.requests_sent`` with bit-identical query results.
RESULT_CACHE_COST_OVERRIDES = {
    "result_cache_entries": 2048,
    "result_cache_max_rows": 200,
}

#: The fetch-heavy companion of the wallclock mix: the point-read mix
#: itself never leaves the first wire batch, so the fetch-round-trip
#: claim is tracked on a full customer-table drain through the native
#: row-at-a-time fetch path instead.
RESULT_DRAIN_QUERY = ("SELECT c_id, c_d_id, c_w_id, c_balance, c_last "
                      "FROM customer")


def run_result_drain(prefetch: bool = False, seed: int = 11) -> dict:
    """Drain one multi-batch result; returns the round-trip ledger.

    Runs :data:`RESULT_DRAIN_QUERY` (every TPC-C customer row) through
    the native driver's stop-and-wait fetch path — or, with
    ``prefetch``, through fetch-ahead + adaptive batching
    (:data:`PREFETCH_COST_OVERRIDES`).  The wallclock CLI runs both
    variants and gates on the reduction.
    """
    costs = tpcc_cost_model(6.0)
    if prefetch:
        for knob, value in PREFETCH_COST_OVERRIDES.items():
            setattr(costs, knob, value)
    server = DatabaseServer(meter=Meter(costs))
    data = generate_tpcc(DEFAULT_TPCC_SCALE, seed=seed)
    setup_tpcc_server(server, data)
    app = BenchmarkApp(server, use_phoenix=False)
    app.meter.reset_traces()
    start = app.meter.now
    rows = app.query_rows(RESULT_DRAIN_QUERY)
    counters = app.meter.counters
    return {
        "prefetch": prefetch,
        "rows": len(rows),
        "virtual_seconds": app.meter.now - start,
        "requests_sent": int(counters.get("net.requests_sent", 0)),
        "fetch_requests": int(counters.get("net.requests.FetchRequest", 0)),
        "prefetch_hits": int(counters.get("prefetch_hits", 0)),
        "prefetch_wasted": int(counters.get("prefetch_wasted", 0)),
        "overlap_seconds": counters.get("prefetch_overlap_seconds", 0.0),
    }


@dataclass
class WallclockResult:
    """Host-time cost of the same statement mix with caches off vs on.

    The plan/metadata/client caches are a host-time optimization only,
    so the two legs must report *identical* virtual clocks — any drift
    is a fidelity bug.  The one sanctioned exception is
    ``run_wallclock(result_cache=True)``: the shared result cache
    removes entire execute round trips, so the caches-on sub-leg's
    virtual clock legitimately drops (the row digests prove the answers
    stayed identical).
    """

    baseline_host_seconds: float
    cached_host_seconds: float
    baseline_virtual_seconds: float
    cached_virtual_seconds: float
    baseline_segments: dict = field(default_factory=dict)
    cached_segments: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    cache_stats: dict = field(default_factory=dict)
    executor_stats: dict = field(default_factory=dict)
    #: Request latency ledger of the caches-on leg (per-kind SLOs and
    #: component attribution for ``latency-report``/``sys_latency``).
    latency: object = None
    #: SHA-256 over every point-select result, per sub-leg: the
    #: value-identity witness for the ``cached-shared`` gate (host-side
    #: only — hashlib, not ``hash()``, so it is seed-independent; never
    #: written to history).
    baseline_rows_digest: str = ""
    cached_rows_digest: str = ""

    @property
    def speedup_percent(self) -> float:
        if self.baseline_host_seconds <= 0:
            return 0.0
        return 100.0 * (1.0 - self.cached_host_seconds
                        / self.baseline_host_seconds)

    def format(self) -> str:
        body = [
            [segment,
             f"{self.baseline_segments.get(segment, 0.0):.3f}",
             f"{self.cached_segments.get(segment, 0.0):.3f}"]
            for segment in self.baseline_segments
        ]
        body.append(["total", f"{self.baseline_host_seconds:.3f}",
                     f"{self.cached_host_seconds:.3f}"])
        body.append(["speedup", "", f"{self.speedup_percent:.1f}%"])
        return format_table(
            "Wall-clock effect of statement/plan caching "
            "(host seconds, TPC-C mix)",
            ["Segment", "Caches off", "Caches on"], body)


def _wallclock_leg(enable_caches: bool, scale: TpccScale, txns: int,
                   point_reads: int, persists: int, seed: int,
                   async_commit_window: float = 0.0,
                   indexed: bool = False, prefetch: bool = False,
                   result_cache: bool = False):
    """One timed mix leg; world setup is excluded from the timers."""
    import hashlib

    costs = tpcc_cost_model(6.0)
    costs.async_commit_window_seconds = async_commit_window
    if prefetch:
        for knob, value in PREFETCH_COST_OVERRIDES.items():
            setattr(costs, knob, value)
    if result_cache:
        for knob, value in RESULT_CACHE_COST_OVERRIDES.items():
            setattr(costs, knob, value)
    meter = Meter(costs)
    # The tracked mix runs with the request latency ledger on: the
    # ledger never charges, so the virtual clock is unaffected
    # (tests/test_obs_equivalence.py holds this to the bit), and every
    # wallclock run doubles as an accounting-identity check + the p95
    # source for the history line the sentinel watches.
    meter.enable_latency_ledger()
    server = DatabaseServer(
        meter=meter,
        plan_cache_capacity=128 if enable_caches else 0)
    server.engine.buffer_pool.capacity_pages = 48
    data = generate_tpcc(scale, seed=seed)
    setup_tpcc_server(server, data)
    meta_entries = 256 if enable_caches else 0
    app = BenchmarkApp(server, use_phoenix=True,
                       phoenix_config=PhoenixConfig(
                           client_cache_rows=200,
                           metadata_cache_entries=meta_entries))
    # A second driver manager with the client cache off, so its queries
    # go down the full §2.1 persistence pipeline (probe-cache traffic).
    persist_app = BenchmarkApp(server, use_phoenix=True,
                               phoenix_config=PhoenixConfig(
                                   client_cache_rows=0,
                                   metadata_cache_entries=meta_entries))
    rng = random.Random(seed + 1)
    segments: dict[str, float] = {}

    plan = [(choose_transaction(rng), rng.randint(1, scale.warehouses))
            for _ in range(txns)]
    start = time.perf_counter()
    for name, w_id in plan:
        TRANSACTIONS[name](app, rng, scale, w_id)
    segments["tpcc transactions"] = time.perf_counter() - start

    digest = hashlib.sha256()
    start = time.perf_counter()
    for _ in range(point_reads):
        w = rng.randint(1, scale.warehouses)
        d = rng.randint(1, scale.districts_per_warehouse)
        c = rng.randint(1, scale.customers_per_district)
        i = rng.randint(1, scale.items)
        if indexed:
            number = rng.randint(0, 999)
            name = last_name(number)
            syllable = LAST_NAME_SYLLABLES[(number // 100) % 10]
            digest.update(repr(app.query_rows(
                _WALLCLOCK_INDEXED_QUERIES[0].format(
                    w=w, d=d, last=name))).encode())
            digest.update(repr(app.query_rows(
                _WALLCLOCK_INDEXED_QUERIES[1].format(
                    w=w, d=d, lo=syllable, hi=syllable + "ZZ"))).encode())
        else:
            for template in _WALLCLOCK_POINT_QUERIES:
                digest.update(repr(app.query_rows(
                    template.format(w=w, d=d, c=c, i=i))).encode())
    segments["point selects"] = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(persists):
        persist_app.run_query(_WALLCLOCK_PERSIST_QUERY,
                              label="persist", fetch=False)
    segments["phoenix persists"] = time.perf_counter() - start

    return (sum(segments.values()), app.meter.now, segments,
            dict(app.meter.counters), dict(server.engine.cache_stats),
            dict(app.meter.executor_stats), app.meter.obs.latency,
            digest.hexdigest())


def run_wallclock(scale: TpccScale = DEFAULT_TPCC_SCALE, txns: int = 120,
                  point_reads: int = 1200, persists: int = 8,
                  seed: int = 11, async_commit_window: float = 0.0,
                  indexed: bool = False, prefetch: bool = False,
                  result_cache: bool = False) -> WallclockResult:
    """Time an identical statement stream with caches off, then on.

    ``async_commit_window``, ``indexed`` and ``prefetch`` apply to
    *both* legs, so the caches-off/caches-on virtual clocks still agree
    bit-for-bit.  ``result_cache`` turns the transaction-consistent
    shared result cache on for the caches-on sub-leg only: the baseline
    stays cache-free, which makes the leg's row digests an off-vs-on
    value-identity check while the counters show the request cut.
    """
    base = _wallclock_leg(False, scale, txns, point_reads, persists, seed,
                          async_commit_window, indexed, prefetch)
    hot = _wallclock_leg(True, scale, txns, point_reads, persists, seed,
                         async_commit_window, indexed, prefetch,
                         result_cache)
    return WallclockResult(
        baseline_host_seconds=base[0], cached_host_seconds=hot[0],
        baseline_virtual_seconds=base[1], cached_virtual_seconds=hot[1],
        baseline_segments=base[2], cached_segments=hot[2],
        counters=hot[3], cache_stats=hot[4], executor_stats=hot[5],
        latency=hot[6], baseline_rows_digest=base[7],
        cached_rows_digest=hot[7])


# ---------------------------------------------------------------------------
# Index microbench: pages read by IndexRangeScan vs a heap scan
# ---------------------------------------------------------------------------


@dataclass
class IndexBenchResult:
    """Page-read cost of the same range predicate with and without a
    secondary index.

    The two tables hold identical rows; only one carries
    ``ix_indexed_grp (grp, id)``.  The buffer pool is kept far smaller
    than the table so every heap page touched becomes a ``disk_io``
    charge — the tracked claim is that the index path reads strictly
    fewer pages.
    """

    rows_matched: int
    queries: list = field(default_factory=list)  # (label, rows, pages, s)
    plans: dict = field(default_factory=dict)

    def format(self) -> str:
        body = [[label, rows, pages, f"{seconds:.6f}"]
                for label, rows, pages, seconds in self.queries]
        head = format_table(
            "Range predicate: secondary index vs heap scan "
            "(pages = disk_io charges)",
            ["Access path", "Rows", "Pages read", "Virtual s"], body)
        lines = [head, ""]
        for label in sorted(self.plans):
            lines.append(f"plan[{label}]: {self.plans[label]}")
        return "\n".join(lines)


_INDEXBENCH_DDL = (
    "CREATE TABLE {name} (id INT NOT NULL, grp INT, val INT, "
    "pad CHAR(80), PRIMARY KEY (id))")

#: Two adjacent groups out of ``rows / group_size`` — a narrow range
#: whose matches are contiguous in the heap (grp increases with id).
_INDEXBENCH_FETCH = ("SELECT val FROM {name} "
                     "WHERE grp >= 10 AND grp < 12")
_INDEXBENCH_COVER = ("SELECT grp, id FROM {name} "
                     "WHERE grp >= 10 AND grp < 12")


def run_indexbench(rows: int = 4000, group_size: int = 100,
                   pool_pages: int = 8) -> IndexBenchResult:
    """Measure disk pages read by the same range query on an indexed
    and an unindexed copy of one table."""
    from repro.engine.session import EngineSession
    from repro.types import coerce_column

    server = DatabaseServer(meter=Meter(CostModel()))
    engine = server.engine
    # Shrunk before loading: eviction pressure only applies on page
    # admission, and the measured queries must fault their pages in.
    engine.buffer_pool.capacity_pages = pool_pages
    session = EngineSession(session_id=0)
    meter = server.meter
    saved = meter.advance_clock
    meter.advance_clock = False
    try:
        for name in ("scanned", "indexed"):
            engine.execute(_INDEXBENCH_DDL.format(name=name), session)
        engine.execute(
            "CREATE INDEX ix_indexed_grp ON indexed (grp, id)", session)
        for name in ("scanned", "indexed"):
            table = engine.table(name)
            columns = table.info.columns
            txn = engine.txns.begin()
            for i in range(rows):
                row = tuple(coerce_column(v, c) for v, c in zip(
                    (i, i // group_size, i * 7 % 997, f"pad-{i}"),
                    columns))
                table.insert(row, txn, engine.txns)
            engine.txns.commit(txn)
        engine.checkpoint()
    finally:
        meter.advance_clock = saved

    app = BenchmarkApp(server)
    result = IndexBenchResult(rows_matched=2 * group_size)
    for label, template, name in (
            ("SeqScan + Filter", _INDEXBENCH_FETCH, "scanned"),
            ("IndexRangeScan", _INDEXBENCH_FETCH, "indexed"),
            ("SeqScan + Filter (covering)", _INDEXBENCH_COVER, "scanned"),
            ("IndexRangeScan (index-only)", _INDEXBENCH_COVER, "indexed")):
        sql = template.format(name=name)
        plan = app.query_rows("EXPLAIN " + sql)
        io_before = meter.counters.get("disk_io", 0)
        start = meter.now
        fetched = app.query_rows(sql)
        result.queries.append(
            (label, len(fetched),
             int(meter.counters.get("disk_io", 0) - io_before),
             meter.now - start))
        scan_lines = [line for (line,) in plan if "Scan" in line]
        result.plans[label] = scan_lines[0].strip() if scan_lines \
            else plan[0][0].strip()
    return result


@dataclass
class RecoveryScalingResult:
    """Restart-recovery time vs log length under different checkpoint
    regimes.

    One row per (log length, leg): ``none`` never checkpoints (the
    paper's configuration — recovery replays the whole log), ``sharp``
    takes the seed's flush-everything checkpoint every tenth of the run,
    and the ``fuzzy-wN`` legs take non-blocking fuzzy checkpoints on a
    virtual-time cadence with log truncation on and redo charged over N
    simulated workers.  The tracked claim is the tentpole: fuzzy
    recovery time is bounded by the checkpoint interval (flat in log
    length), and redone records track dirty-page recLSNs, not the log.
    """

    #: (records, leg, recovery_s, redo_applied, redo_skipped,
    #:  checkpoints, truncated, workload_s)
    rows: list = field(default_factory=list)
    #: (records, leg) -> fingerprint of recovered table contents
    fingerprints: dict = field(default_factory=dict)

    def format(self) -> str:
        body = [[records, leg, f"{seconds:.4f}", applied, skipped,
                 int(checkpoints), int(truncated)]
                for (records, leg, seconds, applied, skipped,
                     checkpoints, truncated, _workload) in self.rows]
        return format_table(
            "Restart recovery vs log length "
            "(fuzzy checkpoints + partitioned redo)",
            ["Redo records", "Leg", "Recovery s", "Applied", "Skipped",
             "Checkpoints", "Truncated"], body)

    def leg(self, records: int, leg: str) -> tuple:
        for row in self.rows:
            if row[0] == records and row[1] == leg:
                return row
        raise KeyError((records, leg))


#: Partitioned redo parallelizes across heap files, so the workload
#: spreads its updates over this many tables.
RECOVERY_SCALING_TABLES = 4
RECOVERY_SCALING_ROWS = 100
#: Data records per round: 4 tables x UPDATE .. WHERE k < 25.
RECOVERY_SCALING_RECORDS_PER_ROUND = RECOVERY_SCALING_TABLES * 25
#: Fuzzy cadence: enough intervals that the redo tail (~2 intervals,
#: the background flusher's lag) is well under a third of the log.
RECOVERY_SCALING_CHECKPOINTS = 12


def _recovery_scaling_leg(rounds: int, mode: str, workers: int = 0,
                          interval: float = 0.0) -> dict:
    """One crash/restart measurement.  ``mode``: none | sharp | fuzzy."""
    costs = CostModel()
    if mode == "fuzzy":
        costs.checkpoint_interval_seconds = interval
        costs.checkpoint_truncate_log = True
        costs.redo_workers = workers
    server = DatabaseServer(meter=Meter(costs))
    app = BenchmarkApp(server)
    for t in range(RECOVERY_SCALING_TABLES):
        app.run_statement(
            f"CREATE TABLE r{t} (k INT NOT NULL, v INT, a INT, "
            "PRIMARY KEY (k))")
        app.run_statement(f"INSERT INTO r{t} VALUES " + ", ".join(
            f"({i}, 0, {i % 7})" for i in range(RECOVERY_SCALING_ROWS)))
    start = server.meter.now
    sharp_every = max(1, rounds // 10)
    for rnd in range(rounds):
        for t in range(RECOVERY_SCALING_TABLES):
            app.run_statement(f"UPDATE r{t} SET v = v + 1 WHERE k < 25")
        # Never checkpoint on the final round — the crash must land
        # off-cadence so the sharp leg always has a redo tail.
        if mode == "sharp" and (rnd + 1) % sharp_every == 0 \
                and rnd + 1 < rounds:
            server.checkpoint()
    workload_seconds = server.meter.now - start
    server.crash()
    crash_at = server.meter.now
    server.restart()
    elapsed = server.meter.now - crash_at
    report = server.engine.last_recovery
    counters = server.meter.counters
    survivor = BenchmarkApp(server)
    fingerprint = tuple(
        tuple(survivor.query_rows(
            f"SELECT k, v, a FROM r{t} ORDER BY k"))
        for t in range(RECOVERY_SCALING_TABLES))
    return {
        "workload_seconds": workload_seconds,
        "recovery_seconds": elapsed,
        "redo_applied": report.redo_applied,
        "redo_skipped": report.redo_skipped,
        "checkpoints": counters.get("checkpoints_taken", 0.0),
        "truncated": counters.get("log_records_truncated", 0.0),
        "fingerprint": fingerprint,
    }


def run_recovery_scaling(
        lengths: tuple = (1000, 5000, 20000)) -> RecoveryScalingResult:
    """Sweep log length x checkpoint regime; see
    :class:`RecoveryScalingResult`."""
    result = RecoveryScalingResult()
    for records in lengths:
        rounds = max(1, records // RECOVERY_SCALING_RECORDS_PER_ROUND)
        none = _recovery_scaling_leg(rounds, "none")
        # The fuzzy cadence is derived from the measured workload so
        # every length gets the same *number* of checkpoints — that is
        # what makes recovery time flat in log length.
        interval = (none["workload_seconds"]
                    / RECOVERY_SCALING_CHECKPOINTS)
        legs = [("none", none), ("sharp",
                                 _recovery_scaling_leg(rounds, "sharp"))]
        for workers in (1, 2, 4):
            legs.append((f"fuzzy-w{workers}", _recovery_scaling_leg(
                rounds, "fuzzy", workers=workers, interval=interval)))
        for leg_name, leg in legs:
            result.rows.append(
                (records, leg_name, leg["recovery_seconds"],
                 leg["redo_applied"], leg["redo_skipped"],
                 leg["checkpoints"], leg["truncated"],
                 leg["workload_seconds"]))
            result.fingerprints[(records, leg_name)] = leg["fingerprint"]
    return result


# ---------------------------------------------------------------------------
# Optbench: cost-based optimizer, heuristic vs cost legs
# ---------------------------------------------------------------------------

#: The scale the optimizer gates were calibrated at — large enough that
#: statistics separate the TPC-H join orders, small enough for CI.
OPTBENCH_SCALE = 0.005

#: Top-N over lineitem *with* an ORDER BY (``top_n_lineitem`` has none):
#: the query shape the TopNHeapSort rewrite targets.  The trailing key
#: columns make the ordering total, so both modes must return exactly
#: the same rows.
OPTBENCH_TOPN_QUERY = (
    "SELECT TOP 10 l_orderkey, l_linenumber, l_extendedprice "
    "FROM lineitem "
    "ORDER BY l_extendedprice DESC, l_orderkey, l_linenumber")


@dataclass
class OptbenchLeg:
    mode: str
    query_seconds: dict[int, float] = field(default_factory=dict)
    query_rows: dict[int, list] = field(default_factory=dict)
    topn_seconds: float = 0.0
    topn_rows: list = field(default_factory=list)
    topn_plan: list[str] = field(default_factory=list)
    optimizer_counters: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.query_seconds.values()) + self.topn_seconds


@dataclass
class OptbenchResult:
    scale: float
    heuristic: OptbenchLeg = None
    cost: OptbenchLeg = None

    def faster_queries(self) -> list[int]:
        """Table-1 queries the cost leg finishes strictly sooner."""
        return [n for n in sorted(self.heuristic.query_seconds)
                if self.cost.query_seconds[n]
                < self.heuristic.query_seconds[n]]

    def format(self) -> str:
        body = []
        for number in sorted(self.heuristic.query_seconds):
            h = self.heuristic.query_seconds[number]
            c = self.cost.query_seconds[number]
            body.append([f"Q{number:02d}", h, c, c - h,
                         c / h if h else float("inf")])
        body.append(["TOP-N", self.heuristic.topn_seconds,
                     self.cost.topn_seconds,
                     self.cost.topn_seconds - self.heuristic.topn_seconds,
                     self.cost.topn_seconds / self.heuristic.topn_seconds
                     if self.heuristic.topn_seconds else float("inf")])
        footers = [["Total", self.heuristic.total_seconds,
                    self.cost.total_seconds,
                    self.cost.total_seconds
                    - self.heuristic.total_seconds,
                    self.cost.total_seconds / self.heuristic.total_seconds
                    if self.heuristic.total_seconds else float("inf")]]
        table = format_table(
            f"Optbench: heuristic vs cost-based plans (SF {self.scale}, "
            f"virtual seconds)",
            ["Query", "Heuristic", "Cost", "Difference", "Ratio"],
            body, footers)
        lines = [table, "",
                 f"cost leg faster on {len(self.faster_queries())} "
                 f"table-1 queries: "
                 + " ".join(f"Q{n:02d}" for n in self.faster_queries()),
                 "top-N plan (cost leg):"]
        lines += [f"  {line}" for line in self.cost.topn_plan]
        lines.append("optimizer counters (cost leg):")
        lines += [f"  {name} = {value:g}" for name, value
                  in sorted(self.cost.optimizer_counters.items())]
        return "\n".join(lines)


def _optbench_leg(mode: str, scale: float, seed: int) -> OptbenchLeg:
    from repro.workloads.tpch.queries import QUERIES

    server, _data = make_tpch_world(scale, seed)
    app = BenchmarkApp(server)
    if mode == "cost":
        app.run_statement("ANALYZE", label="analyze")
        server.meter.costs.optimizer_mode = "cost"
    leg = OptbenchLeg(mode=mode)
    for number in sorted(QUERIES):
        start = server.meter.now
        leg.query_rows[number] = app.query_rows(QUERIES[number])
        leg.query_seconds[number] = server.meter.now - start
    leg.topn_plan = [str(row[0]) for row in
                     app.query_rows("EXPLAIN " + OPTBENCH_TOPN_QUERY)]
    start = server.meter.now
    leg.topn_rows = app.query_rows(OPTBENCH_TOPN_QUERY)
    leg.topn_seconds = server.meter.now - start
    leg.optimizer_counters = {
        name: value for name, value in server.meter.counters.items()
        if name.startswith("optimizer.")}
    return leg


def run_optbench(scale: float = OPTBENCH_SCALE,
                 seed: int = 7) -> OptbenchResult:
    """The table-1 power queries plus the Top-N query, once per
    optimizer mode, on separately built but identically generated
    worlds.  Virtual timings are deterministic, so the cost-vs-heuristic
    deltas are exact plan-quality measurements, not noise."""
    return OptbenchResult(scale=scale,
                          heuristic=_optbench_leg("heuristic", scale,
                                                  seed),
                          cost=_optbench_leg("cost", scale, seed))

"""Command-line experiment runner.

Regenerate any of the paper's tables/figures without pytest:

    python -m repro.bench table1
    python -m repro.bench table3 --scale 0.02
    python -m repro.bench all

Results print as paper-style tables and are also written under
``bench_results/``.

``trace-report`` is the odd one out: instead of running a simulation it
summarizes an exported JSONL trace (``--input trace.jsonl``) per layer —
see :mod:`repro.obs.export` for producing one.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench import experiments

EXPERIMENTS = {
    "table1": lambda args: experiments.run_table1(scale=args.scale or 0.002),
    "table2": lambda args: experiments.run_table2(scale=args.scale or 0.002),
    "table3": lambda args: experiments.run_table3(scale=args.scale or 0.01),
    "table4": lambda args: experiments.run_table4(
        measure_seconds=args.measure_seconds),
    "fig3": lambda args: experiments.run_fig3(scale=args.scale or 0.02),
    "fig4": lambda args: experiments.run_fig4(scale=args.scale or 0.02),
    "fig6": lambda args: experiments.run_fig6(scale=args.scale or 0.02),
    "micro": lambda args: experiments.run_micro_overheads(
        scale=args.scale or 0.002),
}


def _trace_report(args):
    from repro.obs.report import build_trace_report

    if not args.input:
        raise SystemExit("trace-report needs --input <trace.jsonl>")
    return build_trace_report(args.input)


def _run_wallclock(args) -> int:
    """Run the host wall-clock mix and track it over time.

    Writes ``wallclock.json``/``wallclock.txt`` (the current snapshot)
    and appends one ``{date, commit, host_seconds}`` line to
    ``wallclock_history.jsonl`` so CI can spot host-time regressions.
    """
    import datetime
    import json
    import subprocess

    # point_reads matches benchmarks/test_wallclock_speedup.py so the
    # CLI and the benchmark harness track the same mix.
    result = experiments.run_wallclock(point_reads=2000)
    text = result.format()
    print(text)
    if result.baseline_virtual_seconds != result.cached_virtual_seconds:
        print("WARNING: virtual clocks diverged between the caches-off and "
              "caches-on legs — caching changed simulated behavior")

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)
    payload = {
        "mix": "TPC-C transactions + point selects + phoenix persists",
        "baseline_host_seconds": round(result.baseline_host_seconds, 3),
        "cached_host_seconds": round(result.cached_host_seconds, 3),
        "speedup_percent": round(result.speedup_percent, 1),
        "baseline_segments": {k: round(v, 3)
                              for k, v in result.baseline_segments.items()},
        "cached_segments": {k: round(v, 3)
                            for k, v in result.cached_segments.items()},
        "virtual_seconds": result.cached_virtual_seconds,
        "counters": result.counters,
        "cache_stats": result.cache_stats,
    }
    (out_dir / "wallclock.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    (out_dir / "wallclock.txt").write_text(text + "\n")

    history = out_dir / "wallclock_history.jsonl"
    previous = None
    if history.exists():
        lines = [line for line in history.read_text().splitlines()
                 if line.strip()]
        if lines:
            previous = json.loads(lines[-1])
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        commit = "unknown"
    entry = {"date": datetime.date.today().isoformat(), "commit": commit,
             "host_seconds": round(result.cached_host_seconds, 3)}
    with history.open("a") as handle:
        handle.write(json.dumps(entry) + "\n")
    print(f"[wallclock history: {entry}]")

    if previous and previous.get("host_seconds"):
        last = previous["host_seconds"]
        if entry["host_seconds"] > 1.3 * last:
            print(f"WARNING: wallclock mix took {entry['host_seconds']:.3f}s"
                  f" — more than 30% slower than the last recorded"
                  f" {last:.3f}s ({previous.get('commit', '?')})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "trace-report",
                                                       "wallclock"],
                        help="which artifact to regenerate")
    parser.add_argument("--scale", type=float, default=None,
                        help="TPC-H scale factor override")
    parser.add_argument("--measure-seconds", type=float, default=900.0,
                        help="TPC-C measurement window (virtual seconds)")
    parser.add_argument("--out", default="bench_results",
                        help="directory for the result tables")
    parser.add_argument("--input", default=None,
                        help="exported JSONL trace (trace-report only)")
    args = parser.parse_args(argv)

    if args.experiment == "trace-report":
        print(_trace_report(args).format())
        return 0
    if args.experiment == "wallclock":
        return _run_wallclock(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](args)
        text = result.format()
        print(text)
        print(f"[{name}: {time.time() - started:.1f}s wall]\n")
        (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line experiment runner.

Regenerate any of the paper's tables/figures without pytest:

    python -m repro.bench table1
    python -m repro.bench table3 --scale 0.02
    python -m repro.bench all

Results print as paper-style tables and are also written under
``bench_results/``.

``trace-report`` is the odd one out: instead of running a simulation it
summarizes an exported JSONL trace (``--input trace.jsonl``) per layer —
see :mod:`repro.obs.export` for producing one.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench import experiments

EXPERIMENTS = {
    "table1": lambda args: experiments.run_table1(scale=args.scale or 0.002),
    "table2": lambda args: experiments.run_table2(scale=args.scale or 0.002),
    "table3": lambda args: experiments.run_table3(scale=args.scale or 0.01),
    "table4": lambda args: experiments.run_table4(
        measure_seconds=args.measure_seconds),
    "fig3": lambda args: experiments.run_fig3(scale=args.scale or 0.02),
    "fig4": lambda args: experiments.run_fig4(scale=args.scale or 0.02),
    "fig6": lambda args: experiments.run_fig6(scale=args.scale or 0.02),
    "micro": lambda args: experiments.run_micro_overheads(
        scale=args.scale or 0.002),
    "indexbench": lambda args: experiments.run_indexbench(),
}


def _trace_report(args):
    from repro.obs.report import build_trace_report

    if not args.input:
        raise SystemExit("trace-report needs --input <trace.jsonl>")
    return build_trace_report(args.input)


#: ``log_forces`` of the tracked mix before asynchronous commit existed
#: — the regression ceiling: no future change may force the log more
#: often than the synchronous-commit seed did.
SEED_LOG_FORCES = 183


def _wallclock_payload(result, leg: str) -> dict:
    mixes = {
        "base": "TPC-C transactions + point selects + phoenix persists",
        "indexed": ("TPC-C transactions + secondary-index point selects "
                    "+ phoenix persists"),
        "prefetch": ("TPC-C transactions + point selects + phoenix "
                     "persists, pipelined result delivery on"),
        "cached-shared": ("TPC-C transactions + point selects + phoenix "
                          "persists, transaction-consistent shared "
                          "result cache on"),
    }
    return {
        "mix": mixes[leg],
        "leg": leg,
        "async_commit_window":
            experiments.WALLCLOCK_ASYNC_COMMIT_WINDOW,
        "baseline_host_seconds": round(result.baseline_host_seconds, 3),
        "cached_host_seconds": round(result.cached_host_seconds, 3),
        "speedup_percent": round(result.speedup_percent, 1),
        "baseline_segments": {k: round(v, 3)
                              for k, v in result.baseline_segments.items()},
        "cached_segments": {k: round(v, 3)
                            for k, v in result.cached_segments.items()},
        "virtual_seconds": result.cached_virtual_seconds,
        "counters": result.counters,
        "cache_stats": result.cache_stats,
        "executor_stats": {k: result.executor_stats[k]
                           for k in sorted(result.executor_stats)},
    }


def _run_wallclock(args) -> int:
    """Run the host wall-clock mix (plus its secondary-index variant)
    and track both over time.

    Writes ``wallclock.json``/``wallclock.txt``,
    ``wallclock_indexed.json``, ``wallclock_prefetch.json`` and
    ``wallclock_cached_shared.json`` (the current snapshots) and appends
    one ``{date, commit, leg, host_seconds, log_forces}`` line per leg
    to ``wallclock_history.jsonl`` so CI can spot host-time regressions.
    Fails if any leg forces the log more often than the
    synchronous-commit seed mix did (``log_forces`` > 183: async commit
    stopped deferring), if the prefetch leg sends *more* requests than
    the base leg, if it cuts fetch round trips on the tracked mix by
    less than 20%, or if the cached-shared leg cuts total round trips by
    less than 40%, records no shared-cache hits, or returns different
    point-select rows than the base leg.
    """
    import datetime
    import json
    import subprocess

    window = experiments.WALLCLOCK_ASYNC_COMMIT_WINDOW
    # point_reads matches benchmarks/test_wallclock_speedup.py so the
    # CLI and the benchmark harness track the same mix.
    legs = {
        "base": experiments.run_wallclock(
            point_reads=2000, async_commit_window=window),
        "indexed": experiments.run_wallclock(
            point_reads=2000, async_commit_window=window, indexed=True),
        "prefetch": experiments.run_wallclock(
            point_reads=2000, async_commit_window=window, prefetch=True),
        "cached-shared": experiments.run_wallclock(
            point_reads=2000, async_commit_window=window,
            result_cache=True),
    }
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)

    history = out_dir / "wallclock_history.jsonl"
    previous = None
    if history.exists():
        lines = [line for line in history.read_text().splitlines()
                 if line.strip()]
        entries = [json.loads(line) for line in lines]
        base_entries = [e for e in entries if e.get("leg", "base") == "base"]
        if base_entries:
            previous = base_entries[-1]
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        commit = "unknown"

    failed = False
    for leg, result in legs.items():
        text = result.format()
        print(f"[leg: {leg}]")
        print(text)
        if result.baseline_virtual_seconds != result.cached_virtual_seconds:
            if leg == "cached-shared":
                # Expected: the shared result cache removes entire
                # execute round trips, so it is a virtual-time
                # optimization (the digest gate below proves the
                # answers stayed identical).
                print(f"[cached-shared: virtual clock "
                      f"{result.baseline_virtual_seconds:.8f} -> "
                      f"{result.cached_virtual_seconds:.8f}]")
            else:
                print("WARNING: virtual clocks diverged between the "
                      "caches-off and caches-on legs — caching changed "
                      "simulated behavior")

        suffix = "" if leg == "base" else "_" + leg.replace("-", "_")
        (out_dir / f"wallclock{suffix}.json").write_text(
            json.dumps(_wallclock_payload(result, leg), indent=2) + "\n")
        if leg == "base":
            (out_dir / "wallclock.txt").write_text(text + "\n")

        log_forces = int(result.counters.get("log_forces", 0))
        _p50, p95_execute, _p99 = \
            result.latency.kind_percentiles("ExecuteRequest")
        entry = {"date": datetime.date.today().isoformat(),
                 "commit": commit, "leg": leg,
                 "host_seconds": round(result.cached_host_seconds, 3),
                 "log_forces": log_forces,
                 "requests_sent":
                     int(result.counters.get("net.requests_sent", 0)),
                 "fetch_requests":
                     int(result.counters.get("net.requests.FetchRequest",
                                             0)),
                 "result_cache_hits":
                     int(result.counters.get("result_cache.hits", 0)),
                 # Deterministic virtual metrics: the sentinel flags any
                 # drift of these against the trailing window.
                 "virtual_seconds": result.cached_virtual_seconds,
                 "p95_execute_seconds": p95_execute,
                 # Row-locking counters must stay zero on this serial,
                 # table-granularity mix — any growth means the
                 # hierarchical lock machinery leaked into the default
                 # path (the sentinel's tolerance for these is 0).
                 "locks.row_locks_acquired":
                     int(result.counters.get("locks.row_locks_acquired",
                                             0)),
                 "locks.escalations":
                     int(result.counters.get("locks.escalations", 0)),
                 "locks.deadlocks_detected":
                     int(result.counters.get("locks.deadlocks_detected",
                                             0)),
                 "locks.txn_retries":
                     int(result.counters.get("locks.txn_retries", 0))}
        with history.open("a") as handle:
            handle.write(json.dumps(entry) + "\n")
        print(f"[wallclock history: {entry}]")

        if log_forces > SEED_LOG_FORCES:
            print(f"FAIL: {leg} leg forced the log {log_forces} times — "
                  f"above the synchronous-commit seed's {SEED_LOG_FORCES}")
            failed = True

    # Pipelined-delivery regression gates.  The prefetch leg runs the
    # identical statement stream as the base leg, so it must never send
    # more requests and must finish at a lower virtual clock (less RTT
    # stall).  The ≥20% fetch-round-trip cut is tracked on the drain
    # companion mix — the point-read mix itself never leaves the first
    # wire batch.
    base_reqs = int(legs["base"].counters.get("net.requests_sent", 0))
    pf_reqs = int(legs["prefetch"].counters.get("net.requests_sent", 0))
    base_clock = legs["base"].cached_virtual_seconds
    pf_clock = legs["prefetch"].cached_virtual_seconds
    drain_seed = experiments.run_result_drain(prefetch=False)
    drain_pf = experiments.run_result_drain(prefetch=True)
    print(f"[prefetch leg: requests {base_reqs} -> {pf_reqs}, "
          f"virtual clock {base_clock:.8f} -> {pf_clock:.8f}]")
    print(f"[result drain: fetch round trips "
          f"{drain_seed['fetch_requests']} -> {drain_pf['fetch_requests']}, "
          f"virtual {drain_seed['virtual_seconds']:.6f}s -> "
          f"{drain_pf['virtual_seconds']:.6f}s, "
          f"prefetch hits {drain_pf['prefetch_hits']}]")
    drain_payload = {"query": experiments.RESULT_DRAIN_QUERY,
                     "seed": drain_seed, "prefetch": drain_pf}
    prefetch_json = out_dir / "wallclock_prefetch.json"
    payload = json.loads(prefetch_json.read_text())
    payload["result_drain"] = drain_payload
    prefetch_json.write_text(json.dumps(payload, indent=2) + "\n")
    if pf_reqs > base_reqs:
        print(f"FAIL: prefetch leg sent {pf_reqs} requests — above the "
              f"seed mix's {base_reqs}")
        failed = True
    if drain_pf["rows"] != drain_seed["rows"]:
        print("FAIL: drain mix returned different rows with prefetch on")
        failed = True
    if drain_pf["fetch_requests"] > 0.8 * drain_seed["fetch_requests"]:
        print(f"FAIL: drain mix still issued {drain_pf['fetch_requests']} "
              f"fetch round trips — less than a 20% cut from "
              f"{drain_seed['fetch_requests']}")
        failed = True
    if pf_clock >= base_clock:
        print("FAIL: prefetch leg's virtual clock did not drop below the "
              "base leg's — pipelining eliminated no RTT stall")
        failed = True
    if drain_pf["virtual_seconds"] >= drain_seed["virtual_seconds"]:
        print("FAIL: drain mix's virtual time did not drop with "
              "fetch-ahead on")
        failed = True

    # Shared-result-cache regression gates.  The cached-shared leg runs
    # the identical statement stream as the base leg with the
    # transaction-consistent shared cache on: it must cut total round
    # trips by ≥40%, actually hit, and return bit-identical rows — both
    # against the base leg and against its own caches-off sub-leg.
    cs = legs["cached-shared"]
    cs_reqs = int(cs.counters.get("net.requests_sent", 0))
    cs_hits = int(cs.counters.get("result_cache.hits", 0))
    print(f"[cached-shared leg: requests {base_reqs} -> {cs_reqs} "
          f"({100.0 * (1 - cs_reqs / base_reqs):.1f}% cut), "
          f"hits {cs_hits}, misses "
          f"{int(cs.counters.get('result_cache.misses', 0))}, "
          f"insertions "
          f"{int(cs.counters.get('result_cache.insertions', 0))}]")
    if cs_reqs > 0.6 * base_reqs:
        print(f"FAIL: cached-shared leg still sent {cs_reqs} requests — "
              f"less than a 40% cut from the base leg's {base_reqs}")
        failed = True
    if cs_hits <= 0:
        print("FAIL: cached-shared leg recorded no shared-cache hits")
        failed = True
    if cs.cached_rows_digest != cs.baseline_rows_digest:
        print("FAIL: cached-shared leg returned different point-select "
              "rows with the shared result cache on (off-vs-on digest "
              "mismatch)")
        failed = True
    if cs.cached_rows_digest != legs["base"].cached_rows_digest:
        print("FAIL: cached-shared leg's point-select rows differ from "
              "the base leg's (cross-leg digest mismatch)")
        failed = True

    if previous and previous.get("host_seconds"):
        last = previous["host_seconds"]
        now = round(legs["base"].cached_host_seconds, 3)
        if now > 1.3 * last:
            print(f"WARNING: wallclock mix took {now:.3f}s"
                  f" — more than 30% slower than the last recorded"
                  f" {last:.3f}s ({previous.get('commit', '?')})")
    return 1 if failed else 0


def _optbench_cells_close(a, b) -> bool:
    import math

    if isinstance(a, float) and isinstance(b, float):
        # Reordered joins feed SUM in a different row order, so float
        # aggregates may differ in the last ulp; everything else must
        # match exactly.
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def _optbench_rows_close(got: list, want: list) -> bool:
    if len(got) != len(want):
        return False
    got = sorted(got, key=repr)
    want = sorted(want, key=repr)
    return all(len(x) == len(y)
               and all(_optbench_cells_close(c, d)
                       for c, d in zip(x, y))
               for x, y in zip(got, want))


def _run_optbench(args) -> int:
    """Heuristic vs cost-based plans over the table-1 power queries plus
    the Top-N query.

    Writes ``optbench.txt`` and appends one ``{date, commit, leg,
    virtual_seconds, optimizer.*}`` line per leg to
    ``optbench_history.jsonl`` (the sentinel holds the heuristic leg's
    clock bit-stable and its optimizer counters at zero).  Fails (exit
    1) if the cost leg is not strictly faster on at least 3 table-1
    queries, if its Top-N plan does not use TopNHeapSort (or the
    heuristic plan does), if the heuristic leg planned through the cost
    path at all, or if any cost-leg result differs from the heuristic
    leg's beyond float-summation-order tolerance.
    """
    import datetime
    import json
    import subprocess

    result = experiments.run_optbench(scale=args.scale
                                      or experiments.OPTBENCH_SCALE)
    text = result.format()
    print(text)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)
    (out_dir / "optbench.txt").write_text(text + "\n")

    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        commit = "unknown"
    history = out_dir / "optbench_history.jsonl"
    with history.open("a") as handle:
        for leg in (result.heuristic, result.cost):
            entry = {"date": datetime.date.today().isoformat(),
                     "commit": commit, "leg": leg.mode,
                     "virtual_seconds": leg.total_seconds}
            for name in ("optimizer.plans_costed",
                         "optimizer.join_orders_considered",
                         "optimizer.topn_heap_used",
                         "optimizer.sortmerge_chosen",
                         "optimizer.stats_missing_fallbacks"):
                entry[name] = int(leg.optimizer_counters.get(name, 0))
            handle.write(json.dumps(entry) + "\n")
            print(f"[optbench history: {entry}]")

    failed = False
    faster = result.faster_queries()
    print(f"[optbench: cost leg faster on {len(faster)}/"
          f"{len(result.heuristic.query_seconds)} table-1 queries, "
          f"total {result.heuristic.total_seconds:.4f}s -> "
          f"{result.cost.total_seconds:.4f}s]")
    if len(faster) < 3:
        print(f"FAIL: cost-based plans beat the heuristic on only "
              f"{len(faster)} table-1 queries — need at least 3")
        failed = True
    if not any("TopNHeapSort" in line for line in result.cost.topn_plan):
        print("FAIL: cost leg's Top-N plan does not use TopNHeapSort: "
              + " | ".join(result.cost.topn_plan))
        failed = True
    if any("TopNHeapSort" in line
           for line in result.heuristic.topn_plan):
        print("FAIL: heuristic leg's Top-N plan uses TopNHeapSort — "
              "cost-mode machinery leaked into the default path")
        failed = True
    if result.cost.topn_seconds >= result.heuristic.topn_seconds:
        print(f"FAIL: Top-N heap did not beat Sort+Limit "
              f"({result.heuristic.topn_seconds:.6f}s -> "
              f"{result.cost.topn_seconds:.6f}s)")
        failed = True
    if result.heuristic.optimizer_counters:
        print(f"FAIL: heuristic leg ticked optimizer counters: "
              f"{result.heuristic.optimizer_counters}")
        failed = True
    if result.cost.topn_rows != result.heuristic.topn_rows:
        print("FAIL: Top-N rows differ between modes (the ordering is "
              "total, so they must match exactly)")
        failed = True
    for number in sorted(result.heuristic.query_rows):
        if not _optbench_rows_close(result.cost.query_rows[number],
                                    result.heuristic.query_rows[number]):
            print(f"FAIL: cost-leg values diverged on Q{number:02d}")
            failed = True
    return 1 if failed else 0


#: (sessions, transactions per session) legs for ``tpccbench`` — work
#: per leg stays roughly constant as concurrency rises so the bench
#: finishes in CI time at 128 sessions.
TPCCBENCH_LEGS = ((8, 4), (32, 2), (128, 1))

#: Shared world scale for every tpccbench leg (small enough for CI,
#: large enough that sessions genuinely collide on warehouse rows and
#: stock rows).
TPCCBENCH_SCALE = dict(items=100, customers_per_district=10,
                       initial_orders_per_district=5)


def _run_tpccbench(args) -> int:
    """Interleaved multi-session TPC-C: row vs table lock granularity.

    For each ``(sessions, txns)`` leg runs the identical descriptor set
    three ways — serial (one session at a time, table locks),
    interleaved under the seed's no-wait table locks, and interleaved
    under hierarchical row locking — and compares virtual-time
    makespans and final database digests.

    Writes ``tpccbench.txt`` and appends one ``{date, commit, leg,
    sessions, virtual_seconds, locks.*}`` line per run to
    ``tpccbench_history.jsonl``.  Fails (exit 1) if the row leg's
    makespan is not strictly below the table leg's at every session
    count, or if any leg's final database digest differs from the
    serial reference (concurrency must never change committed state).
    """
    import datetime
    import json
    import subprocess

    from repro.workloads.tpcc.concurrent import (
        ConcurrentMix, build_concurrent_world, digest_database)

    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        commit = "unknown"

    lock_counters = ("locks.row_locks_acquired", "locks.escalations",
                     "locks.deadlocks_detected", "locks.lock_wait_seconds",
                     "locks.txn_retries")
    lines = ["Concurrent TPC-C mix: virtual-time makespan by lock "
             "granularity",
             "(identical transaction descriptors per leg; digests must "
             "match)",
             "",
             f"{'sessions':>8}  {'txns':>4}  {'serial':>10}  "
             f"{'table':>10}  {'row':>10}  {'row/table':>9}  "
             f"{'deadlocks':>9}  {'waits':>7}"]
    failed = False
    entries = []
    for sessions, txns in TPCCBENCH_LEGS:
        runs = {}
        digests = {}
        for leg in ("serial", "table", "row"):
            granularity = "row" if leg == "row" else "table"
            server, apps, plans, scale = build_concurrent_world(
                sessions, granularity, txns_per_session=txns,
                **TPCCBENCH_SCALE)
            mix = ConcurrentMix(server, apps, plans, scale)
            result = (mix.run_serial() if leg == "serial"
                      else mix.run_interleaved())
            runs[leg] = result
            digests[leg] = digest_database(server.engine)
            entry = {"date": datetime.date.today().isoformat(),
                     "commit": commit, "leg": leg, "sessions": sessions,
                     "virtual_seconds": result.makespan_seconds}
            counters = server.meter.counters
            for name in lock_counters:
                value = counters.get(name, 0)
                entry[name] = (round(value, 9) if name.endswith("seconds")
                               else int(value))
            entries.append(entry)
        serial, table, row = runs["serial"], runs["table"], runs["row"]
        ratio = row.makespan_seconds / table.makespan_seconds
        lines.append(
            f"{sessions:>8}  {txns:>4}  {serial.makespan_seconds:>10.4f}  "
            f"{table.makespan_seconds:>10.4f}  "
            f"{row.makespan_seconds:>10.4f}  {ratio:>9.3f}  "
            f"{row.deadlocks:>9}  {row.lock_waits:>7}")
        if row.makespan_seconds >= table.makespan_seconds:
            print(f"FAIL: at {sessions} sessions the row-locking "
                  f"makespan ({row.makespan_seconds:.4f}s) is not below "
                  f"the table-locking makespan "
                  f"({table.makespan_seconds:.4f}s)")
            failed = True
        for leg in ("table", "row"):
            if digests[leg] != digests["serial"]:
                mismatched = sorted(
                    name for name in digests["serial"]
                    if digests[leg].get(name) != digests["serial"][name])
                print(f"FAIL: at {sessions} sessions the {leg} leg's "
                      f"final database state differs from the serial "
                      f"reference (tables: {', '.join(mismatched)})")
                failed = True
        committed = sessions * txns - row.rolled_back
        if not (serial.committed == table.committed == row.committed):
            print(f"FAIL: committed-transaction counts diverged at "
                  f"{sessions} sessions: serial {serial.committed}, "
                  f"table {table.committed}, row {row.committed}")
            failed = True
        print(f"[tpccbench n={sessions}: table "
              f"{table.makespan_seconds:.4f}s -> row "
              f"{row.makespan_seconds:.4f}s ({(1 - ratio) * 100:.1f}% "
              f"faster), {committed} committed, row deadlocks "
              f"{row.deadlocks}, waits {row.lock_waits}, table retries "
              f"{table.txn_retries}]")

    text = "\n".join(lines)
    print(text)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)
    (out_dir / "tpccbench.txt").write_text(text + "\n")
    history = out_dir / "tpccbench_history.jsonl"
    with history.open("a") as handle:
        for entry in entries:
            handle.write(json.dumps(entry) + "\n")
    return 1 if failed else 0


def _run_latency_report(args) -> int:
    """Run the tracked wall-clock mix with the latency ledger on and
    render the per-request-kind SLO table plus the per-component
    attribution table.

    Writes ``latency_report.txt``.  Fails (exit 1) if the ledger saw no
    requests or if any request's component attribution did not sum
    bit-exactly to its measured latency (the accounting identity).
    """
    from repro.obs.latency import format_latency_report

    result = experiments.run_wallclock(
        point_reads=2000,
        async_commit_window=experiments.WALLCLOCK_ASYNC_COMMIT_WINDOW)
    ledger = result.latency
    text = format_latency_report(
        ledger, source="wallclock mix (caches on, point_reads=2000)")
    print(text)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)
    (out_dir / "latency_report.txt").write_text(text + "\n")

    failed = False
    if ledger is None or ledger.closed == 0:
        print("FAIL: latency ledger recorded no requests")
        failed = True
    elif ledger.identity_violations:
        for violation in ledger.identity_violations[:10]:
            print(f"FAIL: accounting identity broken: {violation}")
        failed = True
    return 1 if failed else 0


def _run_sentinel(args) -> int:
    """Compare the latest entry of every ``*_history.jsonl`` group
    against its trailing-window median; exit 1 on any regression beyond
    the per-metric tolerance (see :mod:`repro.obs.sentinel`).
    """
    from repro.obs.sentinel import run_sentinel

    report = run_sentinel(args.out)
    print(report.format())
    return 0 if report.ok else 1


def _run_recovery_scaling(args) -> int:
    """Sweep restart-recovery time vs log length and gate the tentpole.

    Writes ``recovery_scaling.txt`` and appends one ``{date, commit,
    records, leg, recovery_seconds, redo_applied}`` line per leg to
    ``recovery_scaling_history.jsonl``.  Fails (exit 1) if at the
    longest log the fuzzy+4-worker leg is not at least 3x faster in
    virtual time than the never-checkpoint leg, if its redone-record
    count is not bounded well below the log (dirty-page recLSNs, not
    log length), if more workers make recovery slower, or if any leg
    recovers different table contents (worker count and checkpoint
    regime must never change recovered state).
    """
    import datetime
    import json
    import subprocess

    result = experiments.run_recovery_scaling()
    text = result.format()
    print(text)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)
    (out_dir / "recovery_scaling.txt").write_text(text + "\n")

    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:
        commit = "unknown"
    history = out_dir / "recovery_scaling_history.jsonl"
    with history.open("a") as handle:
        for (records, leg, seconds, applied, skipped, checkpoints,
             truncated, _workload) in result.rows:
            handle.write(json.dumps(
                {"date": datetime.date.today().isoformat(),
                 "commit": commit, "records": records, "leg": leg,
                 "recovery_seconds": round(seconds, 6),
                 "redo_applied": applied}) + "\n")

    failed = False
    longest = max(records for records, *_ in result.rows)
    none_row = result.leg(longest, "none")
    w1_row = result.leg(longest, "fuzzy-w1")
    w4_row = result.leg(longest, "fuzzy-w4")
    print(f"[recovery scaling at {longest} records: none "
          f"{none_row[2]:.4f}s / {none_row[3]} applied, fuzzy-w4 "
          f"{w4_row[2]:.4f}s / {w4_row[3]} applied]")
    if w4_row[2] * 3.0 > none_row[2]:
        print(f"FAIL: fuzzy+4-worker recovery took {w4_row[2]:.4f}s at "
              f"{longest} records — not 3x faster than the "
              f"never-checkpoint leg's {none_row[2]:.4f}s")
        failed = True
    if w4_row[3] * 3 > none_row[3]:
        print(f"FAIL: fuzzy redo applied {w4_row[3]} records at "
              f"{longest} records — not bounded by dirty-page recLSNs "
              f"(never-checkpoint leg applied {none_row[3]})")
        failed = True
    if w4_row[2] > w1_row[2]:
        print(f"FAIL: 4-worker redo ({w4_row[2]:.4f}s) slower than "
              f"1-worker ({w1_row[2]:.4f}s)")
        failed = True
    for records in sorted({r for r, *_ in result.rows}):
        prints = {leg: result.fingerprints[(records, leg)]
                  for _r, leg, *_ in result.rows if _r == records}
        reference = prints["none"]
        for leg, fingerprint in prints.items():
            if fingerprint != reference:
                print(f"FAIL: leg {leg} at {records} records recovered "
                      "different table contents than the "
                      "never-checkpoint leg")
                failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "trace-report",
                                                       "wallclock",
                                                       "recoveryscaling",
                                                       "latency-report",
                                                       "optbench",
                                                       "tpccbench",
                                                       "sentinel"],
                        help="which artifact to regenerate")
    parser.add_argument("--scale", type=float, default=None,
                        help="TPC-H scale factor override")
    parser.add_argument("--measure-seconds", type=float, default=900.0,
                        help="TPC-C measurement window (virtual seconds)")
    parser.add_argument("--out", default="bench_results",
                        help="directory for the result tables")
    parser.add_argument("--input", default=None,
                        help="exported JSONL trace (trace-report only)")
    args = parser.parse_args(argv)

    if args.experiment == "trace-report":
        print(_trace_report(args).format())
        return 0
    if args.experiment == "wallclock":
        return _run_wallclock(args)
    if args.experiment == "recoveryscaling":
        return _run_recovery_scaling(args)
    if args.experiment == "latency-report":
        return _run_latency_report(args)
    if args.experiment == "optbench":
        return _run_optbench(args)
    if args.experiment == "tpccbench":
        return _run_tpccbench(args)
    if args.experiment == "sentinel":
        return _run_sentinel(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(exist_ok=True)
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](args)
        text = result.format()
        print(text)
        print(f"[{name}: {time.time() - started:.1f}s wall]\n")
        (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

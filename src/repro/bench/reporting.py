"""Paper-style plain-text tables for the benchmark harness."""

from __future__ import annotations


def format_table(title: str, headers: list[str],
                 rows: list[list], footers: list[list] | None = None) -> str:
    """Render an aligned text table with a title rule."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    str_footers = [[_cell(v) for v in row] for row in (footers or [])]
    widths = [len(h) for h in headers]
    for row in str_rows + str_footers:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    if str_footers:
        lines.append("  ".join("-" * w for w in widths))
        for row in str_footers:
            lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                                   for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0.000"
        if abs(value) >= 1000:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False

"""Phoenix/ODBC reproduction: persistent database sessions.

Reproduction of Barga & Lomet, "Measuring and Optimizing a System for
Persistent Database Sessions", ICDE 2001.  See README.md for the
quickstart and DESIGN.md for the system inventory.

Public entry points:

* :class:`repro.server.server.DatabaseServer` — the crashable server;
* :class:`repro.phoenix.driver_manager.PhoenixDriverManager` — the
  paper's contribution, a drop-in ODBC driver-manager wrapper;
* :class:`repro.odbc.driver_manager.DriverManager` — the native baseline;
* :class:`repro.workloads.app.BenchmarkApp` — a ready-made client;
* :mod:`repro.bench.experiments` — one function per paper table/figure
  (also runnable as ``python -m repro.bench <experiment>``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Abstract syntax tree node definitions.

Pure data — evaluation lives in :mod:`repro.sql.expressions` and planning
in :mod:`repro.sql.planner`.  Every node is a frozen-ish dataclass; the
parser is the only producer.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Node:
    """Base class for AST nodes (statements and expressions)."""


class Expr(Node):
    """Base class for expression nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Literal(Expr):
    """A constant: int, float, str, datetime.date or None."""

    value: object


@dataclass
class Interval(Expr):
    """``INTERVAL '3' MONTH`` — used only in date arithmetic."""

    amount: int
    unit: str  # 'year' | 'month' | 'day'


@dataclass
class ColumnRef(Expr):
    table: str | None
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Param(Expr):
    """A procedure parameter reference (``@name``)."""

    name: str


@dataclass
class Star(Expr):
    """``*`` or ``t.*`` in a select list (or ``COUNT(*)``)."""

    table: str | None = None


@dataclass
class Unary(Expr):
    op: str  # '-' | '+' | 'NOT'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # + - * / || = <> < <= > >= AND OR
    left: Expr
    right: Expr


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    operand: Expr
    items: list[Expr] = field(default_factory=list)
    negated: bool = False


@dataclass
class InSubquery(Expr):
    operand: Expr
    subquery: "SelectStatement" = None
    negated: bool = False


@dataclass
class Exists(Expr):
    subquery: "SelectStatement"
    negated: bool = False


@dataclass
class ScalarSubquery(Expr):
    subquery: "SelectStatement"


@dataclass
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass
class CaseWhen(Expr):
    """Searched CASE: WHEN cond THEN result [...] [ELSE e] END."""

    whens: list[tuple[Expr, Expr]]
    else_result: Expr | None = None


@dataclass
class FuncCall(Expr):
    """Function call — aggregate or scalar, resolved at plan time."""

    name: str  # lowercased
    args: list[Expr] = field(default_factory=list)
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass
class Extract(Expr):
    field_name: str  # 'year' | 'month' | 'day'
    operand: Expr


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------


class TableRef(Node):
    """Base class for FROM items."""


@dataclass
class TableName(TableRef):
    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


@dataclass
class DerivedTable(TableRef):
    select: "SelectStatement"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias.lower()


@dataclass
class Join(TableRef):
    kind: str  # 'inner' | 'left' | 'cross'
    left: TableRef
    right: TableRef
    condition: Expr | None = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement(Node):
    """Base class for executable statements."""


@dataclass
class SelectItem(Node):
    expr: Expr
    alias: str | None = None


@dataclass
class OrderItem(Node):
    expr: Expr  # may be a Literal int = 1-based output position
    descending: bool = False


@dataclass
class SelectStatement(Statement):
    select_items: list[SelectItem]
    from_items: list[TableRef] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    distinct: bool = False
    top: int | None = None

    @property
    def returns_rows(self) -> bool:
        return True


@dataclass
class UnionSelect(Statement):
    """A chain of SELECT cores combined with UNION [ALL].

    ``all_flags[i]`` says whether the combinator *before* ``selects[i+1]``
    was UNION ALL.  ORDER BY / TOP apply to the combined result.
    """

    selects: list[SelectStatement] = field(default_factory=list)
    all_flags: list[bool] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    top: int | None = None

    @property
    def returns_rows(self) -> bool:
        return True


@dataclass
class InsertStatement(Statement):
    table: str
    columns: list[str] = field(default_factory=list)
    rows: list[list[Expr]] = field(default_factory=list)
    select: SelectStatement | None = None


@dataclass
class UpdateStatement(Statement):
    table: str
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    where: Expr | None = None


@dataclass
class DeleteStatement(Statement):
    table: str
    where: Expr | None = None


@dataclass
class ColumnDef(Node):
    name: str
    type_name: str
    length: int = 0
    nullable: bool = True
    primary_key: bool = False


@dataclass
class CreateTableStatement(Statement):
    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    primary_key: list[str] = field(default_factory=list)


@dataclass
class DropTableStatement(Statement):
    name: str


@dataclass
class CreateIndexStatement(Statement):
    name: str
    table: str
    columns: list[str] = field(default_factory=list)
    unique: bool = False


@dataclass
class DropIndexStatement(Statement):
    name: str


@dataclass
class CreateProcedureStatement(Statement):
    name: str
    params: list[tuple[str, str]] = field(default_factory=list)  # (name, type)
    body_sql: str = ""  # the raw body text, parsed lazily at EXEC time


@dataclass
class DropProcedureStatement(Statement):
    name: str


@dataclass
class CreateViewStatement(Statement):
    name: str
    body_sql: str = ""


@dataclass
class DropViewStatement(Statement):
    name: str = ""


@dataclass
class ExecStatement(Statement):
    name: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class ExplainStatement(Statement):
    """EXPLAIN <select>: plan without executing, return the plan text."""

    select: Statement = None


@dataclass
class AnalyzeStatement(Statement):
    """ANALYZE [table]: collect optimizer statistics (all tables when
    no name is given)."""

    table: str | None = None


@dataclass
class BeginTransactionStatement(Statement):
    pass


@dataclass
class CommitStatement(Statement):
    pass


@dataclass
class RollbackStatement(Statement):
    pass

"""Recursive-descent SQL parser.

``parse_statement`` parses exactly one statement; ``parse_script`` parses
a ``;``-separated batch.  The grammar is documented inline per method.
``CREATE PROCEDURE ... AS <body>`` captures the body as raw text (like
T-SQL, the body extends to the end of the batch) and the engine parses it
lazily at EXEC time with parameters bound.
"""

from __future__ import annotations

import datetime

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

_JOIN_STARTERS = ("JOIN", "INNER", "LEFT", "RIGHT", "CROSS")
_INTERVAL_UNITS = ("YEAR", "MONTH", "DAY")


def parse_statement(sql: str) -> ast.Statement:
    """Parse a single SQL statement (trailing ``;`` allowed)."""
    parser = _Parser(sql)
    stmt = parser.parse_one()
    parser.accept_operator(";")
    parser.expect_end()
    return stmt


def parse_script(sql: str) -> list[ast.Statement]:
    """Parse a ``;``-separated batch of statements."""
    parser = _Parser(sql)
    statements: list[ast.Statement] = []
    while not parser.at_end():
        statements.append(parser.parse_one())
        if not parser.accept_operator(";"):
            break
    parser.expect_end()
    return statements


class _Parser:
    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = tokenize(sql)
        self._pos = 0

    # -- cursor helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.END:
            self._pos += 1
        return token

    def at_end(self) -> bool:
        return self.peek().type is TokenType.END

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        return SqlSyntaxError(
            f"{message} (near {token.value!r} at position {token.position})")

    def accept_keyword(self, *words: str) -> str | None:
        token = self.peek()
        if token.type is TokenType.KEYWORD and token.value in words:
            self.advance()
            return token.value
        return None

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}")

    def accept_operator(self, op: str) -> bool:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value == op:
            self.advance()
            return True
        return False

    def expect_operator(self, op: str) -> None:
        if not self.accept_operator(op):
            raise self.error(f"expected {op!r}")

    def expect_identifier(self) -> str:
        token = self.peek()
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            return token.value
        # Non-reserved keywords usable as identifiers in practice.
        if token.type is TokenType.KEYWORD and token.value in (
                "DATE", "YEAR", "MONTH", "DAY", "KEY", "VALUES"):
            self.advance()
            return token.value.lower()
        raise self.error("expected identifier")

    def expect_integer(self) -> int:
        token = self.peek()
        if token.type is TokenType.NUMBER and "." not in token.value:
            self.advance()
            return int(token.value)
        raise self.error("expected integer")

    def expect_end(self) -> None:
        if not self.at_end():
            raise self.error("unexpected trailing input")

    # -- statements ----------------------------------------------------------

    def parse_one(self) -> ast.Statement:
        token = self.peek()
        if token.type is not TokenType.KEYWORD:
            raise self.error("expected a statement")
        word = token.value
        if word == "SELECT":
            return self.parse_select()
        if word == "EXPLAIN":
            self.advance()
            return ast.ExplainStatement(select=self.parse_select())
        if word == "ANALYZE":
            self.advance()
            table = None
            next_token = self.peek()
            if not (next_token.type is TokenType.END
                    or (next_token.type is TokenType.OPERATOR
                        and next_token.value == ";")):
                table = self.expect_identifier()
            return ast.AnalyzeStatement(table=table)
        if word == "INSERT":
            return self.parse_insert()
        if word == "UPDATE":
            return self.parse_update()
        if word == "DELETE":
            return self.parse_delete()
        if word == "CREATE":
            return self.parse_create()
        if word == "DROP":
            return self.parse_drop()
        if word in ("EXEC", "EXECUTE"):
            return self.parse_exec()
        if word == "BEGIN":
            self.advance()
            self.accept_keyword("TRANSACTION", "TRAN")
            return ast.BeginTransactionStatement()
        if word == "COMMIT":
            self.advance()
            self.accept_keyword("TRANSACTION", "TRAN")
            return ast.CommitStatement()
        if word == "ROLLBACK":
            self.advance()
            self.accept_keyword("TRANSACTION", "TRAN")
            return ast.RollbackStatement()
        raise self.error(f"unsupported statement {word}")

    # SELECT ---------------------------------------------------------------

    def parse_select(self):
        """A query expression: SELECT core (UNION [ALL] core)* [ORDER BY]
        [LIMIT].  Returns a SelectStatement, or a UnionSelect for chains.
        """
        selects = [self._select_core()]
        all_flags: list[bool] = []
        while self.accept_keyword("UNION"):
            all_flags.append(bool(self.accept_keyword("ALL")))
            selects.append(self._select_core())
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.accept_operator(","):
                order_by.append(self._order_item())
        top = None
        if self.accept_keyword("LIMIT"):
            top = self.expect_integer()
        if len(selects) == 1:
            select = selects[0]
            select.order_by = order_by
            if top is not None:
                select.top = top if select.top is None \
                    else min(select.top, top)
            return select
        return ast.UnionSelect(selects=selects, all_flags=all_flags,
                               order_by=order_by, top=top)

    def _select_core(self) -> ast.SelectStatement:
        """One SELECT without ORDER BY / LIMIT (those bind to the whole
        query expression)."""
        self.expect_keyword("SELECT")
        top = None
        if self.accept_keyword("TOP"):
            top = self.expect_integer()
        distinct = bool(self.accept_keyword("DISTINCT"))
        self.accept_keyword("ALL")
        select_items = self._select_list()
        from_items: list[ast.TableRef] = []
        if self.accept_keyword("FROM"):
            from_items = self._from_list()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: list[ast.Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_operator(","):
                group_by.append(self.parse_expr())
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        return ast.SelectStatement(
            select_items=select_items, from_items=from_items, where=where,
            group_by=group_by, having=having, order_by=[],
            distinct=distinct, top=top)

    def _select_list(self) -> list[ast.SelectItem]:
        items = [self._select_item()]
        while self.accept_operator(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.SelectItem:
        if self.accept_operator("*"):
            return ast.SelectItem(expr=ast.Star())
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.peek().type is TokenType.IDENTIFIER:
            alias = self.expect_identifier()
        return ast.SelectItem(expr=expr, alias=alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending)

    def _from_list(self) -> list[ast.TableRef]:
        refs = [self._table_ref()]
        while self.accept_operator(","):
            refs.append(self._table_ref())
        return refs

    def _table_ref(self) -> ast.TableRef:
        ref = self._primary_table_ref()
        while True:
            token = self.peek()
            if token.type is not TokenType.KEYWORD or \
                    token.value not in _JOIN_STARTERS:
                return ref
            kind = "inner"
            if self.accept_keyword("INNER"):
                pass
            elif self.accept_keyword("LEFT"):
                self.accept_keyword("OUTER")
                kind = "left"
            elif self.accept_keyword("RIGHT"):
                raise self.error("RIGHT JOIN is not supported; rewrite as LEFT")
            elif self.accept_keyword("CROSS"):
                kind = "cross"
            self.expect_keyword("JOIN")
            right = self._primary_table_ref()
            condition = None
            if kind != "cross":
                self.expect_keyword("ON")
                condition = self.parse_expr()
            ref = ast.Join(kind=kind, left=ref, right=right,
                           condition=condition)

    def _primary_table_ref(self) -> ast.TableRef:
        if self.accept_operator("("):
            select = self.parse_select()
            self.expect_operator(")")
            self.accept_keyword("AS")
            alias = self.expect_identifier()
            return ast.DerivedTable(select=select, alias=alias)
        name = self.expect_identifier()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.peek().type is TokenType.IDENTIFIER:
            alias = self.expect_identifier()
        return ast.TableName(name=name, alias=alias)

    # INSERT / UPDATE / DELETE ------------------------------------------------

    def parse_insert(self) -> ast.InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier()
        columns: list[str] = []
        if self.accept_operator("("):
            columns.append(self.expect_identifier())
            while self.accept_operator(","):
                columns.append(self.expect_identifier())
            self.expect_operator(")")
        if self.accept_keyword("VALUES"):
            rows = [self._value_row()]
            while self.accept_operator(","):
                rows.append(self._value_row())
            return ast.InsertStatement(table=table, columns=columns,
                                       rows=rows)
        if self.peek().matches_keyword("SELECT"):
            select = self.parse_select()
            return ast.InsertStatement(table=table, columns=columns,
                                       select=select)
        raise self.error("expected VALUES or SELECT in INSERT")

    def _value_row(self) -> list[ast.Expr]:
        self.expect_operator("(")
        row = [self.parse_expr()]
        while self.accept_operator(","):
            row.append(self.parse_expr())
        self.expect_operator(")")
        return row

    def parse_update(self) -> ast.UpdateStatement:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier()
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.accept_operator(","):
            assignments.append(self._assignment())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.UpdateStatement(table=table, assignments=assignments,
                                   where=where)

    def _assignment(self) -> tuple[str, ast.Expr]:
        column = self.expect_identifier()
        self.expect_operator("=")
        return column, self.parse_expr()

    def parse_delete(self) -> ast.DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.DeleteStatement(table=table, where=where)

    # DDL ----------------------------------------------------------------------

    def parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self._create_table()
        unique = bool(self.accept_keyword("UNIQUE"))
        if self.accept_keyword("INDEX"):
            return self._create_index(unique)
        if unique:
            raise self.error("expected INDEX after UNIQUE")
        if self.accept_keyword("PROCEDURE", "PROC"):
            return self._create_procedure()
        if self.accept_keyword("VIEW"):
            return self._create_view()
        raise self.error("expected TABLE, INDEX, VIEW or PROCEDURE")

    def _create_table(self) -> ast.CreateTableStatement:
        name = self.expect_identifier()
        self.expect_operator("(")
        columns: list[ast.ColumnDef] = []
        primary_key: list[str] = []
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                self.expect_operator("(")
                primary_key.append(self.expect_identifier())
                while self.accept_operator(","):
                    primary_key.append(self.expect_identifier())
                self.expect_operator(")")
            else:
                columns.append(self._column_def(primary_key))
            if not self.accept_operator(","):
                break
        self.expect_operator(")")
        return ast.CreateTableStatement(name=name, columns=columns,
                                        primary_key=primary_key)

    def _column_def(self, primary_key: list[str]) -> ast.ColumnDef:
        name = self.expect_identifier()
        type_name, length = self._type_spec()
        nullable = True
        is_pk = False
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                nullable = False
            elif self.accept_keyword("NULL"):
                nullable = True
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                is_pk = True
            else:
                break
        if is_pk:
            primary_key.append(name)
        return ast.ColumnDef(name=name, type_name=type_name, length=length,
                             nullable=nullable, primary_key=is_pk)

    def _type_spec(self) -> tuple[str, int]:
        token = self.peek()
        if token.type is TokenType.KEYWORD and token.value == "DATE":
            self.advance()
            return "DATE", 0
        type_name = self.expect_identifier().upper()
        length = 0
        if self.accept_operator("("):
            length = self.expect_integer()
            if self.accept_operator(","):
                self.expect_integer()  # scale: parsed, ignored
            self.expect_operator(")")
        return type_name, length

    def _create_index(self, unique: bool) -> ast.CreateIndexStatement:
        name = self.expect_identifier()
        self.expect_keyword("ON")
        table = self.expect_identifier()
        self.expect_operator("(")
        columns = [self.expect_identifier()]
        while self.accept_operator(","):
            columns.append(self.expect_identifier())
        self.expect_operator(")")
        return ast.CreateIndexStatement(name=name, table=table,
                                        columns=columns, unique=unique)

    def _create_procedure(self) -> ast.CreateProcedureStatement:
        name = self.expect_identifier()
        params: list[tuple[str, str]] = []
        wrapped = self.accept_operator("(")
        while self.peek().type is TokenType.PARAMETER:
            param = self.advance().value
            type_name, _length = self._type_spec()
            params.append((param, type_name))
            if not self.accept_operator(","):
                break
        if wrapped:
            self.expect_operator(")")
        self.expect_keyword("AS")
        # The body is the rest of the batch, captured as raw text.
        body_start = self.peek().position
        body_sql = self._sql[body_start:].rstrip().rstrip(";")
        if not body_sql.strip():
            raise self.error("empty procedure body")
        self._pos = len(self._tokens) - 1  # consume everything
        return ast.CreateProcedureStatement(name=name, params=params,
                                            body_sql=body_sql)

    def _create_view(self) -> ast.CreateViewStatement:
        name = self.expect_identifier()
        self.expect_keyword("AS")
        # Like a procedure body, the view definition is the rest of the
        # batch, captured as raw text and validated at CREATE time.
        body_start = self.peek().position
        body_sql = self._sql[body_start:].rstrip().rstrip(";")
        if not body_sql.strip():
            raise self.error("empty view definition")
        self._pos = len(self._tokens) - 1
        return ast.CreateViewStatement(name=name, body_sql=body_sql)

    def parse_drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            return ast.DropTableStatement(name=self.expect_identifier())
        if self.accept_keyword("INDEX"):
            return ast.DropIndexStatement(name=self.expect_identifier())
        if self.accept_keyword("PROCEDURE", "PROC"):
            return ast.DropProcedureStatement(name=self.expect_identifier())
        if self.accept_keyword("VIEW"):
            return ast.DropViewStatement(name=self.expect_identifier())
        raise self.error("expected TABLE, INDEX, VIEW or PROCEDURE")

    def parse_exec(self) -> ast.ExecStatement:
        self.accept_keyword("EXEC") or self.accept_keyword("EXECUTE")
        name = self.expect_identifier()
        args: list[ast.Expr] = []
        if not self.at_end() and not self.peek().matches_keyword("SELECT") \
                and not (self.peek().type is TokenType.OPERATOR
                         and self.peek().value == ";"):
            args.append(self.parse_expr())
            while self.accept_operator(","):
                args.append(self.parse_expr())
        return ast.ExecStatement(name=name, args=args)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        expr = self._and_expr()
        while self.accept_keyword("OR"):
            expr = ast.Binary(op="OR", left=expr, right=self._and_expr())
        return expr

    def _and_expr(self) -> ast.Expr:
        expr = self._not_expr()
        while self.accept_keyword("AND"):
            expr = ast.Binary(op="AND", left=expr, right=self._not_expr())
        return expr

    def _not_expr(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.Unary(op="NOT", operand=self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expr:
        if self.peek().matches_keyword("EXISTS"):
            self.advance()
            self.expect_operator("(")
            subquery = self.parse_select()
            self.expect_operator(")")
            return ast.Exists(subquery=subquery)
        expr = self._additive()
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("BETWEEN"):
            low = self._additive()
            self.expect_keyword("AND")
            high = self._additive()
            return ast.Between(operand=expr, low=low, high=high,
                               negated=negated)
        if self.accept_keyword("IN"):
            return self._in_predicate(expr, negated)
        if self.accept_keyword("LIKE"):
            pattern = self._additive()
            return ast.Like(operand=expr, pattern=pattern, negated=negated)
        if negated:
            raise self.error("expected BETWEEN, IN or LIKE after NOT")
        if self.accept_keyword("IS"):
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNull(operand=expr, negated=negated)
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in (
                "=", "<>", "<", "<=", ">", ">="):
            op = self.advance().value
            right = self._additive()
            return ast.Binary(op=op, left=expr, right=right)
        return expr

    def _in_predicate(self, expr: ast.Expr, negated: bool) -> ast.Expr:
        self.expect_operator("(")
        if self.peek().matches_keyword("SELECT"):
            subquery = self.parse_select()
            self.expect_operator(")")
            return ast.InSubquery(operand=expr, subquery=subquery,
                                  negated=negated)
        items = [self.parse_expr()]
        while self.accept_operator(","):
            items.append(self.parse_expr())
        self.expect_operator(")")
        return ast.InList(operand=expr, items=items, negated=negated)

    def _additive(self) -> ast.Expr:
        expr = self._term()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in (
                    "+", "-", "||"):
                op = self.advance().value
                expr = ast.Binary(op=op, left=expr, right=self._term())
            else:
                return expr

    def _term(self) -> ast.Expr:
        expr = self._factor()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/"):
                op = self.advance().value
                expr = ast.Binary(op=op, left=expr, right=self._factor())
            else:
                return expr

    def _factor(self) -> ast.Expr:
        if self.accept_operator("-"):
            return ast.Unary(op="-", operand=self._factor())
        if self.accept_operator("+"):
            return self._factor()
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAMETER:
            self.advance()
            return ast.Param(name=token.value)
        if token.matches_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.matches_keyword("DATE"):
            return self._date_literal()
        if token.matches_keyword("INTERVAL"):
            return self._interval_literal()
        if token.matches_keyword("CASE"):
            return self._case_expr()
        if token.type is TokenType.OPERATOR and token.value == "(":
            self.advance()
            if self.peek().matches_keyword("SELECT"):
                subquery = self.parse_select()
                self.expect_operator(")")
                return ast.ScalarSubquery(subquery=subquery)
            expr = self.parse_expr()
            self.expect_operator(")")
            return expr
        if token.type is TokenType.IDENTIFIER or token.type is TokenType.KEYWORD:
            return self._identifier_expr()
        raise self.error("expected an expression")

    def _date_literal(self) -> ast.Expr:
        self.expect_keyword("DATE")
        token = self.peek()
        if token.type is not TokenType.STRING:
            raise self.error("expected date string after DATE")
        self.advance()
        try:
            value = datetime.date.fromisoformat(token.value)
        except ValueError as exc:
            raise self.error(f"bad date literal {token.value!r}") from exc
        return ast.Literal(value)

    def _interval_literal(self) -> ast.Expr:
        self.expect_keyword("INTERVAL")
        token = self.peek()
        if token.type is TokenType.STRING:
            self.advance()
            amount = int(token.value)
        elif token.type is TokenType.NUMBER:
            self.advance()
            amount = int(token.value)
        else:
            raise self.error("expected amount after INTERVAL")
        unit = self.accept_keyword(*_INTERVAL_UNITS)
        if unit is None:
            raise self.error("expected YEAR, MONTH or DAY")
        return ast.Interval(amount=amount, unit=unit.lower())

    def _case_expr(self) -> ast.Expr:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            result = self.parse_expr()
            whens.append((cond, result))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        else_result = None
        if self.accept_keyword("ELSE"):
            else_result = self.parse_expr()
        self.expect_keyword("END")
        return ast.CaseWhen(whens=whens, else_result=else_result)

    def _identifier_expr(self) -> ast.Expr:
        token = self.peek()
        name = self.expect_identifier() if token.type is TokenType.IDENTIFIER \
            else self._keyword_as_identifier()
        lowered = name.lower()
        if self.peek().type is TokenType.OPERATOR and self.peek().value == "(":
            return self._func_call(lowered)
        if self.accept_operator("."):
            if self.accept_operator("*"):
                return ast.Star(table=lowered)
            column = self.expect_identifier()
            return ast.ColumnRef(table=lowered, name=column.lower())
        return ast.ColumnRef(table=None, name=lowered)

    def _keyword_as_identifier(self) -> str:
        token = self.peek()
        if token.type is TokenType.KEYWORD and token.value in (
                "YEAR", "MONTH", "DAY", "KEY"):
            self.advance()
            return token.value.lower()
        raise self.error("expected an expression")

    def _func_call(self, name: str) -> ast.Expr:
        self.expect_operator("(")
        if name == "extract":
            field = self.accept_keyword("YEAR", "MONTH", "DAY")
            if field is None:
                raise self.error("EXTRACT field must be YEAR, MONTH or DAY")
            self.expect_keyword("FROM")
            operand = self.parse_expr()
            self.expect_operator(")")
            return ast.Extract(field_name=field.lower(), operand=operand)
        if name == "substring":
            operand = self.parse_expr()
            if self.accept_keyword("FROM"):
                start = self.parse_expr()
                length = None
                if self.accept_identifier_word("for"):
                    length = self.parse_expr()
            else:
                self.expect_operator(",")
                start = self.parse_expr()
                length = None
                if self.accept_operator(","):
                    length = self.parse_expr()
            self.expect_operator(")")
            args = [operand, start] + ([length] if length is not None else [])
            return ast.FuncCall(name="substring", args=args)
        if self.accept_operator("*"):
            self.expect_operator(")")
            return ast.FuncCall(name=name, star=True)
        distinct = bool(self.accept_keyword("DISTINCT"))
        args: list[ast.Expr] = []
        if not (self.peek().type is TokenType.OPERATOR
                and self.peek().value == ")"):
            args.append(self.parse_expr())
            while self.accept_operator(","):
                args.append(self.parse_expr())
        self.expect_operator(")")
        return ast.FuncCall(name=name, args=args, distinct=distinct)

    def accept_identifier_word(self, word: str) -> bool:
        """Accept a specific non-reserved word (e.g. FOR in SUBSTRING)."""
        token = self.peek()
        if token.type is TokenType.IDENTIFIER and token.value.lower() == word:
            self.advance()
            return True
        return False

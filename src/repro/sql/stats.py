"""Table/column statistics: ANALYZE collection and selectivity estimation.

``ANALYZE [table]`` scans a table once and records, per column: the row
count, number of distinct values (NDV), min/max, null fraction, and an
equi-depth histogram for orderable (numeric/string) columns.  The result
is a plain dict stored in the catalog (``Catalog.table_stats``), so it
rides the ``catalog_snapshot`` blob through checkpoints and survives both
restart recovery and Phoenix recovery.

The estimation half turns those statistics into selectivities for the
planner's conjunct extraction:

* equality      ``col = v``            → ``1 / NDV``
* range         ``lo < col < hi``      → histogram fraction between the
  bounds (linear interpolation inside a bucket for numerics, bucket
  granularity for strings), falling back to min/max interpolation and
  finally to a fixed default when no statistics help;
* conjunctions  independence (product), with a sanity clamp so a stack
  of correlated predicates cannot drive an estimate to zero.

Everything here is deterministic and meter-free; the engine charges the
ANALYZE scan itself (see ``DatabaseEngine._execute_analyze``).
"""

from __future__ import annotations

import datetime
from bisect import bisect_left, bisect_right

#: Fallbacks when a column has no usable statistics.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.3
#: Sanity clamp: no predicate stack may claim fewer than this fraction
#: of a table's rows (guards against correlated-conjunct underestimates).
MIN_SELECTIVITY = 1e-4


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------


def _orderable(values: list) -> bool:
    """True when ``values`` sort as one homogeneous family (numeric,
    string, or date) — the types we histogram."""
    if not values:
        return False
    if all(isinstance(v, (int, float)) and not isinstance(v, bool)
           for v in values):
        return True
    if all(isinstance(v, str) for v in values):
        return True
    return all(isinstance(v, datetime.date) for v in values)


def _as_number(value):
    """Map a histogram-able value onto the number line for in-bucket
    interpolation (dates by ordinal); None for strings and the rest."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, datetime.date):
        return value.toordinal()
    return None


def _equi_depth_histogram(sorted_values: list, buckets: int) -> list | None:
    """Bucket boundaries ``[b0, .., bB]`` with ~equal row counts per
    bucket.  ``b0``/``bB`` are the column min/max; interior boundaries
    sit at the equi-depth quantiles."""
    n = len(sorted_values)
    if n < 2 or buckets < 1:
        return None
    buckets = min(buckets, n)
    bounds = [sorted_values[0]]
    for i in range(1, buckets):
        bounds.append(sorted_values[(i * n) // buckets])
    bounds.append(sorted_values[-1])
    return bounds


def collect_table_stats(table, buckets: int = 16) -> dict:
    """One-pass statistics for a table runtime (see module docstring).

    Returns a plain dict (catalog/snapshot friendly)::

        {"row_count": int, "page_count": int,
         "columns": {name: {"ndv": int, "null_frac": float,
                            "min": v | None, "max": v | None,
                            "histogram": [bounds...] | None}}}
    """
    column_names = [c.name.lower() for c in table.info.columns]
    values: list[list] = [[] for _ in column_names]
    nulls = [0] * len(column_names)
    row_count = 0
    page_count = 0
    for block in table.scan_pages():
        if not block:
            continue
        page_count += 1
        for _rid, row in block:
            row_count += 1
            for i, v in enumerate(row):
                if v is None:
                    nulls[i] += 1
                else:
                    values[i].append(v)
    columns: dict[str, dict] = {}
    for i, name in enumerate(column_names):
        col_values = values[i]
        col: dict = {
            "ndv": len(set(col_values)),
            "null_frac": (nulls[i] / row_count) if row_count else 0.0,
            "min": None,
            "max": None,
            "histogram": None,
        }
        if _orderable(col_values):
            col_values.sort()
            col["min"] = col_values[0]
            col["max"] = col_values[-1]
            col["histogram"] = _equi_depth_histogram(col_values, buckets)
        columns[name] = col
    return {"row_count": row_count, "page_count": page_count,
            "columns": columns}


# ---------------------------------------------------------------------------
# Estimation
# ---------------------------------------------------------------------------


def equality_selectivity(col: dict | None) -> float:
    """Selectivity of ``col = constant`` (uniform over distinct values)."""
    if not col:
        return DEFAULT_EQ_SELECTIVITY
    ndv = col.get("ndv") or 0
    if ndv <= 0:
        return DEFAULT_EQ_SELECTIVITY
    non_null = 1.0 - float(col.get("null_frac") or 0.0)
    return max(MIN_SELECTIVITY, min(1.0, non_null / ndv))


def _fraction_below(col: dict, value, inclusive: bool) -> float:
    """Estimated fraction of non-null rows with ``col < value`` (or
    ``<=`` when inclusive), via the equi-depth histogram."""
    hist = col.get("histogram")
    if hist and len(hist) >= 2:
        try:
            if inclusive:
                pos = bisect_right(hist, value)
            else:
                pos = bisect_left(hist, value)
        except TypeError:
            return 0.5
        if pos <= 0:
            return 0.0
        if pos >= len(hist):
            return 1.0
        buckets = len(hist) - 1
        v = _as_number(value)
        lo, hi = _as_number(hist[pos - 1]), _as_number(hist[pos])
        frac_in_bucket = 0.5
        if v is not None and lo is not None and hi is not None and hi > lo:
            frac_in_bucket = min(1.0, max(0.0, (v - lo) / (hi - lo)))
        return (pos - 1 + frac_in_bucket) / buckets
    v = _as_number(value)
    lo, hi = _as_number(col.get("min")), _as_number(col.get("max"))
    if v is not None and lo is not None and hi is not None and hi > lo:
        return min(1.0, max(0.0, (v - lo) / (hi - lo)))
    return 0.5


def range_selectivity(col: dict | None, lo=None, hi=None,
                      lo_inclusive: bool = True,
                      hi_inclusive: bool = True) -> float:
    """Selectivity of ``lo <op> col <op> hi`` (either bound optional)."""
    if not col or (lo is None and hi is None):
        return DEFAULT_RANGE_SELECTIVITY
    below_hi = (_fraction_below(col, hi, hi_inclusive)
                if hi is not None else 1.0)
    below_lo = (_fraction_below(col, lo, not lo_inclusive)
                if lo is not None else 0.0)
    non_null = 1.0 - float(col.get("null_frac") or 0.0)
    sel = (below_hi - below_lo) * non_null
    return max(MIN_SELECTIVITY, min(1.0, sel))


def combine_conjuncts(selectivities: list[float]) -> float:
    """Independence assumption with the sanity clamp."""
    sel = 1.0
    for s in selectivities:
        sel *= s
    return max(MIN_SELECTIVITY, min(1.0, sel))


def column_stats(stats: dict | None, column: str) -> dict | None:
    """The per-column stats dict, or None when never analyzed."""
    if not stats:
        return None
    return stats.get("columns", {}).get(column.lower())

"""Statement normalization and multi-level statement/plan caching.

Everything here trades *host* time for memory without moving a single
virtual second: the engine still levies ``cpu_per_statement_seconds`` per
executed statement, so paper-calibrated timings are untouched whether a
statement hits or misses these caches.

Three levels, all LRU-bounded:

1. **Normalization cache** — raw statement text to its auto-parameterized
   form (:func:`normalize_statement`): literals are replaced by ``@__litN``
   markers so the thousands of distinct TPC-C texts that differ only in
   inlined values collapse onto a handful of templates.  Pure text
   transform, schema independent, never invalidated.
2. **Template cache** — normalized (or raw, when not normalizable) text to
   its parsed AST.  Parsing is schema independent too; cached ASTs are
   treated as read-only and shared.
3. **Plan cache** — ``(normalized text, parameter type signature)`` to a
   compiled SELECT plan.  Plans bake in schema facts (column layouts,
   chosen indexes, inferred output types), so each entry records the
   catalog version of every table/view it touched and is revalidated on
   lookup; any DDL on a referenced object makes the entry stale.  Entries
   whose statements touch temp tables are held on the session (they die
   with it); everything else is engine-wide and dies with the engine on a
   crash.

Why literals become parameters *selectively*: the planner folds provably
constant predicates (``WHERE 0 = 1`` becomes an empty scan), treats bare
integers in ORDER BY as output positions, and requires literal integers
after TOP/LIMIT — parameterizing those would change plan shapes and
therefore virtual time.  The normalizer keeps exactly those literal
positions verbatim; see :func:`_literals_to_keep`.
"""

from __future__ import annotations

import datetime
import re
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

#: Namespace for auto-generated parameters; statements that already use it
#: are left alone so explicit binds can never collide.
PARAM_PREFIX = "__lit"

_NORMALIZABLE_STARTERS = frozenset({"SELECT", "INSERT", "UPDATE", "DELETE"})
_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})
_LITERAL_TYPES = (TokenType.NUMBER, TokenType.STRING)
#: Keywords that can directly precede a bare-constant conjunct
#: (``WHERE 0``): such literals stay verbatim so constant folding in
#: the planner sees exactly what the raw text said.
_CONJUNCT_HEADS = frozenset({"WHERE", "AND", "OR", "HAVING", "NOT"})


class LRUCache:
    """A size-bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        #: Lifetime count of entries pushed out by the size bound
        #: (explicit ``pop``/``clear`` are not evictions); surfaced by
        #: the ``sys_plan_cache`` view.
        self.evictions = 0
        self._items: OrderedDict = OrderedDict()

    def get(self, key):
        value = self._items.get(key)
        if value is not None:
            self._items.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._items[key] = value
        self._items.move_to_end(key)
        while len(self._items) > self.capacity:
            self._items.popitem(last=False)
            self.evictions += 1

    def pop(self, key) -> None:
        self._items.pop(key, None)

    def clear(self) -> None:
        self._items.clear()

    def values(self):
        return self._items.values()

    def items(self):
        return self._items.items()

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key) -> bool:
        return key in self._items


@dataclass(frozen=True)
class NormalizedStatement:
    """Outcome of auto-parameterizing one statement text."""

    text: str                     # template with @__litN markers
    values: tuple                 # (name, value) pairs, in marker order
    signature: tuple              # per-marker type signature (cache key part)

    @property
    def params(self) -> dict:
        return dict(self.values)


#: Fast-path eligibility: plain DML/query starter ...
_FAST_STARTER = re.compile(r"\s*(?:SELECT|INSERT|UPDATE|DELETE)\b",
                           re.IGNORECASE).match
#: ... and none of the features whose literal-keeping rules need real
#: token context: explicit parameters, comments, doubled-quote escapes,
#: double-quoted identifiers, and the keywords after which literals stay
#: verbatim (TOP/LIMIT/INTERVAL/DATE) or become positional (ORDER BY).
_FAST_BLOCKER = re.compile(
    r"[@?\";]|--|/\*|''|\b(?:TOP|LIMIT|ORDER|INTERVAL|DATE)\b",
    re.IGNORECASE).search
#: Simple string literals and stand-alone numbers (no exponent forms,
#: nothing glued to identifiers or dots).
_FAST_LITERAL = re.compile(r"'([^']*)'|(?<![\w.])\d+(?:\.\d+)?(?![\w.])")
#: A literal is parameterized on the fast path only when the previous
#: non-space character proves it is a comparison/arithmetic operand or a
#: list element.  Every other context (bare conjuncts, select-list
#: constants, keyword-adjacent literals) falls back to the tokenizer.
_FAST_PREV_OK = frozenset("=<>(,+-*/")
#: Characters that, adjacent to a comparison operator, may mean the other
#: operand is a constant too (literal-vs-literal predicates are kept
#: verbatim so the planner can fold them) — over-triggering is fine, it
#: only costs a fallback to the exact path.
_FAST_CONST_CHARS = frozenset("0123456789'.+-")


def _fast_compared_to_constant(sql: str, start: int, end: int) -> bool:
    """Might the literal at ``sql[start:end]`` sit in a literal-vs-literal
    comparison?  Conservative: True on any doubt."""
    n = len(sql)
    j = end
    while j < n and sql[j].isspace():
        j += 1
    if j < n and sql[j] in "=<>":
        while j < n and sql[j] in "=<>":
            j += 1
        while j < n and sql[j].isspace():
            j += 1
        if j < n and sql[j] in _FAST_CONST_CHARS:
            return True
    j = start - 1
    while j >= 0 and sql[j].isspace():
        j -= 1
    if j >= 0 and sql[j] in "=<>":
        while j >= 0 and sql[j] in "=<>":
            j -= 1
        while j >= 0 and sql[j].isspace():
            j -= 1
        if j >= 0 and sql[j] in _FAST_CONST_CHARS:
            return True
    return False


def _fast_normalize(sql: str) -> NormalizedStatement | None:
    """Regex-only normalization for simple literal shapes.

    Host-only shortcut: produces a usable template without tokenizing
    when every literal is provably an operand position the keep-rules
    never protect.  Returns None on *any* doubt — the caller then runs
    the exact tokenizer path.  Fast templates keep the raw text's
    spacing (the tokenizer path re-joins tokens), so the two paths can
    yield different-but-equivalent templates; each is self-consistent,
    which is all the statement/plan caches need.
    """
    if _FAST_BLOCKER(sql) or not _FAST_STARTER(sql):
        return None
    matches = list(_FAST_LITERAL.finditer(sql))
    if not matches:
        return None
    names: dict[tuple, str] = {}
    values: list[tuple[str, object]] = []
    signature: list[tuple] = []
    out: list[str] = []
    last = 0
    for m in matches:
        start = m.start()
        j = start - 1
        while j >= 0 and sql[j].isspace():
            j -= 1
        if j < 0 or sql[j] not in _FAST_PREV_OK:
            return None
        if _fast_compared_to_constant(sql, start, m.end()):
            return None
        content = m.group(1)
        if content is not None:
            key = ("str", content)
            value: object = content
        else:
            text = m.group(0)
            key = ("num", text)
            value = _number_value(text)
        name = names.get(key)
        if name is None:
            name = f"{PARAM_PREFIX}{len(names)}"
            names[key] = name
            values.append((name, value))
            signature.append(_type_signature(value))
        out.append(sql[last:start])
        out.append("@")
        out.append(name)
        last = m.end()
    out.append(sql[last:])
    template = "".join(out)
    if "'" in template:
        # An unpaired quote survived the literal scan — string syntax is
        # richer than the fast regex assumed; let the lexer decide.
        return None
    return NormalizedStatement(text=template, values=tuple(values),
                               signature=tuple(signature))


def normalize_statement(sql: str) -> NormalizedStatement | None:
    """Auto-parameterize ``sql``; None when it must be taken verbatim.

    Only plain DML/queries are normalized — DDL carries literals that are
    grammar (VARCHAR lengths), and control statements have none worth
    extracting.  Returns None rather than guessing whenever any rule is
    unsure, in which case the caller caches on the raw text instead.
    """
    # Cheap starter screen before paying for a full tokenize: anything
    # that is not plain DML/query (DDL, EXEC, BEGIN, ...) is verbatim.
    # Only trusted when the text starts with a word — a leading comment
    # hides the real starter, so fall through to the tokenizer then.
    head = sql.lstrip()[:6].upper()
    if head[:1].isalpha() and head not in _NORMALIZABLE_STARTERS:
        return None
    fast = _fast_normalize(sql)
    if fast is not None:
        return fast
    try:
        tokens = tokenize(sql)
    except SqlSyntaxError:
        return None
    if not tokens or tokens[0].type is not TokenType.KEYWORD:
        return None
    if tokens[0].value not in _NORMALIZABLE_STARTERS:
        return None
    if "@" in sql:  # parameter tokens cannot exist without an '@'
        for tok in tokens:
            if (tok.type is TokenType.PARAMETER
                    and tok.value.startswith(PARAM_PREFIX)):
                return None

    keep = _literals_to_keep(tokens)
    out: list[str] = []
    names: dict[tuple, str] = {}       # (kind, key) -> param name
    values: list[tuple[str, object]] = []
    signature: list[tuple] = []

    def intern(kind: str, key, value) -> str:
        name = names.get((kind, key))
        if name is None:
            name = f"{PARAM_PREFIX}{len(names)}"
            names[(kind, key)] = name
            values.append((name, value))
            signature.append(_type_signature(value))
        return name

    i = 0
    n = len(tokens)
    changed = False
    append = out.append
    while i < n:
        tok = tokens[i]
        ttype = tok.type
        # Identifiers and operators — the bulk of any statement — render
        # as their raw value; branch for them first.
        if ttype is TokenType.IDENTIFIER or ttype is TokenType.OPERATOR:
            append(tok.value)
            i += 1
            continue
        if ttype is TokenType.KEYWORD:
            # DATE 'yyyy-mm-dd' collapses into one date-valued parameter
            # (the parser only accepts a STRING after DATE, so the pair
            # must be absorbed together or left together).
            if (tok.value == "DATE"
                    and i + 1 < n
                    and tokens[i + 1].type is TokenType.STRING
                    and (i + 1) not in keep):
                try:
                    date_value = datetime.date.fromisoformat(
                        tokens[i + 1].value)
                except ValueError:
                    return None  # the parser would reject it anyway
                append("@" + intern("date", tokens[i + 1].value,
                                    date_value))
                changed = True
                i += 2
                continue
            append(tok.value)
            i += 1
            continue
        if ttype is TokenType.END:
            break
        if (ttype is TokenType.NUMBER or ttype is TokenType.STRING) \
                and i not in keep:
            prev = tokens[i - 1] if i > 0 else None
            if (prev is not None and prev.type is TokenType.KEYWORD
                    and prev.value in ("DATE", "INTERVAL")):
                append(_render(tok))
                i += 1
                continue
            if ttype is TokenType.NUMBER:
                append("@" + intern("num", tok.value,
                                    _number_value(tok.value)))
            else:
                append("@" + intern("str", tok.value, tok.value))
            changed = True
            i += 1
            continue
        append(_render(tok))
        i += 1

    if not changed:
        return None
    return NormalizedStatement(text=" ".join(out), values=tuple(values),
                               signature=tuple(signature))


def _number_value(text: str):
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)


def _type_signature(value) -> tuple:
    # String lengths are part of the signature because the planner's output
    # type inference reports VARCHAR(len(value)) for string parameters —
    # a cached plan must reproduce the exact column metadata of a cold one.
    if isinstance(value, str):
        return ("str", len(value))
    if isinstance(value, bool):
        return ("bool",)
    if isinstance(value, int):
        return ("int",)
    if isinstance(value, float):
        return ("float",)
    if isinstance(value, datetime.date):
        return ("date",)
    return (type(value).__name__,)


def _render(tok: Token) -> str:
    if tok.type is TokenType.STRING:
        return "'" + tok.value.replace("'", "''") + "'"
    if tok.type is TokenType.PARAMETER:
        return "@" + tok.value
    return tok.value


def _literals_to_keep(tokens: list[Token]) -> set[int]:
    """Indices of literal tokens that must stay verbatim in the template.

    Kept positions are exactly the ones where the planner's behavior
    depends on *seeing* a literal:

    * integers after TOP / LIMIT (grammar requires them);
    * literals after DATE / INTERVAL (grammar; DATE is absorbed separately);
    * bare integers in an ORDER BY list (1-based output positions);
    * literal-compared-to-literal predicates (constant folding —
      ``WHERE 0 = 1`` must still plan as an empty scan);
    * a literal standing alone as a conjunct (``WHERE 0``).
    """
    keep: set[int] = set()
    n = len(tokens)
    depth = 0
    order_depth: int | None = None

    def literal_unit(start: int) -> tuple[int, ...]:
        """Literal token indices of a constant operand at ``start``
        (empty when that side of the comparison is not a constant).
        ``DATE 'x'`` counts as a constant whose literal is the string."""
        if not 0 <= start < n:
            return ()
        if tokens[start].type in _LITERAL_TYPES:
            return (start,)
        if (tokens[start].type is TokenType.KEYWORD
                and tokens[start].value == "DATE" and start + 1 < n
                and tokens[start + 1].type is TokenType.STRING):
            return (start + 1,)
        return ()

    for i, tok in enumerate(tokens):
        ttype = tok.type
        if ttype is TokenType.OPERATOR:
            if tok.value == "(":
                depth += 1
            elif tok.value == ")":
                depth -= 1
                if order_depth is not None and depth < order_depth:
                    order_depth = None
            elif tok.value in _COMPARISON_OPS:
                left = literal_unit(i - 1)
                right = literal_unit(i + 1)
                if left and right:
                    keep.update(left)
                    keep.update(right)
            continue

        if ttype is TokenType.KEYWORD:
            if (tok.value == "BY" and i > 0
                    and tokens[i - 1].type is TokenType.KEYWORD
                    and tokens[i - 1].value == "ORDER"):
                order_depth = depth
            elif tok.value == "LIMIT" and order_depth == depth:
                order_depth = None
            continue

        if ttype is not TokenType.NUMBER and ttype is not TokenType.STRING:
            continue

        # Neighbors matter only for literal tokens; fetch them lazily.
        prev = tokens[i - 1] if i > 0 else None
        nxt = tokens[i + 1] if i + 1 < n else None

        if (prev is not None and prev.type is TokenType.KEYWORD
                and prev.value in ("TOP", "LIMIT", "INTERVAL")):
            keep.add(i)
            continue
        # Bare-constant conjunct: WHERE 0 / ... AND 1 — the planner folds
        # these, so hide nothing from it.
        if (prev is not None and prev.type is TokenType.KEYWORD
                and prev.value in _CONJUNCT_HEADS
                and (nxt is None or nxt.type is TokenType.END
                     or nxt.type is TokenType.KEYWORD
                     or (nxt.type is TokenType.OPERATOR
                         and nxt.value == ")"))):
            keep.add(i)
            continue
        # ORDER BY positional: integer list element at the list's depth.
        if (tok.type is TokenType.NUMBER and order_depth == depth
                and "." not in tok.value
                and "e" not in tok.value and "E" not in tok.value
                and prev is not None
                and ((prev.type is TokenType.KEYWORD and prev.value == "BY")
                     or (prev.type is TokenType.OPERATOR
                         and prev.value == ","))
                and nxt is not None
                and ((nxt.type is TokenType.OPERATOR
                      and nxt.value in (",", ")"))
                     or (nxt.type is TokenType.KEYWORD
                         and nxt.value in ("ASC", "DESC", "LIMIT"))
                     or nxt.type is TokenType.END)):
            keep.add(i)
    return keep


# ---------------------------------------------------------------------------
# Cached objects
# ---------------------------------------------------------------------------


@dataclass
class CachedStatement:
    """Level-2 entry: one parsed statement, shared across every raw text
    that normalizes to the same template.  Holds nothing text-specific —
    per-call literal values travel in the :class:`NormalizedStatement`
    of the *current* raw text, never in this shared object."""

    statement: object                         # parsed AST (read-only)
    #: Template text the statement was parsed from; None when the
    #: statement arrived pre-parsed (no text to key a plan on).
    text: str | None = None
    cacheable_plan: bool = True               # False after a planning mishap


@dataclass
class PlanCacheEntry:
    """Level-3 entry: one compiled SELECT plan plus revalidation facts."""

    plan: object                 # repro.sql.planner.Plan
    params: dict                 # mutable dict the plan's closures captured
    subqueries: list             # CompiledSubquery objects (memos cleared
                                 # before each reuse)
    table_versions: dict[str, int]   # referenced name -> catalog version
    #: Referenced temp tables, name -> the Table runtime the plan baked
    #: in.  Validated by object identity: a dropped/recreated temp table
    #: gets a fresh runtime, which makes the entry unusable.
    temp_tables: dict
    streamable: bool = False
    #: Number of row streams of this plan currently being consumed.  A
    #: suspended stream still reads the shared params dict, so a new
    #: execution must not rebind it; lookups bypass active entries.
    active: int = 0
    #: Memoized non-temp table names the statement references directly
    #: (the shared-lock set for transactional reads).  Computed lazily on
    #: first transactional use; a pure function of the template AST.
    lock_tables: list[str] | None = None
    #: Referenced name -> catalog *statistics* version at compile time.
    #: ANALYZE bumps the counter, so plans costed under stale statistics
    #: are invalidated and replanned exactly like post-DDL plans.
    stats_versions: dict[str, int] = field(default_factory=dict)

    def is_valid(self, catalog) -> bool:
        return (all(catalog.version_of(name) == version
                    for name, version in self.table_versions.items())
                and all(catalog.stats_version_of(name) == version
                        for name, version in self.stats_versions.items()))

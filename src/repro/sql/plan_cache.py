"""Statement normalization and multi-level statement/plan caching.

Everything here trades *host* time for memory without moving a single
virtual second: the engine still levies ``cpu_per_statement_seconds`` per
executed statement, so paper-calibrated timings are untouched whether a
statement hits or misses these caches.

Three levels, all LRU-bounded:

1. **Normalization cache** — raw statement text to its auto-parameterized
   form (:func:`normalize_statement`): literals are replaced by ``@__litN``
   markers so the thousands of distinct TPC-C texts that differ only in
   inlined values collapse onto a handful of templates.  Pure text
   transform, schema independent, never invalidated.
2. **Template cache** — normalized (or raw, when not normalizable) text to
   its parsed AST.  Parsing is schema independent too; cached ASTs are
   treated as read-only and shared.
3. **Plan cache** — ``(normalized text, parameter type signature)`` to a
   compiled SELECT plan.  Plans bake in schema facts (column layouts,
   chosen indexes, inferred output types), so each entry records the
   catalog version of every table/view it touched and is revalidated on
   lookup; any DDL on a referenced object makes the entry stale.  Entries
   whose statements touch temp tables are held on the session (they die
   with it); everything else is engine-wide and dies with the engine on a
   crash.

Why literals become parameters *selectively*: the planner folds provably
constant predicates (``WHERE 0 = 1`` becomes an empty scan), treats bare
integers in ORDER BY as output positions, and requires literal integers
after TOP/LIMIT — parameterizing those would change plan shapes and
therefore virtual time.  The normalizer keeps exactly those literal
positions verbatim; see :func:`_literals_to_keep`.
"""

from __future__ import annotations

import datetime
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

#: Namespace for auto-generated parameters; statements that already use it
#: are left alone so explicit binds can never collide.
PARAM_PREFIX = "__lit"

_NORMALIZABLE_STARTERS = frozenset({"SELECT", "INSERT", "UPDATE", "DELETE"})
_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})
_LITERAL_TYPES = (TokenType.NUMBER, TokenType.STRING)
#: Keywords that can directly precede a bare-constant conjunct
#: (``WHERE 0``): such literals stay verbatim so constant folding in
#: the planner sees exactly what the raw text said.
_CONJUNCT_HEADS = frozenset({"WHERE", "AND", "OR", "HAVING", "NOT"})


class LRUCache:
    """A size-bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        #: Lifetime count of entries pushed out by the size bound
        #: (explicit ``pop``/``clear`` are not evictions); surfaced by
        #: the ``sys_plan_cache`` view.
        self.evictions = 0
        self._items: OrderedDict = OrderedDict()

    def get(self, key):
        value = self._items.get(key)
        if value is not None:
            self._items.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._items[key] = value
        self._items.move_to_end(key)
        while len(self._items) > self.capacity:
            self._items.popitem(last=False)
            self.evictions += 1

    def pop(self, key) -> None:
        self._items.pop(key, None)

    def clear(self) -> None:
        self._items.clear()

    def values(self):
        return self._items.values()

    def items(self):
        return self._items.items()

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key) -> bool:
        return key in self._items


@dataclass(frozen=True)
class NormalizedStatement:
    """Outcome of auto-parameterizing one statement text."""

    text: str                     # template with @__litN markers
    values: tuple                 # (name, value) pairs, in marker order
    signature: tuple              # per-marker type signature (cache key part)

    @property
    def params(self) -> dict:
        return dict(self.values)


def normalize_statement(sql: str) -> NormalizedStatement | None:
    """Auto-parameterize ``sql``; None when it must be taken verbatim.

    Only plain DML/queries are normalized — DDL carries literals that are
    grammar (VARCHAR lengths), and control statements have none worth
    extracting.  Returns None rather than guessing whenever any rule is
    unsure, in which case the caller caches on the raw text instead.
    """
    # Cheap starter screen before paying for a full tokenize: anything
    # that is not plain DML/query (DDL, EXEC, BEGIN, ...) is verbatim.
    # Only trusted when the text starts with a word — a leading comment
    # hides the real starter, so fall through to the tokenizer then.
    head = sql.lstrip()[:6].upper()
    if head[:1].isalpha() and head not in _NORMALIZABLE_STARTERS:
        return None
    try:
        tokens = tokenize(sql)
    except SqlSyntaxError:
        return None
    if not tokens or tokens[0].type is not TokenType.KEYWORD:
        return None
    if tokens[0].value not in _NORMALIZABLE_STARTERS:
        return None
    for tok in tokens:
        if (tok.type is TokenType.PARAMETER
                and tok.value.startswith(PARAM_PREFIX)):
            return None

    keep = _literals_to_keep(tokens)
    out: list[str] = []
    names: dict[tuple, str] = {}       # (kind, key) -> param name
    values: list[tuple[str, object]] = []
    signature: list[tuple] = []

    def intern(kind: str, key, value) -> str:
        name = names.get((kind, key))
        if name is None:
            name = f"{PARAM_PREFIX}{len(names)}"
            names[(kind, key)] = name
            values.append((name, value))
            signature.append(_type_signature(value))
        return name

    i = 0
    n = len(tokens)
    changed = False
    while i < n:
        tok = tokens[i]
        if tok.type is TokenType.END:
            break
        # DATE 'yyyy-mm-dd' collapses into one date-valued parameter
        # (the parser only accepts a STRING after DATE, so the pair must
        # be absorbed together or left together).
        if (tok.type is TokenType.KEYWORD and tok.value == "DATE"
                and i + 1 < n and tokens[i + 1].type is TokenType.STRING
                and (i + 1) not in keep):
            try:
                date_value = datetime.date.fromisoformat(tokens[i + 1].value)
            except ValueError:
                return None  # the parser would reject it; keep seed behavior
            out.append("@" + intern("date", tokens[i + 1].value, date_value))
            changed = True
            i += 2
            continue
        if tok.type in _LITERAL_TYPES and i not in keep:
            prev = tokens[i - 1] if i > 0 else None
            if (prev is not None and prev.type is TokenType.KEYWORD
                    and prev.value in ("DATE", "INTERVAL")):
                out.append(_render(tok))
                i += 1
                continue
            if tok.type is TokenType.NUMBER:
                value = _number_value(tok.value)
                out.append("@" + intern("num", tok.value, value))
            else:
                out.append("@" + intern("str", tok.value, tok.value))
            changed = True
            i += 1
            continue
        out.append(_render(tok))
        i += 1

    if not changed:
        return None
    return NormalizedStatement(text=" ".join(out), values=tuple(values),
                               signature=tuple(signature))


def _number_value(text: str):
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)


def _type_signature(value) -> tuple:
    # String lengths are part of the signature because the planner's output
    # type inference reports VARCHAR(len(value)) for string parameters —
    # a cached plan must reproduce the exact column metadata of a cold one.
    if isinstance(value, str):
        return ("str", len(value))
    if isinstance(value, bool):
        return ("bool",)
    if isinstance(value, int):
        return ("int",)
    if isinstance(value, float):
        return ("float",)
    if isinstance(value, datetime.date):
        return ("date",)
    return (type(value).__name__,)


def _render(tok: Token) -> str:
    if tok.type is TokenType.STRING:
        return "'" + tok.value.replace("'", "''") + "'"
    if tok.type is TokenType.PARAMETER:
        return "@" + tok.value
    return tok.value


def _literals_to_keep(tokens: list[Token]) -> set[int]:
    """Indices of literal tokens that must stay verbatim in the template.

    Kept positions are exactly the ones where the planner's behavior
    depends on *seeing* a literal:

    * integers after TOP / LIMIT (grammar requires them);
    * literals after DATE / INTERVAL (grammar; DATE is absorbed separately);
    * bare integers in an ORDER BY list (1-based output positions);
    * literal-compared-to-literal predicates (constant folding —
      ``WHERE 0 = 1`` must still plan as an empty scan);
    * a literal standing alone as a conjunct (``WHERE 0``).
    """
    keep: set[int] = set()
    n = len(tokens)
    depth = 0
    order_depth: int | None = None

    def literal_unit(start: int) -> tuple[int, ...]:
        """Literal token indices of a constant operand at ``start``
        (empty when that side of the comparison is not a constant).
        ``DATE 'x'`` counts as a constant whose literal is the string."""
        if not 0 <= start < n:
            return ()
        if tokens[start].type in _LITERAL_TYPES:
            return (start,)
        if (tokens[start].type is TokenType.KEYWORD
                and tokens[start].value == "DATE" and start + 1 < n
                and tokens[start + 1].type is TokenType.STRING):
            return (start + 1,)
        return ()

    for i, tok in enumerate(tokens):
        prev = tokens[i - 1] if i > 0 else None
        nxt = tokens[i + 1] if i + 1 < n else None

        if tok.type is TokenType.OPERATOR:
            if tok.value == "(":
                depth += 1
            elif tok.value == ")":
                depth -= 1
                if order_depth is not None and depth < order_depth:
                    order_depth = None
            elif tok.value in _COMPARISON_OPS:
                left = literal_unit(i - 1)
                right = literal_unit(i + 1)
                if left and right:
                    keep.update(left)
                    keep.update(right)
            continue

        if tok.type is TokenType.KEYWORD:
            if (tok.value == "BY" and prev is not None
                    and prev.type is TokenType.KEYWORD
                    and prev.value == "ORDER"):
                order_depth = depth
            elif tok.value == "LIMIT" and order_depth == depth:
                order_depth = None
            continue

        if tok.type not in _LITERAL_TYPES:
            continue

        if (prev is not None and prev.type is TokenType.KEYWORD
                and prev.value in ("TOP", "LIMIT", "INTERVAL")):
            keep.add(i)
            continue
        # Bare-constant conjunct: WHERE 0 / ... AND 1 — the planner folds
        # these, so hide nothing from it.
        if (prev is not None and prev.type is TokenType.KEYWORD
                and prev.value in _CONJUNCT_HEADS
                and (nxt is None or nxt.type is TokenType.END
                     or nxt.type is TokenType.KEYWORD
                     or (nxt.type is TokenType.OPERATOR
                         and nxt.value == ")"))):
            keep.add(i)
            continue
        # ORDER BY positional: integer list element at the list's depth.
        if (tok.type is TokenType.NUMBER and order_depth == depth
                and "." not in tok.value
                and "e" not in tok.value and "E" not in tok.value
                and prev is not None
                and ((prev.type is TokenType.KEYWORD and prev.value == "BY")
                     or (prev.type is TokenType.OPERATOR
                         and prev.value == ","))
                and nxt is not None
                and ((nxt.type is TokenType.OPERATOR
                      and nxt.value in (",", ")"))
                     or (nxt.type is TokenType.KEYWORD
                         and nxt.value in ("ASC", "DESC", "LIMIT"))
                     or nxt.type is TokenType.END)):
            keep.add(i)
    return keep


# ---------------------------------------------------------------------------
# Cached objects
# ---------------------------------------------------------------------------


@dataclass
class CachedStatement:
    """Level-2 entry: one parsed statement, shared across every raw text
    that normalizes to the same template.  Holds nothing text-specific —
    per-call literal values travel in the :class:`NormalizedStatement`
    of the *current* raw text, never in this shared object."""

    statement: object                         # parsed AST (read-only)
    #: Template text the statement was parsed from; None when the
    #: statement arrived pre-parsed (no text to key a plan on).
    text: str | None = None
    cacheable_plan: bool = True               # False after a planning mishap


@dataclass
class PlanCacheEntry:
    """Level-3 entry: one compiled SELECT plan plus revalidation facts."""

    plan: object                 # repro.sql.planner.Plan
    params: dict                 # mutable dict the plan's closures captured
    subqueries: list             # CompiledSubquery objects (memos cleared
                                 # before each reuse)
    table_versions: dict[str, int]   # referenced name -> catalog version
    #: Referenced temp tables, name -> the Table runtime the plan baked
    #: in.  Validated by object identity: a dropped/recreated temp table
    #: gets a fresh runtime, which makes the entry unusable.
    temp_tables: dict
    streamable: bool = False
    #: Number of row streams of this plan currently being consumed.  A
    #: suspended stream still reads the shared params dict, so a new
    #: execution must not rebind it; lookups bypass active entries.
    active: int = 0

    def is_valid(self, catalog) -> bool:
        return all(catalog.version_of(name) == version
                   for name, version in self.table_versions.items())

"""SQL frontend: lexer, parser, AST, planner and executor.

The dialect is the SQL-92 subset the paper's workloads require, plus the
T-SQL-isms Phoenix itself uses:

* ``SELECT [TOP n] [DISTINCT] ... FROM`` with inner/left joins, derived
  tables, ``WHERE``, ``GROUP BY``, ``HAVING``, ``ORDER BY``;
* scalar/IN/EXISTS subqueries, correlated subqueries, ``CASE``,
  ``BETWEEN``, ``LIKE``, ``EXTRACT``, ``SUBSTRING``, date/interval
  arithmetic, all five standard aggregates with ``DISTINCT``;
* ``INSERT`` (VALUES and SELECT forms), ``UPDATE``, ``DELETE``;
* ``CREATE/DROP TABLE`` (with ``#temp`` names), ``CREATE/DROP INDEX``,
  ``CREATE/DROP PROCEDURE`` with ``@params``, ``EXEC``;
* ``BEGIN TRANSACTION`` / ``COMMIT`` / ``ROLLBACK``.

The executor is a pull-based iterator tree that charges CPU and I/O to the
meter as it actually processes tuples, which is what makes the virtual
timings honest.
"""

from repro.sql.lexer import tokenize
from repro.sql.parser import parse_script, parse_statement

__all__ = ["tokenize", "parse_statement", "parse_script"]

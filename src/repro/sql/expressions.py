"""Expression compilation and evaluation.

Expressions are compiled once per plan into Python closures that evaluate
against an :class:`EvalContext` (the current row plus the chain of outer
rows for correlated subqueries).  SQL semantics implemented here:

* three-valued logic — comparisons with NULL yield unknown (``None``);
  AND/OR/NOT follow Kleene logic; WHERE/HAVING treat unknown as false;
* aggregates (SUM/AVG/COUNT/MIN/MAX, with DISTINCT) skip NULLs; SUM/AVG
  over an empty input are NULL, COUNT is 0;
* ``LIKE`` with ``%``/``_`` wildcards (compiled to cached regexes);
* date arithmetic with ``INTERVAL`` literals and ``EXTRACT``;
* scalar subqueries / IN / EXISTS evaluated through a planner-supplied
  callback, memoized on the outer values they actually reference.
"""

from __future__ import annotations

import datetime
import operator
import re
from dataclasses import dataclass, field

from repro.errors import ColumnNotFoundError, PlanningError, TypeMismatchError
from repro.sql import ast

#: Process-wide compiler diagnostics, surfaced through the ``sys_executor``
#: system view.  Counts compilations, not evaluations, so steady-state
#: workloads running from the plan cache leave these flat.
EXPR_STATS: dict[str, int] = {
    "exprs_compiled": 0,
    "consts_folded": 0,
    "slot_refs": 0,
}


def slot_of(fn) -> int | None:
    """The level-0 row index a compiled closure reads, if it is a bare
    column (or replacement-slot) reference — the batch executor uses this
    to index tuples directly instead of allocating an :class:`EvalContext`
    per row."""
    return getattr(fn, "_slot", None)


def is_impure(fn) -> bool:
    """True when evaluating ``fn`` can have side effects on the meter
    (the expression contains a subquery, whose execution charges virtual
    time).  Impure expressions pin the operator to row-at-a-time
    evaluation so charge ordering stays bit-identical."""
    return getattr(fn, "_impure", False)


@dataclass
class EvalContext:
    """Runtime context: the current row and the outer-row chain."""

    row: tuple
    outer: "EvalContext | None" = None

    def at_level(self, level: int) -> "EvalContext":
        ctx = self
        for _ in range(level):
            if ctx.outer is None:
                raise PlanningError("correlation level out of range")
            ctx = ctx.outer
        return ctx


class Scope:
    """Name resolution scope: column bindings of one query level.

    ``bindings`` is an ordered list of ``(table_binding, column_name)``
    pairs, matching the executor's row layout at that level.
    """

    def __init__(self, bindings: list[tuple[str, str]],
                 outer: "Scope | None" = None):
        self.bindings = bindings
        self.outer = outer
        #: (level, index) pairs for outer columns referenced from within
        #: this scope's subqueries — used for correlation memo keys.
        self.outer_refs: list[tuple[int, int]] = []

    def resolve(self, table: str | None, name: str,
                record: bool = True) -> tuple[int, int]:
        """Return (level, index); level 0 is this scope.

        Outer references are recorded on *every* scope they cross (with
        the level re-based to that scope) so a query boundary can ask
        "which outer values does anything inside me read?" — the planner
        uses this for correlated-subquery memoization keys.  Pass
        ``record=False`` for metadata-only resolution (type inference,
        structural keys), which must not count as a runtime correlation.
        """
        scope: Scope | None = self
        level = 0
        crossed: list[Scope] = []
        while scope is not None:
            index = scope._lookup(table, name)
            if index is not None:
                if record:
                    for distance, inner in enumerate(crossed):
                        inner._record_outer_ref(level - distance, index)
                return level, index
            crossed.append(scope)
            scope = scope.outer
            level += 1
        qualified = f"{table}.{name}" if table else name
        raise ColumnNotFoundError(f"unknown column {qualified!r}")

    def _lookup(self, table: str | None, name: str) -> int | None:
        name = name.lower()
        matches = []
        for i, (binding, column) in enumerate(self.bindings):
            if column.lower() != name:
                continue
            if table is not None and binding.lower() != table.lower():
                continue
            matches.append(i)
        if not matches:
            return None
        if len(matches) > 1:
            qualified = f"{table}.{name}" if table else name
            raise ColumnNotFoundError(f"ambiguous column {qualified!r}")
        return matches[0]

    def _record_outer_ref(self, level: int, index: int) -> None:
        ref = (level, index)
        if ref not in self.outer_refs:
            self.outer_refs.append(ref)


# ---------------------------------------------------------------------------
# Three-valued logic helpers
# ---------------------------------------------------------------------------


def sql_and(a, b):
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def sql_or(a, b):
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def sql_not(a):
    if a is None:
        return None
    return not a


def is_true(value) -> bool:
    """WHERE semantics: unknown is not true."""
    return value is True


_COMPARES = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def sql_compare(op: str, a, b):
    if a is None or b is None:
        return None
    # Branches ordered by frequency (numbers dominate key comparisons);
    # the guards are mutually exclusive so order never changes the result.
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return _COMPARES[op](a, b)
    if isinstance(a, str) and isinstance(b, str):
        return _COMPARES[op](a, b)
    if isinstance(a, datetime.date) and isinstance(b, datetime.date):
        return _COMPARES[op](a, b)
    # Mixed string/number comparisons: coerce string to number if possible.
    if isinstance(a, str) and isinstance(b, (int, float)):
        try:
            return _COMPARES[op](float(a), float(b))
        except ValueError:
            pass
    if isinstance(b, str) and isinstance(a, (int, float)):
        try:
            return _COMPARES[op](float(a), float(b))
        except ValueError:
            pass
    raise TypeMismatchError(
        f"cannot compare {type(a).__name__} with {type(b).__name__}")


def _add(a, b):
    if a is None or b is None:
        return None
    if isinstance(a, datetime.date) and isinstance(b, _IntervalValue):
        return b.add_to(a)
    if isinstance(b, datetime.date) and isinstance(a, _IntervalValue):
        return a.add_to(b)
    return a + b


def _sub(a, b):
    if a is None or b is None:
        return None
    if isinstance(a, datetime.date) and isinstance(b, _IntervalValue):
        return b.subtract_from(a)
    if isinstance(a, datetime.date) and isinstance(b, datetime.date):
        return (a - b).days
    return a - b


def _mul(a, b):
    if a is None or b is None:
        return None
    return a * b


def _div(a, b):
    if a is None or b is None:
        return None
    if b == 0:
        return None  # SQL engines raise; returning NULL keeps queries total
    return a / b


def _concat(a, b):
    if a is None or b is None:
        return None
    return str(a) + str(b)


_ARITH = {"+": _add, "-": _sub, "*": _mul, "/": _div, "||": _concat}


@dataclass(frozen=True)
class _IntervalValue:
    """Runtime value of an INTERVAL literal."""

    amount: int
    unit: str  # 'year' | 'month' | 'day'

    def add_to(self, date: datetime.date) -> datetime.date:
        return _shift_date(date, self.amount, self.unit)

    def subtract_from(self, date: datetime.date) -> datetime.date:
        return _shift_date(date, -self.amount, self.unit)


def _shift_date(date: datetime.date, amount: int, unit: str) -> datetime.date:
    if unit == "day":
        return date + datetime.timedelta(days=amount)
    months = amount * (12 if unit == "year" else 1)
    total = date.year * 12 + (date.month - 1) + months
    year, month = divmod(total, 12)
    month += 1
    day = min(date.day, _days_in_month(year, month))
    return datetime.date(year, month, day)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    first_next = datetime.date(year, month + 1, 1)
    return (first_next - datetime.timedelta(days=1)).day


_LIKE_CACHE: dict[str, re.Pattern] = {}


def like_match(value, pattern) -> bool | None:
    if value is None or pattern is None:
        return None
    regex = _LIKE_CACHE.get(pattern)
    if regex is None:
        parts = []
        for ch in pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        regex = re.compile("^" + "".join(parts) + "$", re.DOTALL)
        _LIKE_CACHE[pattern] = regex
    return regex.match(str(value)) is not None


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _fn_substring(args):
    text, start = args[0], args[1]
    if text is None or start is None:
        return None
    start_index = max(0, int(start) - 1)
    if len(args) > 2 and args[2] is not None:
        return str(text)[start_index:start_index + int(args[2])]
    return str(text)[start_index:]


def _fn_coalesce(args):
    for value in args:
        if value is not None:
            return value
    return None


_SCALAR_FUNCS = {
    "substring": _fn_substring,
    "coalesce": _fn_coalesce,
    "upper": lambda a: None if a[0] is None else str(a[0]).upper(),
    "lower": lambda a: None if a[0] is None else str(a[0]).lower(),
    "abs": lambda a: None if a[0] is None else abs(a[0]),
    "round": lambda a: None if a[0] is None else round(
        a[0], int(a[1]) if len(a) > 1 and a[1] is not None else 0),
    "length": lambda a: None if a[0] is None else len(str(a[0])),
    "mod": lambda a: None if (a[0] is None or a[1] is None) else a[0] % a[1],
}

AGGREGATE_NAMES = frozenset({"sum", "avg", "count", "min", "max"})


def is_aggregate_call(node: ast.Expr) -> bool:
    return isinstance(node, ast.FuncCall) and node.name in AGGREGATE_NAMES


def find_aggregates(node: ast.Expr | None) -> list[ast.FuncCall]:
    """Collect aggregate calls in ``node`` (not descending into subqueries)."""
    found: list[ast.FuncCall] = []
    _walk_for_aggregates(node, found)
    return found


def _walk_for_aggregates(node, found: list) -> None:
    if node is None or not isinstance(node, ast.Expr):
        return
    if is_aggregate_call(node):
        found.append(node)
        return  # nested aggregates are invalid; args handled by the agg
    for child in _children(node):
        _walk_for_aggregates(child, found)


def expr_has_subquery(node) -> bool:
    """True when ``node``'s subtree contains any subquery expression."""
    if node is None or not isinstance(node, ast.Expr):
        return False
    if isinstance(node, (ast.ScalarSubquery, ast.Exists, ast.InSubquery)):
        return True
    return any(expr_has_subquery(child) for child in _children(node))


_CONST_LEAVES = (ast.Literal, ast.Interval)
_NONCONST_NODES = (ast.ColumnRef, ast.Param, ast.ScalarSubquery,
                   ast.Exists, ast.InSubquery)
#: Context handed to constant subtrees when folding; they never read it.
_CONST_CTX = EvalContext(row=())


def _is_constant(node: ast.Expr) -> bool:
    """True when ``node`` evaluates to the same value on every row:
    literal leaves combined by deterministic operators/functions, with no
    column refs, parameters, or subqueries anywhere in the subtree."""
    if isinstance(node, _NONCONST_NODES):
        return False
    if isinstance(node, ast.FuncCall) and node.name in AGGREGATE_NAMES:
        return False
    children = _children(node)
    if not children:
        # Unknown childless node types are conservatively non-constant.
        return isinstance(node, _CONST_LEAVES)
    return all(_is_constant(child) for child in children)


def _children(node: ast.Expr):
    if isinstance(node, ast.Unary):
        return [node.operand]
    if isinstance(node, ast.Binary):
        return [node.left, node.right]
    if isinstance(node, ast.IsNull):
        return [node.operand]
    if isinstance(node, ast.Between):
        return [node.operand, node.low, node.high]
    if isinstance(node, ast.InList):
        return [node.operand] + list(node.items)
    if isinstance(node, ast.InSubquery):
        return [node.operand]
    if isinstance(node, ast.Like):
        return [node.operand, node.pattern]
    if isinstance(node, ast.CaseWhen):
        children = []
        for cond, result in node.whens:
            children.extend([cond, result])
        if node.else_result is not None:
            children.append(node.else_result)
        return children
    if isinstance(node, ast.FuncCall):
        return list(node.args)
    if isinstance(node, ast.Extract):
        return [node.operand]
    return []


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


@dataclass
class CompiledSubquery:
    """A planned subquery plus its correlation bookkeeping."""

    plan: object  # repro.sql.planner.Plan (kept loose to avoid a cycle)
    outer_refs: list[tuple[int, int]] = field(default_factory=list)
    memo: dict = field(default_factory=dict)


class ExprCompiler:
    """Compiles AST expressions into evaluator closures.

    ``subquery_planner(select, scope)`` is provided by the planner and
    returns a plan object; ``subquery_runner(plan, ctx)`` is provided by
    the executor at run time through the context — here we receive it at
    construction to keep closures self-contained.

    ``replacements`` maps ``id(ast_node)`` to an output slot index — the
    planner uses it to make post-aggregation expressions read aggregate
    results (and GROUP BY keys) from the aggregated row.
    """

    def __init__(self, scope: Scope, subquery_planner=None,
                 subquery_runner=None, params: dict | None = None,
                 replacements: dict[int, int] | None = None,
                 subquery_log: list | None = None):
        self._scope = scope
        self._plan_subquery = subquery_planner
        self._run_subquery = subquery_runner
        self._params = params or {}
        self._replacements = replacements or {}
        self._subquery_log = subquery_log

    def compile(self, node: ast.Expr):
        """Return ``fn(ctx: EvalContext) -> value``.

        Compiled closures carry two advisory attributes read through
        :func:`slot_of` / :func:`is_impure`: ``_slot`` (the closure is a
        bare level-0 column read of that tuple index — eligible for the
        batch executor's direct-indexing fast paths) and ``_impure`` (the
        subtree contains a subquery, so evaluation charges the meter and
        the operator must stay row-at-a-time).  Constant subtrees are
        folded to their value at compile time; a fold that raises falls
        back to the runtime closure so errors still surface during
        execution, exactly as before.
        """
        slot = self._replacements.get(id(node))
        if slot is not None:
            fn = lambda ctx, s=slot: ctx.row[s]  # noqa: E731
            fn._slot = slot
            EXPR_STATS["slot_refs"] += 1
            return fn
        method = getattr(self, "_compile_" + type(node).__name__.lower(),
                         None)
        if method is None:
            raise PlanningError(
                f"cannot compile expression node {type(node).__name__}")
        fn = method(node)
        EXPR_STATS["exprs_compiled"] += 1
        if expr_has_subquery(node):
            fn._impure = True
            return fn
        if not isinstance(node, _CONST_LEAVES) and _is_constant(node):
            try:
                value = fn(_CONST_CTX)
            except Exception:
                return fn
            EXPR_STATS["consts_folded"] += 1
            return lambda ctx, v=value: v
        return fn

    # -- leaves ---------------------------------------------------------------

    def _compile_literal(self, node: ast.Literal):
        value = node.value
        return lambda ctx: value

    def _compile_interval(self, node: ast.Interval):
        value = _IntervalValue(node.amount, node.unit)
        return lambda ctx: value

    def _compile_param(self, node: ast.Param):
        if node.name not in self._params:
            raise PlanningError(f"unbound parameter @{node.name}")
        # Look the value up at eval time: cached plans are re-executed with
        # the same (mutable) params dict rebound to new values.
        params = self._params
        name = node.name
        return lambda ctx: params[name]

    def _compile_columnref(self, node: ast.ColumnRef):
        level, index = self._scope.resolve(node.table, node.name)
        if level == 0:
            fn = lambda ctx, i=index: ctx.row[i]  # noqa: E731
            fn._slot = index
            EXPR_STATS["slot_refs"] += 1
            return fn
        return lambda ctx, l=level, i=index: ctx.at_level(l).row[i]

    # -- operators ---------------------------------------------------------

    def _compile_unary(self, node: ast.Unary):
        operand = self.compile(node.operand)
        if node.op == "NOT":
            return lambda ctx: sql_not(operand(ctx))
        if node.op == "-":
            return lambda ctx: None if operand(ctx) is None else -operand(ctx)
        return operand

    def _compile_binary(self, node: ast.Binary):
        left = self.compile(node.left)
        right = self.compile(node.right)
        op = node.op
        if op == "AND":
            return lambda ctx: sql_and(left(ctx), right(ctx))
        if op == "OR":
            return lambda ctx: sql_or(left(ctx), right(ctx))
        if op in _COMPARES:
            return lambda ctx: sql_compare(op, left(ctx), right(ctx))
        if op in _ARITH:
            fn = _ARITH[op]
            return lambda ctx: fn(left(ctx), right(ctx))
        raise PlanningError(f"unknown binary operator {op!r}")

    def _compile_isnull(self, node: ast.IsNull):
        operand = self.compile(node.operand)
        if node.negated:
            return lambda ctx: operand(ctx) is not None
        return lambda ctx: operand(ctx) is None

    def _compile_between(self, node: ast.Between):
        operand = self.compile(node.operand)
        low = self.compile(node.low)
        high = self.compile(node.high)

        def evaluate(ctx):
            value = operand(ctx)
            result = sql_and(sql_compare(">=", value, low(ctx)),
                             sql_compare("<=", value, high(ctx)))
            return sql_not(result) if node.negated else result

        return evaluate

    def _compile_inlist(self, node: ast.InList):
        operand = self.compile(node.operand)
        items = [self.compile(item) for item in node.items]
        negated = node.negated

        def evaluate(ctx):
            value = operand(ctx)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(ctx)
                if candidate is None:
                    saw_null = True
                    continue
                if sql_compare("=", value, candidate) is True:
                    return False if negated else True
            if saw_null:
                return None
            return True if negated else False

        # Fast path: every list item is a numeric literal.  A frozenset
        # probe matches sql_compare's numeric ``=`` exactly (int/float
        # hash equality), and the NULL bookkeeping vanishes because no
        # candidate is NULL.  Non-numeric operand values (a string
        # compared against numbers, a date mismatch) fall back to the
        # general loop so coercion and error behavior stay identical.
        if items and all(isinstance(item, ast.Literal)
                         and type(item.value) in (int, float)
                         for item in node.items):
            candidates = frozenset(item.value for item in node.items)

            def evaluate_fast(ctx):
                value = operand(ctx)
                if value is None:
                    return None
                if type(value) is int or type(value) is float:
                    hit = value in candidates
                    return (not hit) if negated else hit
                return evaluate(ctx)

            return evaluate_fast

        return evaluate

    def _compile_like(self, node: ast.Like):
        operand = self.compile(node.operand)
        pattern = self.compile(node.pattern)

        def evaluate(ctx):
            result = like_match(operand(ctx), pattern(ctx))
            return sql_not(result) if node.negated else result

        return evaluate

    def _compile_casewhen(self, node: ast.CaseWhen):
        whens = [(self.compile(cond), self.compile(result))
                 for cond, result in node.whens]
        else_fn = (self.compile(node.else_result)
                   if node.else_result is not None else None)

        def evaluate(ctx):
            for cond, result in whens:
                if is_true(cond(ctx)):
                    return result(ctx)
            return else_fn(ctx) if else_fn is not None else None

        return evaluate

    def _compile_extract(self, node: ast.Extract):
        operand = self.compile(node.operand)
        attr = node.field_name

        def evaluate(ctx):
            value = operand(ctx)
            if value is None:
                return None
            if not isinstance(value, datetime.date):
                raise TypeMismatchError(
                    f"EXTRACT expects a date, got {type(value).__name__}")
            return getattr(value, attr)

        return evaluate

    def _compile_funccall(self, node: ast.FuncCall):
        if node.name in AGGREGATE_NAMES:
            raise PlanningError(
                f"aggregate {node.name.upper()} used outside an "
                f"aggregating context")
        fn = _SCALAR_FUNCS.get(node.name)
        if fn is None:
            raise PlanningError(f"unknown function {node.name!r}")
        args = [self.compile(arg) for arg in node.args]
        return lambda ctx: fn([arg(ctx) for arg in args])

    # -- subqueries ----------------------------------------------------------

    def _compile_scalarsubquery(self, node: ast.ScalarSubquery):
        compiled = self._prepare_subquery(node.subquery)

        def evaluate(ctx):
            rows = self._execute_subquery(compiled, ctx)
            if not rows:
                return None
            if len(rows) > 1:
                raise PlanningError("scalar subquery returned multiple rows")
            if len(rows[0]) != 1:
                raise PlanningError(
                    "scalar subquery must return one column")
            return rows[0][0]

        return evaluate

    def _compile_exists(self, node: ast.Exists):
        compiled = self._prepare_subquery(node.subquery, limit_one=True)

        def evaluate(ctx):
            rows = self._execute_subquery(compiled, ctx)
            result = bool(rows)
            return (not result) if node.negated else result

        return evaluate

    def _compile_insubquery(self, node: ast.InSubquery):
        operand = self.compile(node.operand)
        compiled = self._prepare_subquery(node.subquery)

        def evaluate(ctx):
            value = operand(ctx)
            if value is None:
                return None
            rows = self._execute_subquery(compiled, ctx)
            saw_null = False
            for row in rows:
                candidate = row[0]
                if candidate is None:
                    saw_null = True
                    continue
                if sql_compare("=", value, candidate) is True:
                    return False if node.negated else True
            if saw_null:
                return None
            return True if node.negated else False

        return evaluate

    def _prepare_subquery(self, select: ast.SelectStatement,
                          limit_one: bool = False) -> CompiledSubquery:
        if self._plan_subquery is None:
            raise PlanningError("subqueries are not allowed in this context")
        plan, outer_refs = self._plan_subquery(select, self._scope,
                                               limit_one)
        compiled = CompiledSubquery(plan=plan, outer_refs=outer_refs)
        if self._subquery_log is not None:
            self._subquery_log.append(compiled)
        return compiled

    def _execute_subquery(self, compiled: CompiledSubquery,
                          ctx: EvalContext) -> list[tuple]:
        key = tuple(ctx.at_level(level - 1).row[index] if level > 0 else None
                    for level, index in compiled.outer_refs)
        cached = compiled.memo.get(key)
        if cached is not None:
            return cached
        rows = self._run_subquery(compiled.plan, ctx)
        compiled.memo[key] = rows
        return rows

"""EXPLAIN: render a physical plan as an indented operator tree.

``EXPLAIN <select>`` plans the statement without executing it and
returns one row per plan line — the tool we (and tests) use to see which
access paths and join strategies the planner picked.
"""

from __future__ import annotations

from repro.sql.executor import (
    Concat,
    Distinct,
    EmptyScan,
    Filter,
    HashAggregate,
    HashJoin,
    IndexSeek,
    Limit,
    NestedLoopJoin,
    PlanOperator,
    PointLookup,
    Project,
    SeqScan,
    SingleRowScan,
    Sort,
    SortMergeJoin,
    TopNHeapSort,
)


def explain_plan(root: PlanOperator) -> list[str]:
    """One line per operator, depth-first, two-space indentation."""
    lines: list[str] = []
    _walk(root, 0, lines)
    return lines


def _walk(op: PlanOperator, depth: int, lines: list[str]) -> None:
    line = _describe(op)
    # Cost-based plans carry the optimizer's estimates; heuristic plans
    # have no such attributes and render exactly as before.
    est_rows = getattr(op, "est_rows", None)
    if est_rows is not None:
        est_cost = getattr(op, "est_cost", 0.0)
        line += f"  [est_rows={est_rows:.0f} est_cost={est_cost:.6f}]"
    lines.append("  " * depth + line)
    for child in op.children():
        _walk(child, depth + 1, lines)


def _describe(op: PlanOperator) -> str:
    if isinstance(op, SeqScan):
        return (f"SeqScan({op.table.info.name}"
                f"{_factor_suffix(op.cost_factor)})")
    if isinstance(op, IndexSeek):
        parts = [f"index={op.index_name}",
                 f"prefix={len(op.prefix_fns)}"]
        if op.lo_fn is not None:
            parts.append("lo" + (">=" if op.lo_inclusive else ">"))
        if op.hi_fn is not None:
            parts.append("hi" + ("<=" if op.hi_inclusive else "<"))
        if op.index_only:
            parts.append("index-only")
        return (f"{type(op).__name__}({op.table.info.name} "
                + " ".join(parts)
                + _factor_suffix(op.cost_factor) + ")")
    if isinstance(op, PointLookup):
        return (f"PointLookup({op.seek.table.info.name} "
                f"index={op.seek.index_name})")
    if isinstance(op, Filter):
        return "Filter"
    if isinstance(op, Project):
        return f"Project({len(op.exprs)} cols)"
    if isinstance(op, HashJoin):
        residual = " residual" if op.residual is not None else ""
        return (f"HashJoin({op.kind} keys={len(op.left_key_fns)}"
                f"{residual})")
    if isinstance(op, NestedLoopJoin):
        cond = " cond" if op.condition is not None else ""
        return f"NestedLoopJoin({op.kind}{cond})"
    if isinstance(op, SortMergeJoin):
        residual = " residual" if op.residual is not None else ""
        presorted = []
        if op.left_sorted:
            presorted.append("left-sorted")
        if op.right_sorted:
            presorted.append("right-sorted")
        note = (" " + " ".join(presorted)) if presorted else ""
        return (f"SortMergeJoin(keys={len(op.left_key_fns)}"
                f"{note}{residual})")
    if isinstance(op, TopNHeapSort):
        return f"TopNHeapSort(n={op.count} keys={len(op.keys)})"
    if isinstance(op, HashAggregate):
        return (f"HashAggregate(groups={len(op.group_fns)} "
                f"aggs={len(op.agg_specs)})")
    if isinstance(op, Sort):
        return f"Sort({len(op.keys)} keys)"
    if isinstance(op, Limit):
        return f"Limit({op.count})"
    if isinstance(op, Distinct):
        return "Distinct"
    if isinstance(op, Concat):
        return f"Concat({len(op.inputs)} inputs)"
    if isinstance(op, EmptyScan):
        return "EmptyScan (WHERE clause is provably false)"
    if isinstance(op, SingleRowScan):
        return "SingleRowScan"
    return type(op).__name__


def _factor_suffix(cost_factor: float) -> str:
    if cost_factor == 1.0:
        return ""
    return f" x{cost_factor:g}"

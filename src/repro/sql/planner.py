"""Logical-to-physical planning.

The planner turns a parsed ``SELECT`` into a tree of executor operators.
Heuristics (deliberately simple, in the spirit of a 2001-era engine):

* WHERE conjuncts that reference a single relation are pushed below joins;
* equality conjuncts between two relations become hash-join keys, join
  order is the FROM order (left-deep);
* a pushed conjunct set matching an index's key prefix (equality prefix
  plus an optional range on the next column) turns the scan into an
  :class:`~repro.sql.executor.IndexSeek`;
* aggregates are computed by one hash-aggregate whose output rows are
  ``group keys + aggregate values``; select/having/order expressions are
  rewritten to read those slots;
* conjuncts containing subqueries are evaluated in a final filter, where
  every correlation is in scope.

The planner also owns the subquery bridge for the expression compiler: it
plans nested selects against the enclosing scope and exposes a runner that
executes them (memoized per outer-key by the compiler).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.errors import ColumnNotFoundError, PlanningError
from repro.sim.costs import SERVER_CPU
from repro.sql import ast
from repro.sql import stats as table_stats
from repro.sql.executor import (
    AggregateSpec,
    Concat,
    Distinct,
    EmptyScan,
    Filter,
    HashAggregate,
    HashJoin,
    IndexRangeScan,
    IndexSeek,
    Limit,
    NestedLoopJoin,
    PlanOperator,
    PointLookup,
    Project,
    SeqScan,
    SingleRowScan,
    Sort,
    SortKey,
    SortMergeJoin,
    TopNHeapSort,
    iterate_plan,
    run_plan,
)
from repro.sql.expressions import (
    EvalContext,
    ExprCompiler,
    Scope,
    find_aggregates,
    is_impure,
)
from repro.types import Column, SqlType, infer_sql_type


@dataclass
class BoundColumn:
    """One output column: which FROM binding it came from plus its type."""

    binding: str
    column: Column

    @property
    def name(self) -> str:
        return self.column.name


@dataclass
class Plan:
    """A planned SELECT: physical root plus the output schema."""

    root: PlanOperator
    schema: list[BoundColumn]

    @property
    def output_columns(self) -> list[Column]:
        return [bc.column for bc in self.schema]


@dataclass
class _Relation:
    """One planned FROM item during join assembly."""

    op: PlanOperator | None
    schema: list[BoundColumn]
    bindings: set[str] = field(default_factory=set)
    #: Base-table runtime when this relation is a plain table scan whose
    #: access path has not been chosen yet.
    table: object = None
    #: Cost-mode cardinality estimate (None in heuristic mode, and for
    #: relations the cost planner never estimated).
    est_rows: float | None = None
    #: binding name -> base table name, for catalog statistics lookups
    #: on join-key columns (empty for derived tables).
    binding_tables: dict[str, str] = field(default_factory=dict)


class Planner:
    """Plans SELECT statements against a table provider.

    ``table_provider(name)`` returns the engine's table runtime (heap,
    indexes, cost factor); ``meter`` is used by the subquery runner and
    for plan-time charging; ``params`` binds ``@name`` references.
    """

    def __init__(self, table_provider, meter=None,
                 params: dict | None = None, view_provider=None,
                 catalog=None):
        self._tables = table_provider
        self._meter = meter
        self._params = params or {}
        #: Catalog giving access to ANALYZE statistics.  Cost-based
        #: planning activates only when a catalog is wired *and* the
        #: cost model asks for it (``optimizer_mode == "cost"``); the
        #: default heuristic mode takes exactly the seed code paths.
        self._catalog = catalog
        #: Optional callable(name) -> view body SQL or None; view names
        #: in FROM expand to derived tables.
        self._views = view_provider
        self._pending_conjuncts: list[ast.Expr] = []
        #: Scopes created while planning, used to harvest correlation refs
        #: at subquery boundaries.
        self._scope_log: list[Scope] = []
        #: Every CompiledSubquery built for this planner's plans.  The plan
        #: cache clears their memos before re-executing a cached plan, so a
        #: reuse sees exactly the fresh-compile memo state.
        self.subquery_log: list = []

    def _new_scope(self, bindings: list[tuple[str, str]],
                   outer: Scope | None) -> Scope:
        scope = Scope(bindings, outer=outer)
        self._scope_log.append(scope)
        return scope

    @property
    def _cost_mode(self) -> bool:
        """True when cost-based planning is on for this planner."""
        return (self._catalog is not None and self._meter is not None
                and self._meter.costs.optimizer_mode == "cost")

    def _count_opt(self, name: str, amount: float = 1.0) -> None:
        """Tick an ``optimizer.*`` counter.  Called only from cost-mode
        paths, so heuristic traces stay counter-free; plan-time counting
        is also identical across executor modes."""
        if self._meter is not None:
            self._meter.count(name, amount)

    # -- public API ------------------------------------------------------------

    def plan_select(self, select: ast.SelectStatement,
                    outer_scope: Scope | None = None) -> Plan:
        return self._plan_select(select, outer_scope)

    def compile_scalar(self, expr: ast.Expr):
        """Compile an expression with no row context (INSERT VALUES,
        EXEC arguments).  Returns ``fn(EvalContext) -> value``."""
        scope = self._new_scope([], None)
        return self._compiler(scope).compile(expr)

    def compile_row_expr(self, expr: ast.Expr,
                         bindings: list[tuple[str, str]]):
        """Compile an expression against an explicit row layout (used by
        UPDATE SET clauses).  Returns ``fn(EvalContext) -> value``."""
        scope = self._new_scope(bindings, None)
        return self._compiler(scope).compile(expr)

    def plan_dml_source(self, table_name: str, where: ast.Expr | None):
        """Access path for UPDATE/DELETE: yields ``(rid, row)`` pairs.

        Returns ``(iterator_factory, table_runtime)`` where the factory
        takes no arguments and yields (rid, row) for qualifying rows.
        """
        table = self._tables(table_name)
        schema = _table_schema(table)
        scope = self._new_scope(_scope_bindings(schema), None)
        compiler = self._compiler(scope)
        conjuncts = _split_conjuncts(where)
        access = self._choose_access_path(table, conjuncts, scope, None)
        residual = access.residual_conjuncts
        predicate = None
        if residual:
            predicate = compiler.compile(_combine_conjuncts(residual))

        def iterate():
            exec_ctx = _exec_context(self._meter)
            if access.index_seek is not None:
                pairs = access.index_seek.rows_with_rids(exec_ctx)
            else:
                pairs = _seq_scan_with_rids(table, exec_ctx)
            from repro.sql.expressions import is_true
            for rid, row in pairs:
                if predicate is None or is_true(
                        predicate(EvalContext(row=row))):
                    yield rid, row

        return iterate, table

    # -- SELECT planning ----------------------------------------------------

    def _plan_select(self, select,
                     outer_scope: Scope | None,
                     limit_one: bool = False) -> Plan:
        if isinstance(select, ast.UnionSelect):
            return self._plan_union(select, outer_scope, limit_one)
        if self._cost_mode:
            self._count_opt("optimizer.plans_costed")
        # 1. FROM (join planning consumes the WHERE conjuncts it can and
        # returns the leftovers for the residual filter).
        if select.from_items:
            # A bare ``*`` projection takes its column order from the
            # FROM order, so join reordering must leave it alone.
            reorder_ok = not any(
                isinstance(item.expr, ast.Star) and item.expr.table is None
                for item in select.select_items)
            op, schema, late_conjuncts = self._plan_from(
                select.from_items, select.where, outer_scope,
                reorder_ok=reorder_ok)
        else:
            op, schema = SingleRowScan(), []
            late_conjuncts = _split_conjuncts(select.where)
        scope = self._new_scope(_scope_bindings(schema), outer_scope)
        compiler = self._compiler(scope)
        factor = _max_factor_of(schema, self._tables)

        # 2. Residual WHERE.  Constant-false conjuncts (e.g. the WHERE 0=1
        # Phoenix appends to fetch metadata) short-circuit to an empty
        # scan: the statement is compiled but never executed.
        late_conjuncts = list(late_conjuncts)
        if self._provably_false(late_conjuncts, compiler):
            op = EmptyScan()
            late_conjuncts = []
        if late_conjuncts:
            predicate = compiler.compile(_combine_conjuncts(late_conjuncts))
            op = Filter(op, predicate)
        self._apply_index_only(op, select, schema)

        # 3. Aggregation
        select_items = self._expand_stars(select.select_items, schema)
        aggregates = []
        for item in select_items:
            aggregates.extend(find_aggregates(item.expr))
        aggregates.extend(find_aggregates(select.having))
        for order in select.order_by:
            aggregates.extend(find_aggregates(order.expr))
        grouped = bool(select.group_by) or bool(aggregates)

        replacements: dict[int, int] = {}
        if grouped:
            op, scope, replacements, schema = self._plan_aggregate(
                op, scope, schema, select, select_items, aggregates,
                compiler, factor)
            compiler = self._compiler(scope, replacements)

        # 4. HAVING
        if select.having is not None:
            if not grouped:
                raise PlanningError("HAVING requires aggregation")
            having_fn = compiler.compile(select.having)
            op = Filter(op, having_fn)

        # 5. Projection
        out_exprs = [compiler.compile(item.expr) for item in select_items]
        out_schema = [
            BoundColumn(binding="", column=self._output_column(
                item, i, schema, scope))
            for i, item in enumerate(select_items)
        ]

        # 6. ORDER BY: after projection when keys map to output slots,
        # otherwise before projection on the full input row.  An ordered
        # index scan that already delivers the requested order makes the
        # Sort (either placement) unnecessary.
        need_sort = bool(select.order_by)
        if need_sort and self._sort_satisfied_by_scan(op, select,
                                                      select_items):
            need_sort = False
            # Flag the scan rather than counting here: the stat must
            # tick per execution (plan-cache hits included), so the
            # operator reports it from _count_scan at run time.
            self._single_base_scan(op, select).eliminates_sort = True
        post_sort_keys = self._order_keys_on_output(
            select.order_by, select_items, out_schema)
        # Cost mode fuses TOP N + ORDER BY into a bounded-heap TopN (the
        # n log k vs n log n win).  A Limit above a projection is safe to
        # fuse below it (Project is 1:1) but never below Distinct, which
        # drops rows *between* the sort and the limit in the pre-sort
        # placement.
        top = select.top
        if limit_one:
            top = 1 if top is None else min(top, 1)
        use_topn = (self._cost_mode and need_sort
                    and top is not None and top > 0)
        if post_sort_keys is None and need_sort:
            pre_keys = [SortKey(key_fn=compiler.compile(o.expr),
                                descending=o.descending)
                        for o in select.order_by]
            if use_topn and not select.distinct:
                op = TopNHeapSort(op, pre_keys, top, cost_factor=factor)
                self._count_opt("optimizer.topn_heap_used")
                top = None  # consumed by the heap
            else:
                op = Sort(op, pre_keys, cost_factor=factor)
        op = Project(op, out_exprs)
        op = _maybe_point_lookup(op)
        if select.distinct:
            op = Distinct(op, cost_factor=factor)
        if post_sort_keys is not None and need_sort:
            if use_topn:
                op = TopNHeapSort(op, post_sort_keys, top,
                                  cost_factor=factor)
                self._count_opt("optimizer.topn_heap_used")
                top = None
            else:
                op = Sort(op, post_sort_keys, cost_factor=factor)

        # 7. TOP / limit-one (EXISTS probes)
        if top is not None:
            if self._cost_mode:
                _push_limit_hint(op, top)
            op = Limit(op, top)
        if self._cost_mode:
            self._annotate_plan(op)
        return Plan(root=op, schema=out_schema)

    def _plan_union(self, union: ast.UnionSelect,
                    outer_scope: Scope | None,
                    limit_one: bool = False) -> Plan:
        """Plan a UNION [ALL] chain: concat inputs, dedup unless every
        combinator was ALL, then order/limit on the combined result."""
        plans = [self._plan_select(s, outer_scope) for s in union.selects]
        arity = len(plans[0].schema)
        for plan in plans[1:]:
            if len(plan.schema) != arity:
                raise PlanningError(
                    "UNION inputs must have the same number of columns")
        op: PlanOperator = Concat([p.root for p in plans])
        if not all(union.all_flags):
            op = Distinct(op)
        schema = plans[0].schema
        if union.order_by:
            keys = self._union_order_keys(union.order_by, schema)
            op = Sort(op, keys)
        top = union.top
        if limit_one:
            top = 1 if top is None else min(top, 1)
        if top is not None:
            op = Limit(op, top)
        return Plan(root=op, schema=schema)

    def _union_order_keys(self, order_by: list[ast.OrderItem],
                          schema: list[BoundColumn]) -> list[SortKey]:
        """ORDER BY on a union resolves against output positions/names."""
        names = [bc.column.name.lower() for bc in schema]
        keys: list[SortKey] = []
        for order in order_by:
            expr = order.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                slot = expr.value - 1
                if not 0 <= slot < len(schema):
                    raise PlanningError(
                        f"ORDER BY position {expr.value} out of range")
            elif isinstance(expr, ast.ColumnRef) and expr.table is None \
                    and expr.name in names:
                slot = names.index(expr.name)
            else:
                raise PlanningError(
                    "ORDER BY on a UNION must name an output column or "
                    "position")
            keys.append(SortKey(key_fn=(lambda ctx, s=slot: ctx.row[s]),
                                descending=order.descending))
        return keys

    def _provably_false(self, conjuncts: list[ast.Expr],
                        compiler: ExprCompiler) -> bool:
        """True when some conjunct is a pure constant that is not true."""
        from repro.sql.expressions import is_true

        for conjunct in conjuncts:
            if _expr_bindings(conjunct) or _has_subquery(conjunct):
                continue
            if isinstance(conjunct, ast.Param) or \
                    _contains_param(conjunct):
                continue
            try:
                fn = compiler.compile(conjunct)
                value = fn(EvalContext(row=()))
            except Exception:
                continue
            if not is_true(value):
                return True
        return False

    # -- FROM / joins ------------------------------------------------------

    def _plan_from(self, from_items: list[ast.TableRef],
                   where: ast.Expr | None,
                   outer_scope: Scope | None,
                   reorder_ok: bool = True):
        """Plan the FROM clause; returns (op, schema, leftover conjuncts).

        Two phases: first every FROM item is *prepared* (schemas known,
        base tables not yet given an access path), so that unqualified
        column references in WHERE conjuncts can be attributed to their
        relation; then conjuncts are placed — pushed to single relations,
        mined for hash-join keys, or left for the caller's filter.

        In cost mode the comma-list fold order is chosen from ANALYZE
        statistics instead of the FROM order (``reorder_ok`` is False
        when a bare ``*`` projection depends on the FROM column order).
        Single-relation conjuncts are consumed by their own relation
        before the fold, so placement is order-independent.
        """
        prepared = [self._prepare_table_ref(item, outer_scope)
                    for item in from_items]
        column_owner, ambiguous = _column_owner_map(
            [bc for rel in prepared for bc in rel.schema])
        conjuncts = [_Conjunct(e, column_owner, ambiguous)
                     for e in _split_conjuncts(where)]
        cost_join = (self._cost_mode and reorder_ok and len(prepared) > 1)
        if cost_join:
            prepared = self._order_join_tree(prepared, conjuncts,
                                             column_owner, outer_scope)
        for rel in prepared:
            self._finish_relation(rel, conjuncts, outer_scope)
        if cost_join:
            for rel in prepared:
                if rel.op is not None and rel.est_rows is not None:
                    rel.op.est_rows = rel.est_rows
        acc = prepared[0]
        for rel in prepared[1:]:
            acc = self._join_relations(acc, rel, conjuncts, outer_scope,
                                       swap_ok=cost_join)
        late = [c.expr for c in conjuncts if not c.consumed]
        return acc.op, acc.schema, late

    def _prepare_table_ref(self, item: ast.TableRef,
                           outer_scope: Scope | None) -> _Relation:
        """Build a relation's schema; defer base-table access paths."""
        if isinstance(item, ast.TableName):
            view_body = (self._views(item.name)
                         if self._views is not None
                         and not item.name.startswith("#") else None)
            if view_body is not None:
                from repro.sql.parser import parse_statement

                view_select = parse_statement(view_body)
                subplan = self._plan_select(view_select, outer_scope)
                binding = item.binding_name
                schema = [BoundColumn(binding=binding, column=bc.column)
                          for bc in subplan.schema]
                return _Relation(op=subplan.root, schema=schema,
                                 bindings={binding})
            table = self._tables(item.name)
            binding = item.binding_name
            schema = [BoundColumn(binding=binding, column=c)
                      for c in table.info.columns]
            rel = _Relation(op=None, schema=schema, bindings={binding})
            rel.table = table
            rel.binding_tables = {binding: table.info.name}
            return rel
        if isinstance(item, ast.DerivedTable):
            subplan = self._plan_select(item.select, outer_scope)
            binding = item.binding_name
            schema = [BoundColumn(binding=binding, column=bc.column)
                      for bc in subplan.schema]
            rel = _Relation(op=subplan.root, schema=schema,
                            bindings={binding})
            return rel
        if isinstance(item, ast.Join):
            left = self._prepare_table_ref(item.left, outer_scope)
            right = self._prepare_table_ref(item.right, outer_scope)
            owner, ambiguous = _column_owner_map(left.schema + right.schema)
            on_conjuncts = [_Conjunct(e, owner, ambiguous)
                            for e in _split_conjuncts(item.condition)]
            # Pushing single-side ON conjuncts below the join is safe for
            # inner joins on both sides, and on the null-supplying (right)
            # side of a left join.
            self._finish_relation(right, on_conjuncts, outer_scope)
            if item.kind != "left":
                self._finish_relation(left, on_conjuncts, outer_scope)
            else:
                self._finish_relation(left, [], outer_scope)
            joined = self._join_relations(left, right, on_conjuncts,
                                          outer_scope, kind=item.kind,
                                          require_all=True)
            leftover = [c.expr for c in on_conjuncts if not c.consumed]
            if leftover:
                raise PlanningError(
                    "ON condition references columns outside the join")
            return joined
        raise PlanningError(f"unsupported FROM item {type(item).__name__}")

    def _finish_relation(self, rel: _Relation,
                         conjuncts: list["_Conjunct"],
                         outer_scope: Scope | None) -> None:
        """Give ``rel`` its access path, consuming its local conjuncts."""
        if rel.op is not None and rel.table is None:
            # Derived table or already-finished join: only add a filter.
            self._apply_pushable(rel, conjuncts, outer_scope)
            return
        if rel.op is not None:
            return  # already finished
        table = rel.table
        scope = self._new_scope(_scope_bindings(rel.schema), outer_scope)
        local = [c for c in conjuncts
                 if not c.consumed and not c.has_subquery
                 and c.bindings and c.bindings <= rel.bindings]
        access = self._choose_access_path(
            table, [c.expr for c in local], scope, outer_scope)
        if access.index_seek is not None:
            rel.op = access.index_seek
        else:
            rel.op = SeqScan(table, cost_factor=table.cost_factor)
        if access.residual_conjuncts:
            compiler = self._compiler(scope)
            rel.op = Filter(rel.op, compiler.compile(
                _combine_conjuncts(access.residual_conjuncts)))
        for c in local:
            c.consumed = True

    def _apply_pushable(self, rel: _Relation,
                        conjuncts: list["_Conjunct"],
                        outer_scope: Scope | None) -> None:
        """Push single-relation conjuncts onto a derived relation."""
        local = [c for c in conjuncts
                 if not c.consumed and not c.has_subquery
                 and c.bindings and c.bindings <= rel.bindings]
        if not local:
            return
        scope = self._new_scope(_scope_bindings(rel.schema), outer_scope)
        compiler = self._compiler(scope)
        rel.op = Filter(rel.op, compiler.compile(
            _combine_conjuncts([c.expr for c in local])))
        for c in local:
            c.consumed = True

    def _join_relations(self, left: _Relation, right: _Relation,
                        conjuncts: list["_Conjunct"],
                        outer_scope: Scope | None,
                        kind: str = "inner",
                        require_all: bool = False,
                        swap_ok: bool = False) -> _Relation:
        """Join two relations, mining ``conjuncts`` for equi keys.

        ``require_all`` (explicit ON clauses) forces every conjunct into
        the join (residual) rather than a later filter — necessary for
        LEFT join semantics.  ``swap_ok`` (cost-mode comma folds) allows
        build-side selection: the hash join builds on its *right* input,
        so the side with the smaller cardinality estimate is moved there.
        """
        owner, _ambiguous = _column_owner_map(left.schema + right.schema)
        if (swap_ok and self._cost_mode and kind == "inner"
                and left.est_rows is not None
                and right.est_rows is not None
                and left.est_rows < right.est_rows
                and self._mine_equi_pairs(left, right, conjuncts, owner)):
            left, right = right, left
        combined_schema = left.schema + right.schema
        combined_bindings = left.bindings | right.bindings
        scope = self._new_scope(_scope_bindings(combined_schema), outer_scope)
        left_scope = self._new_scope(_scope_bindings(left.schema), outer_scope)
        right_scope = self._new_scope(_scope_bindings(right.schema),
                                      outer_scope)

        left_keys, right_keys, residual = [], [], []
        key_pairs: list[tuple[ast.Expr, ast.Expr]] = []
        for c in conjuncts:
            if c.consumed or c.has_subquery:
                continue
            if not (c.bindings and c.bindings <= combined_bindings):
                continue
            pair = self._equi_key(c.expr, left, right, owner)
            if pair is not None:
                left_expr, right_expr = pair
                left_keys.append(
                    self._compiler(left_scope).compile(left_expr))
                right_keys.append(
                    self._compiler(right_scope).compile(right_expr))
                key_pairs.append(pair)
                c.consumed = True
            elif require_all or kind == "left":
                residual.append(c.expr)
                c.consumed = True
            elif c.bindings <= combined_bindings:
                # Inner join: leave for the post-join filter only if it
                # spans both sides; single-side ones were pushed already.
                residual.append(c.expr)
                c.consumed = True

        factor = max(_max_factor_of(left.schema, self._tables),
                     _max_factor_of(right.schema, self._tables))
        residual_fn = None
        if residual:
            residual_fn = self._compiler(scope).compile(
                _combine_conjuncts(residual))
        est_out = None
        if (self._cost_mode and left.est_rows is not None
                and right.est_rows is not None):
            est_out = self._estimate_join_output(left, right, key_pairs)
        if left_keys:
            if (self._cost_mode and kind == "inner"
                    and self._choose_sort_merge(left, right, key_pairs)):
                self._count_opt("optimizer.sortmerge_chosen")
                op = SortMergeJoin(left.op, right.op, left_keys,
                                   right_keys, residual=residual_fn,
                                   left_width=len(left.schema),
                                   right_width=len(right.schema),
                                   left_sorted=True, right_sorted=True,
                                   cost_factor=factor)
            else:
                op = HashJoin(left.op, right.op, left_keys, right_keys,
                              kind=("left" if kind == "left" else "inner"),
                              residual=residual_fn,
                              left_width=len(left.schema),
                              right_width=len(right.schema),
                              cost_factor=factor)
        else:
            op = NestedLoopJoin(left.op, right.op, condition=residual_fn,
                                kind=("left" if kind == "left" else "inner"),
                                right_width=len(right.schema),
                                cost_factor=factor)
        joined = _Relation(op=op, schema=combined_schema,
                           bindings=combined_bindings)
        joined.binding_tables = {**left.binding_tables,
                                 **right.binding_tables}
        if est_out is not None:
            joined.est_rows = est_out
            op.est_rows = est_out
        return joined

    def _equi_key(self, expr: ast.Expr, left: _Relation,
                  right: _Relation, owner: dict[str, str]):
        """If ``expr`` is ``a = b`` with sides on opposite relations,
        return (left_side, right_side)."""
        if not (isinstance(expr, ast.Binary) and expr.op == "="):
            return None
        lhs_bindings = _side_bindings(expr.left, owner)
        rhs_bindings = _side_bindings(expr.right, owner)
        if not lhs_bindings or not rhs_bindings:
            return None
        if lhs_bindings <= left.bindings and rhs_bindings <= right.bindings:
            return expr.left, expr.right
        if rhs_bindings <= left.bindings and lhs_bindings <= right.bindings:
            return expr.right, expr.left
        return None

    # -- index access paths ----------------------------------------------------

    @dataclass
    class _AccessPath:
        index_seek: IndexSeek | None = None
        residual_conjuncts: list = field(default_factory=list)

    def _choose_access_path(self, table, conjuncts: list[ast.Expr],
                            scope: Scope,
                            outer_scope: Scope | None) -> "_AccessPath":
        """Pick the best index for a conjunct set (longest equality
        prefix, optional range on the next column)."""
        best = None
        best_score = 0
        const_scope = self._new_scope([], outer_scope)
        for index in table.indexes():
            eq_map: dict[str, ast.Expr] = {}
            range_lo: dict[str, tuple[ast.Expr, bool]] = {}
            range_hi: dict[str, tuple[ast.Expr, bool]] = {}
            for conj in conjuncts:
                parsed = self._index_conjunct(conj, table)
                if parsed is None:
                    continue
                column, op, rhs = parsed
                if not self._is_constantish(rhs, const_scope):
                    continue
                if op == "=" and column not in eq_map:
                    eq_map[column] = rhs
                elif op in (">", ">=") and column not in range_lo:
                    range_lo[column] = (rhs, op == ">=")
                elif op in ("<", "<=") and column not in range_hi:
                    range_hi[column] = (rhs, op == "<=")
            prefix: list[ast.Expr] = []
            for col in index.column_names:
                if col in eq_map:
                    prefix.append(eq_map[col])
                else:
                    break
            if not prefix and not (index.column_names
                                   and (index.column_names[0] in range_lo
                                        or index.column_names[0] in range_hi)):
                continue
            next_col = (index.column_names[len(prefix)]
                        if len(prefix) < len(index.column_names) else None)
            lo = range_lo.get(next_col) if next_col else None
            hi = range_hi.get(next_col) if next_col else None
            score = 2 * len(prefix) + (1 if (lo or hi) else 0)
            if score > best_score:
                best_score = score
                best = (index, prefix, lo, hi, eq_map, next_col)
        if best is None:
            return Planner._AccessPath(residual_conjuncts=list(conjuncts))
        index, prefix, lo, hi, eq_map, next_col = best
        compiler = self._compiler(const_scope)
        prefix_fns = [compiler.compile(e) for e in prefix]
        lo_fn = compiler.compile(lo[0]) if lo else None
        hi_fn = compiler.compile(hi[0]) if hi else None
        # A full-width equality prefix is a point seek; anything that
        # walks part of the key space (partial prefix and/or a range
        # bound) is an ordered range scan.
        exact = (lo is None and hi is None
                 and len(prefix) == len(index.column_names))
        op_class = IndexSeek if exact else IndexRangeScan
        seek = op_class(table, index.name, prefix_fns,
                        lo_fn=lo_fn, hi_fn=hi_fn,
                        lo_inclusive=lo[1] if lo else True,
                        hi_inclusive=hi[1] if hi else True,
                        cost_factor=table.cost_factor)
        # Conjuncts fully answered by the seek are dropped; everything
        # else (including eq conjuncts beyond the usable prefix) stays.
        answered: set[int] = set()
        prefix_cols = index.column_names[:len(prefix)]
        for conj in conjuncts:
            parsed = self._index_conjunct(conj, table)
            if parsed is None:
                continue
            column, op, rhs = parsed
            if op == "=" and column in prefix_cols \
                    and eq_map.get(column) is rhs:
                answered.add(id(conj))
            elif next_col and column == next_col:
                if op in (">", ">=") and lo and lo[0] is rhs:
                    answered.add(id(conj))
                if op in ("<", "<=") and hi and hi[0] is rhs:
                    answered.add(id(conj))
        residual = [c for c in conjuncts if id(c) not in answered]
        return Planner._AccessPath(index_seek=seek,
                                   residual_conjuncts=residual)

    def _index_conjunct(self, expr: ast.Expr, table):
        """Parse ``col <op> rhs`` (either orientation) for ``table``."""
        if not isinstance(expr, ast.Binary):
            return None
        flips = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
        if expr.op not in flips:
            return None
        column_names = {c.name.lower() for c in table.info.columns}
        if isinstance(expr.left, ast.ColumnRef) \
                and expr.left.name in column_names:
            return expr.left.name, expr.op, expr.right
        if isinstance(expr.right, ast.ColumnRef) \
                and expr.right.name in column_names:
            return expr.right.name, flips[expr.op], expr.left
        return None

    def _is_constantish(self, expr: ast.Expr, const_scope: Scope) -> bool:
        """True when ``expr`` has no local column references (literal,
        parameter or pure outer correlation)."""
        try:
            self._compiler(const_scope).compile(expr)
            return True
        except (ColumnNotFoundError, PlanningError):
            return False

    # -- cost-based planning (optimizer_mode == "cost") ------------------------

    #: Cardinality fallback when a relation has no ANALYZE statistics.
    _DEFAULT_ROWS = 1000.0
    #: Selectivity fallback for predicates statistics cannot estimate.
    _DEFAULT_SEL = 0.25
    #: Join orders are enumerated exhaustively (left-deep dynamic
    #: programming) up to this many relations; beyond it a greedy
    #: smallest-intermediate heuristic keeps planning linear-ish.
    _DP_RELATION_LIMIT = 6

    def _const_value(self, expr: ast.Expr, const_scope: Scope):
        """Evaluate ``expr`` at plan time when it is a plan-time constant
        (literal, arithmetic over literals, bound parameter); None when
        it is not, or evaluation fails (e.g. outer correlations)."""
        if _has_subquery(expr) or not self._is_constantish(expr,
                                                          const_scope):
            return None
        try:
            fn = self._compiler(const_scope).compile(expr)
            return fn(EvalContext(row=()))
        except Exception:
            return None

    def _relation_selectivity(self, table, stats: dict,
                              exprs: list[ast.Expr],
                              const_scope: Scope) -> float:
        """Combined selectivity of a relation's pushed conjuncts, from
        its column statistics (equality via NDV, ranges via histograms,
        independence with the sanity clamp)."""
        sels: list[float] = []
        range_lo: dict[str, tuple[object, bool]] = {}
        range_hi: dict[str, tuple[object, bool]] = {}
        for expr in exprs:
            handled = False
            if isinstance(expr, ast.Between) and not expr.negated \
                    and isinstance(expr.operand, ast.ColumnRef):
                col = table_stats.column_stats(stats, expr.operand.name)
                lo = self._const_value(expr.low, const_scope)
                hi = self._const_value(expr.high, const_scope)
                if col is not None and lo is not None and hi is not None:
                    sels.append(table_stats.range_selectivity(
                        col, lo, hi, True, True))
                    handled = True
            else:
                parsed = self._index_conjunct(expr, table)
                if parsed is not None:
                    column, op, rhs = parsed
                    value = self._const_value(rhs, const_scope)
                    col = table_stats.column_stats(stats, column)
                    if col is not None and value is not None:
                        if op == "=":
                            sels.append(
                                table_stats.equality_selectivity(col))
                            handled = True
                        elif op in (">", ">="):
                            range_lo.setdefault(column, (value, op == ">="))
                            handled = True
                        elif op in ("<", "<="):
                            range_hi.setdefault(column, (value, op == "<="))
                            handled = True
            if not handled:
                sels.append(self._DEFAULT_SEL)
        for column in sorted(set(range_lo) | set(range_hi)):
            col = table_stats.column_stats(stats, column)
            lo = range_lo.get(column)
            hi = range_hi.get(column)
            sels.append(table_stats.range_selectivity(
                col, lo[0] if lo else None, hi[0] if hi else None,
                lo[1] if lo else True, hi[1] if hi else True))
        return table_stats.combine_conjuncts(sels)

    def _estimate_relation(self, rel: _Relation,
                           conjuncts: list["_Conjunct"],
                           outer_scope: Scope | None) -> float:
        """Estimated output rows of a prepared FROM item after its local
        conjuncts apply."""
        local = [c.expr for c in conjuncts
                 if not c.consumed and not c.has_subquery
                 and c.bindings and c.bindings <= rel.bindings]
        if rel.table is None:
            # Derived table / view / pre-joined unit: no base statistics.
            self._count_opt("optimizer.stats_missing_fallbacks")
            sel = table_stats.combine_conjuncts(
                [self._DEFAULT_SEL] * len(local)) if local else 1.0
            return max(1.0, self._DEFAULT_ROWS * sel)
        stats = self._catalog.get_table_stats(rel.table.info.name)
        if stats is None:
            self._count_opt("optimizer.stats_missing_fallbacks")
            sel = table_stats.combine_conjuncts(
                [self._DEFAULT_SEL] * len(local)) if local else 1.0
            return max(1.0, self._DEFAULT_ROWS * sel)
        const_scope = self._new_scope([], outer_scope)
        sel = self._relation_selectivity(rel.table, stats, local,
                                         const_scope)
        return max(1.0, float(stats["row_count"]) * sel)

    def _ndv_for(self, rel: _Relation, expr: ast.Expr) -> int | None:
        """NDV of a join-key column, resolved through the relation's
        binding -> base-table map; None when unavailable."""
        if not isinstance(expr, ast.ColumnRef) or self._catalog is None:
            return None
        name = expr.name.lower()
        if expr.table is not None:
            binding = expr.table.lower()
        else:
            binding = next(
                (bc.binding for bc in rel.schema
                 if bc.column.name.lower() == name), None)
        table_name = rel.binding_tables.get(binding) if binding else None
        if table_name is None:
            return None
        stats = self._catalog.get_table_stats(table_name)
        col = table_stats.column_stats(stats, name)
        return col["ndv"] if col else None

    def _mine_equi_pairs(self, left: _Relation, right: _Relation,
                         conjuncts: list["_Conjunct"],
                         owner: dict[str, str]) -> list:
        """Equi-key expression pairs this join could use — a read-only
        preview of the mining loop (nothing is consumed)."""
        combined = left.bindings | right.bindings
        pairs = []
        for c in conjuncts:
            if c.consumed or c.has_subquery:
                continue
            if not (c.bindings and c.bindings <= combined):
                continue
            pair = self._equi_key(c.expr, left, right, owner)
            if pair is not None:
                pairs.append(pair)
        return pairs

    def _estimate_join_output(self, left: _Relation, right: _Relation,
                              key_pairs: list) -> float:
        """Join output cardinality: |L|·|R| / max(NDV) per key pair
        (the classic uniform assumption — an FK join estimates to the
        fact side's cardinality)."""
        cl, cr = left.est_rows, right.est_rows
        sel = 1.0
        for left_expr, right_expr in key_pairs:
            ndv_l = self._ndv_for(left, left_expr)
            ndv_r = self._ndv_for(right, right_expr)
            denom = float(max(ndv_l or 0, ndv_r or 0))
            if denom <= 0.0:
                denom = max(cl, cr, 1.0)
            sel /= max(denom, 1.0)
        return max(1.0, cl * cr * sel)

    def _delivers_key_order(self, rel: _Relation,
                            key_expr: ast.Expr) -> bool:
        """True when the relation's access path emits rows already
        ordered by the join key: an ordered index range walk whose first
        key column after the consumed equality prefix is the key."""
        if rel.table is None or not isinstance(key_expr, ast.ColumnRef):
            return False
        op = rel.op
        while isinstance(op, Filter):
            op = op.child
        if type(op) is not IndexRangeScan:
            return False
        info = op.table.index_info(op.index_name)
        n_prefix = len(op.prefix_fns)
        if n_prefix >= len(info.column_names):
            return False
        return info.column_names[n_prefix] == key_expr.name.lower()

    def _choose_sort_merge(self, left: _Relation, right: _Relation,
                           key_pairs: list) -> bool:
        """Sort-merge beats hash exactly when neither side needs a sort:
        both inputs arrive in key order and the merge consumes tuples at
        scan rate instead of build/probe rate.  (An unsorted side would
        owe ``sort_seconds``, which loses to the hash join here.)"""
        if (left.est_rows is None or right.est_rows is None
                or len(key_pairs) != 1):
            return False
        left_expr, right_expr = key_pairs[0]
        if not (self._delivers_key_order(left, left_expr)
                and self._delivers_key_order(right, right_expr)):
            return False
        costs = self._meter.costs
        total = left.est_rows + right.est_rows
        return costs.cpu_per_tuple_scan * total \
            < costs.cpu_per_tuple_join * total

    def _order_join_tree(self, prepared: list[_Relation],
                         conjuncts: list["_Conjunct"],
                         owner: dict[str, str],
                         outer_scope: Scope | None) -> list[_Relation]:
        """Choose the left-deep fold order for a comma join list.

        Estimates every relation's post-filter cardinality, builds the
        join graph from the unconsumed equi conjuncts, then minimizes
        the modeled executor cost (hash joins at ``cpu_per_tuple_join``
        per input tuple, cross products at probe-times-build) — DP over
        subsets up to :data:`_DP_RELATION_LIMIT` relations, greedy
        smallest-intermediate above it.  Deterministic: ties break on
        enumeration order.
        """
        n = len(prepared)
        cards = []
        for rel in prepared:
            est = self._estimate_relation(rel, conjuncts, outer_scope)
            rel.est_rows = est
            cards.append(est)
        edges: dict[tuple[int, int], float] = {}
        for c in conjuncts:
            if c.consumed or c.has_subquery:
                continue
            if not isinstance(c.expr, ast.Binary) or c.expr.op != "=":
                continue
            lhs = _side_bindings(c.expr.left, owner)
            rhs = _side_bindings(c.expr.right, owner)
            if not lhs or not rhs:
                continue
            li = _owning_relation(prepared, lhs)
            ri = _owning_relation(prepared, rhs)
            if li is None or ri is None or li == ri:
                continue
            ndv_l = self._ndv_for(prepared[li], c.expr.left)
            ndv_r = self._ndv_for(prepared[ri], c.expr.right)
            denom = float(max(ndv_l or 0, ndv_r or 0))
            if denom <= 0.0:
                denom = max(cards[li], cards[ri], 1.0)
            key = (min(li, ri), max(li, ri))
            edges[key] = edges.get(key, 1.0) / max(denom, 1.0)
        per_join = self._meter.costs.cpu_per_tuple_join

        def step(placed: tuple, placed_card: float, j: int):
            """(cost, output cardinality) of joining ``j`` next."""
            sel = 1.0
            connected = False
            for i in placed:
                edge = edges.get((min(i, j), max(i, j)))
                if edge is not None:
                    connected = True
                    sel *= edge
            if connected:
                cost = per_join * (placed_card + cards[j])
                out = max(1.0, placed_card * cards[j] * sel)
            else:
                # No equi edge: a nested-loop cross pairing.
                cost = per_join * (placed_card + placed_card * cards[j])
                out = max(1.0, placed_card * cards[j])
            return cost, out

        if n <= self._DP_RELATION_LIMIT:
            best: dict[frozenset, tuple[float, float, tuple]] = {
                frozenset((i,)): (0.0, cards[i], (i,)) for i in range(n)}
            for size in range(2, n + 1):
                for subset in combinations(range(n), size):
                    key = frozenset(subset)
                    winner = None
                    for j in subset:
                        prev = best.get(key - {j})
                        if prev is None:
                            continue
                        self._count_opt("optimizer.join_orders_considered")
                        cost, out = step(prev[2], prev[1], j)
                        candidate = (prev[0] + cost, out, prev[2] + (j,))
                        if winner is None or candidate[0] < winner[0]:
                            winner = candidate
                    best[key] = winner
            order = best[frozenset(range(n))][2]
        else:
            start = min(range(n), key=lambda i: (cards[i], i))
            chosen = [start]
            placed_card = cards[start]
            while len(chosen) < n:
                winner = None
                for j in range(n):
                    if j in chosen:
                        continue
                    self._count_opt("optimizer.join_orders_considered")
                    cost, out = step(tuple(chosen), placed_card, j)
                    if winner is None or cost < winner[0]:
                        winner = (cost, out, j)
                chosen.append(winner[2])
                placed_card = winner[1]
            order = tuple(chosen)
        return [prepared[i] for i in order]

    def _annotate_plan(self, op: PlanOperator) -> tuple[float, float]:
        """Attach ``est_rows`` / ``est_cost`` (cumulative estimated
        virtual seconds, in the Meter's units) to every operator, bottom
        up.  Estimates the join planner already computed are kept; the
        rest get coarse structural rules.  EXPLAIN renders these in cost
        mode — the join-order and algorithm decisions were made from the
        structured estimates above, not from this pass."""
        costs = self._meter.costs
        children = [self._annotate_plan(c) for c in op.children()]
        in_rows = children[0][0] if children else 1.0
        cost = sum(c[1] for c in children)
        factor = getattr(op, "cost_factor", 1.0)
        est = getattr(op, "est_rows", None)
        if isinstance(op, SeqScan):
            stats = self._catalog.get_table_stats(op.table.info.name)
            if stats is None and est is None:
                self._count_opt("optimizer.stats_missing_fallbacks")
            rows = float(stats["row_count"]) if stats else self._DEFAULT_ROWS
            pages = (float(stats["page_count"]) if stats
                     else max(1.0, rows / 50.0))
            if est is None:
                est = rows
            cost += (rows * costs.cpu_per_tuple_scan * factor
                     + pages * costs.disk_page_read_seconds)
        elif isinstance(op, IndexSeek):
            stats = self._catalog.get_table_stats(op.table.info.name)
            if stats is None and est is None:
                self._count_opt("optimizer.stats_missing_fallbacks")
            rows = float(stats["row_count"]) if stats else self._DEFAULT_ROWS
            if est is None:
                info = op.table.index_info(op.index_name)
                exact = (op.lo_fn is None and op.hi_fn is None
                         and len(op.prefix_fns) == len(info.column_names))
                est = 1.0 if exact else max(1.0, rows * self._DEFAULT_SEL)
                if op.limit_hint is not None:
                    est = min(est, float(op.limit_hint))
            cost += est * (costs.cpu_per_tuple_index_lookup * factor
                           + costs.disk_page_read_seconds)
        elif isinstance(op, Filter):
            if est is None:
                est = max(1.0, in_rows * self._DEFAULT_SEL)
        elif isinstance(op, (HashJoin, SortMergeJoin)):
            l_rows, r_rows = children[0][0], children[1][0]
            if est is None:
                est = max(l_rows, r_rows)
            if isinstance(op, SortMergeJoin):
                cost += (l_rows + r_rows) * costs.cpu_per_tuple_scan * factor
                if not op.left_sorted:
                    cost += costs.sort_seconds(int(l_rows)) * factor
                if not op.right_sorted:
                    cost += costs.sort_seconds(int(r_rows)) * factor
            else:
                cost += (l_rows + r_rows) * costs.cpu_per_tuple_join * factor
        elif isinstance(op, NestedLoopJoin):
            l_rows, r_rows = children[0][0], children[1][0]
            if est is None:
                est = max(1.0, l_rows * r_rows)
            cost += (l_rows + l_rows * r_rows) \
                * costs.cpu_per_tuple_join * factor
        elif isinstance(op, HashAggregate):
            if est is None:
                est = max(1.0, in_rows * 0.1) if op.group_fns else 1.0
            cost += in_rows * costs.cpu_per_tuple_agg * factor
        elif isinstance(op, Distinct):
            if est is None:
                est = max(1.0, in_rows * 0.5)
            cost += in_rows * costs.cpu_per_tuple_agg * factor
        elif isinstance(op, Sort):
            if est is None:
                est = in_rows
            cost += costs.sort_seconds(int(in_rows)) * factor
        elif isinstance(op, TopNHeapSort):
            if est is None:
                est = min(float(op.count), in_rows)
            cost += costs.topn_seconds(int(in_rows), op.count) * factor
        elif isinstance(op, Limit):
            if est is None:
                est = min(float(op.count), in_rows)
        elif isinstance(op, Concat):
            if est is None:
                est = float(sum(c[0] for c in children))
        elif isinstance(op, EmptyScan):
            if est is None:
                est = 0.0
        elif est is None:
            est = in_rows
        op.est_rows = est
        op.est_cost = cost
        return est, cost

    # -- index-only scans / ordered-scan sort elimination ----------------------

    @staticmethod
    def _single_base_scan(op: PlanOperator,
                          select: ast.SelectStatement) -> IndexSeek | None:
        """The index scan feeding ``op``, when the FROM clause is exactly
        one base table (possibly under residual filters)."""
        if len(select.from_items) != 1 \
                or not isinstance(select.from_items[0], ast.TableName):
            return None
        while isinstance(op, Filter):
            op = op.child
        return op if isinstance(op, IndexSeek) else None

    def _apply_index_only(self, op: PlanOperator,
                          select: ast.SelectStatement,
                          schema: list[BoundColumn]) -> None:
        """Covering projection: when every column the statement can read
        from the scanned table is part of the chosen index key, the scan
        synthesizes its rows from index keys and never touches the heap."""
        scan = self._single_base_scan(op, select)
        if scan is None or scan.index_only:
            return
        info = scan.table.index_info(scan.index_name)
        key_cols = set(info.column_names)
        local_cols = {bc.column.name.lower() for bc in schema}
        binding = select.from_items[0].binding_name
        refs: set[str] = set()
        if not _collect_table_columns(select, binding, local_cols, refs):
            return  # a * projection (or similar) defeats coverage analysis
        if refs <= key_cols:
            scan.index_only = True

    def _sort_satisfied_by_scan(self, op: PlanOperator,
                                select: ast.SelectStatement,
                                select_items: list[ast.SelectItem]) -> bool:
        """True when the access path already yields rows in ORDER BY
        order: an index scan whose key columns after the consumed
        equality prefix match the (ascending) order keys contiguously.
        Order keys pinned by the equality prefix are single-valued and
        may appear anywhere."""
        scan = self._single_base_scan(op, select)
        if scan is None:
            return False
        info = scan.table.index_info(scan.index_name)
        n_prefix = len(scan.prefix_fns)
        pinned = set(info.column_names[:n_prefix])
        remaining = list(info.column_names[n_prefix:])
        binding = select.from_items[0].binding_name
        out_aliases: dict[str, ast.Expr] = {}
        for item in select_items:
            if item.alias:
                out_aliases.setdefault(item.alias.lower(), item.expr)
        idx = 0
        for order in select.order_by:
            if order.descending:
                return False
            expr = order.expr
            if not isinstance(expr, ast.ColumnRef):
                return False
            name = expr.name
            if expr.table is None:
                # ORDER BY resolves output aliases first; only safe when
                # the alias is the same base column.
                aliased = out_aliases.get(name)
                if aliased is not None and not (
                        isinstance(aliased, ast.ColumnRef)
                        and aliased.name == name
                        and aliased.table in (None, binding)):
                    return False
            elif expr.table.lower() != binding:
                return False
            if name in pinned:
                continue
            if idx >= len(remaining) or remaining[idx] != name:
                return False
            idx += 1
        return True

    # -- aggregation ---------------------------------------------------------

    def _plan_aggregate(self, op: PlanOperator, scope: Scope,
                        schema: list[BoundColumn],
                        select: ast.SelectStatement,
                        select_items: list[ast.SelectItem],
                        aggregates: list[ast.FuncCall],
                        compiler: ExprCompiler, factor: float):
        group_fns = [compiler.compile(g) for g in select.group_by]
        unique_aggs: list[ast.FuncCall] = []
        for agg in aggregates:
            if not any(existing is agg for existing in unique_aggs):
                unique_aggs.append(agg)
        specs = []
        for agg in unique_aggs:
            arg_fn = None
            if not agg.star:
                if len(agg.args) != 1:
                    raise PlanningError(
                        f"{agg.name.upper()} takes exactly one argument")
                arg_fn = compiler.compile(agg.args[0])
            specs.append(AggregateSpec(func=agg.name, arg_fn=arg_fn,
                                       distinct=agg.distinct))
        op = HashAggregate(op, group_fns, specs, cost_factor=factor)

        # Output layout: group keys then aggregates.  Group-key columns
        # keep their source column's name (and therefore type) so that
        # select-item metadata — which Phoenix turns into CREATE TABLE
        # column types — resolves against the aggregate's output.
        group_keys = [_expr_key(g, scope) for g in select.group_by]
        out_bindings: list[tuple[str, str]] = []
        out_schema: list[BoundColumn] = []
        for i, g in enumerate(select.group_by):
            name = g.name if isinstance(g, ast.ColumnRef) else f"group{i}"
            column = self._infer_column(g, scope, schema, name)
            out_bindings.append(("", column.name))
            out_schema.append(BoundColumn(binding="", column=column))
        for i, agg in enumerate(unique_aggs):
            column = Column(name=f"agg{i}", sql_type=(
                SqlType.INTEGER if agg.name == "count" else SqlType.FLOAT))
            out_bindings.append(("", column.name))
            out_schema.append(BoundColumn(binding="", column=column))

        # Rewrite select/having/order expressions: aggregate calls map to
        # their slots; subexpressions structurally equal to a group key
        # map to the key's slot.
        replacements: dict[int, int] = {}
        for i, agg in enumerate(unique_aggs):
            slot = len(select.group_by) + i
            for candidate in aggregates:
                if _expr_key(candidate, scope) == _expr_key(agg, scope):
                    replacements[id(candidate)] = slot
        targets: list[ast.Expr] = [item.expr for item in select_items]
        if select.having is not None:
            targets.append(select.having)
        targets.extend(o.expr for o in select.order_by)
        for target in targets:
            _map_group_refs(target, group_keys, scope, replacements)

        new_scope = self._new_scope(out_bindings, scope.outer)
        return op, new_scope, replacements, out_schema

    # -- projection / ordering helpers ---------------------------------------

    def _expand_stars(self, items: list[ast.SelectItem],
                      schema: list[BoundColumn]) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                matched = False
                for bc in schema:
                    if item.expr.table is None \
                            or bc.binding == item.expr.table.lower():
                        expanded.append(ast.SelectItem(
                            expr=ast.ColumnRef(table=bc.binding or None,
                                               name=bc.column.name.lower()),
                            alias=bc.column.name))
                        matched = True
                if not matched:
                    raise PlanningError(
                        f"no columns for {item.expr.table}.*")
            else:
                expanded.append(item)
        return expanded

    def _order_keys_on_output(self, order_by: list[ast.OrderItem],
                              select_items: list[ast.SelectItem],
                              out_schema: list[BoundColumn]):
        """Map ORDER BY keys to output slots if every key allows it."""
        if not order_by:
            return None
        keys: list[SortKey] = []
        names = [bc.column.name.lower() for bc in out_schema]
        for order in order_by:
            slot = None
            expr = order.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(out_schema):
                    raise PlanningError(
                        f"ORDER BY position {position} out of range")
                slot = position - 1
            elif isinstance(expr, ast.ColumnRef) and expr.table is None:
                if expr.name in names:
                    slot = names.index(expr.name)
            if slot is None:
                for i, item in enumerate(select_items):
                    if _shallow_expr_equal(expr, item.expr):
                        slot = i
                        break
            if slot is None:
                return None
            keys.append(SortKey(
                key_fn=(lambda ctx, s=slot: ctx.row[s]),
                descending=order.descending))
        return keys

    def _output_column(self, item: ast.SelectItem, position: int,
                       schema: list[BoundColumn], scope: Scope) -> Column:
        name = item.alias
        if name is None:
            if isinstance(item.expr, ast.ColumnRef):
                name = item.expr.name
            elif isinstance(item.expr, ast.FuncCall):
                name = item.expr.name
            else:
                name = f"col{position + 1}"
        return self._infer_column(item.expr, scope, schema, name)

    def _infer_column(self, expr: ast.Expr, scope: Scope,
                      schema: list[BoundColumn], name: str) -> Column:
        sql_type, length = self._infer_type(expr, scope, schema)
        return Column(name=name.lower(), sql_type=sql_type, length=length)

    def _infer_type(self, expr: ast.Expr, scope: Scope,
                    schema: list[BoundColumn]) -> tuple[SqlType, int]:
        if isinstance(expr, ast.Literal):
            if expr.value is None:
                return SqlType.VARCHAR, 1
            sql_type = infer_sql_type(expr.value)
            length = len(expr.value) if isinstance(expr.value, str) else 0
            return sql_type, length
        if isinstance(expr, ast.ColumnRef):
            try:
                level, index = scope.resolve(expr.table, expr.name,
                                             record=False)
            except ColumnNotFoundError:
                return SqlType.FLOAT, 0
            if level == 0 and index < len(schema):
                column = schema[index].column
                return column.sql_type, column.length
            return SqlType.FLOAT, 0
        if isinstance(expr, ast.FuncCall):
            if expr.name == "count":
                return SqlType.INTEGER, 0
            if expr.name in ("sum", "avg"):
                return SqlType.FLOAT, 0
            if expr.name in ("min", "max") and expr.args:
                return self._infer_type(expr.args[0], scope, schema)
            if expr.name in ("substring", "upper", "lower"):
                return SqlType.VARCHAR, 64
            return SqlType.FLOAT, 0
        if isinstance(expr, ast.Extract):
            return SqlType.INTEGER, 0
        if isinstance(expr, ast.Binary):
            if expr.op in ("AND", "OR") or expr.op in (
                    "=", "<>", "<", "<=", ">", ">="):
                return SqlType.INTEGER, 0
            if expr.op == "||":
                return SqlType.VARCHAR, 128
            left_type, _ = self._infer_type(expr.left, scope, schema)
            right_type, _ = self._infer_type(expr.right, scope, schema)
            if SqlType.DATE in (left_type, right_type):
                return SqlType.DATE, 0
            return SqlType.FLOAT, 0
        if isinstance(expr, ast.Unary):
            return self._infer_type(expr.operand, scope, schema)
        if isinstance(expr, ast.CaseWhen) and expr.whens:
            return self._infer_type(expr.whens[0][1], scope, schema)
        if isinstance(expr, ast.Param):
            value = self._params.get(expr.name)
            if value is None:
                return SqlType.VARCHAR, 64
            sql_type = infer_sql_type(value)
            length = len(value) if isinstance(value, str) else 0
            return sql_type, length
        return SqlType.FLOAT, 0

    # -- compiler / subquery bridge ---------------------------------------------

    def _compiler(self, scope: Scope,
                  replacements: dict[int, int] | None = None) -> ExprCompiler:
        return ExprCompiler(
            scope=scope,
            subquery_planner=self._plan_subquery,
            subquery_runner=self._run_subquery,
            params=self._params,
            replacements=replacements,
            subquery_log=self.subquery_log)

    def _plan_subquery(self, select: ast.SelectStatement, scope: Scope,
                       limit_one: bool):
        """Plan a nested select; returns (plan, correlation refs).

        Correlation refs are harvested from the scopes created while
        planning the subquery whose outer is ``scope`` — every reference
        crossing the subquery boundary was recorded on one of them (with
        the level already re-based), see :meth:`Scope.resolve`.
        """
        mark = len(self._scope_log)
        plan = self._plan_select(select, outer_scope=scope,
                                 limit_one=limit_one)
        outer_refs: list[tuple[int, int]] = []
        for sub_scope in self._scope_log[mark:]:
            if sub_scope.outer is scope:
                for ref in sub_scope.outer_refs:
                    if ref not in outer_refs:
                        outer_refs.append(ref)
        del self._scope_log[mark:]
        return plan, outer_refs

    def _run_subquery(self, plan: Plan, ctx: EvalContext) -> list[tuple]:
        if self._meter is not None:
            self._meter.charge(SERVER_CPU,
                               self._meter.costs.cpu_per_statement_seconds
                               * 0.1, "subquery eval")
        return run_plan(plan.root, self._meter, outer=ctx)


# ---------------------------------------------------------------------------
# Conjunct utilities
# ---------------------------------------------------------------------------


class _Conjunct:
    """One WHERE conjunct plus placement metadata.

    ``column_owner`` maps unqualified column names to the binding that
    owns them (when unique), so unqualified predicates still get pushed
    down and can use indexes.
    """

    def __init__(self, expr: ast.Expr,
                 column_owner: dict[str, str] | None = None,
                 ambiguous: set[str] | None = None):
        self.expr = expr
        self.has_subquery = _has_subquery(expr)
        self.consumed = False
        raw = _expr_bindings(expr)
        resolved: set[str] = set()
        unresolved = False
        for binding in raw:
            if binding != "?":
                resolved.add(binding)
                continue
            # An unqualified reference: attribute via the owner map.
            unresolved = True
        if unresolved:
            for name in _unqualified_names(expr):
                if ambiguous and name in ambiguous:
                    # Ambiguous locally: make the conjunct unplaceable so
                    # it lands in the late filter, whose compile reports
                    # the ambiguity properly.
                    self.bindings = set()
                    return
                owner = (column_owner or {}).get(name)
                if owner is not None:
                    resolved.add(owner)
                # else: unknown locally — an outer (correlated) column.
                # It binds to no local relation, which lets predicates
                # like ``l_orderkey = o_orderkey`` inside a subquery be
                # pushed to the local side and drive an index seek.
        self.bindings = resolved


def _unqualified_names(expr: ast.Expr) -> set[str]:
    found: set[str] = set()

    def walk(node):
        if isinstance(node, ast.ColumnRef):
            if node.table is None:
                found.add(node.name.lower())
            return
        if isinstance(node, (ast.ScalarSubquery, ast.Exists)):
            return
        if isinstance(node, ast.InSubquery):
            walk(node.operand)
            return
        from repro.sql.expressions import _children
        if isinstance(node, ast.Expr):
            for child in _children(node):
                walk(child)

    walk(expr)
    return found


def _collect_table_columns(node, binding: str, local_cols: set[str],
                           refs: set[str]) -> bool:
    """Collect every column name that may read the ``binding`` relation's
    rows anywhere in ``node``, descending into subqueries (a correlated
    reference still reads the outer row).  Unqualified names are included
    whenever they *could* resolve to the relation (over-collection is
    safe; missing a read is not).  Returns False when the analysis cannot
    be conclusive — e.g. a ``*`` projection."""
    if node is None:
        return True
    if isinstance(node, ast.Star):
        return False
    if isinstance(node, ast.ColumnRef):
        if node.table is None:
            if node.name in local_cols:
                refs.add(node.name)
        elif node.table.lower() == binding:
            refs.add(node.name)
        return True
    if isinstance(node, ast.SelectStatement):
        parts = [item.expr for item in node.select_items]
        parts.append(node.where)
        parts.extend(node.group_by)
        parts.append(node.having)
        parts.extend(o.expr for o in node.order_by)
        parts.extend(node.from_items)
        return all(_collect_table_columns(p, binding, local_cols, refs)
                   for p in parts)
    if isinstance(node, ast.UnionSelect):
        return all(_collect_table_columns(s, binding, local_cols, refs)
                   for s in node.selects)
    if isinstance(node, ast.TableName):
        return True
    if isinstance(node, ast.DerivedTable):
        return _collect_table_columns(node.select, binding, local_cols, refs)
    if isinstance(node, ast.Join):
        return all(_collect_table_columns(p, binding, local_cols, refs)
                   for p in (node.left, node.right, node.condition))
    if isinstance(node, (ast.ScalarSubquery, ast.Exists)):
        return _collect_table_columns(node.subquery, binding, local_cols,
                                      refs)
    if isinstance(node, ast.InSubquery):
        return (_collect_table_columns(node.operand, binding, local_cols,
                                       refs)
                and _collect_table_columns(node.subquery, binding,
                                           local_cols, refs))
    from repro.sql.expressions import _children
    if isinstance(node, ast.Expr):
        return all(_collect_table_columns(c, binding, local_cols, refs)
                   for c in _children(node))
    return True


def _column_owner_map(
        schema: list[BoundColumn]) -> tuple[dict[str, str], set[str]]:
    """Map column name -> binding; also return ambiguous names."""
    owner: dict[str, str] = {}
    ambiguous: set[str] = set()
    for bc in schema:
        name = bc.column.name.lower()
        if name in ambiguous:
            continue
        if name in owner and owner[name] != bc.binding:
            del owner[name]
            ambiguous.add(name)
        else:
            owner[name] = bc.binding
    return owner, ambiguous


def _split_conjuncts(expr: ast.Expr | None) -> list:
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _combine_conjuncts(exprs: list[ast.Expr]) -> ast.Expr:
    combined = exprs[0]
    for expr in exprs[1:]:
        combined = ast.Binary(op="AND", left=combined, right=expr)
    return combined


def _side_bindings(expr: ast.Expr, owner: dict[str, str]) -> set[str]:
    """Bindings of one equality side, resolving unqualified names."""
    raw = _expr_bindings(expr)
    resolved: set[str] = set()
    for binding in raw:
        if binding != "?":
            resolved.add(binding)
            continue
        for name in _unqualified_names(expr):
            side_owner = owner.get(name)
            if side_owner is None:
                return set()
            resolved.add(side_owner)
    return resolved


def _expr_bindings(expr: ast.Expr) -> set[str]:
    """Table qualifiers referenced outside subqueries (unqualified refs
    return the special marker ``?`` so callers treat them as local)."""
    found: set[str] = set()
    _walk_bindings(expr, found)
    return found


def _walk_bindings(node, found: set[str]) -> None:
    if isinstance(node, ast.ColumnRef):
        found.add(node.table.lower() if node.table else "?")
        return
    if isinstance(node, (ast.ScalarSubquery, ast.Exists)):
        return
    if isinstance(node, ast.InSubquery):
        _walk_bindings(node.operand, found)
        return
    from repro.sql.expressions import _children
    if isinstance(node, ast.Expr):
        for child in _children(node):
            _walk_bindings(child, found)


def _contains_param(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Param):
        return True
    from repro.sql.expressions import _children
    if isinstance(expr, ast.Expr):
        return any(_contains_param(c) for c in _children(expr))
    return False


def _owning_relation(prepared: list[_Relation],
                     bindings: set[str]) -> int | None:
    """Index of the prepared relation owning ``bindings`` entirely."""
    for i, rel in enumerate(prepared):
        if bindings <= rel.bindings:
            return i
    return None


def _push_limit_hint(op: PlanOperator, top: int) -> None:
    """Push a Limit's row budget into the index scan feeding it, when
    everything in between is 1:1 (projections).  Host-side early-stop
    only — the Limit stops pulling at exactly the same row, so virtual
    charges are unchanged; the scan just stops walking rids sooner."""
    node = op
    while isinstance(node, Project):
        node = node.child
    if isinstance(node, IndexSeek):
        node.limit_hint = (top if node.limit_hint is None
                           else min(node.limit_hint, top))


def _maybe_point_lookup(op: PlanOperator) -> PlanOperator:
    """Fuse ``Project(IndexSeek)`` into a :class:`PointLookup` when the
    seek is a pure equality over the index's full width — the
    point-select shape that dominates the cached wall-clock mix.  Row
    mode delegates to the wrapped project, so plan semantics and virtual
    outputs are unchanged; only the batch engine takes the fused path."""
    if not isinstance(op, Project) or not isinstance(op.child, IndexSeek):
        return op
    seek = op.child
    if seek.index_only:
        return op  # the fused batch path reads the heap
    if seek.lo_fn is not None or seek.hi_fn is not None:
        return op
    width = len(seek.table.index_info(seek.index_name).column_names)
    if len(seek.prefix_fns) != width:
        return op
    if any(is_impure(fn) for fn in seek.prefix_fns):
        return op
    if any(is_impure(expr) for expr in op.exprs):
        return op
    return PointLookup(op)


def _has_subquery(expr: ast.Expr) -> bool:
    if isinstance(expr, (ast.ScalarSubquery, ast.Exists, ast.InSubquery)):
        return True
    from repro.sql.expressions import _children
    if isinstance(expr, ast.Expr):
        return any(_has_subquery(c) for c in _children(expr))
    return False


# ---------------------------------------------------------------------------
# Structural expression keys (group-by matching)
# ---------------------------------------------------------------------------


def _expr_key(expr: ast.Expr, scope: Scope):
    """A hashable structural key; column refs are resolved so that
    ``l.x`` and ``x`` compare equal when they mean the same column."""
    if isinstance(expr, ast.ColumnRef):
        try:
            level, index = scope.resolve(expr.table, expr.name,
                                         record=False)
            return ("col", level, index)
        except ColumnNotFoundError:
            return ("col?", expr.table, expr.name)
    if isinstance(expr, ast.Literal):
        return ("lit", expr.value)
    if isinstance(expr, ast.Interval):
        return ("interval", expr.amount, expr.unit)
    if isinstance(expr, ast.Param):
        return ("param", expr.name)
    if isinstance(expr, ast.Unary):
        return ("unary", expr.op, _expr_key(expr.operand, scope))
    if isinstance(expr, ast.Binary):
        return ("binary", expr.op, _expr_key(expr.left, scope),
                _expr_key(expr.right, scope))
    if isinstance(expr, ast.FuncCall):
        return ("func", expr.name, expr.distinct, expr.star,
                tuple(_expr_key(a, scope) for a in expr.args))
    if isinstance(expr, ast.Extract):
        return ("extract", expr.field_name, _expr_key(expr.operand, scope))
    if isinstance(expr, ast.CaseWhen):
        return ("case",
                tuple((_expr_key(c, scope), _expr_key(r, scope))
                      for c, r in expr.whens),
                _expr_key(expr.else_result, scope)
                if expr.else_result is not None else None)
    if isinstance(expr, ast.IsNull):
        return ("isnull", expr.negated, _expr_key(expr.operand, scope))
    if isinstance(expr, ast.Between):
        return ("between", expr.negated, _expr_key(expr.operand, scope),
                _expr_key(expr.low, scope), _expr_key(expr.high, scope))
    if isinstance(expr, ast.Like):
        return ("like", expr.negated, _expr_key(expr.operand, scope),
                _expr_key(expr.pattern, scope))
    # Subqueries and anything else compare by identity.
    return ("id", id(expr))


def _map_group_refs(expr: ast.Expr, group_keys: list, scope: Scope,
                    replacements: dict[int, int]) -> None:
    """Record slot replacements for subexpressions equal to group keys."""
    if not isinstance(expr, ast.Expr) or id(expr) in replacements:
        return
    if isinstance(expr, (ast.ScalarSubquery, ast.Exists, ast.InSubquery)):
        if isinstance(expr, ast.InSubquery):
            _map_group_refs(expr.operand, group_keys, scope, replacements)
        return
    key = _expr_key(expr, scope)
    for slot, group_key in enumerate(group_keys):
        if key == group_key:
            replacements[id(expr)] = slot
            return
    from repro.sql.expressions import _children
    for child in _children(expr):
        _map_group_refs(child, group_keys, scope, replacements)


def _shallow_expr_equal(a: ast.Expr, b: ast.Expr) -> bool:
    """Alias-free structural comparison used for ORDER BY slot mapping."""
    empty = Scope([])
    return _expr_key(a, empty) == _expr_key(b, empty)


# ---------------------------------------------------------------------------
# Schema helpers
# ---------------------------------------------------------------------------


def _scope_bindings(schema: list[BoundColumn]) -> list[tuple[str, str]]:
    return [(bc.binding, bc.column.name) for bc in schema]


def _table_schema(table) -> list[BoundColumn]:
    return [BoundColumn(binding=table.info.name, column=c)
            for c in table.info.columns]


def _max_factor_of(schema: list[BoundColumn], table_provider) -> float:
    """Highest amplification factor among the base tables in a schema.

    Derived columns have empty bindings; unknown bindings default to 1.
    """
    factor = 1.0
    seen: set[str] = set()
    for bc in schema:
        if not bc.binding or bc.binding in seen:
            continue
        seen.add(bc.binding)
        try:
            table = table_provider(bc.binding)
        except Exception:
            continue
        factor = max(factor, table.cost_factor)
    return factor


def _exec_context(meter):
    from repro.sql.executor import ExecContext

    return ExecContext(meter=meter)


def _seq_scan_with_rids(table, exec_ctx):
    costs = exec_ctx.costs
    per_tuple = (costs.cpu_per_tuple_scan * table.cost_factor
                 if costs else 0.0)
    for rid, row in table.heap.scan():
        exec_ctx.charge_cpu(per_tuple)
        yield rid, row

"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from typing import NamedTuple


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"      # includes #temp names
    PARAMETER = "parameter"        # @name
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"          # = <> < <= > >= + - * / || . , ( ) ;
    END = "end"


#: Reserved words recognized by the parser (everything else that looks like
#: a word is an identifier).  Function names (SUM, SUBSTRING, ...) are *not*
#: keywords — they parse as identifiers followed by '('.
KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
    "DESC", "TOP", "DISTINCT", "AS", "AND", "OR", "NOT", "IN", "EXISTS",
    "BETWEEN", "LIKE", "IS", "NULL", "CASE", "WHEN", "THEN", "ELSE", "END",
    "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "ON", "CROSS",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "CREATE", "DROP", "TABLE", "INDEX", "UNIQUE", "PROCEDURE", "PROC",
    "PRIMARY", "KEY", "VIEW", "EXEC", "EXECUTE", "BEGIN", "COMMIT",
    "ROLLBACK",
    "TRANSACTION", "TRAN", "DATE", "INTERVAL", "YEAR", "MONTH", "DAY",
    "LIMIT", "UNION", "ALL", "DEFAULT", "EXPLAIN", "ANALYZE",
})


class Token(NamedTuple):
    """One lexical token with its source position (for error messages).

    A NamedTuple, not a dataclass: token construction dominates lexing,
    which in turn dominates statement normalization, and ``tuple.__new__``
    is several times cheaper than a frozen dataclass ``__init__``.
    """

    type: TokenType
    value: str
    position: int = 0

    def matches_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.value}, {self.value!r})"

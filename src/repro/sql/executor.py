"""Physical operators: a batch-at-a-time executor with a row-mode twin.

Every operator implements two protocols:

* ``rows(exec_ctx)`` — the original pull-based row-at-a-time iterators,
  retained as a debug/reference mode (``REPRO_ROW_EXEC=1``);
* ``batches(exec_ctx)`` — the default engine: each step yields
  ``(rows, costs)`` where ``rows`` is a list of tuples and ``costs``
  describes the per-row virtual-time charges still *owed* for them.

Laziness matters for fidelity: the server pulls rows into its network
output buffer and *suspends* the scan when the buffer fills (the Table 3
artifact), and abandoned result sets must never charge for rows the
consumer did not pull.  The batch engine therefore defers per-tuple CPU
charges: a batch carries "cost runs" — ``(per_row_seconds, count)``
pairs, in row-examination order — and the root adapter charges a row's
runs only at the moment that row is handed to the consumer
(:func:`_batch_row_stream`).  Charges for rows examined but not emitted
(filtered out, duplicate, unmatched probes) ride along as a *carry*
attached to the next emitted row, or are realized when the consumer
pulls past the end — exactly when the row engine would have examined
them.  :meth:`Meter.charge_run_list` expands runs as individual
additions into the batched-charge accumulator, so the floating-point
fold — and with it the virtual clock, every segment boundary, and every
trace — is bit-identical to row-at-a-time execution.

Two situations pin execution to the row engine: expressions containing
subqueries (evaluation charges the meter mid-expression, so deferral
would reorder segments — see :func:`_row_fallback_batches`) and the
explicit ``REPRO_ROW_EXEC=1`` debug mode.  Scan batches are
page-granular and index lookups single-row so that buffer-pool faults
(disk charges) stay at the same consumption points as before.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import repeat
from operator import itemgetter

from repro.errors import PlanningError
from repro.sim.costs import SERVER_CPU
from repro.sql.expressions import (EvalContext, is_impure, is_true, slot_of,
                                   sql_compare)
from repro.storage.btree import NULL_KEY, decode_key_value


@dataclass
class ExecContext:
    """Everything an operator needs at run time."""

    meter: object            # repro.sim.meter.Meter or None
    outer: EvalContext | None = None

    def charge_cpu(self, seconds: float) -> None:
        # Batched: per-tuple charges accumulate and flush as one segment
        # with the identical total (see Meter.charge_batched).
        if self.meter is not None and seconds > 0:
            self.meter.charge_batched(SERVER_CPU, seconds, "query cpu")

    @property
    def costs(self):
        return self.meter.costs if self.meter is not None else None


class PlanOperator:
    """Base class: operators implement ``rows`` and usually ``batches``."""

    cost_factor: float = 1.0

    def rows(self, exec_ctx: ExecContext):
        raise NotImplementedError

    def batches(self, exec_ctx: ExecContext):
        return _row_fallback_batches(self, exec_ctx)

    def children(self) -> list["PlanOperator"]:
        return []


# ---------------------------------------------------------------------------
# Batch-protocol helpers
# ---------------------------------------------------------------------------
#
# ``costs`` in a ``(rows, costs)`` batch is one of:
#   None          — nothing owed (a blocking operator already charged);
#   a runs tuple  — uniform: every row owes these runs (shared object);
#   a list        — per row: ``costs[i]`` is None or a runs tuple.
# A "runs tuple" is ``((per_row_seconds, count), ...)`` in examination
# order; expanding it run by run, addition by addition, reproduces the
# row engine's exact charge sequence.


def _merge_runs(a: tuple, b: tuple) -> tuple:
    """Concatenate run tuples, merging the boundary runs when their
    per-row values match.  Merging ``(x, n)`` with ``(x, m)`` into
    ``(x, n + m)`` expands to the same addition sequence, so the fold is
    unchanged while drop streaks stay O(1) runs instead of O(rows)."""
    if not a:
        return b
    if not b:
        return a
    av, an = a[-1]
    bv, bn = b[0]
    if av == bv:
        return a[:-1] + ((av, an + bn),) + b[1:]
    return a + b


def _pairs(rows: list, costs):
    """Iterate ``(row, owed_runs)`` for one batch, any costs shape."""
    if type(costs) is list:
        return zip(rows, costs)
    return zip(rows, repeat(costs))


def _row_fallback_batches(op: PlanOperator, exec_ctx: ExecContext):
    """Run ``op``'s whole subtree row-at-a-time, wrapped as size-1
    batches with nothing owed.  Used when expressions are impure
    (subqueries charge the meter mid-evaluation): the row engine's
    charge ordering is reproduced by simply being the row engine."""
    for row in op.rows(exec_ctx):
        yield [row], None


def _realize_carry(meter, carry: tuple) -> None:
    """Charge runs owed for rows examined after the last emitted row.

    Called exactly when the consumer pulls *past* those rows — the same
    pull during which the row engine would have examined and charged
    them — and always *before* the next child batch is requested, so a
    page fault in that request still flushes the accumulator in seed
    order."""
    if carry and meter is not None:
        meter.charge_run_list(SERVER_CPU, carry, "query cpu")


def _repeat_runs(runs: tuple, n: int):
    for _ in range(n):
        yield from runs


def _per_row_runs(costs: list, extra: float):
    for rc in costs:
        if rc:
            yield from rc
        if extra > 0:
            yield (extra, 1)


def _charge_deferred(meter, n_rows: int, costs, extra: float) -> None:
    """Realize a consumed batch's owed charges immediately.

    Blocking operators (sort, aggregate, join build) drain their input
    during the consumer's first pull, so input charges are due the
    moment each row is consumed: each row's own runs first, then the
    ``extra`` per-tuple cost of consuming it — the row engine's order.
    """
    if meter is None or n_rows == 0:
        return
    if costs is None:
        if extra > 0:
            meter.charge_rows(SERVER_CPU, extra, n_rows, "query cpu")
        return
    if type(costs) is tuple:
        if extra > 0:
            per_row = costs + ((extra, 1),)
        else:
            per_row = costs
        if len(per_row) == 1:
            value, count = per_row[0]
            meter.charge_rows(SERVER_CPU, value, count * n_rows, "query cpu")
        else:
            meter.charge_run_list(SERVER_CPU, _repeat_runs(per_row, n_rows),
                                  "query cpu")
        return
    meter.charge_run_list(SERVER_CPU, _per_row_runs(costs, extra),
                          "query cpu")


def _all_slots(fns) -> list[int] | None:
    """Tuple indexes read by ``fns`` when every one is a bare level-0
    column reference (see ``slot_of``); None if any is not."""
    slots = []
    for fn in fns:
        slot = slot_of(fn)
        if slot is None:
            return None
        slots.append(slot)
    return slots


def _stats(exec_ctx: ExecContext):
    return getattr(exec_ctx.meter, "executor_stats", None)


def _count_batch(stats, key: str) -> None:
    if stats is not None:
        stats[key] = stats.get(key, 0) + 1


# ---------------------------------------------------------------------------
# Leaf operators
# ---------------------------------------------------------------------------


class SingleRowScan(PlanOperator):
    """Produces exactly one empty row (SELECT without FROM)."""

    def rows(self, exec_ctx: ExecContext):
        yield ()

    def batches(self, exec_ctx: ExecContext):
        yield [()], None


class EmptyScan(PlanOperator):
    """Produces no rows — used when the WHERE clause is provably false.

    This is what makes Phoenix's ``WHERE 0=1`` metadata trick compile-only
    on our engine, matching the paper: "the query will not be executed and
    no result data is returned; only query compilation is performed".
    """

    def rows(self, exec_ctx: ExecContext):
        return iter(())

    def batches(self, exec_ctx: ExecContext):
        return iter(())


class SeqScan(PlanOperator):
    """Full scan of a table's heap."""

    def __init__(self, table, cost_factor: float = 1.0):
        self.table = table
        self.cost_factor = cost_factor

    def rows(self, exec_ctx: ExecContext):
        for _rid, row in self.rows_with_rids(exec_ctx):
            yield row

    def rows_with_rids(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_scan * self.cost_factor
                     if costs else 0.0)
        probe = getattr(exec_ctx.meter, "lock_probe", None)
        for rid, row in self.table.heap.scan():
            if probe is not None:
                probe(self.table, rid, row)
            exec_ctx.charge_cpu(per_tuple)
            yield rid, row

    def batches(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_scan * self.cost_factor
                     if costs else 0.0)
        run = ((per_tuple, 1),) if per_tuple > 0 else None
        stats = _stats(exec_ctx)
        probe = getattr(exec_ctx.meter, "lock_probe", None)
        # One batch per heap page: the pool's fault (disk charge) happens
        # while producing the batch — the same pull that first needs it.
        for block in self.table.scan_pages():
            if not block:
                continue
            _count_batch(stats, "batches.SeqScan")
            if probe is not None:
                for rid, row in block:
                    probe(self.table, rid, row)
            yield [row for _rid, row in block], run


class IndexSeek(PlanOperator):
    """Point or range access through a B-tree index.

    ``prefix_fns`` produce the equality-prefix key values; ``lo_fn`` /
    ``hi_fn`` optionally bound the next key column.  Values are computed
    at run time so parameters and correlated values work.

    ``index_only=True`` (covering scans) synthesizes output rows from the
    index keys alone — key columns carry their values, every other slot
    is None — and never touches the heap, so no page faults are paid.
    The planner only sets it when the statement provably reads key
    columns exclusively.
    """

    def __init__(self, table, index_name: str, prefix_fns: list,
                 lo_fn=None, hi_fn=None, lo_inclusive: bool = True,
                 hi_inclusive: bool = True, cost_factor: float = 1.0,
                 index_only: bool = False):
        self.table = table
        self.index_name = index_name
        self.prefix_fns = prefix_fns
        self.lo_fn = lo_fn
        self.hi_fn = hi_fn
        self.lo_inclusive = lo_inclusive
        self.hi_inclusive = hi_inclusive
        self.cost_factor = cost_factor
        self.index_only = index_only
        #: set by the planner when this scan's key order made a Sort
        #: unnecessary; counted per *execution* (plan-cache hits too).
        self.eliminates_sort = False
        #: set by the cost-based planner when a Limit above needs at
        #: most this many rows and nothing in between drops rows.  A
        #: host-side early stop only: the downstream Limit stops pulling
        #: at the same row, so virtual charges are unchanged.
        self.limit_hint: int | None = None
        self._key_slots: list[int] | None = None

    def rows(self, exec_ctx: ExecContext):
        if self.index_only:
            costs = exec_ctx.costs
            per_tuple = (costs.cpu_per_tuple_index_lookup * self.cost_factor
                         if costs else 0.0)
            self._count_scan(exec_ctx)
            probe = getattr(exec_ctx.meter, "lock_probe", None)
            hint = self.limit_hint
            emitted = 0
            for key, rid in self._matching_entries(exec_ctx):
                if probe is not None:
                    # Covering scans never read the heap; the probe gets
                    # the rid only and fetches the row itself.
                    probe(self.table, rid, None)
                exec_ctx.charge_cpu(per_tuple)
                yield self._synth_row(key)
                emitted += 1
                if hint is not None and emitted >= hint:
                    return
            return
        for _rid, row in self.rows_with_rids(exec_ctx):
            yield row

    def _bounds(self, exec_ctx: ExecContext):
        """(tree, equality prefix, exact?) for this execution's key values."""
        ctx = EvalContext(row=(), outer=exec_ctx.outer)
        prefix = tuple(fn(ctx) for fn in self.prefix_fns)
        tree = self.table.index_tree(self.index_name)
        index_width = len(self.table.index_info(self.index_name).column_names)
        exact = (self.lo_fn is None and self.hi_fn is None
                 and len(prefix) == index_width)
        return tree, prefix, ctx, index_width, exact

    def _null_bounded(self, prefix: tuple, ctx) -> bool:
        """SQL three-valued logic: an equality or range comparison
        against NULL is *unknown*, so a seek binding NULL matches no
        rows (stored keys hold the NULL sentinel, which never equals a
        bound value anyway — this just skips the tree walk)."""
        if any(v is None for v in prefix):
            return True
        if self.lo_fn is not None and self.lo_fn(ctx) is None:
            return True
        if self.hi_fn is not None and self.hi_fn(ctx) is None:
            return True
        return False

    def _matching_rids(self, exec_ctx: ExecContext) -> list:
        tree, prefix, ctx, index_width, exact = self._bounds(exec_ctx)
        if self._null_bounded(prefix, ctx):
            return []
        if exact:
            return tree.search(prefix)
        lo_key, lo_inc = self._lower_key(prefix, ctx, index_width)
        hi_key, hi_inc = self._upper_key(prefix, ctx, index_width)
        return [rid for _key, rid in tree.range(
            lo_key, hi_key, lo_inclusive=lo_inc, hi_inclusive=hi_inc)]

    def _matching_entries(self, exec_ctx: ExecContext) -> list:
        """Like :meth:`_matching_rids` but keeps the index keys (used by
        index-only scans, which never consult the heap)."""
        tree, prefix, ctx, index_width, exact = self._bounds(exec_ctx)
        if self._null_bounded(prefix, ctx):
            return []
        if exact:
            return [(prefix, rid) for rid in tree.search(prefix)]
        lo_key, lo_inc = self._lower_key(prefix, ctx, index_width)
        hi_key, hi_inc = self._upper_key(prefix, ctx, index_width)
        return list(tree.range(lo_key, hi_key,
                               lo_inclusive=lo_inc, hi_inclusive=hi_inc))

    def _synth_row(self, key: tuple) -> tuple:
        slots = self._key_slots
        if slots is None:
            info = self.table.index_info(self.index_name)
            slots = [self.table.info.column_index(c)
                     for c in info.column_names]
            self._key_slots = slots
        row = [None] * len(self.table.info.columns)
        for slot, value in zip(slots, key):
            row[slot] = decode_key_value(value)
        return tuple(row)

    def _count_scan(self, exec_ctx: ExecContext) -> None:
        stats = _stats(exec_ctx)
        if stats is None:
            return
        kind = type(self).__name__
        key = ("index_only_scans" if self.index_only
               else "index_range_scans" if kind == "IndexRangeScan"
               else "index_seeks")
        stats[key] = stats.get(key, 0) + 1
        if self.eliminates_sort:
            stats["sort_eliminations"] = \
                stats.get("sort_eliminations", 0) + 1

    def rows_with_rids(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_index_lookup * self.cost_factor
                     if costs else 0.0)
        self._count_scan(exec_ctx)
        probe = getattr(exec_ctx.meter, "lock_probe", None)
        rids = self._matching_rids(exec_ctx)
        hint = self.limit_hint
        emitted = 0
        for rid in rids:
            row = self.table.heap.read(rid)
            if row is None:
                continue
            if probe is not None:
                probe(self.table, rid, row)
            exec_ctx.charge_cpu(per_tuple)
            yield rid, row
            emitted += 1
            if hint is not None and emitted >= hint:
                return

    def batches(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_index_lookup * self.cost_factor
                     if costs else 0.0)
        run = ((per_tuple, 1),) if per_tuple > 0 else None
        stats = _stats(exec_ctx)
        batch_key = "batches." + type(self).__name__
        self._count_scan(exec_ctx)
        probe = getattr(exec_ctx.meter, "lock_probe", None)
        hint = self.limit_hint
        emitted = 0
        if self.index_only:
            for key, rid in self._matching_entries(exec_ctx):
                if probe is not None:
                    probe(self.table, rid, None)
                _count_batch(stats, batch_key)
                yield [self._synth_row(key)], run
                emitted += 1
                if hint is not None and emitted >= hint:
                    return
            return
        rids = self._matching_rids(exec_ctx)
        read = self.table.heap.read
        # Single-row batches: each heap read can fault a page, and that
        # fault must land on the pull that consumes the row.
        for rid in rids:
            row = read(rid)
            if row is None:
                continue
            if probe is not None:
                probe(self.table, rid, row)
            _count_batch(stats, batch_key)
            yield [row], run
            emitted += 1
            if hint is not None and emitted >= hint:
                return

    def _lower_key(self, prefix: tuple, ctx, index_width: int):
        if self.lo_fn is not None:
            base = prefix + (self.lo_fn(ctx),)
            if self.lo_inclusive:
                # (p, lo) <= (p, lo, anything) — inclusive base works.
                return base, True
            # Exclusive: skip every key whose next column equals lo by
            # padding the bound above all of lo's tails.
            return base + (_Infinity(),) * (index_width - len(base)), False
        if self.hi_fn is not None:
            # Upper bound only: the consumed range conjunct still
            # excludes NULL in the bound column (three-valued logic),
            # and NULL sentinels sort below every value — start just
            # above them so they cannot leak past the dropped filter.
            base = prefix + (NULL_KEY,)
            return base + (_Infinity(),) * (index_width - len(base)), False
        if prefix:
            return prefix, True
        return None, True

    def _upper_key(self, prefix: tuple, ctx, index_width: int):
        if self.hi_fn is not None:
            base = prefix + (self.hi_fn(ctx),)
            if self.hi_inclusive:
                # Include keys with trailing columns beyond (p, hi).
                return base + (_Infinity(),) * (index_width - len(base)), True
            return base, False
        if prefix:
            return prefix + (_Infinity(),) * (index_width - len(prefix)), True
        return None, True


class IndexRangeScan(IndexSeek):
    """Ordered walk of a contiguous index key range.

    Same machinery as :class:`IndexSeek`, used by the planner whenever
    the predicate does *not* pin the full key width — a partial equality
    prefix and/or a range bound on the next key column.  Rows are
    produced in index-key order (the B-tree range walk is ordered),
    which is what lets the planner drop a ``Sort`` whose keys match the
    remaining key columns.
    """


class _Infinity:
    """Sorts above every SQL value (range-scan upper sentinel)."""

    def __lt__(self, other):
        return False

    def __gt__(self, other):
        return True

    def __le__(self, other):
        return isinstance(other, _Infinity)

    def __ge__(self, other):
        return True

    def __eq__(self, other):
        return isinstance(other, _Infinity)

    def __hash__(self):
        return 0


# ---------------------------------------------------------------------------
# Streaming operators
# ---------------------------------------------------------------------------


class Filter(PlanOperator):
    def __init__(self, child: PlanOperator, predicate):
        self.child = child
        self.predicate = predicate

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        predicate = self.predicate
        outer = exec_ctx.outer
        for row in self.child.rows(exec_ctx):
            if is_true(predicate(EvalContext(row=row, outer=outer))):
                yield row

    def batches(self, exec_ctx: ExecContext):
        predicate = self.predicate
        if is_impure(predicate):
            yield from _row_fallback_batches(self, exec_ctx)
            return
        meter = exec_ctx.meter
        stats = _stats(exec_ctx)
        ctx = EvalContext(row=(), outer=exec_ctx.outer)
        child_it = self.child.batches(exec_ctx)
        carry: tuple = ()
        while True:
            _realize_carry(meter, carry)
            carry = ()
            batch = next(child_it, None)
            if batch is None:
                return
            rows, costs = batch
            out: list = []
            out_costs: list = []
            for row, rc in _pairs(rows, costs):
                if rc:
                    carry = _merge_runs(carry, rc)
                ctx.row = row
                if predicate(ctx) is True:
                    out.append(row)
                    out_costs.append(carry if carry else None)
                    carry = ()
            if out:
                _count_batch(stats, "batches.Filter")
                yield out, out_costs


class Project(PlanOperator):
    def __init__(self, child: PlanOperator, exprs: list):
        self.child = child
        self.exprs = exprs

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        exprs = self.exprs
        outer = exec_ctx.outer
        for row in self.child.rows(exec_ctx):
            ctx = EvalContext(row=row, outer=outer)
            yield tuple(expr(ctx) for expr in exprs)

    def batches(self, exec_ctx: ExecContext):
        exprs = self.exprs
        if any(is_impure(expr) for expr in exprs):
            yield from _row_fallback_batches(self, exec_ctx)
            return
        stats = _stats(exec_ctx)
        slots = _all_slots(exprs)
        if slots is not None and slots:
            # Pure column projection: index tuples directly, no contexts.
            if len(slots) == 1:
                s0 = slots[0]
                for rows, costs in self.child.batches(exec_ctx):
                    _count_batch(stats, "batches.Project")
                    yield [(row[s0],) for row in rows], costs
            else:
                getter = itemgetter(*slots)
                for rows, costs in self.child.batches(exec_ctx):
                    _count_batch(stats, "batches.Project")
                    yield [getter(row) for row in rows], costs
            return
        ctx = EvalContext(row=(), outer=exec_ctx.outer)
        for rows, costs in self.child.batches(exec_ctx):
            out = []
            for row in rows:
                ctx.row = row
                out.append(tuple(expr(ctx) for expr in exprs))
            _count_batch(stats, "batches.Project")
            yield out, costs


class Limit(PlanOperator):
    def __init__(self, child: PlanOperator, count: int):
        self.child = child
        self.count = count

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        if self.count <= 0:
            return
        produced = 0
        for row in self.child.rows(exec_ctx):
            yield row
            produced += 1
            if produced >= self.count:
                return

    def batches(self, exec_ctx: ExecContext):
        if self.count <= 0:
            return
        stats = _stats(exec_ctx)
        remaining = self.count
        for rows, costs in self.child.batches(exec_ctx):
            if len(rows) >= remaining:
                # Rows past the limit were never examined by the row
                # engine: drop them *and* their owed charges.
                rows = rows[:remaining]
                if type(costs) is list:
                    costs = costs[:remaining]
                _count_batch(stats, "batches.Limit")
                yield rows, costs
                return
            remaining -= len(rows)
            _count_batch(stats, "batches.Limit")
            yield rows, costs


class Distinct(PlanOperator):
    def __init__(self, child: PlanOperator, cost_factor: float = 1.0):
        self.child = child
        self.cost_factor = cost_factor

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_agg * self.cost_factor
                     if costs else 0.0)
        seen: set = set()
        for row in self.child.rows(exec_ctx):
            exec_ctx.charge_cpu(per_tuple)
            if row not in seen:
                seen.add(row)
                yield row

    def batches(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_agg * self.cost_factor
                     if costs else 0.0)
        my_run = ((per_tuple, 1),) if per_tuple > 0 else ()
        meter = exec_ctx.meter
        stats = _stats(exec_ctx)
        seen: set = set()
        child_it = self.child.batches(exec_ctx)
        carry: tuple = ()
        while True:
            _realize_carry(meter, carry)
            carry = ()
            batch = next(child_it, None)
            if batch is None:
                return
            rows, costs_in = batch
            out: list = []
            out_costs: list = []
            for row, rc in _pairs(rows, costs_in):
                if rc:
                    carry = _merge_runs(carry, rc)
                if my_run:
                    carry = _merge_runs(carry, my_run)
                if row not in seen:
                    seen.add(row)
                    out.append(row)
                    out_costs.append(carry if carry else None)
                    carry = ()
            if out:
                _count_batch(stats, "batches.Distinct")
                yield out, out_costs


class Concat(PlanOperator):
    """Sequential concatenation of same-arity inputs (UNION ALL)."""

    def __init__(self, inputs: list[PlanOperator]):
        self.inputs = inputs

    def children(self):
        return list(self.inputs)

    def rows(self, exec_ctx: ExecContext):
        for child in self.inputs:
            yield from child.rows(exec_ctx)

    def batches(self, exec_ctx: ExecContext):
        for child in self.inputs:
            yield from child.batches(exec_ctx)


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


class HashJoin(PlanOperator):
    """Equi hash join; ``kind`` is 'inner' or 'left'.

    The *right* input is built into the hash table; residual predicates
    (non-equi parts of the ON clause) are applied per candidate pair, so
    LEFT join semantics remain correct.
    """

    def __init__(self, left: PlanOperator, right: PlanOperator,
                 left_key_fns: list, right_key_fns: list,
                 kind: str = "inner", residual=None,
                 left_width: int = 0, right_width: int = 0,
                 cost_factor: float = 1.0):
        self.left = left
        self.right = right
        self.left_key_fns = left_key_fns
        self.right_key_fns = right_key_fns
        self.kind = kind
        self.residual = residual
        self.left_width = left_width
        self.right_width = right_width
        self.cost_factor = cost_factor

    def children(self):
        return [self.left, self.right]

    def _impure(self) -> bool:
        return (is_impure(self.residual)
                or any(is_impure(fn) for fn in self.left_key_fns)
                or any(is_impure(fn) for fn in self.right_key_fns))

    def rows(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_join * self.cost_factor
                     if costs else 0.0)
        outer = exec_ctx.outer
        right_slots = _all_slots(self.right_key_fns)
        left_slots = _all_slots(self.left_key_fns)
        table: dict = {}
        for row in self.right.rows(exec_ctx):
            exec_ctx.charge_cpu(per_tuple)
            if right_slots is not None:
                key = tuple(row[i] for i in right_slots)
            else:
                ctx = EvalContext(row=row, outer=outer)
                key = tuple(fn(ctx) for fn in self.right_key_fns)
            if any(v is None for v in key):
                continue  # NULL never equi-joins
            table.setdefault(key, []).append(row)
        null_right = (None,) * self.right_width
        for left_row in self.left.rows(exec_ctx):
            exec_ctx.charge_cpu(per_tuple)
            if left_slots is not None:
                key = tuple(left_row[i] for i in left_slots)
            else:
                ctx = EvalContext(row=left_row, outer=outer)
                key = tuple(fn(ctx) for fn in self.left_key_fns)
            matched = False
            if not any(v is None for v in key):
                for right_row in table.get(key, ()):
                    combined = left_row + right_row
                    if self.residual is not None and not is_true(
                            self.residual(EvalContext(row=combined,
                                                      outer=outer))):
                        continue
                    matched = True
                    yield combined
            if not matched and self.kind == "left":
                yield left_row + null_right

    def batches(self, exec_ctx: ExecContext):
        if self._impure():
            yield from _row_fallback_batches(self, exec_ctx)
            return
        costs_model = exec_ctx.costs
        per_tuple = (costs_model.cpu_per_tuple_join * self.cost_factor
                     if costs_model else 0.0)
        join_run = ((per_tuple, 1),) if per_tuple > 0 else ()
        meter = exec_ctx.meter
        stats = _stats(exec_ctx)
        outer = exec_ctx.outer
        # Build: the row engine drains the right side during the first
        # pull, so input charges are due as each batch is consumed —
        # realized before the next batch is requested (fault ordering).
        table: dict = {}
        right_slots = _all_slots(self.right_key_fns)
        right_key_fns = self.right_key_fns
        ctx = EvalContext(row=(), outer=outer)
        for rows, costs in self.right.batches(exec_ctx):
            _charge_deferred(meter, len(rows), costs, per_tuple)
            if right_slots is not None:
                for row in rows:
                    key = tuple(row[i] for i in right_slots)
                    if None in key:
                        continue  # NULL never equi-joins
                    table.setdefault(key, []).append(row)
            else:
                for row in rows:
                    ctx.row = row
                    key = tuple(fn(ctx) for fn in right_key_fns)
                    if None in key:
                        continue
                    table.setdefault(key, []).append(row)
        # Probe: streaming with a carry, like Filter.
        left_slots = _all_slots(self.left_key_fns)
        left_key_fns = self.left_key_fns
        residual = self.residual
        is_left_join = self.kind == "left"
        null_right = (None,) * self.right_width
        empty: tuple = ()
        left_it = self.left.batches(exec_ctx)
        carry: tuple = ()
        while True:
            _realize_carry(meter, carry)
            carry = ()
            batch = next(left_it, None)
            if batch is None:
                return
            rows, costs = batch
            out: list = []
            out_costs: list = []
            for left_row, rc in _pairs(rows, costs):
                if rc:
                    carry = _merge_runs(carry, rc)
                if join_run:
                    carry = _merge_runs(carry, join_run)
                if left_slots is not None:
                    key = tuple(left_row[i] for i in left_slots)
                else:
                    ctx.row = left_row
                    key = tuple(fn(ctx) for fn in left_key_fns)
                matched = False
                if None not in key:
                    for right_row in table.get(key, empty):
                        combined = left_row + right_row
                        if residual is not None:
                            ctx.row = combined
                            if residual(ctx) is not True:
                                continue
                        matched = True
                        out.append(combined)
                        out_costs.append(carry if carry else None)
                        carry = ()
                if not matched and is_left_join:
                    out.append(left_row + null_right)
                    out_costs.append(carry if carry else None)
                    carry = ()
            if out:
                _count_batch(stats, "batches.HashJoin")
                yield out, out_costs


class SortMergeJoin(PlanOperator):
    """Sort-merge equi join (inner only), chosen by the cost-based
    planner when both inputs already arrive in join-key order (or one
    is cheap enough to sort).

    Each input row is consumed exactly once at scan rate
    (``cpu_per_tuple_scan``) instead of the hash join's build/probe rate
    (``cpu_per_tuple_join``); any input *not* key-ordered additionally
    pays ``sort_seconds``.  NULL keys are dropped before the merge — an
    inner equi join can never match them.
    """

    def __init__(self, left: PlanOperator, right: PlanOperator,
                 left_key_fns: list, right_key_fns: list, residual=None,
                 left_width: int = 0, right_width: int = 0,
                 left_sorted: bool = False, right_sorted: bool = False,
                 cost_factor: float = 1.0):
        self.left = left
        self.right = right
        self.left_key_fns = left_key_fns
        self.right_key_fns = right_key_fns
        self.residual = residual
        self.left_width = left_width
        self.right_width = right_width
        self.left_sorted = left_sorted
        self.right_sorted = right_sorted
        self.cost_factor = cost_factor

    def children(self):
        return [self.left, self.right]

    def _impure(self) -> bool:
        return (is_impure(self.residual)
                or any(is_impure(fn) for fn in self.left_key_fns)
                or any(is_impure(fn) for fn in self.right_key_fns))

    def _keyed(self, rows: list, key_fns: list, outer) -> list:
        slots = _all_slots(key_fns)
        keyed = []
        if slots is not None:
            for row in rows:
                key = tuple(row[i] for i in slots)
                if None in key:
                    continue
                keyed.append((key, row))
        else:
            ctx = EvalContext(row=(), outer=outer)
            for row in rows:
                ctx.row = row
                key = tuple(fn(ctx) for fn in key_fns)
                if None in key:
                    continue
                keyed.append((key, row))
        # Stable sort: equal keys keep input order, so the merge emits
        # the same left-major order a hash probe of ordered inputs
        # would.  Presorted inputs are charged nothing for this (the
        # host-side sort of an ordered list is linear and free in
        # virtual time); unsorted inputs were charged sort_seconds by
        # the caller.
        keyed.sort(key=itemgetter(0))
        return keyed

    def _merge(self, left_keyed: list, right_keyed: list, outer):
        residual = self.residual
        ctx = EvalContext(row=(), outer=outer)
        i, j = 0, 0
        nl, nr = len(left_keyed), len(right_keyed)
        while i < nl and j < nr:
            lkey = left_keyed[i][0]
            rkey = right_keyed[j][0]
            if lkey < rkey:
                i += 1
                continue
            if rkey < lkey:
                j += 1
                continue
            i2 = i
            while i2 < nl and left_keyed[i2][0] == lkey:
                i2 += 1
            j2 = j
            while j2 < nr and right_keyed[j2][0] == lkey:
                j2 += 1
            for li in range(i, i2):
                left_row = left_keyed[li][1]
                for rj in range(j, j2):
                    combined = left_row + right_keyed[rj][1]
                    if residual is not None:
                        ctx.row = combined
                        if residual(ctx) is not True:
                            continue
                    yield combined
            i, j = i2, j2

    def rows(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_scan * self.cost_factor
                     if costs else 0.0)
        left_rows = []
        for row in self.left.rows(exec_ctx):
            exec_ctx.charge_cpu(per_tuple)
            left_rows.append(row)
        right_rows = []
        for row in self.right.rows(exec_ctx):
            exec_ctx.charge_cpu(per_tuple)
            right_rows.append(row)
        if costs is not None:
            if not self.left_sorted:
                exec_ctx.charge_cpu(costs.sort_seconds(len(left_rows))
                                    * self.cost_factor)
            if not self.right_sorted:
                exec_ctx.charge_cpu(costs.sort_seconds(len(right_rows))
                                    * self.cost_factor)
        outer = exec_ctx.outer
        left_keyed = self._keyed(left_rows, self.left_key_fns, outer)
        right_keyed = self._keyed(right_rows, self.right_key_fns, outer)
        yield from self._merge(left_keyed, right_keyed, outer)

    def batches(self, exec_ctx: ExecContext):
        if self._impure():
            yield from _row_fallback_batches(self, exec_ctx)
            return
        costs_model = exec_ctx.costs
        per_tuple = (costs_model.cpu_per_tuple_scan * self.cost_factor
                     if costs_model else 0.0)
        meter = exec_ctx.meter
        stats = _stats(exec_ctx)
        left_rows: list = []
        for rows, costs in self.left.batches(exec_ctx):
            _charge_deferred(meter, len(rows), costs, per_tuple)
            left_rows.extend(rows)
        right_rows: list = []
        for rows, costs in self.right.batches(exec_ctx):
            _charge_deferred(meter, len(rows), costs, per_tuple)
            right_rows.extend(rows)
        if costs_model is not None:
            if not self.left_sorted:
                exec_ctx.charge_cpu(costs_model.sort_seconds(len(left_rows))
                                    * self.cost_factor)
            if not self.right_sorted:
                exec_ctx.charge_cpu(costs_model.sort_seconds(len(right_rows))
                                    * self.cost_factor)
        outer = exec_ctx.outer
        left_keyed = self._keyed(left_rows, self.left_key_fns, outer)
        right_keyed = self._keyed(right_rows, self.right_key_fns, outer)
        _count_batch(stats, "batches.SortMergeJoin")
        yield list(self._merge(left_keyed, right_keyed, outer)), None


class NestedLoopJoin(PlanOperator):
    """Fallback join for non-equi conditions; kinds: inner/left/cross."""

    def __init__(self, left: PlanOperator, right: PlanOperator,
                 condition=None, kind: str = "inner",
                 right_width: int = 0, cost_factor: float = 1.0):
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.right_width = right_width
        self.cost_factor = cost_factor

    def children(self):
        return [self.left, self.right]

    def rows(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_join * self.cost_factor
                     if costs else 0.0)
        outer = exec_ctx.outer
        right_rows = list(self.right.rows(exec_ctx))
        null_right = (None,) * self.right_width
        for left_row in self.left.rows(exec_ctx):
            # Charge the probe row itself, matching HashJoin — an empty
            # right side still examines every left row.
            exec_ctx.charge_cpu(per_tuple)
            matched = False
            for right_row in right_rows:
                exec_ctx.charge_cpu(per_tuple)
                combined = left_row + right_row
                if self.condition is not None and not is_true(
                        self.condition(EvalContext(row=combined,
                                                   outer=outer))):
                    continue
                matched = True
                yield combined
            if not matched and self.kind == "left":
                yield left_row + null_right

    def batches(self, exec_ctx: ExecContext):
        if is_impure(self.condition):
            yield from _row_fallback_batches(self, exec_ctx)
            return
        costs_model = exec_ctx.costs
        per_tuple = (costs_model.cpu_per_tuple_join * self.cost_factor
                     if costs_model else 0.0)
        join_run = ((per_tuple, 1),) if per_tuple > 0 else ()
        meter = exec_ctx.meter
        stats = _stats(exec_ctx)
        right_rows: list = []
        for rows, costs in self.right.batches(exec_ctx):
            _charge_deferred(meter, len(rows), costs, 0.0)
            right_rows.extend(rows)
        condition = self.condition
        is_left_join = self.kind == "left"
        null_right = (None,) * self.right_width
        ctx = EvalContext(row=(), outer=exec_ctx.outer)
        left_it = self.left.batches(exec_ctx)
        carry: tuple = ()
        while True:
            _realize_carry(meter, carry)
            carry = ()
            batch = next(left_it, None)
            if batch is None:
                return
            rows, costs = batch
            out: list = []
            out_costs: list = []
            for left_row, rc in _pairs(rows, costs):
                if rc:
                    carry = _merge_runs(carry, rc)
                if join_run:
                    carry = _merge_runs(carry, join_run)
                matched = False
                for right_row in right_rows:
                    if join_run:
                        carry = _merge_runs(carry, join_run)
                    combined = left_row + right_row
                    if condition is not None:
                        ctx.row = combined
                        if condition(ctx) is not True:
                            continue
                    matched = True
                    out.append(combined)
                    out_costs.append(carry if carry else None)
                    carry = ()
                if not matched and is_left_join:
                    out.append(left_row + null_right)
                    out_costs.append(carry if carry else None)
                    carry = ()
            if out:
                _count_batch(stats, "batches.NestedLoopJoin")
                yield out, out_costs


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


@dataclass
class AggregateSpec:
    """One aggregate to compute: function, argument evaluator, DISTINCT."""

    func: str                 # sum | avg | count | min | max
    arg_fn: object = None     # None for COUNT(*)
    distinct: bool = False


class _Accumulator:
    __slots__ = ("func", "distinct", "count", "total", "best", "seen")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total = None
        self.best = None
        self.seen: set | None = set() if distinct else None

    def add(self, value) -> None:
        if self.func == "count" and value is _COUNT_STAR:
            self.count += 1
            return
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "min":
            if self.best is None or value < self.best:
                self.best = value
        elif self.func == "max":
            if self.best is None or value > self.best:
                self.best = value

    def result(self):
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return None if self.count == 0 else self.total / self.count
        return self.best


class _CountStar:
    pass


_COUNT_STAR = _CountStar()


class HashAggregate(PlanOperator):
    """Hash aggregation: output rows are group keys then aggregate values.

    With no GROUP BY (``group_fns == []``) exactly one row is produced,
    even over empty input (SQL scalar-aggregate semantics).
    """

    def __init__(self, child: PlanOperator, group_fns: list,
                 agg_specs: list[AggregateSpec], cost_factor: float = 1.0):
        self.child = child
        self.group_fns = group_fns
        self.agg_specs = agg_specs
        self.cost_factor = cost_factor

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_agg * self.cost_factor
                     if costs else 0.0)
        outer = exec_ctx.outer
        groups: dict[tuple, list[_Accumulator]] = {}
        order: list[tuple] = []
        for row in self.child.rows(exec_ctx):
            exec_ctx.charge_cpu(per_tuple)
            ctx = EvalContext(row=row, outer=outer)
            key = tuple(fn(ctx) for fn in self.group_fns)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(s.func, s.distinct)
                        for s in self.agg_specs]
                groups[key] = accs
                order.append(key)
            for spec, acc in zip(self.agg_specs, accs):
                if spec.arg_fn is None:
                    acc.add(_COUNT_STAR)
                else:
                    acc.add(spec.arg_fn(ctx))
        if not groups and not self.group_fns:
            accs = [_Accumulator(s.func, s.distinct) for s in self.agg_specs]
            yield tuple(acc.result() for acc in accs)
            return
        for key in order:
            yield key + tuple(acc.result() for acc in groups[key])

    def _impure(self) -> bool:
        return (any(is_impure(fn) for fn in self.group_fns)
                or any(spec.arg_fn is not None and is_impure(spec.arg_fn)
                       for spec in self.agg_specs))

    def batches(self, exec_ctx: ExecContext):
        if self._impure():
            yield from _row_fallback_batches(self, exec_ctx)
            return
        costs_model = exec_ctx.costs
        per_tuple = (costs_model.cpu_per_tuple_agg * self.cost_factor
                     if costs_model else 0.0)
        meter = exec_ctx.meter
        stats = _stats(exec_ctx)
        groups: dict[tuple, list[_Accumulator]] = {}
        order: list[tuple] = []
        specs = self.agg_specs
        group_slots = _all_slots(self.group_fns)
        group_fns = self.group_fns
        # (spec, direct tuple index or None) pairs; an index avoids the
        # EvalContext entirely for bare-column aggregate arguments.
        arg_plan = [(spec, slot_of(spec.arg_fn)
                     if spec.arg_fn is not None else None)
                    for spec in specs]
        needs_ctx = (group_slots is None
                     or any(spec.arg_fn is not None and slot is None
                            for spec, slot in arg_plan))
        ctx = EvalContext(row=(), outer=exec_ctx.outer)
        for rows, costs in self.child.batches(exec_ctx):
            _charge_deferred(meter, len(rows), costs, per_tuple)
            for row in rows:
                if needs_ctx:
                    ctx.row = row
                if group_slots is not None:
                    key = tuple(row[i] for i in group_slots)
                else:
                    key = tuple(fn(ctx) for fn in group_fns)
                accs = groups.get(key)
                if accs is None:
                    accs = [_Accumulator(s.func, s.distinct) for s in specs]
                    groups[key] = accs
                    order.append(key)
                for (spec, slot), acc in zip(arg_plan, accs):
                    if spec.arg_fn is None:
                        acc.add(_COUNT_STAR)
                    elif slot is not None:
                        acc.add(row[slot])
                    else:
                        acc.add(spec.arg_fn(ctx))
        _count_batch(stats, "batches.HashAggregate")
        if not groups and not group_fns:
            accs = [_Accumulator(s.func, s.distinct) for s in specs]
            yield [tuple(acc.result() for acc in accs)], None
            return
        yield [key + tuple(acc.result() for acc in groups[key])
               for key in order], None


# ---------------------------------------------------------------------------
# Sorting
# ---------------------------------------------------------------------------


@dataclass
class SortKey:
    key_fn: object
    descending: bool = False


class Sort(PlanOperator):
    """Full sort.  NULLs sort first ascending (SQL-92 leaves it to the
    implementation; we pick a deterministic rule and keep it)."""

    def __init__(self, child: PlanOperator, keys: list[SortKey],
                 cost_factor: float = 1.0):
        self.child = child
        self.keys = keys
        self.cost_factor = cost_factor

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        outer = exec_ctx.outer
        rows = list(self.child.rows(exec_ctx))
        costs = exec_ctx.costs
        if costs is not None:
            exec_ctx.charge_cpu(costs.sort_seconds(len(rows))
                                * self.cost_factor)
        for key in reversed(self.keys):
            rows.sort(key=lambda row, k=key: _null_safe_key(
                k.key_fn(EvalContext(row=row, outer=outer))),
                reverse=key.descending)
        yield from rows

    def batches(self, exec_ctx: ExecContext):
        meter = exec_ctx.meter
        stats = _stats(exec_ctx)
        rows: list = []
        for batch_rows, costs in self.child.batches(exec_ctx):
            _charge_deferred(meter, len(batch_rows), costs, 0.0)
            rows.extend(batch_rows)
        costs_model = exec_ctx.costs
        if costs_model is not None:
            exec_ctx.charge_cpu(costs_model.sort_seconds(len(rows))
                                * self.cost_factor)
        # Decorate-sort-undecorate, one stable pass per key (innermost
        # last, like the multi-pass list.sort).  ``list.sort(key=...)``
        # evaluates keys once per row in list order, so even this
        # precomputation order matches the row engine's.
        ctx = EvalContext(row=(), outer=exec_ctx.outer)
        for key in reversed(self.keys):
            key_fn = key.key_fn
            slot = slot_of(key_fn)
            if slot is not None:
                decorated = [_null_safe_key(row[slot]) for row in rows]
            else:
                decorated = []
                for row in rows:
                    ctx.row = row
                    decorated.append(_null_safe_key(key_fn(ctx)))
            index = sorted(range(len(rows)), key=decorated.__getitem__,
                           reverse=key.descending)
            rows = [rows[i] for i in index]
        _count_batch(stats, "batches.Sort")
        yield rows, None


def _null_safe_key(value):
    # (0, None-marker) sorts before any real value.
    if value is None:
        return (0, 0)
    return (1, value)


class _Descending:
    """Inverts comparisons for one component of a composite sort key,
    so mixed ASC/DESC orderings collapse into a single stable sort."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return other.value == self.value


class TopNHeapSort(PlanOperator):
    """Bounded-heap ORDER BY + TOP N (cost-based plans only).

    Replaces ``Limit(Sort(child))``: only the top ``count`` rows are
    retained, so the charged CPU is ``n log k`` (:meth:`CostModel.
    topn_seconds`) instead of the full sort's ``n log n``.  The output
    is exactly what Sort+Limit would produce: ``heapq.nsmallest`` is
    documented equivalent to ``sorted(...)[:n]`` (stable), and the
    composite key reproduces the multi-pass stable sort's ordering,
    NULL placement included.
    """

    def __init__(self, child: PlanOperator, keys: list[SortKey],
                 count: int, cost_factor: float = 1.0):
        self.child = child
        self.keys = keys
        self.count = count
        self.cost_factor = cost_factor

    def children(self):
        return [self.child]

    def _key_of(self, exec_ctx: ExecContext):
        keys = self.keys
        outer = exec_ctx.outer

        def composite(row):
            ctx = EvalContext(row=row, outer=outer)
            return tuple(
                _Descending(_null_safe_key(k.key_fn(ctx)))
                if k.descending else _null_safe_key(k.key_fn(ctx))
                for k in keys)

        return composite

    def _select_top(self, rows: list, exec_ctx: ExecContext) -> list:
        if self.count <= 0:
            return []
        import heapq

        return heapq.nsmallest(self.count, rows, key=self._key_of(exec_ctx))

    def rows(self, exec_ctx: ExecContext):
        rows = list(self.child.rows(exec_ctx))
        costs = exec_ctx.costs
        if costs is not None:
            exec_ctx.charge_cpu(costs.topn_seconds(len(rows), self.count)
                                * self.cost_factor)
        yield from self._select_top(rows, exec_ctx)

    def batches(self, exec_ctx: ExecContext):
        meter = exec_ctx.meter
        stats = _stats(exec_ctx)
        rows: list = []
        for batch_rows, costs in self.child.batches(exec_ctx):
            _charge_deferred(meter, len(batch_rows), costs, 0.0)
            rows.extend(batch_rows)
        costs_model = exec_ctx.costs
        if costs_model is not None:
            exec_ctx.charge_cpu(
                costs_model.topn_seconds(len(rows), self.count)
                * self.cost_factor)
        _count_batch(stats, "batches.TopNHeapSort")
        yield self._select_top(rows, exec_ctx), None


# ---------------------------------------------------------------------------
# Point lookups
# ---------------------------------------------------------------------------


class PointLookup(PlanOperator):
    """A projected full-prefix B-tree equality lookup, fused.

    The planner rewrites ``Project(IndexSeek)`` into this when the seek
    is a pure equality over the index's full width — the point-select
    shape that dominates the cached wall-clock mix.  Row mode delegates
    to the wrapped project, so virtual outputs are identical by
    construction; batch mode goes straight from tree search to heap read
    to projected tuple with no intermediate operator machinery.
    """

    def __init__(self, project: "Project"):
        seek = project.child
        if not isinstance(seek, IndexSeek):
            raise PlanningError("PointLookup requires Project over IndexSeek")
        self.project = project
        self.seek = seek
        self.cost_factor = seek.cost_factor

    def children(self):
        return [self.project]

    def rows(self, exec_ctx: ExecContext):
        return self.project.rows(exec_ctx)

    def batches(self, exec_ctx: ExecContext):
        seek = self.seek
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_index_lookup * seek.cost_factor
                     if costs else 0.0)
        run = ((per_tuple, 1),) if per_tuple > 0 else None
        stats = _stats(exec_ctx)
        if stats is not None:
            stats["point_lookups"] = stats.get("point_lookups", 0) + 1
            if seek.eliminates_sort:
                stats["sort_eliminations"] = \
                    stats.get("sort_eliminations", 0) + 1
        ctx = EvalContext(row=(), outer=exec_ctx.outer)
        prefix = tuple(fn(ctx) for fn in seek.prefix_fns)
        if any(v is None for v in prefix):
            return  # comparison against NULL matches nothing
        tree = seek.table.index_tree(seek.index_name)
        read = seek.table.heap.read
        exprs = self.project.exprs
        slots = _all_slots(exprs)
        probe = getattr(exec_ctx.meter, "lock_probe", None)
        for rid in tree.search(prefix):
            row = read(rid)
            if row is None:
                continue
            if probe is not None:
                probe(seek.table, rid, row)
            if slots is not None:
                out_row = tuple(row[i] for i in slots)
            else:
                ctx.row = row
                out_row = tuple(expr(ctx) for expr in exprs)
            yield [out_row], run


# ---------------------------------------------------------------------------
# Running plans
# ---------------------------------------------------------------------------


def row_exec_enabled() -> bool:
    """True when ``REPRO_ROW_EXEC=1`` pins plans to row-at-a-time mode."""
    return os.environ.get("REPRO_ROW_EXEC", "") not in ("", "0")


def is_streamable_plan(root: PlanOperator) -> bool:
    """True when a plan just forwards a stored table's pages.

    A bare ``SELECT * FROM t`` (optionally projected) can be delivered
    page-at-a-time without per-row query evaluation — Phoenix's reopened
    result tables hit this path.  Any filter, limit, join or aggregation
    makes the result pipelined.
    """
    op = root
    while isinstance(op, Project):
        op = op.child
    return isinstance(op, SeqScan)


def _batch_row_stream(root: PlanOperator, exec_ctx: ExecContext):
    """Flatten a batch stream into rows, charging each row's owed runs
    at the moment it is handed over — the row engine's charge point."""
    meter = exec_ctx.meter
    if meter is None:
        for rows, _costs in root.batches(exec_ctx):
            yield from rows
        return
    charge_run_list = meter.charge_run_list
    for rows, costs in root.batches(exec_ctx):
        if costs is None:
            yield from rows
        elif type(costs) is tuple:
            for row in rows:
                charge_run_list(SERVER_CPU, costs, "query cpu")
                yield row
        else:
            for row, rc in zip(rows, costs):
                if rc:
                    charge_run_list(SERVER_CPU, rc, "query cpu")
                yield row


def iterate_plan(root: PlanOperator, meter,
                 outer: EvalContext | None = None):
    """Lazily iterate a plan's output rows.

    Under tracing, the iteration is bracketed by a detached ``stream``
    span (the rows are pulled lazily, possibly interleaved with other
    spans, so strict nesting does not apply) that records the operator
    and how many rows it ultimately produced.
    """
    exec_ctx = ExecContext(meter=meter, outer=outer)
    if row_exec_enabled():
        rows = root.rows(exec_ctx)
    else:
        rows = _batch_row_stream(root, exec_ctx)
    obs = getattr(meter, "obs", None)
    if obs is None or not obs.tracer.enabled:
        return rows
    return _traced_rows(rows, obs, type(root).__name__)


def _traced_rows(rows, obs, op: str):
    span = obs.tracer.start_stream("executor.plan", layer="executor",
                                   op=op)
    produced = 0
    try:
        for row in rows:
            produced += 1
            yield row
    except BaseException:
        span.set_attr("rows", produced)
        obs.tracer.end_stream(span, status="error")
        raise
    else:
        span.set_attr("rows", produced)
        obs.tracer.end_stream(span)
        obs.metrics.observe("executor.rows_per_plan", produced)


def run_plan(root: PlanOperator, meter,
             outer: EvalContext | None = None) -> list[tuple]:
    """Eagerly materialize a plan's output."""
    return list(iterate_plan(root, meter, outer))

"""Physical operators: a pull-based (iterator) executor.

Every operator is lazy — rows are produced on demand.  Laziness matters
for fidelity: the server pulls rows from a query into its network output
buffer and *suspends* the scan when the buffer fills (the Table 3
artifact), which only works if production is demand-driven.

Cost charging happens inside the iterators: CPU per tuple actually
processed (scaled by the operator's ``cost_factor`` — the work
amplification of the base tables involved) and I/O via the buffer pool as
pages actually fault in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanningError
from repro.sim.costs import SERVER_CPU
from repro.sql.expressions import EvalContext, is_true, sql_compare


@dataclass
class ExecContext:
    """Everything an operator needs at run time."""

    meter: object            # repro.sim.meter.Meter or None
    outer: EvalContext | None = None

    def charge_cpu(self, seconds: float) -> None:
        # Batched: per-tuple charges accumulate and flush as one segment
        # with the identical total (see Meter.charge_batched).
        if self.meter is not None and seconds > 0:
            self.meter.charge_batched(SERVER_CPU, seconds, "query cpu")

    @property
    def costs(self):
        return self.meter.costs if self.meter is not None else None


class PlanOperator:
    """Base class: concrete operators implement ``rows(exec_ctx)``."""

    cost_factor: float = 1.0

    def rows(self, exec_ctx: ExecContext):
        raise NotImplementedError

    def children(self) -> list["PlanOperator"]:
        return []


# ---------------------------------------------------------------------------
# Leaf operators
# ---------------------------------------------------------------------------


class SingleRowScan(PlanOperator):
    """Produces exactly one empty row (SELECT without FROM)."""

    def rows(self, exec_ctx: ExecContext):
        yield ()


class EmptyScan(PlanOperator):
    """Produces no rows — used when the WHERE clause is provably false.

    This is what makes Phoenix's ``WHERE 0=1`` metadata trick compile-only
    on our engine, matching the paper: "the query will not be executed and
    no result data is returned; only query compilation is performed".
    """

    def rows(self, exec_ctx: ExecContext):
        return iter(())


class SeqScan(PlanOperator):
    """Full scan of a table's heap."""

    def __init__(self, table, cost_factor: float = 1.0):
        self.table = table
        self.cost_factor = cost_factor

    def rows(self, exec_ctx: ExecContext):
        for _rid, row in self.rows_with_rids(exec_ctx):
            yield row

    def rows_with_rids(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_scan * self.cost_factor
                     if costs else 0.0)
        for rid, row in self.table.heap.scan():
            exec_ctx.charge_cpu(per_tuple)
            yield rid, row


class IndexSeek(PlanOperator):
    """Point or range access through a B-tree index.

    ``prefix_fns`` produce the equality-prefix key values; ``lo_fn`` /
    ``hi_fn`` optionally bound the next key column.  Values are computed
    at run time so parameters and correlated values work.
    """

    def __init__(self, table, index_name: str, prefix_fns: list,
                 lo_fn=None, hi_fn=None, lo_inclusive: bool = True,
                 hi_inclusive: bool = True, cost_factor: float = 1.0):
        self.table = table
        self.index_name = index_name
        self.prefix_fns = prefix_fns
        self.lo_fn = lo_fn
        self.hi_fn = hi_fn
        self.lo_inclusive = lo_inclusive
        self.hi_inclusive = hi_inclusive
        self.cost_factor = cost_factor

    def rows(self, exec_ctx: ExecContext):
        for _rid, row in self.rows_with_rids(exec_ctx):
            yield row

    def rows_with_rids(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_index_lookup * self.cost_factor
                     if costs else 0.0)
        ctx = EvalContext(row=(), outer=exec_ctx.outer)
        prefix = tuple(fn(ctx) for fn in self.prefix_fns)
        tree = self.table.index_tree(self.index_name)
        index_width = len(self.table.index_info(self.index_name).column_names)
        if self.lo_fn is None and self.hi_fn is None \
                and len(prefix) == index_width:
            rids = tree.search(prefix)
        else:
            lo_key, lo_inc = self._lower_key(prefix, ctx, index_width)
            hi_key, hi_inc = self._upper_key(prefix, ctx, index_width)
            rids = [rid for _key, rid in tree.range(
                lo_key, hi_key, lo_inclusive=lo_inc, hi_inclusive=hi_inc)]
        for rid in rids:
            row = self.table.heap.read(rid)
            if row is None:
                continue
            exec_ctx.charge_cpu(per_tuple)
            yield rid, row

    def _lower_key(self, prefix: tuple, ctx, index_width: int):
        if self.lo_fn is not None:
            base = prefix + (self.lo_fn(ctx),)
            if self.lo_inclusive:
                # (p, lo) <= (p, lo, anything) — inclusive base works.
                return base, True
            # Exclusive: skip every key whose next column equals lo by
            # padding the bound above all of lo's tails.
            return base + (_Infinity(),) * (index_width - len(base)), False
        if prefix:
            return prefix, True
        return None, True

    def _upper_key(self, prefix: tuple, ctx, index_width: int):
        if self.hi_fn is not None:
            base = prefix + (self.hi_fn(ctx),)
            if self.hi_inclusive:
                # Include keys with trailing columns beyond (p, hi).
                return base + (_Infinity(),) * (index_width - len(base)), True
            return base, False
        if prefix:
            return prefix + (_Infinity(),) * (index_width - len(prefix)), True
        return None, True


class _Infinity:
    """Sorts above every SQL value (range-scan upper sentinel)."""

    def __lt__(self, other):
        return False

    def __gt__(self, other):
        return True

    def __le__(self, other):
        return isinstance(other, _Infinity)

    def __ge__(self, other):
        return True

    def __eq__(self, other):
        return isinstance(other, _Infinity)

    def __hash__(self):
        return 0


# ---------------------------------------------------------------------------
# Row-at-a-time operators
# ---------------------------------------------------------------------------


class Filter(PlanOperator):
    def __init__(self, child: PlanOperator, predicate):
        self.child = child
        self.predicate = predicate

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        predicate = self.predicate
        outer = exec_ctx.outer
        for row in self.child.rows(exec_ctx):
            if is_true(predicate(EvalContext(row=row, outer=outer))):
                yield row


class Project(PlanOperator):
    def __init__(self, child: PlanOperator, exprs: list):
        self.child = child
        self.exprs = exprs

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        exprs = self.exprs
        outer = exec_ctx.outer
        for row in self.child.rows(exec_ctx):
            ctx = EvalContext(row=row, outer=outer)
            yield tuple(expr(ctx) for expr in exprs)


class Limit(PlanOperator):
    def __init__(self, child: PlanOperator, count: int):
        self.child = child
        self.count = count

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        if self.count <= 0:
            return
        produced = 0
        for row in self.child.rows(exec_ctx):
            yield row
            produced += 1
            if produced >= self.count:
                return


class Distinct(PlanOperator):
    def __init__(self, child: PlanOperator, cost_factor: float = 1.0):
        self.child = child
        self.cost_factor = cost_factor

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_agg * self.cost_factor
                     if costs else 0.0)
        seen: set = set()
        for row in self.child.rows(exec_ctx):
            exec_ctx.charge_cpu(per_tuple)
            if row not in seen:
                seen.add(row)
                yield row


class Concat(PlanOperator):
    """Sequential concatenation of same-arity inputs (UNION ALL)."""

    def __init__(self, inputs: list[PlanOperator]):
        self.inputs = inputs

    def children(self):
        return list(self.inputs)

    def rows(self, exec_ctx: ExecContext):
        for child in self.inputs:
            yield from child.rows(exec_ctx)


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


class HashJoin(PlanOperator):
    """Equi hash join; ``kind`` is 'inner' or 'left'.

    The *right* input is built into the hash table; residual predicates
    (non-equi parts of the ON clause) are applied per candidate pair, so
    LEFT join semantics remain correct.
    """

    def __init__(self, left: PlanOperator, right: PlanOperator,
                 left_key_fns: list, right_key_fns: list,
                 kind: str = "inner", residual=None,
                 left_width: int = 0, right_width: int = 0,
                 cost_factor: float = 1.0):
        self.left = left
        self.right = right
        self.left_key_fns = left_key_fns
        self.right_key_fns = right_key_fns
        self.kind = kind
        self.residual = residual
        self.left_width = left_width
        self.right_width = right_width
        self.cost_factor = cost_factor

    def children(self):
        return [self.left, self.right]

    def rows(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_join * self.cost_factor
                     if costs else 0.0)
        outer = exec_ctx.outer
        table: dict = {}
        for row in self.right.rows(exec_ctx):
            exec_ctx.charge_cpu(per_tuple)
            ctx = EvalContext(row=row, outer=outer)
            key = tuple(fn(ctx) for fn in self.right_key_fns)
            if any(v is None for v in key):
                continue  # NULL never equi-joins
            table.setdefault(key, []).append(row)
        null_right = (None,) * self.right_width
        for left_row in self.left.rows(exec_ctx):
            exec_ctx.charge_cpu(per_tuple)
            ctx = EvalContext(row=left_row, outer=outer)
            key = tuple(fn(ctx) for fn in self.left_key_fns)
            matched = False
            if not any(v is None for v in key):
                for right_row in table.get(key, ()):
                    combined = left_row + right_row
                    if self.residual is not None and not is_true(
                            self.residual(EvalContext(row=combined,
                                                      outer=outer))):
                        continue
                    matched = True
                    yield combined
            if not matched and self.kind == "left":
                yield left_row + null_right


class NestedLoopJoin(PlanOperator):
    """Fallback join for non-equi conditions; kinds: inner/left/cross."""

    def __init__(self, left: PlanOperator, right: PlanOperator,
                 condition=None, kind: str = "inner",
                 right_width: int = 0, cost_factor: float = 1.0):
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.right_width = right_width
        self.cost_factor = cost_factor

    def children(self):
        return [self.left, self.right]

    def rows(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_join * self.cost_factor
                     if costs else 0.0)
        outer = exec_ctx.outer
        right_rows = list(self.right.rows(exec_ctx))
        null_right = (None,) * self.right_width
        for left_row in self.left.rows(exec_ctx):
            matched = False
            for right_row in right_rows:
                exec_ctx.charge_cpu(per_tuple)
                combined = left_row + right_row
                if self.condition is not None and not is_true(
                        self.condition(EvalContext(row=combined,
                                                   outer=outer))):
                    continue
                matched = True
                yield combined
            if not matched and self.kind == "left":
                yield left_row + null_right


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


@dataclass
class AggregateSpec:
    """One aggregate to compute: function, argument evaluator, DISTINCT."""

    func: str                 # sum | avg | count | min | max
    arg_fn: object = None     # None for COUNT(*)
    distinct: bool = False


class _Accumulator:
    __slots__ = ("func", "distinct", "count", "total", "best", "seen")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total = None
        self.best = None
        self.seen: set | None = set() if distinct else None

    def add(self, value) -> None:
        if self.func == "count" and value is _COUNT_STAR:
            self.count += 1
            return
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "min":
            if self.best is None or value < self.best:
                self.best = value
        elif self.func == "max":
            if self.best is None or value > self.best:
                self.best = value

    def result(self):
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return None if self.count == 0 else self.total / self.count
        return self.best


class _CountStar:
    pass


_COUNT_STAR = _CountStar()


class HashAggregate(PlanOperator):
    """Hash aggregation: output rows are group keys then aggregate values.

    With no GROUP BY (``group_fns == []``) exactly one row is produced,
    even over empty input (SQL scalar-aggregate semantics).
    """

    def __init__(self, child: PlanOperator, group_fns: list,
                 agg_specs: list[AggregateSpec], cost_factor: float = 1.0):
        self.child = child
        self.group_fns = group_fns
        self.agg_specs = agg_specs
        self.cost_factor = cost_factor

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        costs = exec_ctx.costs
        per_tuple = (costs.cpu_per_tuple_agg * self.cost_factor
                     if costs else 0.0)
        outer = exec_ctx.outer
        groups: dict[tuple, list[_Accumulator]] = {}
        order: list[tuple] = []
        for row in self.child.rows(exec_ctx):
            exec_ctx.charge_cpu(per_tuple)
            ctx = EvalContext(row=row, outer=outer)
            key = tuple(fn(ctx) for fn in self.group_fns)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(s.func, s.distinct)
                        for s in self.agg_specs]
                groups[key] = accs
                order.append(key)
            for spec, acc in zip(self.agg_specs, accs):
                if spec.arg_fn is None:
                    acc.add(_COUNT_STAR)
                else:
                    acc.add(spec.arg_fn(ctx))
        if not groups and not self.group_fns:
            accs = [_Accumulator(s.func, s.distinct) for s in self.agg_specs]
            yield tuple(acc.result() for acc in accs)
            return
        for key in order:
            yield key + tuple(acc.result() for acc in groups[key])


# ---------------------------------------------------------------------------
# Sorting
# ---------------------------------------------------------------------------


@dataclass
class SortKey:
    key_fn: object
    descending: bool = False


class Sort(PlanOperator):
    """Full sort.  NULLs sort first ascending (SQL-92 leaves it to the
    implementation; we pick a deterministic rule and keep it)."""

    def __init__(self, child: PlanOperator, keys: list[SortKey],
                 cost_factor: float = 1.0):
        self.child = child
        self.keys = keys
        self.cost_factor = cost_factor

    def children(self):
        return [self.child]

    def rows(self, exec_ctx: ExecContext):
        outer = exec_ctx.outer
        rows = list(self.child.rows(exec_ctx))
        costs = exec_ctx.costs
        if costs is not None:
            exec_ctx.charge_cpu(costs.sort_seconds(len(rows))
                                * self.cost_factor)
        for key in reversed(self.keys):
            rows.sort(key=lambda row, k=key: _null_safe_key(
                k.key_fn(EvalContext(row=row, outer=outer))),
                reverse=key.descending)
        yield from rows


def _null_safe_key(value):
    # (0, None-marker) sorts before any real value.
    if value is None:
        return (0, 0)
    return (1, value)


# ---------------------------------------------------------------------------
# Running plans
# ---------------------------------------------------------------------------


def is_streamable_plan(root: PlanOperator) -> bool:
    """True when a plan just forwards a stored table's pages.

    A bare ``SELECT * FROM t`` (optionally projected) can be delivered
    page-at-a-time without per-row query evaluation — Phoenix's reopened
    result tables hit this path.  Any filter, limit, join or aggregation
    makes the result pipelined.
    """
    op = root
    while isinstance(op, Project):
        op = op.child
    return isinstance(op, SeqScan)


def iterate_plan(root: PlanOperator, meter,
                 outer: EvalContext | None = None):
    """Lazily iterate a plan's output rows.

    Under tracing, the iteration is bracketed by a detached ``stream``
    span (the rows are pulled lazily, possibly interleaved with other
    spans, so strict nesting does not apply) that records the operator
    and how many rows it ultimately produced.
    """
    rows = root.rows(ExecContext(meter=meter, outer=outer))
    obs = getattr(meter, "obs", None)
    if obs is None or not obs.tracer.enabled:
        return rows
    return _traced_rows(rows, obs, type(root).__name__)


def _traced_rows(rows, obs, op: str):
    span = obs.tracer.start_stream("executor.plan", layer="executor",
                                   op=op)
    produced = 0
    try:
        for row in rows:
            produced += 1
            yield row
    except BaseException:
        span.set_attr("rows", produced)
        obs.tracer.end_stream(span, status="error")
        raise
    else:
        span.set_attr("rows", produced)
        obs.tracer.end_stream(span)
        obs.metrics.observe("executor.rows_per_plan", produced)


def run_plan(root: PlanOperator, meter,
             outer: EvalContext | None = None) -> list[tuple]:
    """Eagerly materialize a plan's output."""
    return list(iterate_plan(root, meter, outer))

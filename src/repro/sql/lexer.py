"""Hand-written SQL lexer.

Produces a flat token list the recursive-descent parser consumes.  Details
worth knowing:

* string literals use single quotes with ``''`` as the escape;
* ``--`` starts a line comment, ``/* */`` a block comment;
* identifiers may start with ``#`` (temp tables) or contain ``_``;
* ``@name`` is a procedure parameter token;
* multi-character operators: ``<=`` ``>=`` ``<>`` ``!=`` ``||``.
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sql.tokens import KEYWORDS, Token, TokenType

_OPERATOR_PAIRS = ("<=", ">=", "<>", "!=", "||")
_OPERATOR_SINGLES = "=<>+-*/.,();"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SqlSyntaxError(f"unterminated block comment at {i}")
            i = end + 2
            continue
        if ch == "'":
            start = i
            value, i = _read_string(sql, i)
            tokens.append(Token(TokenType.STRING, value, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            value, i = _read_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, value, start))
            continue
        if ch == "@":
            start = i
            value, i = _read_word(sql, i + 1)
            if not value:
                raise SqlSyntaxError(f"lone '@' at position {start}")
            tokens.append(Token(TokenType.PARAMETER, value.lower(), start))
            continue
        if ch.isalpha() or ch in "#_":
            start = i
            value, i = _read_word(sql, i)
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, value, start))
            continue
        pair = sql[i:i + 2]
        if pair in _OPERATOR_PAIRS:
            tokens.append(Token(TokenType.OPERATOR,
                                "<>" if pair == "!=" else pair, i))
            i += 2
            continue
        if ch in _OPERATOR_SINGLES:
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.END, "", n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    parts: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlSyntaxError(f"unterminated string literal at {start}")


def _read_number(sql: str, start: int) -> tuple[str, int]:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            nxt = sql[i + 1] if i + 1 < n else ""
            if nxt.isdigit() or (nxt in "+-" and i + 2 < n
                                 and sql[i + 2].isdigit()):
                seen_exp = True
                i += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    return sql[start:i], i


def _read_word(sql: str, start: int) -> tuple[str, int]:
    i = start
    n = len(sql)
    if i < n and sql[i] == "#":
        i += 1
    while i < n and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    return sql[start:i], i

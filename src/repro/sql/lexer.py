"""SQL lexer: a regex scanner with a character-loop fallback.

Produces a flat token list the recursive-descent parser consumes.  Details
worth knowing:

* string literals use single quotes with ``''`` as the escape;
* ``--`` starts a line comment, ``/* */`` a block comment;
* identifiers may start with ``#`` (temp tables) or contain ``_``;
* ``@name`` is a procedure parameter token;
* multi-character operators: ``<=`` ``>=`` ``<>`` ``!=`` ``||``.

The scanner is on the statement-cache hot path (auto-parameterization
re-lexes every distinct statement text), so ASCII input — all of it, in
practice — goes through one compiled master regex.  Non-ASCII input falls
back to the original character loop, whose ``str.isalpha``/``isalnum``
classes are Unicode-aware in ways ``[A-Za-z0-9]`` is not; both paths
produce identical tokens for ASCII text.
"""

from __future__ import annotations

import re

from repro.errors import SqlSyntaxError
from repro.sql.tokens import KEYWORDS, Token, TokenType

_OPERATOR_PAIRS = ("<=", ">=", "<>", "!=", "||")
_OPERATOR_SINGLES = "=<>+-*/.,();"

# One master pattern, leading whitespace folded in so blank runs never
# cost a loop iteration.  Alternation order matters: WORD cannot start
# with a digit so it safely precedes NUMBER; NUMBER must precede OP so
# ``.5`` lexes as a number while a bare ``.`` falls through to OP; the
# comment branches must precede OP or ``--``/``/*`` would lex as minus
# and divide.  STRING's trailing ``(?!')`` forbids a closing quote that
# is immediately followed by another quote — that pair is always the
# ``''`` escape — so an unterminated literal fails to match outright
# instead of backtracking to a shorter string plus garbage.
_TOKEN_RE = re.compile(
    r"""\s*(?:
      (?P<WORD>[A-Za-z_\#][A-Za-z0-9_]*)
    | (?P<NUMBER>\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)
    | (?P<STRING>'[^']*(?:''[^']*)*'(?!'))
    | (?P<PARAM>@\#?[A-Za-z0-9_]*)
    | (?P<LINEC>--[^\n]*(?:\n|$))
    | (?P<BLOCKC>/\*(?:[^*]|\*(?!/))*\*/)
    | (?P<OP>(?:<=|>=|<>|!=|\|\|)|[=<>+\-*/.,();])
    )?""",
    re.VERBOSE)

# Group numbers of the master pattern, for int dispatch on m.lastindex.
_G_WORD, _G_NUMBER, _G_STRING, _G_PARAM, _G_LINEC, _G_BLOCKC, _G_OP = \
    range(1, 8)


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SqlSyntaxError` on bad input."""
    if not sql.isascii():
        return _tokenize_slow(sql)
    tokens: list[Token] = []
    append = tokens.append
    match = _TOKEN_RE.match
    kw = TokenType.KEYWORD
    ident = TokenType.IDENTIFIER
    i = 0
    n = len(sql)
    while i < n:
        m = match(sql, i)  # never None: the \s* prefix can match empty
        idx = m.lastindex
        if idx is None:
            i = m.end()
            if i >= n:
                break  # trailing whitespace
            if sql[i] == "'":
                raise SqlSyntaxError(f"unterminated string literal at {i}")
            raise SqlSyntaxError(
                f"unexpected character {sql[i]!r} at position {i}")
        i = m.end()
        if idx == _G_WORD:
            value = m.group(idx)
            upper = value.upper()
            if upper in KEYWORDS:
                append(Token(kw, upper, m.start(idx)))
            else:
                append(Token(ident, value, m.start(idx)))
        elif idx == _G_OP:
            value = m.group(idx)
            start = m.start(idx)
            if value == "/" and sql.startswith("/*", start):
                # "/*" with no terminator: BLOCKC failed to match, so the
                # bare "/" fell through to the operator branch.
                raise SqlSyntaxError(
                    f"unterminated block comment at {start}")
            append(Token(TokenType.OPERATOR,
                         "<>" if value == "!=" else value, start))
        elif idx == _G_NUMBER:
            append(Token(TokenType.NUMBER, m.group(idx), m.start(idx)))
        elif idx == _G_STRING:
            append(Token(TokenType.STRING,
                         m.group(idx)[1:-1].replace("''", "'"),
                         m.start(idx)))
        elif idx == _G_PARAM:
            value = m.group(idx)
            if len(value) == 1:
                raise SqlSyntaxError(f"lone '@' at position {m.start(idx)}")
            append(Token(TokenType.PARAMETER, value[1:].lower(),
                         m.start(idx)))
        # LINEC / BLOCKC produce no token.
    append(Token(TokenType.END, "", n))
    return tokens


def _tokenize_slow(sql: str) -> list[Token]:
    """Character-loop scanner (Unicode-aware identifier/digit classes)."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SqlSyntaxError(f"unterminated block comment at {i}")
            i = end + 2
            continue
        if ch == "'":
            start = i
            value, i = _read_string(sql, i)
            tokens.append(Token(TokenType.STRING, value, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            value, i = _read_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, value, start))
            continue
        if ch == "@":
            start = i
            value, i = _read_word(sql, i + 1)
            if not value:
                raise SqlSyntaxError(f"lone '@' at position {start}")
            tokens.append(Token(TokenType.PARAMETER, value.lower(), start))
            continue
        if ch.isalpha() or ch in "#_":
            start = i
            value, i = _read_word(sql, i)
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, value, start))
            continue
        pair = sql[i:i + 2]
        if pair in _OPERATOR_PAIRS:
            tokens.append(Token(TokenType.OPERATOR,
                                "<>" if pair == "!=" else pair, i))
            i += 2
            continue
        if ch in _OPERATOR_SINGLES:
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.END, "", n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    parts: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlSyntaxError(f"unterminated string literal at {start}")


def _read_number(sql: str, start: int) -> tuple[str, int]:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            nxt = sql[i + 1] if i + 1 < n else ""
            if nxt.isdigit() or (nxt in "+-" and i + 2 < n
                                 and sql[i + 2].isdigit()):
                seen_exp = True
                i += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    return sql[start:i], i


def _read_word(sql: str, start: int) -> tuple[str, int]:
    i = start
    n = len(sql)
    if i < n and sql[i] == "#":
        i += 1
    while i < n and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    return sql[start:i], i

"""The measurement application.

The paper: "we implemented an interactive application that connects to a
named database server, with an option to select either Phoenix/ODBC or
native ODBC for data access" — this is that application.  It talks only
to the driver-manager surface, so the Phoenix/native switch is exactly
one constructor argument, and it measures elapsed virtual time per
request the way the paper used the Pentium cycle counter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.odbc.constants import SQL_NO_DATA, SQL_SUCCESS
from repro.odbc.driver import NativeDriver
from repro.odbc.driver_manager import DriverManager
from repro.phoenix.config import PhoenixConfig
from repro.phoenix.driver_manager import PhoenixDriverManager
from repro.server.network import SimulatedNetwork
from repro.server.server import DatabaseServer
from repro.sim.meter import Meter, RequestTrace


@dataclass
class Timing:
    """One measured request: rows seen and virtual seconds spent."""

    label: str
    rows: int
    seconds: float
    rowcount: int = -1
    trace: RequestTrace | None = None


class BenchmarkApp:
    """A client application bound to one server via one driver manager."""

    def __init__(self, server: DatabaseServer, use_phoenix: bool = False,
                 phoenix_config: PhoenixConfig | None = None,
                 login: str = "bench"):
        self.server = server
        self.meter: Meter = server.meter
        self.network = SimulatedNetwork(self.meter)
        self.driver = NativeDriver(server, self.network, self.meter)
        if use_phoenix:
            self.manager: DriverManager = PhoenixDriverManager(
                self.driver, phoenix_config)
        else:
            self.manager = DriverManager(self.driver)
        self.use_phoenix = use_phoenix
        env = self.manager.alloc_env()
        self.conn = self.manager.alloc_connection(env)
        rc = self.manager.connect(self.conn, login)
        if rc != SQL_SUCCESS:
            raise ReproError(
                f"connect failed: {self.manager.get_diag(self.conn)}")

    # -- measured operations ------------------------------------------------------

    def run_query(self, sql: str, label: str = "query",
                  fetch: bool = True) -> Timing:
        """Execute a SELECT, fetch every row, close; measure it all."""
        start = self.meter.now
        with self.meter.request(label) as trace:
            statement = self.manager.alloc_statement(self.conn)
            self._check(self.manager.exec_direct(statement, sql),
                        statement, sql)
            rows = 0
            if fetch:
                while True:
                    rc, _row = self.manager.fetch(statement)
                    if rc == SQL_NO_DATA:
                        break
                    self._require(rc == SQL_SUCCESS, statement, sql)
                    rows += 1
            self.manager.close_cursor(statement)
            self.manager.free_statement(statement)
        return Timing(label=label, rows=rows,
                      seconds=self.meter.now - start, trace=trace)

    def run_statement(self, sql: str, label: str = "stmt") -> Timing:
        """Execute a non-query statement; measure it."""
        start = self.meter.now
        with self.meter.request(label) as trace:
            statement = self.manager.alloc_statement(self.conn)
            self._check(self.manager.exec_direct(statement, sql),
                        statement, sql)
            rowcount = self.manager.row_count(statement)
            self.manager.free_statement(statement)
        return Timing(label=label, rows=0, rowcount=rowcount,
                      seconds=self.meter.now - start, trace=trace)

    def query_rows(self, sql: str) -> list[tuple]:
        """Convenience: run a SELECT and return its rows (unmeasured
        bracketing, still charged to the clock)."""
        statement = self.manager.alloc_statement(self.conn)
        self._check(self.manager.exec_direct(statement, sql), statement,
                    sql)
        rows = []
        while True:
            rc, row = self.manager.fetch(statement)
            if rc == SQL_NO_DATA:
                break
            self._require(rc == SQL_SUCCESS, statement, sql)
            rows.append(row)
        self.manager.free_statement(statement)
        return rows

    def execute_measured_steps(self, label: str, steps) -> Timing:
        """Run a callable sequence as one measured request (used by the
        TPC-C transactions, which span several statements)."""
        start = self.meter.now
        with self.meter.request(label) as trace:
            steps(self)
        return Timing(label=label, rows=0,
                      seconds=self.meter.now - start, trace=trace)

    # -- helpers ---------------------------------------------------------------

    def _check(self, rc: int, statement, sql: str) -> None:
        self._require(rc == SQL_SUCCESS, statement, sql)

    def _require(self, ok: bool, statement, sql: str) -> None:
        if not ok:
            diags = self.manager.get_diag(statement)
            raise ReproError(f"statement failed: {diags} :: {sql[:120]}")

"""The TPC-H throughput test (§3.3, Table 2).

Multiple concurrent query streams plus one refresh stream.  We measure
each request's resource demand by executing it once (clock paused, trace
recorded), then replay the streams through the queueing simulator so
contention on the shared server CPU/disk/network determines elapsed
time — "the measurement interval starts when the first query of the
first stream is submitted, and ends when the last query of the second
stream completes."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.meter import RequestTrace
from repro.sim.queueing import QueueingResult, QueueingSimulator
from repro.workloads.app import BenchmarkApp
from repro.workloads.tpch.datagen import TpchData
from repro.workloads.tpch.queries import QUERIES
from repro.workloads.tpch.refresh import run_rf1, run_rf2

# Spec-style per-stream query orderings (streams run the same suite in
# different orders).
STREAM_ORDERINGS = [
    [21, 3, 18, 5, 11, 7, 6, 20, 17, 12, 16, 15, 13, 10, 2, 8, 14, 19,
     9, 22, 1, 4],
    [6, 17, 14, 16, 19, 10, 9, 2, 15, 8, 5, 22, 12, 7, 13, 18, 1, 4,
     20, 3, 11, 21],
    [8, 5, 4, 6, 17, 7, 1, 18, 22, 14, 9, 10, 15, 11, 20, 2, 21, 19,
     13, 16, 12, 3],
    [5, 21, 14, 19, 15, 17, 12, 6, 4, 9, 8, 16, 11, 2, 10, 18, 1, 13,
     7, 22, 3, 20],
]


@dataclass
class ThroughputResult:
    """Outcome of one throughput test."""

    elapsed_seconds: float
    stream_count: int
    queueing: QueueingResult
    query_traces: dict[int, RequestTrace] = field(default_factory=dict)


def collect_query_traces(app: BenchmarkApp,
                         warm: bool = True) -> dict[int, RequestTrace]:
    """Execute each query once to record its resource-demand trace."""
    if warm:
        for number in sorted(QUERIES):
            app.run_query(QUERIES[number], label=f"warmup Q{number:02d}")
    saved = app.meter.advance_clock
    app.meter.advance_clock = False
    traces: dict[int, RequestTrace] = {}
    try:
        for number in sorted(QUERIES):
            timing = app.run_query(QUERIES[number], label=f"Q{number:02d}")
            traces[number] = timing.trace
    finally:
        app.meter.advance_clock = saved
    return traces


def collect_refresh_traces(app: BenchmarkApp, data: TpchData,
                           rounds: int) -> list[RequestTrace]:
    """Record RF1/RF2 traces for the refresh stream (``rounds`` pairs)."""
    saved = app.meter.advance_clock
    app.meter.advance_clock = False
    traces: list[RequestTrace] = []
    try:
        for i in range(rounds):
            rf1_timing, key_range = run_rf1(app, data, seed=500 + i)
            traces.append(rf1_timing.trace)
            traces.append(run_rf2(app, key_range).trace)
    finally:
        app.meter.advance_clock = saved
    return traces


def run_throughput_test(app: BenchmarkApp, data: TpchData,
                        streams: int = 2) -> ThroughputResult:
    """Run the throughput test with ``streams`` query streams.

    Per the spec, the refresh stream executes one RF1/RF2 pair per query
    stream.
    """
    query_traces = collect_query_traces(app)
    refresh_traces = collect_refresh_traces(app, data, rounds=streams)
    stream_lists: list[list[RequestTrace]] = []
    for s in range(streams):
        ordering = STREAM_ORDERINGS[s % len(STREAM_ORDERINGS)]
        stream_lists.append([query_traces[n] for n in ordering])
    stream_lists.append(refresh_traces)
    result = QueueingSimulator().run(stream_lists)
    return ThroughputResult(elapsed_seconds=result.elapsed_seconds,
                            stream_count=streams, queueing=result,
                            query_traces=query_traces)

"""TPC-H: the decision-support workload of §3.

* :mod:`~repro.workloads.tpch.schema` — the eight tables;
* :mod:`~repro.workloads.tpch.datagen` — deterministic scaled generator;
* :mod:`~repro.workloads.tpch.queries` — all 22 queries (our dialect)
  plus the parameterized Q11 and the TOP N probe of Table 3;
* :mod:`~repro.workloads.tpch.refresh` — RF1/RF2, split into two
  transactions each as in the paper;
* :mod:`~repro.workloads.tpch.power` / ``throughput`` — the two TPC-H
  tests (Tables 1 and 2).
"""

from repro.workloads.tpch.datagen import TpchData, generate
from repro.workloads.tpch.schema import create_schema, load

__all__ = ["TpchData", "generate", "create_schema", "load"]

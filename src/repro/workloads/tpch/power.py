"""The TPC-H power test (§3.2, Table 1).

Executes all 22 queries and both refresh functions one at a time in a
fixed order, measuring each individually — "raw query execution power".
An optional warm-up pass runs the suite once unmeasured (the paper
averaged fifty runs, so its numbers are warm-cache numbers; one warm-up
pass gives us the same steady state).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.app import BenchmarkApp
from repro.workloads.tpch.datagen import TpchData
from repro.workloads.tpch.queries import QUERIES
from repro.workloads.tpch.refresh import run_rf1, run_rf2


@dataclass
class PowerTestResult:
    """Per-query and per-refresh timings of one power run."""

    query_seconds: dict[int, float] = field(default_factory=dict)
    query_rows: dict[int, int] = field(default_factory=dict)
    rf1_seconds: float = 0.0
    rf2_seconds: float = 0.0
    rf_rows: int = 0

    @property
    def total_query_seconds(self) -> float:
        return sum(self.query_seconds.values())

    @property
    def total_update_seconds(self) -> float:
        return self.rf1_seconds + self.rf2_seconds


def run_power_test(app: BenchmarkApp, data: TpchData,
                   warm: bool = True,
                   queries: dict[int, str] | None = None) -> PowerTestResult:
    """One measured power run (after an optional warm-up pass)."""
    suite = queries if queries is not None else QUERIES
    if warm:
        for number in sorted(suite):
            app.run_query(suite[number], label=f"warmup Q{number:02d}")
    result = PowerTestResult()
    timing, key_range = run_rf1(app, data)
    result.rf1_seconds = timing.seconds
    result.rf_rows = timing.rows
    for number in sorted(suite):
        timing = app.run_query(suite[number], label=f"Q{number:02d}")
        result.query_seconds[number] = timing.seconds
        result.query_rows[number] = timing.rows
    result.rf2_seconds = run_rf2(app, key_range).seconds
    return result

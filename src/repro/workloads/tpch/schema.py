"""TPC-H schema DDL and bulk loading.

``create_schema`` issues the eight CREATE TABLEs (through SQL, like any
client would).  ``load`` bulk-inserts generated rows directly through the
engine's table runtime — the moral equivalent of ``bcp`` — with the meter
paused, since load time is not part of any experiment.  A checkpoint is
taken afterwards so experiments start from a clean, flushed database.
"""

from __future__ import annotations

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession
from repro.workloads.tpch.datagen import TpchData

DDL = [
    """CREATE TABLE region (
        r_regionkey INT NOT NULL, r_name CHAR(25), r_comment VARCHAR(152),
        PRIMARY KEY (r_regionkey))""",
    """CREATE TABLE nation (
        n_nationkey INT NOT NULL, n_name CHAR(25), n_regionkey INT,
        n_comment VARCHAR(152), PRIMARY KEY (n_nationkey))""",
    """CREATE TABLE supplier (
        s_suppkey INT NOT NULL, s_name CHAR(25), s_address VARCHAR(40),
        s_nationkey INT, s_phone CHAR(15), s_acctbal DECIMAL(15, 2),
        s_comment VARCHAR(101), PRIMARY KEY (s_suppkey))""",
    """CREATE TABLE part (
        p_partkey INT NOT NULL, p_name VARCHAR(55), p_mfgr CHAR(25),
        p_brand CHAR(10), p_type VARCHAR(25), p_size INT,
        p_container CHAR(10), p_retailprice DECIMAL(15, 2),
        p_comment VARCHAR(23), PRIMARY KEY (p_partkey))""",
    """CREATE TABLE partsupp (
        ps_partkey INT NOT NULL, ps_suppkey INT NOT NULL,
        ps_availqty INT, ps_supplycost DECIMAL(15, 2),
        ps_comment VARCHAR(199), PRIMARY KEY (ps_partkey, ps_suppkey))""",
    """CREATE TABLE customer (
        c_custkey INT NOT NULL, c_name VARCHAR(25), c_address VARCHAR(40),
        c_nationkey INT, c_phone CHAR(15), c_acctbal DECIMAL(15, 2),
        c_mktsegment CHAR(10), c_comment VARCHAR(117),
        PRIMARY KEY (c_custkey))""",
    """CREATE TABLE orders (
        o_orderkey INT NOT NULL, o_custkey INT, o_orderstatus CHAR(1),
        o_totalprice DECIMAL(15, 2), o_orderdate DATE,
        o_orderpriority CHAR(15), o_clerk CHAR(15), o_shippriority INT,
        o_comment VARCHAR(79), PRIMARY KEY (o_orderkey))""",
    """CREATE TABLE lineitem (
        l_orderkey INT NOT NULL, l_partkey INT, l_suppkey INT,
        l_linenumber INT NOT NULL, l_quantity DECIMAL(15, 2),
        l_extendedprice DECIMAL(15, 2), l_discount DECIMAL(15, 2),
        l_tax DECIMAL(15, 2), l_returnflag CHAR(1), l_linestatus CHAR(1),
        l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE,
        l_shipinstruct CHAR(25), l_shipmode CHAR(10),
        l_comment VARCHAR(44), PRIMARY KEY (l_orderkey, l_linenumber))""",
]

INDEXES = [
    "CREATE INDEX ix_lineitem_orderkey ON lineitem (l_orderkey)",
    "CREATE INDEX ix_orders_custkey ON orders (o_custkey)",
]


def create_schema(engine: DatabaseEngine, session: EngineSession) -> None:
    for ddl in DDL:
        engine.execute(ddl, session)
    for ddl in INDEXES:
        engine.execute(ddl, session)


def load(engine: DatabaseEngine, session: EngineSession,
         data: TpchData) -> None:
    """Bulk-load generated rows (meter paused) and checkpoint."""
    meter = engine.meter
    saved = meter.advance_clock
    meter.advance_clock = False
    try:
        for table_name, rows in data.table_rows().items():
            _bulk_insert(engine, table_name, rows)
        engine.checkpoint()
    finally:
        meter.advance_clock = saved


def _bulk_insert(engine: DatabaseEngine, table_name: str,
                 rows: list[tuple]) -> None:
    table = engine.table(table_name)
    txn = engine.txns.begin()
    try:
        from repro.types import coerce_column

        columns = table.info.columns
        for row in rows:
            coerced = tuple(coerce_column(v, c)
                            for v, c in zip(row, columns))
            table.insert(coerced, txn, engine.txns)
    except Exception:
        engine.txns.abort(txn)
        raise
    engine.txns.commit(txn)


def setup_tpch_server(server, data: TpchData) -> None:
    """Create + load TPC-H into a :class:`DatabaseServer`."""
    session = EngineSession(session_id=0)
    meter = server.meter
    saved = meter.advance_clock
    meter.advance_clock = False
    try:
        create_schema(server.engine, session)
    finally:
        meter.advance_clock = saved
    load(server.engine, session, data)

"""The 22 TPC-H queries, in the engine's dialect.

Adaptations from the official text (all documented here, none change the
structure the paper exercises):

* validation-point substitution parameters throughout;
* Q9/Q20 select on part-name substrings that exist in our generator's
  vocabulary (type syllables instead of colour names);
* Q15's revenue *view* is inlined as derived tables (no CREATE VIEW);
* Q19's common join predicate is factored out of the disjunction (the
  standard formulation engines rely on for a hash join);
* ``LIMIT``-style row caps use T-SQL ``TOP`` as the paper's SQL Server
  would.

``Q11_FRACTION`` builds the Important Stock Identification Query with an
adjustable selectivity fraction (Figure 5/6), and ``top_n_lineitem``
builds the Table 3 probe.
"""

from __future__ import annotations

Q1 = """
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= date '1998-12-01' - interval '90' day
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

Q2 = """
SELECT TOP 100 s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address,
       s_phone, s_comment
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
  AND p_size = 15 AND p_type LIKE '%BRASS'
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'EUROPE'
  AND ps_supplycost = (
      SELECT min(ps_supplycost)
      FROM partsupp, supplier, nation, region
      WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
        AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
        AND r_name = 'EUROPE')
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
"""

Q3 = """
SELECT TOP 10 l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < date '1995-03-15' AND l_shipdate > date '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
"""

Q4 = """
SELECT o_orderpriority, count(*) AS order_count
FROM orders
WHERE o_orderdate >= date '1993-07-01'
  AND o_orderdate < date '1993-07-01' + interval '3' month
  AND EXISTS (SELECT * FROM lineitem
              WHERE l_orderkey = o_orderkey
                AND l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority
"""

Q5 = """
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= date '1994-01-01'
  AND o_orderdate < date '1994-01-01' + interval '1' year
GROUP BY n_name
ORDER BY revenue DESC
"""

Q6 = """
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= date '1994-01-01'
  AND l_shipdate < date '1994-01-01' + interval '1' year
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24
"""

Q7 = """
SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue
FROM (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
             extract(year FROM l_shipdate) AS l_year,
             l_extendedprice * (1 - l_discount) AS volume
      FROM supplier, lineitem, orders, customer, nation n1, nation n2
      WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
        AND c_custkey = o_custkey
        AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey
        AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
             OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
        AND l_shipdate BETWEEN date '1995-01-01' AND date '1996-12-31'
     ) AS shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year
"""

Q8 = """
SELECT o_year,
       sum(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 END)
           / sum(volume) AS mkt_share
FROM (SELECT extract(year FROM o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount) AS volume,
             n2.n_name AS nation
      FROM part, supplier, lineitem, orders, customer,
           nation n1, nation n2, region
      WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
        AND l_orderkey = o_orderkey AND o_custkey = c_custkey
        AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey
        AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey
        AND o_orderdate BETWEEN date '1995-01-01' AND date '1996-12-31'
        AND p_type = 'ECONOMY ANODIZED STEEL'
     ) AS all_nations
GROUP BY o_year
ORDER BY o_year
"""

Q9 = """
SELECT nation, o_year, sum(amount) AS sum_profit
FROM (SELECT n_name AS nation,
             extract(year FROM o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount)
                 - ps_supplycost * l_quantity AS amount
      FROM part, supplier, lineitem, partsupp, orders, nation
      WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
        AND ps_partkey = l_partkey AND p_partkey = l_partkey
        AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
        AND p_name LIKE '%tin%'
     ) AS profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC
"""

Q10 = """
SELECT TOP 20 c_custkey, c_name,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate >= date '1993-10-01'
  AND o_orderdate < date '1993-10-01' + interval '3' month
  AND l_returnflag = 'R' AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address,
         c_comment
ORDER BY revenue DESC
"""

Q11_FRACTION_DEFAULT = 0.0001


def q11(fraction: float = Q11_FRACTION_DEFAULT,
        nation: str = "GERMANY") -> str:
    """The Important Stock Identification Query (Figure 5)."""
    return f"""
SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
  AND n_name = '{nation}'
GROUP BY ps_partkey
HAVING sum(ps_supplycost * ps_availqty) > (
    SELECT sum(ps_supplycost * ps_availqty) * {fraction}
    FROM partsupp, supplier, nation
    WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
      AND n_name = '{nation}')
ORDER BY value DESC
"""


Q12 = """
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT'
                  OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority <> '1-URGENT'
                 AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
  AND l_receiptdate >= date '1994-01-01'
  AND l_receiptdate < date '1994-01-01' + interval '1' year
GROUP BY l_shipmode
ORDER BY l_shipmode
"""

Q13 = """
SELECT c_count, count(*) AS custdist
FROM (SELECT c_custkey, count(o_orderkey) AS c_count
      FROM customer LEFT JOIN orders
           ON c_custkey = o_custkey
          AND o_comment NOT LIKE '%special%requests%'
      GROUP BY c_custkey
     ) AS c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC
"""

Q14 = """
SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
       / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= date '1995-09-01'
  AND l_shipdate < date '1995-09-01' + interval '1' month
"""

Q15 = """
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM supplier,
     (SELECT l_suppkey AS supplier_no,
             sum(l_extendedprice * (1 - l_discount)) AS total_revenue
      FROM lineitem
      WHERE l_shipdate >= date '1996-01-01'
        AND l_shipdate < date '1996-01-01' + interval '3' month
      GROUP BY l_suppkey) AS revenue0
WHERE s_suppkey = supplier_no
  AND total_revenue = (
      SELECT max(total_revenue)
      FROM (SELECT l_suppkey AS supplier_no,
                   sum(l_extendedprice * (1 - l_discount)) AS total_revenue
            FROM lineitem
            WHERE l_shipdate >= date '1996-01-01'
              AND l_shipdate < date '1996-01-01' + interval '3' month
            GROUP BY l_suppkey) AS revenue1)
ORDER BY s_suppkey
"""

Q16 = """
SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey
  AND p_brand <> 'Brand#45'
  AND p_type NOT LIKE 'MEDIUM POLISHED%'
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
  AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier
                         WHERE s_comment LIKE '%complaints%')
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size
"""

Q17 = """
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND p_brand = 'Brand#23' AND p_container = 'MED BOX'
  AND l_quantity < (SELECT 0.2 * avg(l2.l_quantity)
                    FROM lineitem l2
                    WHERE l2.l_partkey = p_partkey)
"""

Q18 = """
SELECT TOP 100 c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity) AS total_qty
FROM customer, orders, lineitem
WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
                     GROUP BY l_orderkey
                     HAVING sum(l_quantity) > 300)
  AND c_custkey = o_custkey AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
"""

Q19 = """
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND ((p_brand = 'Brand#12'
        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        AND l_quantity >= 1 AND l_quantity <= 11
        AND p_size BETWEEN 1 AND 5
        AND l_shipmode IN ('AIR', 'REG AIR')
        AND l_shipinstruct = 'DELIVER IN PERSON')
    OR (p_brand = 'Brand#23'
        AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        AND l_quantity >= 10 AND l_quantity <= 20
        AND p_size BETWEEN 1 AND 10
        AND l_shipmode IN ('AIR', 'REG AIR')
        AND l_shipinstruct = 'DELIVER IN PERSON')
    OR (p_brand = 'Brand#34'
        AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        AND l_quantity >= 20 AND l_quantity <= 30
        AND p_size BETWEEN 1 AND 15
        AND l_shipmode IN ('AIR', 'REG AIR')
        AND l_shipinstruct = 'DELIVER IN PERSON'))
"""

Q20 = """
SELECT s_name, s_address
FROM supplier, nation
WHERE s_suppkey IN (
    SELECT ps_suppkey FROM partsupp
    WHERE ps_partkey IN (SELECT p_partkey FROM part
                         WHERE p_name LIKE 'standard%')
      AND ps_availqty > (SELECT 0.5 * sum(l_quantity)
                         FROM lineitem
                         WHERE l_partkey = ps_partkey
                           AND l_suppkey = ps_suppkey
                           AND l_shipdate >= date '1994-01-01'
                           AND l_shipdate <
                               date '1994-01-01' + interval '1' year))
  AND s_nationkey = n_nationkey AND n_name = 'CANADA'
ORDER BY s_name
"""

Q21 = """
SELECT TOP 100 s_name, count(*) AS numwait
FROM supplier, lineitem l1, orders, nation
WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F'
  AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (SELECT * FROM lineitem l2
              WHERE l2.l_orderkey = l1.l_orderkey
                AND l2.l_suppkey <> l1.l_suppkey)
  AND NOT EXISTS (SELECT * FROM lineitem l3
                  WHERE l3.l_orderkey = l1.l_orderkey
                    AND l3.l_suppkey <> l1.l_suppkey
                    AND l3.l_receiptdate > l3.l_commitdate)
  AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA'
GROUP BY s_name
ORDER BY numwait DESC, s_name
"""

Q22 = """
SELECT cntrycode, count(*) AS numcust, sum(c_acctbal) AS totacctbal
FROM (SELECT substring(c_phone, 1, 2) AS cntrycode, c_acctbal, c_custkey
      FROM customer
      WHERE substring(c_phone, 1, 2) IN
                ('13', '31', '23', '29', '30', '18', '17')
        AND c_acctbal > (SELECT avg(c_acctbal) FROM customer
                         WHERE c_acctbal > 0.00
                           AND substring(c_phone, 1, 2) IN
                               ('13', '31', '23', '29', '30', '18', '17'))
        AND NOT EXISTS (SELECT * FROM orders
                        WHERE o_custkey = c_custkey)
     ) AS custsale
GROUP BY cntrycode
ORDER BY cntrycode
"""

#: Query number -> SQL text (Q11 at its default fraction).
QUERIES: dict[int, str] = {
    1: Q1, 2: Q2, 3: Q3, 4: Q4, 5: Q5, 6: Q6, 7: Q7, 8: Q8, 9: Q9,
    10: Q10, 11: q11(), 12: Q12, 13: Q13, 14: Q14, 15: Q15, 16: Q16,
    17: Q17, 18: Q18, 19: Q19, 20: Q20, 21: Q21, 22: Q22,
}


def top_n_lineitem(n: int) -> str:
    """The Table 3 probe: an extremely simple query whose cost is
    dominated by result materialization."""
    return f"SELECT TOP {n} * FROM lineitem"

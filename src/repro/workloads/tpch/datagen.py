"""Deterministic TPC-H data generator.

Cardinalities follow the spec linearly in the scale factor (SF 1.0 =
6 M LINEITEM rows); the default laptop scale is SF 0.001.  Value
distributions are simplified but preserve what the 22 queries select on:
date ranges and correlations (ship/commit/receipt dates follow order
dates), nation/region topology, brand/type/container vocabularies,
market segments, priorities, ship modes, return flags and line statuses.

Generation is fully deterministic for a given (scale, seed).
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

# nation -> region index (the spec's 25 nations).
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
            "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
              "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                  "TAKE BACK RETURN"]
TYPE_SYLL_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
               "PROMO"]
TYPE_SYLL_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLL_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
CONTAINER_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN",
               "DRUM"]

START_DATE = datetime.date(1992, 1, 1)
END_DATE = datetime.date(1998, 8, 2)
CURRENT_DATE = datetime.date(1995, 6, 17)  # spec's pseudo-"today"

# Base cardinalities at SF 1.0.
BASE_SUPPLIER = 10_000
BASE_PART = 200_000
BASE_CUSTOMER = 150_000
BASE_ORDERS = 1_500_000
MIN_ROWS = 5  # floor so tiny scales still join


@dataclass
class TpchData:
    """Generated rows per table (tuples in column order)."""

    scale: float
    seed: int
    region: list[tuple] = field(default_factory=list)
    nation: list[tuple] = field(default_factory=list)
    supplier: list[tuple] = field(default_factory=list)
    part: list[tuple] = field(default_factory=list)
    partsupp: list[tuple] = field(default_factory=list)
    customer: list[tuple] = field(default_factory=list)
    orders: list[tuple] = field(default_factory=list)
    lineitem: list[tuple] = field(default_factory=list)
    #: Highest order key generated (refresh functions continue above it).
    max_orderkey: int = 0

    def table_rows(self) -> dict[str, list[tuple]]:
        return {
            "region": self.region, "nation": self.nation,
            "supplier": self.supplier, "part": self.part,
            "partsupp": self.partsupp, "customer": self.customer,
            "orders": self.orders, "lineitem": self.lineitem,
        }


def _count(base: int, scale: float) -> int:
    return max(MIN_ROWS, int(base * scale))


def generate(scale: float = 0.001, seed: int = 7) -> TpchData:
    """Generate a TPC-H database at the given scale factor."""
    rng = random.Random(seed)
    data = TpchData(scale=scale, seed=seed)

    for i, name in enumerate(REGIONS):
        data.region.append((i, name, f"region {name.lower()}"))
    for i, (name, region_key) in enumerate(NATIONS):
        data.nation.append((i, name, region_key,
                            f"nation {name.lower()}"))

    n_supplier = _count(BASE_SUPPLIER, scale)
    n_part = _count(BASE_PART, scale)
    n_customer = _count(BASE_CUSTOMER, scale)
    n_orders = _count(BASE_ORDERS, scale)

    for key in range(1, n_supplier + 1):
        nation = rng.randrange(len(NATIONS))
        balance = round(rng.uniform(-999.99, 9999.99), 2)
        data.supplier.append((
            key, f"Supplier#{key:09d}", f"addr s{key}", nation,
            f"phone-{key}", balance,
            "complaints" if rng.random() < 0.02 else f"supplier {key}"))

    for key in range(1, n_part + 1):
        size = rng.randint(1, 50)
        brand = f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}"
        part_type = " ".join([rng.choice(TYPE_SYLL_1),
                              rng.choice(TYPE_SYLL_2),
                              rng.choice(TYPE_SYLL_3)])
        container = (rng.choice(CONTAINER_1) + " "
                     + rng.choice(CONTAINER_2))
        retail = round(900 + (key % 1000) + 0.01 * (key % 100), 2)
        name_words = part_type.lower().split()
        data.part.append((
            key, f"{name_words[0]} {name_words[-1]} part {key}",
            f"Manufacturer#{rng.randint(1, 5)}", brand, part_type, size,
            container, retail, f"part comment {key}"))

    for part_key in range(1, n_part + 1):
        for j in range(4):
            supp_key = ((part_key + j * (n_supplier // 4 + 1))
                        % n_supplier) + 1
            qty = rng.randint(1, 9999)
            cost = round(rng.uniform(1.0, 1000.0), 2)
            data.partsupp.append((part_key, supp_key, qty, cost,
                                  f"ps comment {part_key}/{supp_key}"))

    for key in range(1, n_customer + 1):
        nation = rng.randrange(len(NATIONS))
        balance = round(rng.uniform(-999.99, 9999.99), 2)
        data.customer.append((
            key, f"Customer#{key:09d}", f"addr c{key}", nation,
            f"{10 + nation}-{key:03d}-555", balance,
            rng.choice(SEGMENTS), f"customer comment {key}"))

    total_days = (END_DATE - START_DATE).days - 151
    order_key = 0
    for _ in range(n_orders):
        order_key += rng.choice((1, 1, 1, 5))  # sparse keys like dbgen
        cust_key = rng.randint(1, n_customer)
        order_date = START_DATE + datetime.timedelta(
            days=rng.randrange(total_days))
        lines = rng.randint(1, 7)
        total = 0.0
        statuses = []
        for line_no in range(1, lines + 1):
            row, price, status = _lineitem_row(rng, order_key, line_no,
                                               n_part, n_supplier,
                                               order_date)
            data.lineitem.append(row)
            total += price
            statuses.append(status)
        if all(s == "F" for s in statuses):
            order_status = "F"
        elif all(s == "O" for s in statuses):
            order_status = "O"
        else:
            order_status = "P"
        data.orders.append((
            order_key, cust_key, order_status, round(total, 2),
            order_date, rng.choice(PRIORITIES),
            f"Clerk#{rng.randint(1, max(1, n_orders // 1000)):09d}",
            0, f"order comment {order_key}"))
    data.max_orderkey = order_key
    return data


def _lineitem_row(rng: random.Random, order_key: int, line_no: int,
                  n_part: int, n_supplier: int,
                  order_date: datetime.date):
    part_key = rng.randint(1, n_part)
    supp_key = ((part_key + rng.randrange(4) * (n_supplier // 4 + 1))
                % n_supplier) + 1
    quantity = rng.randint(1, 50)
    retail = 900 + (part_key % 1000) + 0.01 * (part_key % 100)
    extended = round(quantity * retail / 10.0, 2)
    discount = round(rng.randint(0, 10) / 100.0, 2)
    tax = round(rng.randint(0, 8) / 100.0, 2)
    ship_date = order_date + datetime.timedelta(days=rng.randint(1, 121))
    commit_date = order_date + datetime.timedelta(days=rng.randint(30, 90))
    receipt_date = ship_date + datetime.timedelta(days=rng.randint(1, 30))
    if receipt_date <= CURRENT_DATE:
        return_flag = "R" if rng.random() < 0.5 else "A"
        status = "F"
    else:
        return_flag = "N"
        status = "O" if ship_date > CURRENT_DATE else "F"
    row = (order_key, part_key, supp_key, line_no, quantity, extended,
           discount, tax, return_flag, status, ship_date, commit_date,
           receipt_date, rng.choice(SHIP_INSTRUCTS),
           rng.choice(SHIP_MODES), f"line comment {order_key}/{line_no}")
    return row, extended * (1 - discount) * (1 + tax), status


def generate_refresh_orders(data: TpchData, count: int, seed: int = 99):
    """New (orders, lineitems) batches for RF1, keyed above the base set."""
    rng = random.Random(seed)
    n_part = len(data.part)
    n_supplier = len(data.supplier)
    n_customer = len(data.customer)
    orders = []
    lineitems = []
    order_key = data.max_orderkey
    total_days = (END_DATE - START_DATE).days - 151
    for _ in range(count):
        order_key += 1
        order_date = START_DATE + datetime.timedelta(
            days=rng.randrange(total_days))
        lines = rng.randint(1, 7)
        total = 0.0
        for line_no in range(1, lines + 1):
            row, price, _status = _lineitem_row(rng, order_key, line_no,
                                                n_part, n_supplier,
                                                order_date)
            lineitems.append(row)
            total += price
        orders.append((
            order_key, rng.randint(1, n_customer), "O", round(total, 2),
            order_date, rng.choice(PRIORITIES), "Clerk#000000001", 0,
            f"rf order {order_key}"))
    data.max_orderkey = order_key
    return orders, lineitems

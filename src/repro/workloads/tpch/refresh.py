"""TPC-H refresh functions RF1 and RF2.

Following the paper exactly: "We decomposed each refresh function into
two transactions; each receives one-half of the key range ... the two
transactions of refresh function RF1 submit a total of 4 insert requests
to the server ... RF2 submit a total of 4 delete requests."

RF1 inserts SF x 1500 new orders (and their lineitems); RF2 deletes the
same key range.  At laptop scale the counts shrink proportionally.
"""

from __future__ import annotations

import datetime

from repro.workloads.app import BenchmarkApp, Timing
from repro.workloads.tpch.datagen import TpchData, generate_refresh_orders

BASE_RF_ORDERS = 1500


def rf_order_count(scale: float) -> int:
    return max(2, int(BASE_RF_ORDERS * scale))


def _literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, datetime.date):
        return f"date '{value.isoformat()}'"
    return repr(value)


def _values_clause(rows: list[tuple]) -> str:
    return ", ".join(
        "(" + ", ".join(_literal(v) for v in row) + ")" for row in rows)


def run_rf1(app: BenchmarkApp, data: TpchData,
            seed: int = 99) -> tuple[Timing, tuple[int, int]]:
    """Insert new sales; returns (timing, inserted order-key range)."""
    count = rf_order_count(data.scale)
    first_key = data.max_orderkey + 1
    orders, lineitems = generate_refresh_orders(data, count, seed=seed)
    last_key = data.max_orderkey
    halves = _split_by_order_key(orders, lineitems)

    start = app.meter.now
    with app.meter.request("RF1") as trace:
        for orders_half, lines_half in halves:
            app.run_statement("BEGIN TRANSACTION", "rf1 begin")
            app.run_statement(
                f"INSERT INTO orders VALUES {_values_clause(orders_half)}",
                "rf1 orders")
            app.run_statement(
                f"INSERT INTO lineitem VALUES {_values_clause(lines_half)}",
                "rf1 lineitem")
            app.run_statement("COMMIT", "rf1 commit")
    timing = Timing(label="RF1", rows=len(orders) + len(lineitems),
                    seconds=app.meter.now - start, trace=trace)
    return timing, (first_key, last_key)


def run_rf2(app: BenchmarkApp, key_range: tuple[int, int]) -> Timing:
    """Delete the order-key range RF1 added (obsolete information)."""
    first_key, last_key = key_range
    mid = (first_key + last_key) // 2
    ranges = [(first_key, mid), (mid + 1, last_key)]
    start = app.meter.now
    with app.meter.request("RF2") as trace:
        for lo, hi in ranges:
            app.run_statement("BEGIN TRANSACTION", "rf2 begin")
            app.run_statement(
                f"DELETE FROM lineitem WHERE l_orderkey >= {lo} "
                f"AND l_orderkey <= {hi}", "rf2 lineitem")
            app.run_statement(
                f"DELETE FROM orders WHERE o_orderkey >= {lo} "
                f"AND o_orderkey <= {hi}", "rf2 orders")
            app.run_statement("COMMIT", "rf2 commit")
    return Timing(label="RF2", rows=0, seconds=app.meter.now - start,
                  trace=trace)


def _split_by_order_key(orders: list[tuple], lineitems: list[tuple]):
    """Split the batch into two halves of the key range (paper §3.2)."""
    keys = [o[0] for o in orders]
    mid = keys[len(keys) // 2]
    first = ([o for o in orders if o[0] < mid],
             [l for l in lineitems if l[0] < mid])
    second = ([o for o in orders if o[0] >= mid],
              [l for l in lineitems if l[0] >= mid])
    return [half for half in (first, second) if half[0]]

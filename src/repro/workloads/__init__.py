"""Benchmark workloads: TPC-H (decision support) and TPC-C (OLTP).

Scaled-down but structurally faithful implementations of the two
benchmarks the paper evaluates with: deterministic data generators, the
full TPC-H query suite (22 queries + RF1/RF2), and the five TPC-C
transactions with the official mix.  Everything runs through the ODBC
driver-manager surface, so swapping native ODBC for Phoenix/ODBC is a
one-line change — exactly the paper's experimental setup.
"""

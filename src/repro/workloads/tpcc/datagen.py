"""Deterministic scaled TPC-C data generator.

Official cardinalities (per warehouse: 10 districts, 3000 customers per
district, 100k items, 100k stock rows, 3000 initial orders per district)
shrink through :class:`TpccScale`; the default keeps the *structure* —
every district has customers, open orders in the new-order table, filled
order lines and stock for every item — at roughly 1/100 size.

Customer last names follow the spec's syllable construction so the
payment-by-last-name path has real collisions to disambiguate.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field

LAST_NAME_SYLLABLES = ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE",
                       "ANTI", "CALLY", "ATION", "EING"]

ENTRY_DATE = datetime.date(2000, 11, 1)


def last_name(number: int) -> str:
    """Spec clause 4.3.2.3: syllable-concatenated last name."""
    return (LAST_NAME_SYLLABLES[(number // 100) % 10]
            + LAST_NAME_SYLLABLES[(number // 10) % 10]
            + LAST_NAME_SYLLABLES[number % 10])


@dataclass(frozen=True)
class TpccScale:
    """Scale knobs (official values in comments)."""

    warehouses: int = 1
    districts_per_warehouse: int = 10      # 10
    customers_per_district: int = 30       # 3000
    items: int = 1000                      # 100000
    initial_orders_per_district: int = 30  # 3000

    @property
    def new_order_low_fraction(self) -> float:
        # The newest ~30% of initial orders are undelivered (spec: the
        # last 900 of 3000).
        return 0.7


@dataclass
class TpccData:
    scale: TpccScale
    seed: int
    warehouse: list[tuple] = field(default_factory=list)
    district: list[tuple] = field(default_factory=list)
    customer: list[tuple] = field(default_factory=list)
    history: list[tuple] = field(default_factory=list)
    item: list[tuple] = field(default_factory=list)
    stock: list[tuple] = field(default_factory=list)
    orders: list[tuple] = field(default_factory=list)
    new_order: list[tuple] = field(default_factory=list)
    order_line: list[tuple] = field(default_factory=list)

    def table_rows(self) -> dict[str, list[tuple]]:
        return {
            "warehouse": self.warehouse, "district": self.district,
            "customer": self.customer, "history": self.history,
            "item": self.item, "stock": self.stock,
            "orders": self.orders, "new_order": self.new_order,
            "order_line": self.order_line,
        }


def generate_tpcc(scale: TpccScale | None = None, seed: int = 42) -> TpccData:
    scale = scale if scale is not None else TpccScale()
    rng = random.Random(seed)
    data = TpccData(scale=scale, seed=seed)

    for i_id in range(1, scale.items + 1):
        data.item.append((
            i_id, rng.randint(1, 10000), f"item-{i_id}",
            round(rng.uniform(1.0, 100.0), 2),
            "ORIGINAL" if rng.random() < 0.1 else f"data-{i_id}"))

    for w_id in range(1, scale.warehouses + 1):
        data.warehouse.append((
            w_id, f"wh-{w_id}", f"street {w_id}", "city", "CA",
            f"9{w_id:04d}0000", round(rng.uniform(0.0, 0.2), 4), 300000.0))
        for i_id in range(1, scale.items + 1):
            data.stock.append((
                w_id, i_id, rng.randint(10, 100), f"dist-{w_id}-{i_id}",
                0, 0, 0,
                "ORIGINAL" if rng.random() < 0.1 else f"sdata-{i_id}"))
        for d_id in range(1, scale.districts_per_warehouse + 1):
            next_o_id = scale.initial_orders_per_district + 1
            data.district.append((
                w_id, d_id, f"dist-{d_id}", f"street {d_id}", "city",
                "CA", f"9{d_id:04d}1111", round(rng.uniform(0.0, 0.2), 4),
                30000.0, next_o_id))
            _generate_district_customers(data, rng, scale, w_id, d_id)
            _generate_district_orders(data, rng, scale, w_id, d_id)
    return data


def _generate_district_customers(data: TpccData, rng: random.Random,
                                 scale: TpccScale, w_id: int,
                                 d_id: int) -> None:
    for c_id in range(1, scale.customers_per_district + 1):
        # First customers get spec-style colliding last names.
        name = last_name(c_id % 1000)
        credit = "BC" if rng.random() < 0.1 else "GC"
        data.customer.append((
            w_id, d_id, c_id, f"first{c_id}", "OE", name,
            f"street {c_id}", "city", "CA", f"9{c_id:04d}2222",
            f"555-{c_id:04d}", ENTRY_DATE, credit, 50000.0,
            round(rng.uniform(0.0, 0.5), 4), -10.0, 10.0, 1, 0,
            f"customer data {c_id}"))
        data.history.append((
            c_id, d_id, w_id, d_id, w_id, ENTRY_DATE, 10.0,
            f"hist {w_id}-{d_id}-{c_id}"))


def _generate_district_orders(data: TpccData, rng: random.Random,
                              scale: TpccScale, w_id: int,
                              d_id: int) -> None:
    order_count = scale.initial_orders_per_district
    undelivered_from = int(order_count * scale.new_order_low_fraction) + 1
    customer_ids = list(range(1, scale.customers_per_district + 1))
    rng.shuffle(customer_ids)
    for o_id in range(1, order_count + 1):
        c_id = customer_ids[(o_id - 1) % len(customer_ids)]
        ol_cnt = rng.randint(5, 15)
        delivered = o_id < undelivered_from
        data.orders.append((
            w_id, d_id, o_id, c_id, ENTRY_DATE,
            rng.randint(1, 10) if delivered else None,
            ol_cnt, 1))
        if not delivered:
            data.new_order.append((w_id, d_id, o_id))
        for ol_number in range(1, ol_cnt + 1):
            i_id = rng.randint(1, scale.items)
            data.order_line.append((
                w_id, d_id, o_id, ol_number, i_id, w_id,
                ENTRY_DATE if delivered else None,
                5, 0.0 if delivered else round(rng.uniform(0.01, 9999.99),
                                               2),
                f"dist-{d_id}"))

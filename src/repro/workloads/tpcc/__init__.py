"""TPC-C: the OLTP workload of §4.

* :mod:`~repro.workloads.tpcc.schema` — the nine tables;
* :mod:`~repro.workloads.tpcc.datagen` — scaled deterministic generator;
* :mod:`~repro.workloads.tpcc.transactions` — the five transaction types
  (new-order, payment, order-status, delivery, stock-level) issued
  through the driver-manager surface;
* :mod:`~repro.workloads.tpcc.driver` — emulated terminals with the
  official mix, trace collection, and the queueing-simulated multi-user
  run that yields TPM-C / CPU / disk utilization (Table 4).
"""

from repro.workloads.tpcc.datagen import TpccScale, generate_tpcc
from repro.workloads.tpcc.schema import setup_tpcc_server

__all__ = ["TpccScale", "generate_tpcc", "setup_tpcc_server"]

"""Concurrent TPC-C: many virtual sessions interleaved over one server.

The multi-user run in :mod:`~repro.workloads.tpcc.driver` replays
*traces* through the queueing simulator — fine for throughput curves,
but it never actually overlaps transactions inside the engine.  This
module really does: N sessions (one ODBC connection each) submit the
TPC-C transactions round-robin at statement boundaries, so dozens of
transactions are in flight at once and the lock manager arbitrates.

Design constraints that make the mix *deterministic* (the acceptance
gate compares final database digests across serial / table-lock /
row-lock legs, so the final state must be schedule-independent):

* each session owns one ``(warehouse, district)`` pair — all district,
  customer, orders, new_order and order_line effects are per-session
  and therefore ordered by the session's own statement sequence;
* cross-session writes commute exactly: ``w_ytd`` only ever adds
  *integer* payment amounts (float + int is exact far beyond these
  magnitudes), ``s_ytd``/``s_order_cnt`` add integers, and
  ``s_quantity`` stays in ``[10, 100]`` — a 91-value band holding
  exactly one representative of each residue class mod 91, so its final
  value is ``q0 - Σqty (mod 91)`` regardless of schedule;
* delivery is restricted to the session's own district (the spec sweeps
  every district of the warehouse, which is schedule-dependent);
* transaction parameters are precomputed descriptors — a deadlock
  retry re-runs the same transaction, never redraws an RNG.

Conflict handling mirrors what a real client does:

* ``HYT00`` (row granularity ``LockWaitError``): the transaction keeps
  its locks; the session parks and retries the *same statement* once
  another transaction ends.  The park duration is charged as
  ``lock wait`` seconds through the meter's overlap machinery (waiting
  burns no server CPU, so the global clock stays put).
* ``40001`` (deadlock victim, or any conflict under the seed's no-wait
  table locks): roll back, park, and rerun the whole transaction
  descriptor (counted in ``locks.txn_retries``).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.odbc.constants import SQL_NO_DATA, SQL_SUCCESS
from repro.server.server import DatabaseServer
from repro.sim.costs import SERVER_CPU, CostModel
from repro.sim.meter import Meter
from repro.workloads.app import BenchmarkApp
from repro.workloads.tpcc.datagen import TpccScale, generate_tpcc, last_name
from repro.workloads.tpcc.schema import setup_tpcc_server
from repro.workloads.tpcc.transactions import DELIVERY_DATE

#: Weighted transaction mix (new-order + payment dominate, as in the
#: official mix; exact shares matter less than genuine write overlap).
_MIX = [("new_order", 0.40), ("payment", 0.40), ("order_status", 0.08),
        ("delivery", 0.06), ("stock_level", 0.06)]

_STALL_LIMIT = 3  # consecutive no-progress rounds tolerated before failing


# ---------------------------------------------------------------------------
# Descriptors
# ---------------------------------------------------------------------------


def session_coords(index: int, scale: TpccScale) -> tuple[int, int]:
    """The ``(w_id, d_id)`` pair owned by session ``index``."""
    per = scale.districts_per_warehouse
    return index // per + 1, index % per + 1


def warehouses_for(num_sessions: int,
                   districts_per_warehouse: int = 10) -> int:
    return (num_sessions + districts_per_warehouse - 1) \
        // districts_per_warehouse


def build_plans(num_sessions: int, txns_per_session: int,
                scale: TpccScale, seed: int = 1009) -> list[list[dict]]:
    """Precomputed transaction descriptors, one list per session."""
    plans = []
    for index in range(num_sessions):
        rng = random.Random(seed * 1_000_003 + index)
        plan = []
        for _ in range(txns_per_session):
            roll = rng.random()
            cumulative = 0.0
            kind = _MIX[-1][0]
            for name, share in _MIX:
                cumulative += share
                if roll < cumulative:
                    kind = name
                    break
            plan.append(_build_descriptor(kind, rng, scale))
        plans.append(plan)
    return plans


def _build_descriptor(kind: str, rng: random.Random,
                      scale: TpccScale) -> dict:
    if kind == "new_order":
        ol_cnt = rng.randint(5, 15)
        rollback = rng.random() < 0.01
        items = []
        for number in range(1, ol_cnt + 1):
            if rollback and number == ol_cnt:
                items.append((scale.items + 1, rng.randint(1, 10)))
            else:
                items.append((rng.randint(1, scale.items),
                              rng.randint(1, 10)))
        return {"kind": kind,
                "c_id": rng.randint(1, scale.customers_per_district),
                "items": items}
    if kind == "payment":
        by_name = rng.random() < 0.6
        return {"kind": kind,
                "c_id": rng.randint(1, scale.customers_per_district),
                "c_last": (last_name(rng.randint(
                    1, scale.customers_per_district) % 1000)
                    if by_name else None),
                "amount": rng.randint(1, 5000)}  # integer: exact commutes
    if kind == "order_status":
        return {"kind": kind,
                "c_id": rng.randint(1, scale.customers_per_district)}
    if kind == "delivery":
        return {"kind": kind, "carrier": rng.randint(1, 10)}
    return {"kind": "stock_level", "threshold": rng.randint(10, 20)}


# ---------------------------------------------------------------------------
# Transaction bodies as statement coroutines
# ---------------------------------------------------------------------------
#
# Each generator yields ("stmt" | "query", sql) and receives the fetched
# rows back for queries.  The scheduler interleaves sessions between
# yields, retries a yielded statement after a lock wait, and rebuilds the
# whole generator after a deadlock abort.


def transaction_statements(desc: dict, w_id: int, d_id: int,
                           scale: TpccScale):
    return _BODIES[desc["kind"]](desc, w_id, d_id, scale)


def _new_order(desc, w, d, scale):
    c_id = desc["c_id"]
    yield ("stmt", "BEGIN TRANSACTION")
    yield ("query",
           f"SELECT c_discount, c_last, c_credit, w_tax "
           f"FROM customer, warehouse WHERE c_w_id = {w} "
           f"AND c_d_id = {d} AND c_id = {c_id} AND w_id = {w}")
    district = yield ("query",
                      f"SELECT d_next_o_id, d_tax FROM district "
                      f"WHERE d_w_id = {w} AND d_id = {d}")
    o_id = district[0][0]
    yield ("stmt",
           f"UPDATE district SET d_next_o_id = {o_id + 1} "
           f"WHERE d_w_id = {w} AND d_id = {d}")
    yield ("stmt",
           f"INSERT INTO orders VALUES ({w}, {d}, {o_id}, {c_id}, "
           f"{DELIVERY_DATE}, NULL, {len(desc['items'])}, 1)")
    yield ("stmt", f"INSERT INTO new_order VALUES ({w}, {d}, {o_id})")
    item_ids = [item for item, _qty in desc["items"]]
    id_list = ", ".join(str(i) for i in sorted(set(item_ids)))
    listings = yield ("query",
                      f"SELECT i_id, i_price, s_quantity "
                      f"FROM item, stock WHERE s_w_id = {w} "
                      f"AND s_i_id = i_id AND i_id IN ({id_list})")
    by_item = {row[0]: (row[1], row[2]) for row in listings}
    if any(i_id not in by_item for i_id in item_ids):
        yield ("stmt", "ROLLBACK")
        return "rolled_back"
    for ol_number, (i_id, quantity) in enumerate(desc["items"], start=1):
        price, s_quantity = by_item[i_id]
        if s_quantity - quantity >= 10:
            new_quantity = s_quantity - quantity
        else:
            new_quantity = s_quantity - quantity + 91
        by_item[i_id] = (price, new_quantity)
        yield ("stmt",
               f"UPDATE stock SET s_quantity = {new_quantity}, "
               f"s_ytd = s_ytd + {quantity}, "
               f"s_order_cnt = s_order_cnt + 1 "
               f"WHERE s_w_id = {w} AND s_i_id = {i_id}")
        amount = round(quantity * price, 2)
        yield ("stmt",
               f"INSERT INTO order_line VALUES ({w}, {d}, {o_id}, "
               f"{ol_number}, {i_id}, {w}, NULL, {quantity}, {amount}, "
               f"'dist-{d}')")
    yield ("stmt", "COMMIT")
    return "committed"


def _payment(desc, w, d, scale):
    c_id = desc["c_id"]
    amount = desc["amount"]
    yield ("stmt", "BEGIN TRANSACTION")
    yield ("stmt",
           f"UPDATE warehouse SET w_ytd = w_ytd + {amount} "
           f"WHERE w_id = {w}")
    yield ("stmt",
           f"UPDATE district SET d_ytd = d_ytd + {amount} "
           f"WHERE d_w_id = {w} AND d_id = {d}")
    yield ("query",
           f"SELECT w_name, w_street, d_name, d_street "
           f"FROM warehouse, district WHERE w_id = {w} "
           f"AND d_w_id = {w} AND d_id = {d}")
    if desc["c_last"] is not None:
        # By-name lookup for realism; the *update* target stays the
        # descriptor's c_id so retries and legs agree bit-for-bit.
        yield ("query",
               f"SELECT c_id FROM customer WHERE c_w_id = {w} "
               f"AND c_d_id = {d} AND c_last = '{desc['c_last']}' "
               f"ORDER BY c_first")
    customer = yield ("query",
                      f"SELECT c_balance, c_credit, c_ytd_payment "
                      f"FROM customer WHERE c_w_id = {w} "
                      f"AND c_d_id = {d} AND c_id = {c_id}")
    credit = customer[0][1]
    yield ("stmt",
           f"UPDATE customer SET c_balance = c_balance - {amount}, "
           f"c_ytd_payment = c_ytd_payment + {amount}, "
           f"c_payment_cnt = c_payment_cnt + 1 "
           f"WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c_id}")
    if credit == "BC":
        yield ("stmt",
               f"UPDATE customer SET c_data = 'bc {w} {d} {c_id} "
               f"{amount}' WHERE c_w_id = {w} AND c_d_id = {d} "
               f"AND c_id = {c_id}")
    yield ("stmt",
           f"INSERT INTO history VALUES ({c_id}, {d}, {w}, {d}, {w}, "
           f"{DELIVERY_DATE}, {amount}, 'pay {w}-{d}')")
    yield ("stmt", "COMMIT")
    return "committed"


def _order_status(desc, w, d, scale):
    c_id = desc["c_id"]
    yield ("stmt", "BEGIN TRANSACTION")
    yield ("query",
           f"SELECT c_balance, c_first, c_middle, c_last FROM customer "
           f"WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c_id}")
    order = yield ("query",
                   f"SELECT TOP 1 o_id, o_entry_d, o_carrier_id "
                   f"FROM orders WHERE o_w_id = {w} AND o_d_id = {d} "
                   f"AND o_c_id = {c_id} ORDER BY o_id DESC")
    if order:
        o_id = order[0][0]
        yield ("query",
               f"SELECT ol_i_id, ol_supply_w_id, ol_quantity, "
               f"ol_amount, ol_delivery_d FROM order_line "
               f"WHERE ol_w_id = {w} AND ol_d_id = {d} "
               f"AND ol_o_id = {o_id}")
    yield ("stmt", "COMMIT")
    return "committed"


def _delivery(desc, w, d, scale):
    # Own district only — the spec's whole-warehouse sweep would make
    # the delivered set depend on the cross-session schedule.
    yield ("stmt", "BEGIN TRANSACTION")
    oldest = yield ("query",
                    f"SELECT min(no_o_id) FROM new_order "
                    f"WHERE no_w_id = {w} AND no_d_id = {d}")
    o_id = oldest[0][0] if oldest else None
    if o_id is None:
        yield ("stmt", "COMMIT")
        return "committed"
    yield ("stmt",
           f"DELETE FROM new_order WHERE no_w_id = {w} "
           f"AND no_d_id = {d} AND no_o_id = {o_id}")
    owner = yield ("query",
                   f"SELECT o_c_id, sum(ol_amount) "
                   f"FROM orders, order_line WHERE o_w_id = {w} "
                   f"AND o_d_id = {d} AND o_id = {o_id} "
                   f"AND ol_w_id = {w} AND ol_d_id = {d} "
                   f"AND ol_o_id = {o_id} GROUP BY o_c_id")
    c_id, amount = owner[0]
    amount = amount or 0.0
    yield ("stmt",
           f"UPDATE orders SET o_carrier_id = {desc['carrier']} "
           f"WHERE o_w_id = {w} AND o_d_id = {d} AND o_id = {o_id}")
    yield ("stmt",
           f"UPDATE order_line SET ol_delivery_d = {DELIVERY_DATE} "
           f"WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_o_id = {o_id}")
    yield ("stmt",
           f"UPDATE customer SET c_balance = c_balance + {amount}, "
           f"c_delivery_cnt = c_delivery_cnt + 1 "
           f"WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c_id}")
    yield ("stmt", "COMMIT")
    return "committed"


def _stock_level(desc, w, d, scale):
    yield ("stmt", "BEGIN TRANSACTION")
    district = yield ("query",
                      f"SELECT d_next_o_id FROM district "
                      f"WHERE d_w_id = {w} AND d_id = {d}")
    next_o_id = district[0][0]
    yield ("query",
           f"SELECT count(DISTINCT s_i_id) FROM order_line, stock "
           f"WHERE ol_w_id = {w} AND ol_d_id = {d} "
           f"AND ol_o_id >= {next_o_id - 20} AND ol_o_id < {next_o_id} "
           f"AND s_w_id = {w} AND s_i_id = ol_i_id "
           f"AND s_quantity < {desc['threshold']}")
    yield ("stmt", "COMMIT")
    return "committed"


_BODIES = {"new_order": _new_order, "payment": _payment,
           "order_status": _order_status, "delivery": _delivery,
           "stock_level": _stock_level}


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------


@dataclass
class MixResult:
    """Outcome of one serial or interleaved run of the mix."""

    makespan_seconds: float
    committed: int = 0
    rolled_back: int = 0
    txn_retries: int = 0
    lock_waits: int = 0
    lock_wait_seconds: float = 0.0
    deadlocks: int = 0
    forced_wakes: int = 0
    statements: int = 0


class _Session:
    __slots__ = ("index", "app", "plan", "w_id", "d_id", "scale",
                 "txn_index", "gen", "pending", "next_input", "parked",
                 "parked_at", "done")

    def __init__(self, index: int, app: BenchmarkApp, plan: list[dict],
                 w_id: int, d_id: int, scale: TpccScale):
        self.index = index
        self.app = app
        self.plan = plan
        self.w_id = w_id
        self.d_id = d_id
        self.scale = scale
        self.txn_index = 0
        self.gen = None
        self.pending = None          # (kind, sql) awaiting execution
        self.next_input = None       # rows to send into the generator
        self.parked = False
        self.parked_at = 0.0
        self.done = not plan

    def start_transaction(self) -> None:
        desc = self.plan[self.txn_index]
        self.gen = transaction_statements(desc, self.w_id, self.d_id,
                                          self.scale)
        self.pending = None
        self.next_input = None


class ConcurrentMix:
    """Drives N sessions over one server, serial or interleaved."""

    def __init__(self, server: DatabaseServer, apps: list[BenchmarkApp],
                 plans: list[list[dict]], scale: TpccScale):
        self.server = server
        self.meter = server.meter
        self.scale = scale
        self.sessions = []
        for index, (app, plan) in enumerate(zip(apps, plans)):
            w_id, d_id = session_coords(index, scale)
            self.sessions.append(
                _Session(index, app, plan, w_id, d_id, scale))
        self.result = MixResult(makespan_seconds=0.0)

    # -- public entry points --------------------------------------------------

    def run_serial(self) -> MixResult:
        """Each session runs to completion before the next starts."""
        start = self.meter.now
        for session in self.sessions:
            while not session.done:
                self._step(session)
                if session.parked:
                    raise RuntimeError(
                        f"serial session {session.index} blocked — "
                        f"impossible without concurrency")
        self.result.makespan_seconds = self.meter.now - start
        return self.result

    def run_interleaved(self) -> MixResult:
        """Round-robin, one statement per session per round."""
        start = self.meter.now
        stalled_rounds = 0
        while any(not s.done for s in self.sessions):
            progressed = False
            for session in self.sessions:
                if session.done or session.parked:
                    continue
                if self._step(session):
                    progressed = True
            if progressed:
                stalled_rounds = 0
                continue
            # Nothing ran: every live session is parked.  Real deadlock
            # is impossible (the detector aborts a victim), so this is a
            # missed wakeup from stale conflict info — wake everyone.
            stalled_rounds += 1
            if stalled_rounds > _STALL_LIMIT:
                raise RuntimeError(
                    "concurrent mix stalled: no session can progress")
            self.result.forced_wakes += 1
            self._wake_parked()
        self.result.makespan_seconds = self.meter.now - start
        return self.result

    # -- per-session stepping -------------------------------------------------

    def _step(self, session: _Session) -> bool:
        """Run one statement for ``session``; True if it succeeded."""
        self._charge_wait(session)
        if session.gen is None:
            session.start_transaction()
        if session.pending is None:
            try:
                if session.next_input is None:
                    session.pending = next(session.gen)
                else:
                    rows, session.next_input = session.next_input, None
                    session.pending = session.gen.send(rows)
            except StopIteration as stop:
                self._finish_transaction(session, stop.value)
                return True
        kind, sql = session.pending
        status, sqlstate, rows = self._execute(session.app, kind, sql)
        self.result.statements += 1
        if status == "ok":
            session.pending = None
            session.next_input = rows if kind == "query" else ()
            if sql in ("COMMIT", "ROLLBACK"):
                self._wake_parked()
            return True
        if sqlstate == "HYT00":
            # Lock wait: keep the transaction (and its locks), retry the
            # same statement once another transaction ends.
            self.result.lock_waits += 1
            self._park(session)
            return False
        if sqlstate == "40001":
            # Deadlock victim (row mode) or no-wait conflict (table
            # mode): roll back, then rerun the whole descriptor.
            self.result.deadlocks += 1
            self.result.txn_retries += 1
            self.meter.count("locks.txn_retries")
            self._rollback(session.app)
            session.gen = None
            session.pending = None
            session.next_input = None
            self._wake_parked()     # the abort released this txn's locks
            self._park(session)
            return False
        raise RuntimeError(
            f"session {session.index}: statement failed "
            f"[{sqlstate}] :: {sql[:120]}")

    def _finish_transaction(self, session: _Session, outcome) -> None:
        if outcome == "rolled_back":
            self.result.rolled_back += 1
        else:
            self.result.committed += 1
        self._wake_parked()
        session.gen = None
        session.txn_index += 1
        if session.txn_index >= len(session.plan):
            session.done = True

    # -- parking / waking -----------------------------------------------------

    def _park(self, session: _Session) -> None:
        session.parked = True
        session.parked_at = self.meter.now

    def _wake_parked(self) -> None:
        for session in self.sessions:
            session.parked = False

    def _charge_wait(self, session: _Session) -> None:
        """Book the virtual time a woken session spent parked.

        Waiting burns no server resource, so the charge goes through an
        overlap window: recorded (metrics + the latency ledger's
        ``lock_wait`` component) without advancing the global clock.
        """
        if session.parked_at <= 0.0:
            return
        waited = self.meter.now - session.parked_at
        session.parked_at = 0.0
        if waited <= 0.0:
            return
        meter = self.meter
        sink = meter.begin_overlap()
        meter.charge(SERVER_CPU, waited, "lock wait")
        meter.end_overlap(sink)
        meter.count("locks.lock_wait_seconds", waited)
        self.result.lock_wait_seconds += waited

    # -- raw ODBC execution ---------------------------------------------------

    def _execute(self, app: BenchmarkApp, kind: str, sql: str):
        manager = app.manager
        statement = manager.alloc_statement(app.conn)
        rc = manager.exec_direct(statement, sql)
        if rc != SQL_SUCCESS:
            state = self._diag_state(manager, statement)
            manager.free_statement(statement)
            return "error", state, None
        rows = None
        if kind == "query":
            rows = []
            while True:
                rc, row = manager.fetch(statement)
                if rc == SQL_NO_DATA:
                    break
                if rc != SQL_SUCCESS:
                    state = self._diag_state(manager, statement)
                    manager.free_statement(statement)
                    return "error", state, None
                rows.append(row)
        manager.free_statement(statement)
        return "ok", None, rows

    def _rollback(self, app: BenchmarkApp) -> None:
        manager = app.manager
        statement = manager.alloc_statement(app.conn)
        # Tolerate "no transaction": the server may have already aborted
        # and cleared the victim's transaction.
        manager.exec_direct(statement, "ROLLBACK")
        manager.free_statement(statement)

    @staticmethod
    def _diag_state(manager, statement) -> str:
        diags = manager.get_diag(statement)
        return diags[-1].sqlstate if diags else "HY000"


# ---------------------------------------------------------------------------
# World building and digests
# ---------------------------------------------------------------------------


def build_concurrent_world(num_sessions: int, lock_granularity: str,
                           txns_per_session: int = 4,
                           items: int = 200,
                           customers_per_district: int = 20,
                           initial_orders_per_district: int = 10,
                           escalation_threshold: int = 64,
                           seed: int = 42):
    """One server + N connected apps + deterministic plans.

    Every leg of a comparison must call this with identical arguments
    except ``lock_granularity`` so worlds and descriptors agree exactly.
    """
    scale = TpccScale(
        warehouses=warehouses_for(num_sessions),
        customers_per_district=customers_per_district,
        items=items,
        initial_orders_per_district=initial_orders_per_district)
    costs = CostModel(lock_granularity=lock_granularity,
                      lock_escalation_threshold=escalation_threshold)
    server = DatabaseServer(meter=Meter(costs))
    setup_tpcc_server(server, generate_tpcc(scale, seed=seed))
    apps = [BenchmarkApp(server, login=f"session-{i}")
            for i in range(num_sessions)]
    plans = build_plans(num_sessions, txns_per_session, scale,
                        seed=seed + 1)
    return server, apps, plans, scale


def digest_database(engine) -> dict[str, str]:
    """Order-independent per-table content digests (sorted row reprs).

    Runs with the clock paused: digesting is measurement, not workload.
    """
    meter = engine.meter
    saved = meter.advance_clock
    meter.advance_clock = False
    digests: dict[str, str] = {}
    try:
        for name in sorted(engine.catalog.tables):
            info = engine.catalog.tables[name]
            if info.volatile:
                continue
            table = engine.table(name)
            rows = sorted(repr(row) for _rid, row in table.heap.scan())
            payload = "\n".join(rows).encode()
            digests[name] = hashlib.sha256(payload).hexdigest()
    finally:
        meter.advance_clock = saved
    return digests

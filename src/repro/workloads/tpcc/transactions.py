"""The five TPC-C transactions, issued through the driver-manager API.

Each function runs one complete business transaction (BEGIN ... COMMIT)
against a :class:`~repro.workloads.app.BenchmarkApp`, so the same code
measures native ODBC, Phoenix, and Phoenix-with-client-cache — the three
rows of Table 4.  Parameter selection follows the spec where it matters
(1 % of new-orders roll back on an unused item; payment and order-status
select the customer by last name 60 % of the time, picking the median
match ordered by first name).
"""

from __future__ import annotations

import random

from repro.workloads.app import BenchmarkApp
from repro.workloads.tpcc.datagen import TpccScale, last_name

DELIVERY_DATE = "date '2000-11-02'"


def _customer_by_name(app: BenchmarkApp, w_id: int, d_id: int,
                      c_last: str) -> int | None:
    rows = app.query_rows(
        f"SELECT c_id FROM customer WHERE c_w_id = {w_id} "
        f"AND c_d_id = {d_id} AND c_last = '{c_last}' "
        f"ORDER BY c_first")
    if not rows:
        return None
    return rows[len(rows) // 2][0]


def _pick_customer(app: BenchmarkApp, rng: random.Random,
                   scale: TpccScale, w_id: int, d_id: int) -> int:
    if rng.random() < 0.6:
        target = rng.randint(1, scale.customers_per_district) % 1000
        c_id = _customer_by_name(app, w_id, d_id, last_name(target))
        if c_id is not None:
            return c_id
    return rng.randint(1, scale.customers_per_district)


def new_order(app: BenchmarkApp, rng: random.Random, scale: TpccScale,
              w_id: int) -> str:
    """The new-order transaction; returns 'committed' or 'rolled_back'."""
    d_id = rng.randint(1, scale.districts_per_warehouse)
    c_id = rng.randint(1, scale.customers_per_district)
    ol_cnt = rng.randint(5, 15)
    rollback = rng.random() < 0.01  # spec: 1 % hit an unused item

    app.run_statement("BEGIN TRANSACTION")
    # One combined lookup for customer/warehouse context, one for the
    # district (updated next) — clients batch reads to cut round trips,
    # which also matches the paper's "result sets of TPC-C transactions
    # are small, typically less than 20 tuples" per-transaction framing.
    app.query_rows(
        f"SELECT c_discount, c_last, c_credit, w_tax "
        f"FROM customer, warehouse WHERE c_w_id = {w_id} "
        f"AND c_d_id = {d_id} AND c_id = {c_id} AND w_id = {w_id}")
    district = app.query_rows(
        f"SELECT d_next_o_id, d_tax FROM district "
        f"WHERE d_w_id = {w_id} AND d_id = {d_id}")
    o_id = district[0][0]
    app.run_statement(
        f"UPDATE district SET d_next_o_id = {o_id + 1} "
        f"WHERE d_w_id = {w_id} AND d_id = {d_id}")
    app.run_statement(
        f"INSERT INTO orders VALUES ({w_id}, {d_id}, {o_id}, {c_id}, "
        f"{DELIVERY_DATE}, NULL, {ol_cnt}, 1)")
    app.run_statement(
        f"INSERT INTO new_order VALUES ({w_id}, {d_id}, {o_id})")
    item_ids = []
    for ol_number in range(1, ol_cnt + 1):
        if rollback and ol_number == ol_cnt:
            item_ids.append(scale.items + 1)  # unused item number
        else:
            item_ids.append(rng.randint(1, scale.items))
    id_list = ", ".join(str(i) for i in sorted(set(item_ids)))
    listings = app.query_rows(
        f"SELECT i_id, i_price, s_quantity FROM item, stock "
        f"WHERE s_w_id = {w_id} AND s_i_id = i_id AND i_id IN ({id_list})")
    by_item = {row[0]: (row[1], row[2]) for row in listings}
    if any(i_id not in by_item for i_id in item_ids):
        app.run_statement("ROLLBACK")
        return "rolled_back"
    for ol_number, i_id in enumerate(item_ids, start=1):
        price, s_quantity = by_item[i_id]
        quantity = rng.randint(1, 10)
        if s_quantity - quantity >= 10:
            new_quantity = s_quantity - quantity
        else:
            new_quantity = s_quantity - quantity + 91
        by_item[i_id] = (price, new_quantity)
        app.run_statement(
            f"UPDATE stock SET s_quantity = {new_quantity}, "
            f"s_ytd = s_ytd + {quantity}, "
            f"s_order_cnt = s_order_cnt + 1 "
            f"WHERE s_w_id = {w_id} AND s_i_id = {i_id}")
        amount = round(quantity * price, 2)
        app.run_statement(
            f"INSERT INTO order_line VALUES ({w_id}, {d_id}, {o_id}, "
            f"{ol_number}, {i_id}, {w_id}, NULL, {quantity}, {amount}, "
            f"'dist-{d_id}')")
    app.run_statement("COMMIT")
    return "committed"


def payment(app: BenchmarkApp, rng: random.Random, scale: TpccScale,
            w_id: int) -> str:
    d_id = rng.randint(1, scale.districts_per_warehouse)
    amount = round(rng.uniform(1.0, 5000.0), 2)
    app.run_statement("BEGIN TRANSACTION")
    app.run_statement(
        f"UPDATE warehouse SET w_ytd = w_ytd + {amount} "
        f"WHERE w_id = {w_id}")
    app.run_statement(
        f"UPDATE district SET d_ytd = d_ytd + {amount} "
        f"WHERE d_w_id = {w_id} AND d_id = {d_id}")
    app.query_rows(
        f"SELECT w_name, w_street, d_name, d_street "
        f"FROM warehouse, district WHERE w_id = {w_id} "
        f"AND d_w_id = {w_id} AND d_id = {d_id}")
    c_id = _pick_customer(app, rng, scale, w_id, d_id)
    customer = app.query_rows(
        f"SELECT c_balance, c_credit, c_ytd_payment FROM customer "
        f"WHERE c_w_id = {w_id} AND c_d_id = {d_id} AND c_id = {c_id}")
    credit = customer[0][1]
    app.run_statement(
        f"UPDATE customer SET c_balance = c_balance - {amount}, "
        f"c_ytd_payment = c_ytd_payment + {amount}, "
        f"c_payment_cnt = c_payment_cnt + 1 "
        f"WHERE c_w_id = {w_id} AND c_d_id = {d_id} AND c_id = {c_id}")
    if credit == "BC":
        app.run_statement(
            f"UPDATE customer SET c_data = 'bc {w_id} {d_id} {c_id} "
            f"{amount}' WHERE c_w_id = {w_id} AND c_d_id = {d_id} "
            f"AND c_id = {c_id}")
    app.run_statement(
        f"INSERT INTO history VALUES ({c_id}, {d_id}, {w_id}, {d_id}, "
        f"{w_id}, {DELIVERY_DATE}, {amount}, 'pay {w_id}-{d_id}')")
    app.run_statement("COMMIT")
    return "committed"


def order_status(app: BenchmarkApp, rng: random.Random, scale: TpccScale,
                 w_id: int) -> str:
    d_id = rng.randint(1, scale.districts_per_warehouse)
    app.run_statement("BEGIN TRANSACTION")
    c_id = _pick_customer(app, rng, scale, w_id, d_id)
    app.query_rows(
        f"SELECT c_balance, c_first, c_middle, c_last FROM customer "
        f"WHERE c_w_id = {w_id} AND c_d_id = {d_id} AND c_id = {c_id}")
    order = app.query_rows(
        f"SELECT TOP 1 o_id, o_entry_d, o_carrier_id FROM orders "
        f"WHERE o_w_id = {w_id} AND o_d_id = {d_id} AND o_c_id = {c_id} "
        f"ORDER BY o_id DESC")
    if order:
        o_id = order[0][0]
        app.query_rows(
            f"SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, "
            f"ol_delivery_d FROM order_line WHERE ol_w_id = {w_id} "
            f"AND ol_d_id = {d_id} AND ol_o_id = {o_id}")
    app.run_statement("COMMIT")
    return "committed"


def delivery(app: BenchmarkApp, rng: random.Random, scale: TpccScale,
             w_id: int) -> str:
    carrier = rng.randint(1, 10)
    app.run_statement("BEGIN TRANSACTION")
    # One batched read finds the oldest undelivered order per district.
    oldest = app.query_rows(
        f"SELECT no_d_id, min(no_o_id) FROM new_order "
        f"WHERE no_w_id = {w_id} GROUP BY no_d_id")
    for d_id, o_id in oldest:
        app.run_statement(
            f"DELETE FROM new_order WHERE no_w_id = {w_id} "
            f"AND no_d_id = {d_id} AND no_o_id = {o_id}")
        owner = app.query_rows(
            f"SELECT o_c_id, sum(ol_amount) FROM orders, order_line "
            f"WHERE o_w_id = {w_id} AND o_d_id = {d_id} AND o_id = {o_id} "
            f"AND ol_w_id = {w_id} AND ol_d_id = {d_id} "
            f"AND ol_o_id = {o_id} GROUP BY o_c_id")
        c_id, amount = owner[0]
        amount = amount or 0.0
        app.run_statement(
            f"UPDATE orders SET o_carrier_id = {carrier} "
            f"WHERE o_w_id = {w_id} AND o_d_id = {d_id} AND o_id = {o_id}")
        app.run_statement(
            f"UPDATE order_line SET ol_delivery_d = {DELIVERY_DATE} "
            f"WHERE ol_w_id = {w_id} AND ol_d_id = {d_id} "
            f"AND ol_o_id = {o_id}")
        app.run_statement(
            f"UPDATE customer SET c_balance = c_balance + {amount}, "
            f"c_delivery_cnt = c_delivery_cnt + 1 "
            f"WHERE c_w_id = {w_id} AND c_d_id = {d_id} AND c_id = {c_id}")
    app.run_statement("COMMIT")
    return "committed"


def stock_level(app: BenchmarkApp, rng: random.Random, scale: TpccScale,
                w_id: int) -> str:
    d_id = rng.randint(1, scale.districts_per_warehouse)
    threshold = rng.randint(10, 20)
    app.run_statement("BEGIN TRANSACTION")
    district = app.query_rows(
        f"SELECT d_next_o_id FROM district WHERE d_w_id = {w_id} "
        f"AND d_id = {d_id}")
    next_o_id = district[0][0]
    app.query_rows(
        f"SELECT count(DISTINCT s_i_id) FROM order_line, stock "
        f"WHERE ol_w_id = {w_id} AND ol_d_id = {d_id} "
        f"AND ol_o_id >= {next_o_id - 20} AND ol_o_id < {next_o_id} "
        f"AND s_w_id = {w_id} AND s_i_id = ol_i_id "
        f"AND s_quantity < {threshold}")
    app.run_statement("COMMIT")
    return "committed"


TRANSACTIONS = {
    "new_order": new_order,
    "payment": payment,
    "order_status": order_status,
    "delivery": delivery,
    "stock_level": stock_level,
}

"""TPC-C terminal emulation and the multi-user measurement (Table 4).

The paper: 32 emulated users with zero think time submit transactions at
random per the predefined mix; the measurement starts after a warm-up and
TPM-C counts completed new-order transactions per minute, with the other
four types as background (at least 57 % of the mix).

Method: transactions are executed once each (single-threaded, clock
paused) to record per-transaction resource traces, then the emulated
users replay sampled traces through the queueing simulator, which yields
elapsed time, throughput, and CPU/disk utilizations under contention.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sim.costs import SERVER_CPU, SERVER_DISK
from repro.sim.meter import RequestTrace
from repro.sim.queueing import QueueingSimulator
from repro.workloads.app import BenchmarkApp
from repro.workloads.tpcc.datagen import TpccScale
from repro.workloads.tpcc.transactions import TRANSACTIONS

#: The official-style mix: new-order at most 43 % of the work, the rest
#: background ("the background transactions are defined to be at least 57
#: percent of the mix").
TRANSACTION_MIX = [
    ("new_order", 0.43),
    ("payment", 0.43),
    ("order_status", 0.05),
    ("delivery", 0.05),
    ("stock_level", 0.04),
]


def choose_transaction(rng: random.Random) -> str:
    roll = rng.random()
    cumulative = 0.0
    for name, share in TRANSACTION_MIX:
        cumulative += share
        if roll < cumulative:
            return name
    return TRANSACTION_MIX[-1][0]


@dataclass
class TpccRunResult:
    """Outcome of one Table 4 experiment row."""

    tpmc: float                    # new-order transactions per minute
    total_tpm: float               # all transaction types per minute
    elapsed_seconds: float
    cpu_utilization: float
    disk_utilization: float
    cpu_seconds_per_txn: float
    completions: int
    new_order_completions: int
    sampled_transactions: int = 0
    stats: dict = field(default_factory=dict)


def collect_transaction_traces(app: BenchmarkApp, scale: TpccScale,
                               count: int = 120,
                               seed: int = 5) -> list[RequestTrace]:
    """Execute ``count`` mixed transactions once, recording traces.

    Runs with the clock paused (trace collection is instrumentation, not
    workload time); the database *is* mutated, as it would be during a
    warm-up period.
    """
    rng = random.Random(seed)
    saved = app.meter.advance_clock
    app.meter.advance_clock = False
    traces: list[RequestTrace] = []
    try:
        for i in range(count):
            name = choose_transaction(rng)
            w_id = rng.randint(1, scale.warehouses)
            timing = app.execute_measured_steps(
                f"{name}#{i}",
                lambda a, n=name, w=w_id: TRANSACTIONS[n](a, rng, scale, w))
            traces.append(timing.trace)
    finally:
        app.meter.advance_clock = saved
    return traces


def run_multiuser(traces: list[RequestTrace], users: int = 32,
                  warmup_seconds: float = 60.0,
                  measure_seconds: float = 300.0,
                  seed: int = 17) -> TpccRunResult:
    """Replay traces from ``users`` zero-think-time terminals."""
    rng = random.Random(seed)
    window_end = warmup_seconds + measure_seconds
    serial_mean = (sum(t.total_seconds for t in traces)
                   / max(1, len(traces)))
    # Each stream needs enough requests to keep running past the window;
    # start from an estimate and grow until no stream runs dry early.
    per_stream = max(4, int(window_end / max(1e-9, serial_mean
                                             * max(1, users) / 4)))
    while True:
        streams = [
            [traces[rng.randrange(len(traces))] for _ in range(per_stream)]
            for _ in range(users)
        ]
        result = QueueingSimulator().run(streams)
        if all(s.finish_time >= window_end for s in result.streams) \
                or per_stream > 100_000:
            break
        per_stream *= 2
    completions = result.completions_in(warmup_seconds, window_end)
    new_orders = result.completions_in(warmup_seconds, window_end,
                                       label_prefix="new_order")
    minutes = measure_seconds / 60.0
    busy_cpu = result.busy_seconds.get(SERVER_CPU, 0.0)
    busy_disk = result.busy_seconds.get(SERVER_DISK, 0.0)
    total_requests = sum(len(s.completions) for s in result.streams)
    return TpccRunResult(
        tpmc=new_orders / minutes,
        total_tpm=completions / minutes,
        elapsed_seconds=result.elapsed_seconds,
        cpu_utilization=result.utilization(SERVER_CPU),
        disk_utilization=result.utilization(SERVER_DISK),
        cpu_seconds_per_txn=busy_cpu / max(1, total_requests),
        completions=completions,
        new_order_completions=new_orders,
        sampled_transactions=len(traces),
        stats={"busy_cpu": busy_cpu, "busy_disk": busy_disk,
               "per_stream": per_stream})

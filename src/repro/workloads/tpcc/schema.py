"""TPC-C schema DDL and bulk loading.

Nine tables; primary keys give the B-tree access paths every transaction
depends on, plus a customer-by-district index for payment-by-name and an
order-by-customer index for order-status.
"""

from __future__ import annotations

from repro.engine.database import DatabaseEngine
from repro.engine.session import EngineSession

DDL = [
    """CREATE TABLE warehouse (
        w_id INT NOT NULL, w_name VARCHAR(10), w_street VARCHAR(20),
        w_city VARCHAR(20), w_state CHAR(2), w_zip CHAR(9),
        w_tax DECIMAL(4, 4), w_ytd DECIMAL(12, 2),
        PRIMARY KEY (w_id))""",
    """CREATE TABLE district (
        d_w_id INT NOT NULL, d_id INT NOT NULL, d_name VARCHAR(10),
        d_street VARCHAR(20), d_city VARCHAR(20), d_state CHAR(2),
        d_zip CHAR(9), d_tax DECIMAL(4, 4), d_ytd DECIMAL(12, 2),
        d_next_o_id INT, PRIMARY KEY (d_w_id, d_id))""",
    """CREATE TABLE customer (
        c_w_id INT NOT NULL, c_d_id INT NOT NULL, c_id INT NOT NULL,
        c_first VARCHAR(16), c_middle CHAR(2), c_last VARCHAR(16),
        c_street VARCHAR(20), c_city VARCHAR(20), c_state CHAR(2),
        c_zip CHAR(9), c_phone CHAR(16), c_since DATE, c_credit CHAR(2),
        c_credit_lim DECIMAL(12, 2), c_discount DECIMAL(4, 4),
        c_balance DECIMAL(12, 2), c_ytd_payment DECIMAL(12, 2),
        c_payment_cnt INT, c_delivery_cnt INT, c_data VARCHAR(250),
        PRIMARY KEY (c_w_id, c_d_id, c_id))""",
    """CREATE TABLE history (
        h_c_id INT, h_c_d_id INT, h_c_w_id INT, h_d_id INT, h_w_id INT,
        h_date DATE, h_amount DECIMAL(6, 2), h_data VARCHAR(24))""",
    """CREATE TABLE item (
        i_id INT NOT NULL, i_im_id INT, i_name VARCHAR(24),
        i_price DECIMAL(5, 2), i_data VARCHAR(50),
        PRIMARY KEY (i_id))""",
    """CREATE TABLE stock (
        s_w_id INT NOT NULL, s_i_id INT NOT NULL, s_quantity INT,
        s_dist_info CHAR(24), s_ytd INT, s_order_cnt INT,
        s_remote_cnt INT, s_data VARCHAR(50),
        PRIMARY KEY (s_w_id, s_i_id))""",
    """CREATE TABLE orders (
        o_w_id INT NOT NULL, o_d_id INT NOT NULL, o_id INT NOT NULL,
        o_c_id INT, o_entry_d DATE, o_carrier_id INT, o_ol_cnt INT,
        o_all_local INT, PRIMARY KEY (o_w_id, o_d_id, o_id))""",
    """CREATE TABLE new_order (
        no_w_id INT NOT NULL, no_d_id INT NOT NULL, no_o_id INT NOT NULL,
        PRIMARY KEY (no_w_id, no_d_id, no_o_id))""",
    """CREATE TABLE order_line (
        ol_w_id INT NOT NULL, ol_d_id INT NOT NULL, ol_o_id INT NOT NULL,
        ol_number INT NOT NULL, ol_i_id INT, ol_supply_w_id INT,
        ol_delivery_d DATE, ol_quantity INT, ol_amount DECIMAL(6, 2),
        ol_dist_info CHAR(24),
        PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))""",
]

INDEXES = [
    "CREATE INDEX ix_customer_name ON customer (c_w_id, c_d_id, c_last)",
    "CREATE INDEX ix_orders_customer ON orders (o_w_id, o_d_id, o_c_id)",
]


def create_schema(engine: DatabaseEngine, session: EngineSession) -> None:
    for ddl in DDL:
        engine.execute(ddl, session)
    for ddl in INDEXES:
        engine.execute(ddl, session)


def setup_tpcc_server(server, data) -> None:
    """Create + bulk load TPC-C into a server (meter paused)."""
    from repro.types import coerce_column

    session = EngineSession(session_id=0)
    meter = server.meter
    saved = meter.advance_clock
    meter.advance_clock = False
    try:
        create_schema(server.engine, session)
        engine = server.engine
        for table_name, rows in data.table_rows().items():
            table = engine.table(table_name)
            txn = engine.txns.begin()
            columns = table.info.columns
            for row in rows:
                coerced = tuple(coerce_column(v, c)
                                for v, c in zip(row, columns))
                table.insert(coerced, txn, engine.txns)
            engine.txns.commit(txn)
        engine.checkpoint()
    finally:
        meter.advance_clock = saved

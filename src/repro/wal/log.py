"""The write-ahead log.

The log object itself *is* the durable medium for records up to
``flushed_lsn`` (think of it as the log disk).  Records appended but not
yet forced live in the volatile tail and are discarded by :meth:`crash`.

Cost accounting: appends are buffered (they accumulate pending write time
scaled by the appending table's amplification factor); :meth:`force`
charges the accumulated sequential-write time plus one force latency to
the server disk.  This reproduces the paper's observation that "the
primary ongoing overhead is the extra logging to store the result in a
table" — Phoenix pays real log-force time to make result sets durable.
"""

from __future__ import annotations

from repro.sim.costs import SERVER_DISK
from repro.sim.meter import Meter
from repro.wal.records import CheckpointRecord, LogRecord


class WriteAheadLog:
    """Append-only log with explicit force points."""

    def __init__(self, meter: Meter | None = None):
        self._meter = meter
        self._records: list[LogRecord] = []
        self.flushed_lsn = 0
        self._pending_write_seconds = 0.0
        self.forces = 0
        # Asynchronous commit: virtual deadline of the currently open
        # deferral window.  Commit forces arriving before the deadline
        # are acknowledged without flushing (records stay in the
        # volatile tail) instead of paying their own force.
        self._async_deadline = 0.0

    # -- append / force -------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return len(self._records)

    def append(self, record: LogRecord, cost_factor: float = 1.0) -> int:
        """Assign the next LSN to ``record`` and buffer it; returns the LSN."""
        record.lsn = len(self._records) + 1
        self._records.append(record)
        if self._meter is not None:
            seconds = self._meter.costs.log_write_seconds(
                record.payload_bytes()) * cost_factor
            self._pending_write_seconds += seconds
        return record.lsn

    def force(self, up_to_lsn: int | None = None,
              sync: bool = True, commit: bool = False) -> None:
        """Make the log durable up to ``up_to_lsn`` (default: everything).

        For simplicity the whole buffered tail is flushed whenever any
        part of it must be; this only ever over-forces, never
        under-forces.  ``sync=True`` (commits) pays the synchronous
        force latency on top of the write time; ``sync=False`` (WAL-rule
        flushes ahead of lazy page writes) pays only the sequential
        write time, like a write-behind log would.

        ``commit=True`` marks a commit-acknowledging force and enables
        *asynchronous commit* when the cost model's
        ``async_commit_window_seconds`` is positive: a commit arriving
        within the window opened by the last synchronous force is
        **deferred** — force() returns with its records still in the
        volatile tail, and they become durable only at the next real
        force (the first commit past the deadline, or any write-behind
        flush).  The caller acknowledges the commit *before* it is
        durable, so a crash inside the window loses acked commits —
        bounded durability loss, the semantics of PostgreSQL's
        ``synchronous_commit=off`` / SQL Server delayed durability (not
        group commit, which would delay the ack until the group force).
        Worlds that exercise crash recovery leave the window at 0.0.
        """
        target = self.last_lsn if up_to_lsn is None else min(up_to_lsn,
                                                             self.last_lsn)
        if target <= self.flushed_lsn:
            return
        if commit and sync and self._meter is not None:
            window = self._meter.costs.async_commit_window_seconds
            if window > 0.0:
                now = self._meter.peek_now()
                if now < self._async_deadline:
                    self._meter.count("async_commit_deferrals")
                    return
                self._async_deadline = now + window
                self._meter.count("async_commit_windows")
        if self._meter is not None:
            seconds = self._pending_write_seconds
            if sync:
                seconds += self._meter.costs.log_force_seconds
            self._meter.charge(SERVER_DISK, seconds, "log force")
            self._meter.count("log_forces")
        self._pending_write_seconds = 0.0
        self.flushed_lsn = self.last_lsn
        self.forces += 1

    # -- crash ---------------------------------------------------------------

    def crash(self) -> int:
        """Discard the un-forced tail; returns how many records were lost."""
        lost = len(self._records) - self.flushed_lsn
        del self._records[self.flushed_lsn:]
        self._pending_write_seconds = 0.0
        # The open deferral window died with the tail — and with it any
        # acked-but-deferred commits (the documented durability bound).
        self._async_deadline = 0.0
        return lost

    def attach_meter(self, meter: Meter | None) -> None:
        """Swap the meter (used when a restarted server re-wires itself)."""
        self._meter = meter

    @property
    def meter(self) -> Meter | None:
        return self._meter

    # -- reading ----------------------------------------------------------------

    def record(self, lsn: int) -> LogRecord:
        if not 1 <= lsn <= len(self._records):
            raise IndexError(f"no log record with lsn {lsn}")
        return self._records[lsn - 1]

    def records_from(self, lsn: int):
        """Yield records with LSN >= ``lsn`` in order."""
        start = max(0, lsn - 1)
        yield from self._records[start:]

    def all_records(self):
        yield from self._records

    def last_checkpoint_lsn(self) -> int:
        """LSN of the most recent (durable) checkpoint record, or 0."""
        for i in range(self.flushed_lsn - 1, -1, -1):
            if isinstance(self._records[i], CheckpointRecord):
                return self._records[i].lsn
        return 0

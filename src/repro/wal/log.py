"""The write-ahead log.

The log object itself *is* the durable medium for records up to
``flushed_lsn`` (think of it as the log disk).  Records appended but not
yet forced live in the volatile tail and are discarded by :meth:`crash`.

Cost accounting: appends are buffered (they accumulate pending write time
scaled by the appending table's amplification factor); :meth:`force`
charges the accumulated sequential-write time plus one force latency to
the server disk.  This reproduces the paper's observation that "the
primary ongoing overhead is the extra logging to store the result in a
table" — Phoenix pays real log-force time to make result sets durable.
"""

from __future__ import annotations

from repro.errors import LogTruncatedError
from repro.sim.costs import SERVER_DISK
from repro.sim.meter import Meter
from repro.wal.records import (
    CheckpointRecord,
    EndCheckpointRecord,
    LogRecord,
)


class WriteAheadLog:
    """Append-only log with explicit force points."""

    def __init__(self, meter: Meter | None = None):
        self._meter = meter
        self._records: list[LogRecord] = []
        self.flushed_lsn = 0
        self._pending_write_seconds = 0.0
        self.forces = 0
        # Asynchronous commit: virtual deadline of the currently open
        # deferral window.  Commit forces arriving before the deadline
        # are acknowledged without flushing (records stay in the
        # volatile tail) instead of paying their own force.
        self._async_deadline = 0.0
        # Truncation state: records with lsn <= _base_lsn have been
        # archived away; _records[i] holds lsn _base_lsn + i + 1.
        self._base_lsn = 0
        #: Highest txn id ever archived — transaction-id recovery must
        #: still never reuse ids whose records left the live log.
        self.truncated_max_txn_id = 0
        #: Total records ever truncated (diagnostics / sys_checkpoint).
        self.truncated_records = 0

    # -- append / force -------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return self._base_lsn + len(self._records)

    @property
    def truncated_lsn(self) -> int:
        """Highest LSN no longer in the live log (0 = nothing truncated)."""
        return self._base_lsn

    def append(self, record: LogRecord, cost_factor: float = 1.0) -> int:
        """Assign the next LSN to ``record`` and buffer it; returns the LSN."""
        record.lsn = self._base_lsn + len(self._records) + 1
        self._records.append(record)
        if self._meter is not None:
            seconds = self._meter.costs.log_write_seconds(
                record.payload_bytes()) * cost_factor
            self._pending_write_seconds += seconds
        return record.lsn

    def force(self, up_to_lsn: int | None = None,
              sync: bool = True, commit: bool = False) -> None:
        """Make the log durable up to ``up_to_lsn`` (default: everything).

        For simplicity the whole buffered tail is flushed whenever any
        part of it must be; this only ever over-forces, never
        under-forces.  ``sync=True`` (commits) pays the synchronous
        force latency on top of the write time; ``sync=False`` (WAL-rule
        flushes ahead of lazy page writes) pays only the sequential
        write time, like a write-behind log would.

        ``commit=True`` marks a commit-acknowledging force and enables
        *asynchronous commit* when the cost model's
        ``async_commit_window_seconds`` is positive: a commit arriving
        within the window opened by the last synchronous force is
        **deferred** — force() returns with its records still in the
        volatile tail, and they become durable only at the next real
        force (the first commit past the deadline, or any write-behind
        flush).  The caller acknowledges the commit *before* it is
        durable, so a crash inside the window loses acked commits —
        bounded durability loss, the semantics of PostgreSQL's
        ``synchronous_commit=off`` / SQL Server delayed durability (not
        group commit, which would delay the ack until the group force).
        Worlds that exercise crash recovery leave the window at 0.0.
        """
        target = self.last_lsn if up_to_lsn is None else min(up_to_lsn,
                                                             self.last_lsn)
        if target <= self.flushed_lsn:
            return
        if commit and sync and self._meter is not None:
            window = self._meter.costs.async_commit_window_seconds
            if window > 0.0:
                now = self._meter.peek_now()
                if now < self._async_deadline:
                    self._meter.count("async_commit_deferrals")
                    return
                self._async_deadline = now + window
                self._meter.count("async_commit_windows")
        if self._meter is not None:
            seconds = self._pending_write_seconds
            if sync:
                seconds += self._meter.costs.log_force_seconds
            self._meter.charge(SERVER_DISK, seconds, "log force")
            self._meter.count("log_forces")
        self._pending_write_seconds = 0.0
        self.flushed_lsn = self.last_lsn
        self.forces += 1

    # -- crash ---------------------------------------------------------------

    def crash(self) -> int:
        """Discard the un-forced tail; returns how many records were lost."""
        lost = self.last_lsn - self.flushed_lsn
        del self._records[self.flushed_lsn - self._base_lsn:]
        self._pending_write_seconds = 0.0
        # The open deferral window died with the tail — and with it any
        # acked-but-deferred commits (the documented durability bound).
        self._async_deadline = 0.0
        return lost

    def attach_meter(self, meter: Meter | None) -> None:
        """Swap the meter (used when a restarted server re-wires itself)."""
        self._meter = meter

    @property
    def meter(self) -> Meter | None:
        return self._meter

    # -- reading ----------------------------------------------------------------

    def record(self, lsn: int) -> LogRecord:
        if 1 <= lsn <= self._base_lsn:
            raise LogTruncatedError(
                f"log record {lsn} was truncated (archive boundary is "
                f"{self._base_lsn}) — recovery needs history the live log "
                f"no longer holds")
        if not self._base_lsn < lsn <= self.last_lsn:
            raise IndexError(f"no log record with lsn {lsn}")
        return self._records[lsn - self._base_lsn - 1]

    def records_from(self, lsn: int):
        """Yield records with LSN >= ``lsn`` in order.

        Asking for a starting point inside the truncated prefix is a
        loud error: a redo scan that needs archived records means the
        truncation safety rule was violated.
        """
        if self._base_lsn and 1 <= lsn <= self._base_lsn:
            raise LogTruncatedError(
                f"redo scan from lsn {lsn} reaches below the truncation "
                f"boundary {self._base_lsn}")
        start = max(0, lsn - self._base_lsn - 1)
        yield from self._records[start:]

    def all_records(self):
        """Yield every *live* record (the truncated prefix is archived)."""
        yield from self._records

    def last_checkpoint_lsn(self) -> int:
        """LSN of the most recent (durable) sharp checkpoint record, or 0."""
        checkpoint = self.last_complete_checkpoint()
        if isinstance(checkpoint, CheckpointRecord):
            return checkpoint.lsn
        return 0

    def last_complete_checkpoint(self) -> LogRecord | None:
        """The newest durable complete checkpoint record, if any.

        Returns either a sharp :class:`CheckpointRecord` or a fuzzy
        :class:`EndCheckpointRecord` — whichever is latest in the durable
        prefix.  A ``BeginCheckpointRecord`` without a durable End (a
        checkpoint in progress at the crash) is naturally skipped.
        """
        for i in range(self.flushed_lsn - self._base_lsn - 1, -1, -1):
            rec = self._records[i]
            if isinstance(rec, (CheckpointRecord, EndCheckpointRecord)):
                return rec
        return None

    # -- truncation ------------------------------------------------------------

    def truncate(self, up_to_lsn: int, archive=None) -> int:
        """Archive and drop every record with LSN <= ``up_to_lsn``.

        Only the durable prefix may be truncated (the volatile tail is
        not yet on the log disk, let alone the archive).  ``archive``,
        when given, receives the list of dropped records before they
        leave the live log — the engine points it at a disk blob.
        Returns how many records were truncated.

        The *caller* is responsible for the safety rule: ``up_to_lsn``
        must lie below every dirty page's recLSN and below every active
        transaction's first LSN.  Reads below the new boundary raise
        :class:`~repro.errors.LogTruncatedError`.
        """
        if up_to_lsn > self.flushed_lsn:
            raise ValueError(
                f"cannot truncate to {up_to_lsn}: only {self.flushed_lsn} "
                f"is durable")
        count = up_to_lsn - self._base_lsn
        if count <= 0:
            return 0
        dropped = self._records[:count]
        if archive is not None:
            archive(dropped)
        for rec in dropped:
            if rec.txn_id > self.truncated_max_txn_id:
                self.truncated_max_txn_id = rec.txn_id
        del self._records[:count]
        self._base_lsn = up_to_lsn
        self.truncated_records += count
        return count

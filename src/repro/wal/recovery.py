"""Restart recovery: analysis, redo, undo (ARIES-lite).

``RecoveryManager`` drives the three passes against a *target* — the
engine — through a narrow interface:

* ``target.table_for_file(file_id)`` → Table runtime or None
* ``target.heap_for_file(file_id)`` → HeapFile or None (fallback when the
  target exposes no table runtimes)
* ``target.redo_create_table / redo_drop_table`` (idempotent DDL redo)
* ``target.redo_create_procedure / redo_drop_procedure``
* ``target.redo_create_index / redo_drop_index``

Redo repeats *history* — loser transactions' changes are re-applied and
then rolled back by the undo pass, exactly as in ARIES.  Redo is
idempotent via the page-LSN test; undo is restartable via CLRs carrying
``undo_next_lsn``.

Secondary indexes are maintained *incrementally* during both passes:
a table runtime materializes its B-trees from the heap's on-disk state
the first time recovery touches the table, and every redone or undone
heap change also applies the matching index updates (the logical
equivalent of redoing/undoing index pages).  No wholesale post-recovery
index rebuild is needed — restart cost scales with the log tail, not
with total data volume.

Two recovery paths coexist.  The legacy path (sharp checkpoint or no
checkpoint, ``redo_workers == 0``) is byte-identical to the seed.  The
fuzzy path engages when the last complete checkpoint is a Begin/End pair
or ``CostModel.redo_workers >= 1``: analysis merges the checkpoint's
dirty-page table with post-Begin page touches, redo starts at the
minimum recLSN and skips records whose effects provably reached disk,
and (with workers) apply time is charged as a per-file-partition
makespan while records are still applied serially in LSN order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.heap import RowId
from repro.wal.log import WriteAheadLog
from repro.wal.records import (
    AbortRecord,
    BeginCheckpointRecord,
    BeginRecord,
    CheckpointRecord,
    CLRRecord,
    CommitRecord,
    CreateIndexRecord,
    CreateProcedureRecord,
    CreateTableRecord,
    CreateViewRecord,
    DeleteRecord,
    DropIndexRecord,
    DropProcedureRecord,
    DropTableRecord,
    DropViewRecord,
    EndCheckpointRecord,
    EndRecord,
    InsertRecord,
    LogRecord,
    UpdateRecord,
)


def compensate(rec: LogRecord) -> LogRecord | None:
    """Build the record describing the inverse of ``rec``.

    Shared by online rollback (abort) and the restart undo pass so the two
    code paths cannot diverge.
    """
    if isinstance(rec, InsertRecord):
        return DeleteRecord(txn_id=rec.txn_id, table_name=rec.table_name,
                            file_id=rec.file_id, page_no=rec.page_no,
                            slot=rec.slot, row=rec.row)
    if isinstance(rec, DeleteRecord):
        return InsertRecord(txn_id=rec.txn_id, table_name=rec.table_name,
                            file_id=rec.file_id, page_no=rec.page_no,
                            slot=rec.slot, row=rec.row)
    if isinstance(rec, UpdateRecord):
        return UpdateRecord(txn_id=rec.txn_id, table_name=rec.table_name,
                            file_id=rec.file_id, page_no=rec.page_no,
                            slot=rec.slot, old_row=rec.new_row,
                            new_row=rec.old_row)
    if isinstance(rec, CreateTableRecord):
        return DropTableRecord(txn_id=rec.txn_id, table=rec.table)
    if isinstance(rec, DropTableRecord):
        return CreateTableRecord(txn_id=rec.txn_id, table=rec.table)
    if isinstance(rec, CreateProcedureRecord):
        return DropProcedureRecord(txn_id=rec.txn_id, name=rec.name,
                                   param_names=rec.param_names,
                                   body_sql=rec.body_sql)
    if isinstance(rec, DropProcedureRecord):
        return CreateProcedureRecord(txn_id=rec.txn_id, name=rec.name,
                                     param_names=rec.param_names,
                                     body_sql=rec.body_sql)
    if isinstance(rec, CreateIndexRecord):
        return DropIndexRecord(txn_id=rec.txn_id, index=rec.index)
    if isinstance(rec, DropIndexRecord):
        return CreateIndexRecord(txn_id=rec.txn_id, index=rec.index)
    if isinstance(rec, CreateViewRecord):
        return DropViewRecord(txn_id=rec.txn_id, name=rec.name,
                              body_sql=rec.body_sql)
    if isinstance(rec, DropViewRecord):
        return CreateViewRecord(txn_id=rec.txn_id, name=rec.name,
                                body_sql=rec.body_sql)
    return None


def apply_compensation(action: LogRecord, target) -> None:
    """Apply a compensating action built by :func:`compensate`.

    DML compensations go through the table runtime when the target has
    one, so loser-undo keeps the secondary indexes in step with the heap.
    """
    if isinstance(action, (InsertRecord, DeleteRecord, UpdateRecord)):
        rid = RowId(action.file_id, action.page_no, action.slot)
        runtime = _runtime_for(target, action.file_id)
        if runtime is not None:
            if isinstance(action, InsertRecord):
                runtime.apply_insert_with_indexes(rid, action.row,
                                                  action.lsn)
            elif isinstance(action, DeleteRecord):
                runtime.apply_delete_with_indexes(rid, action.lsn)
            else:
                runtime.apply_update_with_indexes(rid, action.new_row,
                                                  action.lsn)
            return
        heap = target.heap_for_file(action.file_id)
        if heap is None:
            return
        if isinstance(action, InsertRecord):
            heap.apply_insert(rid, action.row, action.lsn)
        elif isinstance(action, DeleteRecord):
            heap.apply_delete(rid, action.lsn)
        else:
            heap.apply_update(rid, action.new_row, action.lsn)
    elif isinstance(action, DropTableRecord):
        target.redo_drop_table(action.table)
    elif isinstance(action, CreateTableRecord):
        target.redo_create_table(action.table)
    elif isinstance(action, DropProcedureRecord):
        target.redo_drop_procedure(action.name)
    elif isinstance(action, CreateProcedureRecord):
        target.redo_create_procedure(action.name, action.param_names,
                                     action.body_sql)
    elif isinstance(action, DropIndexRecord):
        target.redo_drop_index(action.index)
    elif isinstance(action, CreateIndexRecord):
        target.redo_create_index(action.index)
    elif isinstance(action, DropViewRecord):
        target.redo_drop_view(action.name)
    elif isinstance(action, CreateViewRecord):
        target.redo_create_view(action.name, action.body_sql)


def _runtime_for(target, file_id: int):
    """The index-maintaining table runtime for ``file_id``, if any."""
    table_for_file = getattr(target, "table_for_file", None)
    if table_for_file is None:
        return None
    return table_for_file(file_id)


def _partition_makespan(loads: dict[int, float], workers: int) -> float:
    """Makespan of one redo round: greedily (LPT) assign each file
    partition's apply seconds to ``workers`` simulated workers and return
    the most-loaded worker's total.  Deterministic — partitions are
    placed largest-first with file id breaking ties, onto the least
    loaded (lowest-index) worker."""
    if not loads:
        return 0.0
    if workers <= 1:
        return sum(loads.values())
    bins = [0.0] * workers
    ordered = sorted(((load, file_id) for file_id, load in loads.items()),
                     key=lambda pair: (-pair[0], pair[1]))
    for load, _file_id in ordered:
        bins[bins.index(min(bins))] += load
    return max(bins)


#: Non-data records redo treats as DDL (redone via the target's
#: ``redo_*`` hooks).  Used by the fuzzy path to skip DDL already
#: captured by the checkpoint's catalog snapshot.
_DDL_RECORDS = (CreateTableRecord, DropTableRecord, CreateProcedureRecord,
                DropProcedureRecord, CreateIndexRecord, DropIndexRecord,
                CreateViewRecord, DropViewRecord)

_DATA_RECORDS = (InsertRecord, DeleteRecord, UpdateRecord)


@dataclass
class RecoveryReport:
    """What restart recovery did (used by tests and the server log)."""

    checkpoint_lsn: int = 0
    winners: set = field(default_factory=set)
    losers: set = field(default_factory=set)
    redo_applied: int = 0
    redo_skipped: int = 0
    undo_applied: int = 0
    #: True when the last complete checkpoint was a fuzzy Begin/End pair.
    fuzzy: bool = False
    #: Simulated redo workers used (0 = the seed's serial charging).
    redo_workers: int = 0
    #: First LSN the redo pass scanned (min dirty-page recLSN under a
    #: fuzzy checkpoint; checkpoint+1 otherwise).
    redo_start: int = 0
    #: Virtual seconds of per-partition redo apply work, by file id
    #: (parallel redo only; the charged makespan is <= the sum of these).
    partition_seconds: dict = field(default_factory=dict)


class RecoveryManager:
    """Runs the three recovery passes against an engine target."""

    def __init__(self, log: WriteAheadLog, target):
        self._log = log
        self._target = target
        #: table runtimes whose indexes redo/undo touched — their unique
        #: trees may hold transient duplicates while history is repeated,
        #: so they are re-validated once undo completes.
        self._touched_runtimes: dict[int, object] = {}

    def _charge_record(self, rec: LogRecord, applied: bool) -> None:
        """Charge the honest cost of processing one record at restart:
        sequential log read plus (when applied) the page operation."""
        meter = self._log.meter
        if meter is None:
            return
        from repro.sim.costs import SERVER_DISK

        seconds = meter.costs.log_write_seconds(rec.payload_bytes())
        if applied:
            seconds += meter.costs.cpu_per_tuple_insert
        meter.charge(SERVER_DISK, seconds, "restart recovery")

    def recover(self) -> RecoveryReport:
        tracer = self._tracer()
        if tracer is not None:
            with tracer.span("wal.recover", layer="wal") as root:
                report = self._recover(tracer)
                root.set_attr("redo_applied", report.redo_applied)
                root.set_attr("undo_applied", report.undo_applied)
                root.set_attr("losers", len(report.losers))
                return report
        return self._recover(None)

    def _tracer(self):
        meter = self._log.meter
        if meter is None or not meter.obs.tracer.enabled:
            return None
        return meter.obs.tracer

    def _recover(self, tracer) -> RecoveryReport:
        checkpoint = self._log.last_complete_checkpoint()
        meter = self._log.meter
        workers = meter.costs.redo_workers if meter is not None else 0
        if isinstance(checkpoint, EndCheckpointRecord) or workers >= 1:
            return self._recover_fuzzy(tracer, checkpoint, workers)
        report = RecoveryReport()
        report.checkpoint_lsn = self._log.last_checkpoint_lsn()
        if tracer is not None:
            with tracer.span("wal.analysis", layer="wal"):
                last_lsn, committed, ended = self._analysis(
                    report.checkpoint_lsn)
        else:
            last_lsn, committed, ended = self._analysis(
                report.checkpoint_lsn)
        report.winners = set(committed)
        report.losers = set(last_lsn) - committed - ended
        if tracer is not None:
            with tracer.span("wal.redo", layer="wal"):
                self._redo(report)
            with tracer.span("wal.undo", layer="wal"):
                self._undo(report,
                           {t: last_lsn[t] for t in report.losers})
        else:
            self._redo(report)
            self._undo(report, {t: last_lsn[t] for t in report.losers})
        # Indexes were maintained incrementally through redo/undo (see
        # module docstring); no wholesale rebuild pass is needed.  But
        # repeating history tolerates transient unique-key duplicates
        # (apply-mode inserts do not enforce uniqueness), so check the
        # invariant is restored now that both passes are done.
        for runtime in self._touched_runtimes.values():
            runtime.validate_unique_indexes()
        self._log.force()
        return report

    # -- fuzzy checkpoints / parallel redo ----------------------------------

    def _recover_fuzzy(self, tracer, checkpoint,
                       workers: int) -> RecoveryReport:
        """Recovery under a fuzzy checkpoint and/or simulated parallel
        redo.  The legacy path above stays byte-identical for seed
        configurations; this one differs in three ways:

        * analysis starts from the checkpoint's *Begin* record and merges
          its logged dirty-page table with pages touched after it;
        * redo starts at the minimum recLSN of that table and skips
          records whose page provably holds their effects on disk (plus
          DDL below the Begin record — the catalog snapshot covers it);
        * with ``redo_workers >= 1`` the apply work is charged as the
          makespan of per-file partitions over N workers (records are
          still applied serially in LSN order, so the worker count can
          never change recovered contents).

        Per-pass virtual times are recorded to the observability
        recovery log (``sys_recovery_phases``) — gated to this path so
        seed traces stay bit-identical.
        """
        import contextlib

        if tracer is not None:
            def span(name):
                return tracer.span(name, layer="wal")
        else:
            def span(name):
                return contextlib.nullcontext()

        meter = self._log.meter
        peek = meter.peek_now if meter is not None else (lambda: 0.0)
        report = RecoveryReport(
            fuzzy=isinstance(checkpoint, EndCheckpointRecord),
            redo_workers=workers)
        phase_seconds: dict[str, float] = {}
        mark = peek()
        with span("wal.analysis"):
            last_lsn, committed, ended, dpt, begin_lsn = \
                self._analysis_fuzzy(checkpoint, report)
        phase_seconds["wal_analysis"] = peek() - mark
        report.winners = set(committed)
        report.losers = set(last_lsn) - committed - ended
        if report.fuzzy:
            report.redo_start = max(
                1, min(dpt.values(), default=begin_lsn + 1))
        else:
            report.redo_start = begin_lsn + 1
        mark = peek()
        with span("wal.redo"):
            if workers >= 1:
                self._redo_parallel(report, dpt, begin_lsn, workers)
            else:
                self._redo_fuzzy_serial(report, dpt, begin_lsn)
        phase_seconds["wal_redo"] = peek() - mark
        mark = peek()
        with span("wal.undo"):
            self._undo(report, {t: last_lsn[t] for t in report.losers})
        phase_seconds["wal_undo"] = peek() - mark
        for runtime in self._touched_runtimes.values():
            runtime.validate_unique_indexes()
        self._log.force()
        for file_id in sorted(report.partition_seconds):
            phase_seconds[f"wal_redo_file_{file_id}"] = \
                report.partition_seconds[file_id]
        if meter is not None:
            meter.obs.record_recovery(phase_seconds, finished_at=peek())
        return report

    def _analysis_fuzzy(self, checkpoint, report: RecoveryReport):
        """Analysis seeded from a Begin/End pair (or a sharp checkpoint
        when only ``redo_workers`` is on).

        Returns ``(txn -> last lsn, committed, ended, dirty-page table,
        begin_lsn)``.  The DPT starts from the one the End record logged
        and grows by first-touch recLSN for every page dirtied after the
        Begin record — exactly the set redo must consider.
        """
        last_lsn: dict[int, int] = {}
        committed: set[int] = set()
        ended: set[int] = set()
        dpt: dict[tuple[int, int], int] = {}
        begin_lsn = 0
        if isinstance(checkpoint, EndCheckpointRecord):
            begin_lsn = checkpoint.begin_lsn
            last_lsn.update(checkpoint.active_txns)
            dpt.update(checkpoint.dirty_pages)
        elif isinstance(checkpoint, CheckpointRecord):
            begin_lsn = checkpoint.lsn
            last_lsn.update(checkpoint.active_txns)
        report.checkpoint_lsn = begin_lsn
        for rec in self._log.records_from(begin_lsn + 1):
            if isinstance(rec, (CheckpointRecord, BeginCheckpointRecord,
                                EndCheckpointRecord)):
                continue
            if isinstance(rec, EndRecord):
                ended.add(rec.txn_id)
                continue
            if isinstance(rec, CommitRecord):
                committed.add(rec.txn_id)
                continue
            if rec.txn_id:
                last_lsn[rec.txn_id] = rec.lsn
            target = rec.action if isinstance(rec, CLRRecord) else rec
            if isinstance(target, _DATA_RECORDS):
                dpt.setdefault((target.file_id, target.page_no), rec.lsn)
        return last_lsn, committed, ended, dpt, begin_lsn

    def _skip_fuzzy(self, rec: LogRecord, dpt: dict, begin_lsn: int,
                    report: RecoveryReport) -> bool:
        """DPT / catalog-snapshot redo filter (fuzzy checkpoints only).

        True when ``rec`` provably needs no redo: a data change to a page
        outside the dirty-page table (its image reached disk before the
        checkpoint) or below the page's recLSN, or DDL at/below the Begin
        record (the catalog snapshot written with it already carries the
        change).  This is what bounds redone records by dirty pages
        instead of log length.
        """
        target = rec.action if isinstance(rec, CLRRecord) else rec
        if isinstance(target, _DATA_RECORDS):
            rec_lsn = dpt.get((target.file_id, target.page_no))
            if rec_lsn is None or rec.lsn < rec_lsn:
                report.redo_skipped += 1
                return True
            return False
        if isinstance(target, _DDL_RECORDS) and rec.lsn <= begin_lsn:
            report.redo_skipped += 1
            return True
        return False

    def _redo_fuzzy_serial(self, report: RecoveryReport, dpt: dict,
                           begin_lsn: int) -> None:
        for rec in self._log.records_from(report.redo_start):
            if report.fuzzy and self._skip_fuzzy(rec, dpt, begin_lsn,
                                                 report):
                self._charge_record(rec, applied=False)
                continue
            before = report.redo_applied
            self._redo_one(rec, report)
            self._charge_record(rec, applied=report.redo_applied > before)

    def _redo_parallel(self, report: RecoveryReport, dpt: dict,
                       begin_lsn: int, workers: int) -> None:
        """Redo with the apply work charged as an N-worker makespan.

        Records are applied serially in LSN order — parallelism is purely
        a *timing* model, so 1-worker and 4-worker recovery produce
        identical contents.  The charge decomposes into:

        * the sequential log read (every scanned record, skipped or not);
        * DDL apply time, serial — a catalog change is a barrier that
          drains the in-flight round before running alone;
        * per round between barriers, the LPT makespan of per-file
          partition loads over ``workers`` workers (WAL partitions redo
          by file id: two changes to one file never race).

        Each record's apply cost is captured via the meter's overlap
        window + per-record recorder (page faults included), then charged
        once at the end as a single restart-recovery disk segment.
        """
        meter = self._log.meter
        from repro.sim.costs import SERVER_DISK

        read_seconds = 0.0
        serial_seconds = 0.0
        makespan = 0.0
        round_loads: dict[int, float] = {}
        sink = meter.begin_overlap()
        try:
            for rec in self._log.records_from(report.redo_start):
                read_seconds += meter.costs.log_write_seconds(
                    rec.payload_bytes())
                if report.fuzzy and self._skip_fuzzy(rec, dpt, begin_lsn,
                                                     report):
                    continue
                target = (rec.action if isinstance(rec, CLRRecord)
                          else rec)
                rec_sink = meter.push_recorder()
                before = report.redo_applied
                try:
                    self._redo_one(rec, report)
                finally:
                    meter.pop_recorder(rec_sink)
                seconds = sum(seg.seconds for seg in rec_sink)
                if report.redo_applied > before:
                    seconds += meter.costs.cpu_per_tuple_insert
                if isinstance(target, _DATA_RECORDS):
                    file_id = target.file_id
                    round_loads[file_id] = \
                        round_loads.get(file_id, 0.0) + seconds
                    report.partition_seconds[file_id] = \
                        report.partition_seconds.get(file_id, 0.0) \
                        + seconds
                elif seconds > 0.0:
                    makespan += _partition_makespan(round_loads, workers)
                    round_loads.clear()
                    serial_seconds += seconds
            makespan += _partition_makespan(round_loads, workers)
        finally:
            meter.end_overlap(sink)
        meter.charge(SERVER_DISK,
                     read_seconds + serial_seconds + makespan,
                     "parallel redo")

    # -- analysis ----------------------------------------------------------

    def _analysis(
        self, checkpoint_lsn: int,
    ) -> tuple[dict[int, int], set[int], set[int]]:
        """Return (txn -> last undoable lsn, committed txns, ended txns).

        Losers are the txns that appear in the first map but neither
        committed nor ended.  CLR LSNs also update the last-lsn map so that
        undo of a crash-during-rollback resumes from the right place.
        """
        last_lsn: dict[int, int] = {}
        committed: set[int] = set()
        ended: set[int] = set()
        if checkpoint_lsn:
            checkpoint = self._log.record(checkpoint_lsn)
            assert isinstance(checkpoint, CheckpointRecord)
            last_lsn.update(checkpoint.active_txns)
        start = checkpoint_lsn + 1 if checkpoint_lsn else 1
        for rec in self._log.records_from(start):
            if isinstance(rec, CheckpointRecord):
                continue
            if isinstance(rec, EndRecord):
                ended.add(rec.txn_id)
                continue
            if isinstance(rec, CommitRecord):
                committed.add(rec.txn_id)
                continue
            if rec.txn_id:
                last_lsn[rec.txn_id] = rec.lsn
        return last_lsn, committed, ended

    # -- redo ---------------------------------------------------------------

    def _redo(self, report: RecoveryReport) -> None:
        start = report.checkpoint_lsn + 1 if report.checkpoint_lsn else 1
        for rec in self._log.records_from(start):
            before = report.redo_applied
            self._redo_one(rec, report)
            self._charge_record(rec, applied=report.redo_applied > before)

    def _redo_one(self, rec: LogRecord, report: RecoveryReport) -> None:
        if isinstance(rec, CLRRecord):
            if rec.action is not None:
                action = rec.action
                action.lsn = rec.lsn  # page-LSN stamp comes from the CLR
                self._redo_one(action, report)
            return
        if isinstance(rec, (InsertRecord, DeleteRecord, UpdateRecord)):
            runtime = _runtime_for(self._target, rec.file_id)
            heap = (runtime.heap if runtime is not None
                    else self._target.heap_for_file(rec.file_id))
            if heap is None:
                report.redo_skipped += 1
                return
            if heap.page_lsn(rec.page_no) >= rec.lsn:
                # Page already carries this change — and the runtime's
                # indexes were built from that heap state, so they carry
                # it too.
                report.redo_skipped += 1
                return
            rid = RowId(rec.file_id, rec.page_no, rec.slot)
            if runtime is not None:
                self._touched_runtimes[rec.file_id] = runtime
                if isinstance(rec, InsertRecord):
                    runtime.apply_insert_with_indexes(rid, rec.row, rec.lsn)
                elif isinstance(rec, DeleteRecord):
                    runtime.apply_delete_with_indexes(rid, rec.lsn)
                else:
                    runtime.apply_update_with_indexes(rid, rec.new_row,
                                                      rec.lsn)
            elif isinstance(rec, InsertRecord):
                heap.apply_insert(rid, rec.row, rec.lsn)
            elif isinstance(rec, DeleteRecord):
                heap.apply_delete(rid, rec.lsn)
            else:
                heap.apply_update(rid, rec.new_row, rec.lsn)
            report.redo_applied += 1
            return
        if isinstance(rec, CreateTableRecord):
            self._target.redo_create_table(rec.table)
            report.redo_applied += 1
        elif isinstance(rec, DropTableRecord):
            self._target.redo_drop_table(rec.table)
            report.redo_applied += 1
        elif isinstance(rec, CreateProcedureRecord):
            self._target.redo_create_procedure(rec.name, rec.param_names,
                                               rec.body_sql)
            report.redo_applied += 1
        elif isinstance(rec, DropProcedureRecord):
            self._target.redo_drop_procedure(rec.name)
            report.redo_applied += 1
        elif isinstance(rec, CreateIndexRecord):
            self._target.redo_create_index(rec.index)
            report.redo_applied += 1
        elif isinstance(rec, DropIndexRecord):
            self._target.redo_drop_index(rec.index)
            report.redo_applied += 1
        elif isinstance(rec, CreateViewRecord):
            self._target.redo_create_view(rec.name, rec.body_sql)
            report.redo_applied += 1
        elif isinstance(rec, DropViewRecord):
            self._target.redo_drop_view(rec.name)
            report.redo_applied += 1

    # -- undo ----------------------------------------------------------------

    def _undo(self, report: RecoveryReport, losers: dict[int, int]) -> None:
        for txn_id in sorted(losers):
            self._undo_txn(txn_id, losers[txn_id], report)

    def _undo_txn(self, txn_id: int, last_lsn: int,
                  report: RecoveryReport) -> None:
        lsn = last_lsn
        while lsn:
            rec = self._log.record(lsn)
            if isinstance(rec, CLRRecord):
                lsn = rec.undo_next_lsn  # already-undone prefix is skipped
                continue
            if isinstance(rec, (BeginRecord, AbortRecord)):
                lsn = rec.prev_lsn
                continue
            compensation = compensate(rec)
            if compensation is not None:
                clr = CLRRecord(txn_id=txn_id, prev_lsn=0,
                                action=compensation,
                                undo_next_lsn=rec.prev_lsn)
                self._log.append(clr)
                compensation.lsn = clr.lsn
                if isinstance(compensation,
                              (InsertRecord, DeleteRecord, UpdateRecord)):
                    runtime = _runtime_for(self._target,
                                           compensation.file_id)
                    if runtime is not None:
                        self._touched_runtimes[compensation.file_id] = \
                            runtime
                apply_compensation(compensation, self._target)
                report.undo_applied += 1
            lsn = rec.prev_lsn
        self._log.append(EndRecord(txn_id=txn_id))
